/**
 * @file
 * Fleet report writers, mirroring explore/report.hh: a CSV of every
 * design point with its fleet objectives and per-point fleet totals,
 * a Markdown report with the frontier and a per-node breakdown of
 * the winning point, and the CLI summary block. CSV and Markdown are
 * deterministic (no timestamps, no cache economics), so cold and
 * warm runs — local or served — render byte-identically; run
 * economics appear only in the summary.
 */

#ifndef WLCACHE_FLEET_REPORT_HH
#define WLCACHE_FLEET_REPORT_HH

#include <iosfwd>

#include "fleet/fleet.hh"

namespace wlcache {
namespace fleet {

/**
 * Write every point as CSV: point id, one column per swept parameter
 * (union across points; '-' where unbound), objective values, the
 * frontier flag, completed-node count, and fleet totals.
 */
void writeFleetCsv(std::ostream &os, const FleetReport &report);

/**
 * Write the Markdown fleet report: scenario header (nodes, jitter,
 * objectives), the frontier table, and a per-node table for the
 * first frontier point.
 */
void writeFleetMarkdown(std::ostream &os, const FleetReport &report);

/** Write the CLI summary block (frontier table + run economics). */
void writeFleetSummaryText(std::ostream &os,
                           const FleetReport &report);

} // namespace fleet
} // namespace wlcache

#endif // WLCACHE_FLEET_REPORT_HH
