/**
 * @file
 * Fleet evaluation engine: fan every design point of a fleet spec out
 * as N ordinary content-addressed single-node jobs (one per node,
 * each with its node-derived power trace and mix-assigned workload),
 * then reduce the per-node results into fleet objectives — forward-
 * progress percentiles, fleet-total and worst-line NVM wear, and the
 * fraction of nodes meeting a cycle deadline. The reduction sorts
 * nodes by id first, so the aggregate is independent of worker
 * completion order, and every percentile is the exact nearest-rank
 * statistic with N=0/N=1 guarded (no NaN/Inf ever reaches a report).
 */

#ifndef WLCACHE_FLEET_FLEET_HH
#define WLCACHE_FLEET_FLEET_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "explore/sweep_spec.hh"
#include "fleet/fleet_spec.hh"
#include "nvp/system.hh"
#include "runner/runner.hh"

namespace wlcache {
namespace fleet {

/** One node's finished run within a design point. */
struct NodeResult
{
    std::uint64_t node = 0;       //!< Fleet node id (trace seed).
    std::string workload;         //!< Mix-assigned workload.
    std::string run_key;          //!< Content-addressed run key.
    nvp::RunResult result;
};

/** One named fleet figure of merit (all minimize; maximizing
 *  objectives are negated at extraction, like explore's). */
struct FleetObjectiveDef
{
    const char *name;
    const char *help;
    /** @p nodes is sorted by node id before this is called. */
    double (*eval)(const std::vector<NodeResult> &nodes,
                   const FleetSpec &spec);
};

/** Every registered fleet objective. */
const std::vector<FleetObjectiveDef> &allFleetObjectives();

/** Lookup by name; null when unknown. */
const FleetObjectiveDef *findFleetObjective(const std::string &name);

/** Comma-separated registered names, for error messages. */
std::string fleetObjectiveNameList();

/**
 * Exact nearest-rank percentile: the smallest value v in @p values
 * such that at least @p pct percent of them are <= v, i.e. the
 * (1-based) rank ceil(pct/100 * N) of the ascending order. Takes the
 * vector by value and sorts internally, so callers never pre-sort.
 * Guards: N=0 returns 0; N=1 returns the single value for any pct;
 * pct <= 0 returns the minimum, pct >= 100 the maximum.
 */
double percentileNearestRank(std::vector<double> values, double pct);

/**
 * A node's forward-progress rate: retired instructions per second of
 * total wall-clock (on + recharge). 0 when no time elapsed.
 */
double nodeProgressRate(const nvp::RunResult &r);

/** One design point evaluated across the whole fleet. */
struct FleetPointOutcome
{
    explore::DesignPoint point;
    /** Per-node results, sorted by node id (aggregatePoint sorts). */
    std::vector<NodeResult> nodes;
    /** Objective values in report objective order (all minimize). */
    std::vector<double> objectives;
    bool on_frontier = false;

    // --- Fleet-total telemetry rollup (summed over nodes) ---
    std::uint64_t total_instructions = 0;
    std::uint64_t total_nvm_writes = 0;
    std::uint64_t total_outages = 0;
    double total_harvested_j = 0.0;
    std::size_t completed_nodes = 0;
};

/**
 * Reduce @p out.nodes into objectives and fleet totals. Sorts the
 * nodes by id first, so the result is identical no matter what order
 * the runner (or a sharded worker fleet) delivered them in.
 * @p objective_names must all be registered (validated upstream).
 */
void aggregatePoint(FleetPointOutcome &out, const FleetSpec &spec,
                    const std::vector<std::string> &objective_names);

/** Everything one fleet evaluation learned. */
struct FleetReport
{
    std::string name;
    unsigned nodes = 1;
    double jitter = 0.0;
    std::vector<std::string> objective_names;

    /** Evaluated points in sweep-expansion order. */
    std::vector<FleetPointOutcome> outcomes;
    /** Frontier indices into @c outcomes (deterministic order). */
    std::vector<std::size_t> frontier;

    // --- Run economics (summary only; never in csv/markdown) ---
    std::size_t total_runs = 0;
    std::size_t cache_hits = 0;
    std::size_t executed = 0;
};

/** Everything one fleet evaluation needs beyond the spec. */
struct FleetConfig
{
    FleetSpec spec;
    unsigned jobs = 0;          //!< Worker threads (0 = default).
    std::string cache_dir;      //!< Result cache; empty disables.
    std::string snapshot_dir;   //!< Snapshot store; empty disables.
    bool progress = false;      //!< Per-job progress lines.
    std::ostream *progress_out = nullptr;
    /** Remote execution hook (wlcached queue). Null runs locally. */
    runner::RemoteExecutor executor;
};

/**
 * Run one fleet evaluation: expand the sweep, fan out nodes x points
 * through the runner, aggregate, and extract the Pareto frontier
 * over the fleet objectives (default when the spec names none:
 * fleet_p99_progress + fleet_wear_total).
 * @return true on success; false fills @p err.
 */
bool runFleet(const FleetConfig &cfg, FleetReport &out,
              std::string *err = nullptr);

} // namespace fleet
} // namespace wlcache

#endif // WLCACHE_FLEET_FLEET_HH
