/**
 * @file
 * Declarative fleet scenarios: N intermittently-powered nodes sharing
 * one ambient environment. A FleetSpec wraps an ordinary design-space
 * sweep (the candidate configurations) with the fleet dimensions the
 * paper's single-node evaluation cannot express — node count, the
 * per-node power-gain spread (see energy::deriveNodeTrace), a cycle
 * deadline, and a declarative workload mix assigned to nodes
 * round-robin. Every per-node run is a plain single-node experiment
 * with `power_node`/`power_jitter` set, so fleet evaluations are
 * content-addressed and bit-reproducible like everything else.
 */

#ifndef WLCACHE_FLEET_FLEET_SPEC_HH
#define WLCACHE_FLEET_FLEET_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "explore/sweep_spec.hh"

namespace wlcache {
namespace fleet {

/** One workload-mix entry: @c weight nodes out of every cycle of the
 *  mix run @c workload. */
struct MixEntry
{
    std::string workload;
    unsigned weight = 1;
};

/** A full declarative fleet scenario. */
struct FleetSpec
{
    std::string name = "fleet";

    /** Node count (>= 1). */
    unsigned nodes = 1;

    /**
     * Per-node power-gain spread handed to deriveNodeTrace(); 0 makes
     * every node see the identical base trace.
     */
    double jitter = 0.25;

    /**
     * Cycle budget for the fleet_deadline_miss objective: a node
     * meets the deadline when it completes within this many on-cycles
     * worth of wall-clock (0 = completion alone is the deadline).
     */
    std::uint64_t deadline_cycles = 0;

    /**
     * Workload mix, expanded to a node→workload pattern: entries
     * repeat by weight, node i runs pattern[i % len]. Empty keeps the
     * sweep's own workload on every node.
     */
    std::vector<MixEntry> mix;

    /** Candidate design points (ordinary sweep document). */
    explore::SweepSpec sweep;

    /** Fleet objective names (see fleet.hh); may be empty. */
    std::vector<std::string> objectives;

    /** The expanded node→workload pattern (empty when mix is). */
    std::vector<std::string> workloadPattern() const;
};

/**
 * Parse a JSON fleet-spec document:
 *
 *   { "name": ..., "nodes": N, "jitter": J, "deadline_cycles": D,
 *     "mix": [{"workload": "sha", "weight": 3}, ...],
 *     "objectives": ["fleet_p99_progress", ...],
 *     "sweep": { ...ordinary sweep document... } }
 *
 * Strict like parseSweepSpec: unknown keys, bad types, unknown
 * workload/objective names are all rejected with a diagnostic naming
 * the offending JSON path.
 *
 * @return true on success; false leaves @p out untouched and fills
 *         @p err (when given).
 */
bool parseFleetSpec(const std::string &json_text, FleetSpec &out,
                    std::string *err = nullptr);

} // namespace fleet
} // namespace wlcache

#endif // WLCACHE_FLEET_FLEET_SPEC_HH
