#include "fleet/fleet.hh"

#include <algorithm>
#include <cmath>

#include "explore/pareto.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace wlcache {
namespace fleet {

double
percentileNearestRank(std::vector<double> values, double pct)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    if (pct <= 0.0)
        return values.front();
    if (pct >= 100.0)
        return values.back();
    // 1-based nearest rank: ceil(pct/100 * N), clamped to [1, N] so
    // floating-point edge cases can never index out of range.
    const double n = static_cast<double>(values.size());
    auto rank =
        static_cast<std::size_t>(std::ceil(pct / 100.0 * n));
    if (rank < 1)
        rank = 1;
    if (rank > values.size())
        rank = values.size();
    return values[rank - 1];
}

double
nodeProgressRate(const nvp::RunResult &r)
{
    if (r.total_seconds <= 0.0)
        return 0.0;
    return static_cast<double>(r.instructions) / r.total_seconds;
}

namespace {

std::vector<double>
progressRates(const std::vector<NodeResult> &nodes)
{
    std::vector<double> rates;
    rates.reserve(nodes.size());
    for (const NodeResult &n : nodes)
        rates.push_back(nodeProgressRate(n.result));
    return rates;
}

/**
 * "pXX fleet forward progress": the rate met (or exceeded) by XX% of
 * the fleet — the nearest-rank (100-XX)th percentile of the per-node
 * progress rates, negated so minimizing raises the fleet's tail.
 */
double
tailProgress(const std::vector<NodeResult> &nodes, double xx)
{
    return -percentileNearestRank(progressRates(nodes), 100.0 - xx);
}

bool
meetsDeadline(const nvp::RunResult &r, const FleetSpec &spec)
{
    if (!r.completed)
        return false;
    if (spec.deadline_cycles == 0)
        return true;
    return r.total_seconds <=
           cyclesToSeconds(static_cast<Cycle>(spec.deadline_cycles));
}

} // anonymous namespace

const std::vector<FleetObjectiveDef> &
allFleetObjectives()
{
    using N = std::vector<NodeResult>;
    using S = FleetSpec;
    static const std::vector<FleetObjectiveDef> defs = {
        { "fleet_p50_progress",
          "forward-progress rate met by half the fleet "
          "(median, negated to maximize)",
          [](const N &nodes, const S &) {
              return tailProgress(nodes, 50.0);
          } },
        { "fleet_p90_progress",
          "forward-progress rate met by 90% of the fleet "
          "(negated to maximize)",
          [](const N &nodes, const S &) {
              return tailProgress(nodes, 90.0);
          } },
        { "fleet_p99_progress",
          "forward-progress rate met by 99% of the fleet "
          "(negated to maximize)",
          [](const N &nodes, const S &) {
              return tailProgress(nodes, 99.0);
          } },
        { "fleet_mean_progress",
          "mean per-node forward-progress rate (negated to maximize)",
          [](const N &nodes, const S &) {
              if (nodes.empty())
                  return 0.0;
              double sum = 0.0;
              for (const NodeResult &n : nodes)
                  sum += nodeProgressRate(n.result);
              return -sum / static_cast<double>(nodes.size());
          } },
        { "fleet_wear_total",
          "fleet-total NVM line writes (endurance budget consumed "
          "across every node)",
          [](const N &nodes, const S &) {
              double sum = 0.0;
              for (const NodeResult &n : nodes)
                  sum += static_cast<double>(n.result.nvm_writes);
              return sum;
          } },
        { "fleet_wear_max",
          "worst single-line write count anywhere in the fleet "
          "(needs nvm.track_wear)",
          [](const N &nodes, const S &) {
              std::uint64_t worst = 0;
              for (const NodeResult &n : nodes)
                  worst = std::max(worst, n.result.nvm_wear_max);
              return static_cast<double>(worst);
          } },
        { "fleet_energy_total",
          "fleet-total consumed energy in joules",
          [](const N &nodes, const S &) {
              double sum = 0.0;
              for (const NodeResult &n : nodes)
                  sum += n.result.meter.total();
              return sum;
          } },
        { "fleet_deadline_miss",
          "fraction of nodes missing the cycle deadline "
          "(deadline_cycles; 0 counts bare completion)",
          [](const N &nodes, const S &spec) {
              if (nodes.empty())
                  return 0.0;
              std::size_t missed = 0;
              for (const NodeResult &n : nodes)
                  if (!meetsDeadline(n.result, spec))
                      ++missed;
              return static_cast<double>(missed) /
                     static_cast<double>(nodes.size());
          } },
    };
    return defs;
}

const FleetObjectiveDef *
findFleetObjective(const std::string &name)
{
    for (const auto &d : allFleetObjectives())
        if (name == d.name)
            return &d;
    return nullptr;
}

std::string
fleetObjectiveNameList()
{
    std::string list;
    for (const auto &d : allFleetObjectives()) {
        if (!list.empty())
            list += ", ";
        list += d.name;
    }
    return list;
}

void
aggregatePoint(FleetPointOutcome &out, const FleetSpec &spec,
               const std::vector<std::string> &objective_names)
{
    // Reduction order must not depend on delivery order: node id is
    // the one stable sort key a sharded worker fleet cannot permute.
    std::sort(out.nodes.begin(), out.nodes.end(),
              [](const NodeResult &a, const NodeResult &b) {
                  return a.node < b.node;
              });

    out.total_instructions = 0;
    out.total_nvm_writes = 0;
    out.total_outages = 0;
    out.total_harvested_j = 0.0;
    out.completed_nodes = 0;
    for (const NodeResult &n : out.nodes) {
        out.total_instructions += n.result.instructions;
        out.total_nvm_writes += n.result.nvm_writes;
        out.total_outages += n.result.outages;
        for (const auto &iv : n.result.intervals)
            out.total_harvested_j += iv.harvested_j;
        if (n.result.completed)
            ++out.completed_nodes;
    }

    out.objectives.clear();
    out.objectives.reserve(objective_names.size());
    for (const std::string &name : objective_names) {
        const FleetObjectiveDef *def = findFleetObjective(name);
        wlc_assert(def != nullptr, "unknown fleet objective '%s'",
                   name.c_str());
        const double v = def->eval(out.nodes, spec);
        // PR-5 clamp discipline: a non-finite aggregate must never
        // reach a report or run JSON.
        out.objectives.push_back(std::isfinite(v) ? v : 0.0);
    }
}

bool
runFleet(const FleetConfig &cfg, FleetReport &out, std::string *err)
{
    auto fail = [&](const std::string &what) {
        if (err)
            *err = what;
        return false;
    };

    const FleetSpec &spec = cfg.spec;
    const std::vector<std::string> objectives =
        !spec.objectives.empty()
            ? spec.objectives
            : std::vector<std::string>{ "fleet_p99_progress",
                                        "fleet_wear_total" };
    for (const auto &name : objectives)
        if (!findFleetObjective(name))
            return fail("unknown fleet objective '" + name +
                        "' (valid: " + fleetObjectiveNameList() +
                        ")");
    if (spec.nodes == 0)
        return fail("fleet needs at least one node");

    std::vector<explore::DesignPoint> points;
    if (!explore::expandPoints(spec.sweep, points, err))
        return false;
    if (points.empty())
        return fail("sweep expands to zero points");

    const std::vector<std::string> pattern = spec.workloadPattern();

    // One flat batch: points x nodes, node fastest. Every job is an
    // ordinary single-node experiment, so the content-addressed cache
    // and the wlcached queue treat fleet work like any other.
    runner::JobSet set;
    for (const auto &p : points) {
        const std::string pid = p.id.empty() ? "base" : p.id;
        for (unsigned n = 0; n < spec.nodes; ++n) {
            nvp::ExperimentSpec s = p.spec;
            s.power_node = n;
            s.power_jitter = spec.jitter;
            if (!pattern.empty())
                s.workload = pattern[n % pattern.size()];
            set.add(std::move(s),
                    pid + "#n" + std::to_string(n));
        }
    }

    runner::RunnerConfig rc;
    rc.jobs = cfg.jobs;
    rc.cache_dir = cfg.cache_dir;
    rc.snapshot_dir = cfg.snapshot_dir;
    rc.progress = cfg.progress;
    rc.progress_out = cfg.progress_out;
    rc.executor = cfg.executor;
    runner::Runner runner(rc);
    const std::vector<nvp::RunResult> results = runner.runAll(set);
    const runner::BatchStats &stats = runner.stats();

    FleetReport report;
    report.name = spec.name;
    report.nodes = spec.nodes;
    report.jitter = spec.jitter;
    report.objective_names = objectives;
    report.total_runs = stats.total;
    report.cache_hits = stats.cache_hits;
    report.executed = stats.executed;

    std::vector<std::vector<double>> objs;
    std::vector<std::string> ids;
    std::size_t job = 0;
    for (const auto &p : points) {
        FleetPointOutcome o;
        o.point = p;
        o.nodes.reserve(spec.nodes);
        for (unsigned n = 0; n < spec.nodes; ++n, ++job) {
            NodeResult nr;
            nr.node = n;
            nr.workload = set[job].spec.workload;
            nr.run_key = set[job].key;
            nr.result = results[job];
            o.nodes.push_back(std::move(nr));
        }
        aggregatePoint(o, spec, objectives);
        objs.push_back(o.objectives);
        ids.push_back(o.point.id);
        report.outcomes.push_back(std::move(o));
    }

    report.frontier = explore::paretoFrontier(objs, ids);
    for (const std::size_t idx : report.frontier)
        report.outcomes[idx].on_frontier = true;

    out = std::move(report);
    return true;
}

} // namespace fleet
} // namespace wlcache
