#include "fleet/fleet_spec.hh"

#include <cmath>
#include <sstream>

#include "fleet/fleet.hh"
#include "util/json.hh"
#include "workloads/workloads.hh"

namespace wlcache {
namespace fleet {

std::vector<std::string>
FleetSpec::workloadPattern() const
{
    std::vector<std::string> pattern;
    for (const MixEntry &e : mix)
        for (unsigned i = 0; i < e.weight; ++i)
            pattern.push_back(e.workload);
    return pattern;
}

namespace {

bool
failAt(std::string *err, const std::string &path,
       const std::string &what)
{
    if (err)
        *err = path + ": " + what;
    return false;
}

/** Integral JSON number >= @p min, or a diagnostic. */
bool
wantCount(const util::JsonValue &v, const std::string &path,
          double min, std::uint64_t &out, std::string *err)
{
    if (!v.isNumber())
        return failAt(err, path, "wants a number");
    const double d = v.asDouble();
    if (d != std::floor(d) || d < min)
        return failAt(err, path,
                      "wants an integer >= " +
                          std::to_string(static_cast<long long>(min)));
    out = v.asU64();
    return true;
}

} // anonymous namespace

bool
parseFleetSpec(const std::string &json_text, FleetSpec &out,
               std::string *err)
{
    util::JsonValue root;
    if (!util::parseJson(json_text, root, err))
        return false;
    if (!root.isObject())
        return failAt(err, "$", "fleet spec must be a JSON object");

    FleetSpec spec;
    bool saw_nodes = false, saw_sweep = false;

    for (const auto &[key, value] : root.members()) {
        const std::string path = "$." + key;
        if (key == "name") {
            if (!value.isString() || value.asString().empty())
                return failAt(err, path,
                              "wants a non-empty string");
            spec.name = value.asString();
        } else if (key == "nodes") {
            std::uint64_t n = 0;
            if (!wantCount(value, path, 1.0, n, err))
                return false;
            if (n > 4096)
                return failAt(err, path,
                              "wants at most 4096 nodes");
            spec.nodes = static_cast<unsigned>(n);
            saw_nodes = true;
        } else if (key == "jitter") {
            if (!value.isNumber())
                return failAt(err, path, "wants a number");
            const double j = value.asDouble();
            if (j < 0.0 || j > 2.0)
                return failAt(err, path,
                              "jitter must be in [0, 2]");
            spec.jitter = j;
        } else if (key == "deadline_cycles") {
            if (!wantCount(value, path, 0.0, spec.deadline_cycles,
                           err))
                return false;
        } else if (key == "mix") {
            if (!value.isArray() || value.items().empty())
                return failAt(err, path,
                              "wants a non-empty array");
            std::size_t i = 0;
            for (const util::JsonValue &e : value.items()) {
                const std::string epath =
                    path + "[" + std::to_string(i++) + "]";
                if (!e.isObject())
                    return failAt(err, epath,
                                  "wants {\"workload\", \"weight\"}");
                MixEntry entry;
                for (const auto &[ek, ev] : e.members()) {
                    if (ek == "workload") {
                        if (!ev.isString() ||
                            !workloads::findWorkload(ev.asString()))
                            return failAt(
                                err, epath + ".workload",
                                "unknown workload" +
                                    (ev.isString()
                                         ? " '" + ev.asString() + "'"
                                         : std::string()));
                        entry.workload = ev.asString();
                    } else if (ek == "weight") {
                        std::uint64_t w = 0;
                        if (!wantCount(ev, epath + ".weight", 1.0, w,
                                       err))
                            return false;
                        if (w > 1024)
                            return failAt(err, epath + ".weight",
                                          "wants at most 1024");
                        entry.weight = static_cast<unsigned>(w);
                    } else {
                        return failAt(err, epath + "." + ek,
                                      "unknown key");
                    }
                }
                if (entry.workload.empty())
                    return failAt(err, epath,
                                  "missing \"workload\"");
                spec.mix.push_back(std::move(entry));
            }
        } else if (key == "objectives") {
            if (!value.isArray())
                return failAt(err, path,
                              "wants an array of names");
            std::size_t i = 0;
            for (const util::JsonValue &o : value.items()) {
                const std::string opath =
                    path + "[" + std::to_string(i++) + "]";
                if (!o.isString() ||
                    !findFleetObjective(o.asString()))
                    return failAt(
                        err, opath,
                        "unknown fleet objective" +
                            (o.isString()
                                 ? " '" + o.asString() + "'"
                                 : std::string()) +
                            " (valid: " + fleetObjectiveNameList() +
                            ")");
                spec.objectives.push_back(o.asString());
            }
        } else if (key == "sweep") {
            if (!value.isObject())
                return failAt(err, path,
                              "wants a sweep-spec object");
            // Reuse the sweep parser verbatim so fleet documents get
            // exactly the sweep registry's validation and defaults.
            std::ostringstream sub;
            util::writeJsonCompact(sub, value);
            std::string suberr;
            if (!explore::parseSweepSpec(sub.str(), spec.sweep,
                                         &suberr))
                return failAt(err, path, suberr);
            saw_sweep = true;
        } else {
            return failAt(err, path, "unknown key");
        }
    }

    if (!saw_nodes)
        return failAt(err, "$", "missing \"nodes\"");
    if (!saw_sweep)
        return failAt(err, "$", "missing \"sweep\"");

    out = std::move(spec);
    return true;
}

} // namespace fleet
} // namespace wlcache
