#include "fleet/report.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "sim/csv.hh"
#include "util/table.hh"

namespace wlcache {
namespace fleet {

namespace {

/** Deterministic short-form double ("%.9g"). */
std::string
fmtObjective(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** Union of bound parameter names, first-appearance order. */
std::vector<std::string>
paramColumns(const FleetReport &report)
{
    std::vector<std::string> cols;
    for (const auto &o : report.outcomes)
        for (const auto &[name, value] : o.point.params) {
            (void)value;
            if (std::find(cols.begin(), cols.end(), name) ==
                cols.end())
                cols.push_back(name);
        }
    return cols;
}

/** Last binding of @p name, or null. */
const explore::ParamValue *
findBinding(const explore::DesignPoint &p, const std::string &name)
{
    for (auto it = p.params.rbegin(); it != p.params.rend(); ++it)
        if (it->first == name)
            return &it->second;
    return nullptr;
}

std::string
pointLabel(const FleetPointOutcome &o)
{
    return o.point.id.empty() ? "base" : o.point.id;
}

} // anonymous namespace

void
writeFleetCsv(std::ostream &os, const FleetReport &report)
{
    CsvWriter csv(os);
    const auto cols = paramColumns(report);

    std::vector<std::string> header{ "id" };
    for (const auto &c : cols)
        header.push_back(c);
    for (const auto &name : report.objective_names)
        header.push_back(name);
    header.push_back("frontier");
    header.push_back("completed_nodes");
    header.push_back("total_instructions");
    header.push_back("total_nvm_writes");
    header.push_back("total_outages");
    csv.row(header);

    for (const auto &o : report.outcomes) {
        std::vector<std::string> row{ o.point.id };
        for (const auto &c : cols) {
            const explore::ParamValue *v = findBinding(o.point, c);
            row.push_back(v ? v->display() : "-");
        }
        for (const double obj : o.objectives)
            row.push_back(fmtObjective(obj));
        row.push_back(o.on_frontier ? "1" : "0");
        row.push_back(std::to_string(o.completed_nodes));
        row.push_back(std::to_string(o.total_instructions));
        row.push_back(std::to_string(o.total_nvm_writes));
        row.push_back(std::to_string(o.total_outages));
        csv.row(row);
    }
}

void
writeFleetMarkdown(std::ostream &os, const FleetReport &report)
{
    os << "# Fleet report: " << report.name << "\n\n";
    os << "- fleet: " << report.nodes << " node"
       << (report.nodes == 1 ? "" : "s")
       << ", power jitter " << fmtObjective(report.jitter)
       << " (shared environment envelope, node-seeded gain)\n";
    os << "- points: " << report.outcomes.size() << " evaluated, "
       << report.frontier.size() << " on the frontier\n";
    os << "- objectives (all minimized):";
    for (const auto &name : report.objective_names)
        os << " " << name;
    os << "\n\n";

    os << "| # | point |";
    for (const auto &name : report.objective_names)
        os << " " << name << " |";
    os << " completed |\n";
    os << "|---|-------|";
    for (std::size_t i = 0; i < report.objective_names.size(); ++i)
        os << "---|";
    os << "---|\n";

    std::size_t n = 0;
    for (const std::size_t idx : report.frontier) {
        const FleetPointOutcome &o = report.outcomes[idx];
        os << "| " << ++n << " | `" << pointLabel(o) << "` |";
        for (const double obj : o.objectives)
            os << " " << fmtObjective(obj) << " |";
        os << " " << o.completed_nodes << "/" << o.nodes.size()
           << " |\n";
    }

    if (!report.frontier.empty()) {
        const FleetPointOutcome &w =
            report.outcomes[report.frontier.front()];
        os << "\n## Per-node breakdown: `" << pointLabel(w)
           << "`\n\n";
        os << "| node | workload | progress (insn/s) | outages | "
              "nvm writes | completed |\n";
        os << "|------|----------|-------------------|---------|"
              "------------|-----------|\n";
        for (const NodeResult &nr : w.nodes) {
            os << "| " << nr.node << " | " << nr.workload << " | "
               << fmtObjective(nodeProgressRate(nr.result)) << " | "
               << nr.result.outages << " | " << nr.result.nvm_writes
               << " | " << (nr.result.completed ? "yes" : "no")
               << " |\n";
        }
    }

    os << "\nEvery per-node run is an ordinary content-addressed "
          "single-node experiment (spec lines `power_node`/"
          "`power_jitter` select the derived trace), so re-running "
          "the same fleet spec against the same cache executes "
          "nothing.\n";
}

void
writeFleetSummaryText(std::ostream &os, const FleetReport &report)
{
    os << "=== " << report.name << ": " << report.nodes
       << " nodes x " << report.outcomes.size() << " points, "
       << report.frontier.size() << " on the frontier ===\n";
    util::TextTable t;
    std::vector<std::string> header{ "#", "point" };
    for (const auto &name : report.objective_names)
        header.push_back(name);
    header.push_back("completed");
    t.header(header);
    std::size_t n = 0;
    for (const std::size_t idx : report.frontier) {
        const FleetPointOutcome &o = report.outcomes[idx];
        std::vector<std::string> row{ std::to_string(++n),
                                      pointLabel(o) };
        for (const double v : o.objectives)
            row.push_back(fmtObjective(v));
        row.push_back(std::to_string(o.completed_nodes) + "/" +
                      std::to_string(o.nodes.size()));
        t.row(row);
    }
    t.print(os);
    os << "runs: " << report.total_runs << " total, "
       << report.cache_hits << " cached, " << report.executed
       << " executed\n";
}

} // namespace fleet
} // namespace wlcache
