/**
 * @file
 * Small string formatting helpers shared across the simulator,
 * benchmarks, and examples.
 */

#ifndef WLCACHE_UTIL_STRINGS_HH
#define WLCACHE_UTIL_STRINGS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace wlcache {
namespace util {

/** Left-pad @p s with spaces to at least @p width characters. */
std::string padLeft(const std::string &s, std::size_t width);

/** Right-pad @p s with spaces to at least @p width characters. */
std::string padRight(const std::string &s, std::size_t width);

/** Format a double with @p precision digits after the decimal point. */
std::string fmtDouble(double v, int precision = 2);

/**
 * Format a byte count with a binary-unit suffix (B, KiB, MiB).
 * Values that are exact multiples render without a fraction,
 * e.g.\ 8192 -> "8KiB".
 */
std::string fmtBytes(std::uint64_t bytes);

/**
 * Format an energy value given in joules using an SI prefix
 * (J, mJ, uJ, nJ, pJ).
 */
std::string fmtEnergy(double joules);

/**
 * Format a duration given in seconds using an SI prefix
 * (s, ms, us, ns).
 */
std::string fmtSeconds(double seconds);

/** Split @p s on the single-character delimiter @p delim. */
std::vector<std::string> split(const std::string &s, char delim);

/**
 * 128-bit FNV-1a digest of @p bytes as 32 lowercase hex digits (two
 * independent 64-bit streams with distinct offset bases). Used for
 * content-addressed cache keys and persistent-state digests, where
 * accidental collisions must be negligible but cryptographic
 * strength is not required.
 */
std::string fnv1a128Hex(const void *data, std::size_t bytes);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Lower-case an ASCII string. */
std::string toLower(std::string s);

} // namespace util
} // namespace wlcache

#endif // WLCACHE_UTIL_STRINGS_HH
