#include "util/fs.hh"

#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace wlcache {
namespace util {

namespace fs = std::filesystem;

FileLock &
FileLock::operator=(FileLock &&other) noexcept
{
    if (this != &other) {
        unlock();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

bool
FileLock::open(const std::string &path)
{
    unlock();
    const fs::path dir = fs::path(path).parent_path();
    if (!dir.empty()) {
        std::error_code ec;
        fs::create_directories(dir, ec);
    }
    int fd;
    do {
        fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0666);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0)
        return false;
    fd_ = fd;
    return true;
}

bool
FileLock::lockExclusive(const std::string &path)
{
    if (!open(path))
        return false;
    int rc;
    do {
        rc = ::flock(fd_, LOCK_EX);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
        unlock();
        return false;
    }
    return true;
}

bool
FileLock::tryLockExclusive(const std::string &path)
{
    if (!open(path))
        return false;
    int rc;
    do {
        rc = ::flock(fd_, LOCK_EX | LOCK_NB);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
        unlock();
        return false;
    }
    return true;
}

void
FileLock::unlock()
{
    if (fd_ >= 0) {
        // close() drops the flock.
        ::close(fd_);
        fd_ = -1;
    }
}

bool
readFileBytes(const std::string &path, std::vector<std::uint8_t> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    return in.good() || in.eof();
}

bool
readFileText(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
writeFileAtomic(const std::string &dir, const std::string &final_path,
                const void *data, std::size_t size, std::string *err)
{
    auto fail = [&](const std::string &what) {
        if (err)
            *err = what;
        return false;
    };

    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        return fail("cannot create '" + dir + "': " + ec.message());

    // Pid makes the temp unique across processes, the sequence
    // number across threads within this process.
    static std::atomic<std::uint64_t> seq{0};
    std::ostringstream tmp_name;
    tmp_name << fs::path(final_path).filename().string() << ".tmp."
             << ::getpid() << "." << seq.fetch_add(1);
    const fs::path tmp = fs::path(dir) / tmp_name.str();
    {
        std::ofstream outf(tmp, std::ios::binary);
        if (!outf)
            return fail("cannot write '" + tmp.string() + "'");
        if (size)
            outf.write(static_cast<const char *>(data),
                       static_cast<std::streamsize>(size));
        outf.flush();
        if (!outf) {
            fs::remove(tmp, ec);
            return fail("short write to '" + tmp.string() + "'");
        }
    }
    fs::rename(tmp, final_path, ec);
    if (ec) {
        std::error_code ec2;
        fs::remove(tmp, ec2);
        return fail("rename into '" + final_path +
                    "' failed: " + ec.message());
    }
    return true;
}

bool
writeFileAtomic(const std::string &dir, const std::string &final_path,
                const std::string &data, std::string *err)
{
    return writeFileAtomic(dir, final_path, data.data(), data.size(),
                           err);
}

bool
writeFileAtomic(const std::string &dir, const std::string &final_path,
                const std::vector<std::uint8_t> &data, std::string *err)
{
    return writeFileAtomic(dir, final_path, data.data(), data.size(),
                           err);
}

} // namespace util
} // namespace wlcache

