#include "util/stat_math.hh"

#include <cassert>
#include <cmath>

namespace wlcache {
namespace util {

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

unsigned
floorLog2(std::uint64_t v)
{
    assert(v != 0);
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    assert(isPowerOfTwo(align));
    return v & ~(align - 1);
}

std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    assert(isPowerOfTwo(align));
    return (v + align - 1) & ~(align - 1);
}

} // namespace util
} // namespace wlcache
