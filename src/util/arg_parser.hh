/**
 * @file
 * Tiny command-line argument parser for the tools and examples:
 * GNU-style `--flag`, `--key value`, and `--key=value` options with
 * typed accessors, defaults, and generated usage text. No external
 * dependencies, deliberately minimal.
 */

#ifndef WLCACHE_UTIL_ARG_PARSER_HH
#define WLCACHE_UTIL_ARG_PARSER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wlcache {
namespace util {

/** Declarative option list + parsed values. */
class ArgParser
{
  public:
    /**
     * @param program Program name for the usage text.
     * @param summary One-line description.
     */
    ArgParser(std::string program, std::string summary);

    /** Declare an option taking a value, with a default. */
    ArgParser &option(const std::string &name,
                      const std::string &default_value,
                      const std::string &help);

    /** Declare a boolean flag (default false). */
    ArgParser &flag(const std::string &name, const std::string &help);

    /**
     * Declare a list-valued option: every occurrence appends, and a
     * value may itself carry a comma-separated list, so
     * `--objective time --objective nvm,energy` collects
     * {time, nvm, energy}. Scalar options silently keep the last
     * occurrence; list options exist for the flags where all
     * occurrences matter.
     */
    ArgParser &listOption(const std::string &name,
                          const std::string &help);

    /**
     * Parse argv. Returns false (after printing usage or an error)
     * when the caller should exit; `--help` is handled here.
     */
    bool parse(int argc, char **argv);

    // --- Typed accessors (fatal() on unknown names) ---
    std::string get(const std::string &name) const;
    long getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;
    /** Collected values of a list option (empty when never given). */
    const std::vector<std::string> &
    getList(const std::string &name) const;

    /** Positional arguments left after option parsing. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Render the usage text. */
    std::string usage() const;

  private:
    struct Option
    {
        std::string name;
        std::string value;
        std::string help;
        bool is_flag;
        bool is_list = false;
        std::vector<std::string> values;  //!< List-option payload.
    };

    Option *find(const std::string &name);
    const Option *find(const std::string &name) const;

    std::string program_;
    std::string summary_;
    std::vector<Option> options_;
    std::vector<std::string> positional_;
};

} // namespace util
} // namespace wlcache

#endif // WLCACHE_UTIL_ARG_PARSER_HH
