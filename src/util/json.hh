/**
 * @file
 * Minimal JSON reader for the tooling side of the simulator (result
 * cache, manifests, regression scripts). Parses the subset of JSON
 * that run_json and the runner emit — objects, arrays, strings,
 * numbers, booleans, null — into an owning tree. Numbers keep their
 * source text so 64-bit counters round-trip exactly; no external
 * dependencies, deliberately small.
 */

#ifndef WLCACHE_UTIL_JSON_HH
#define WLCACHE_UTIL_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace wlcache {
namespace util {

/** One parsed JSON value (tree node). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Boolean payload (asserts isBool()). */
    bool asBool() const;
    /** Number as double (asserts isNumber()). */
    double asDouble() const;
    /**
     * Number as an unsigned 64-bit integer, parsed from the source
     * token so values above 2^53 survive (asserts isNumber()).
     */
    std::uint64_t asU64() const;
    /** Raw number source token (asserts isNumber()). */
    const std::string &numberToken() const;
    /** String payload (asserts isString()). */
    const std::string &asString() const;

    /** Array elements (asserts isArray()). */
    const std::vector<JsonValue> &items() const;
    /** Object members in source order (asserts isObject()). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

    /** Member lookup; null when absent or not an object. */
    const JsonValue *get(const std::string &key) const;

    // --- Construction (used by the parser) ---
    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(std::string token);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue
    makeObject(std::vector<std::pair<std::string, JsonValue>> members);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    /** Number token text, or string payload. */
    std::string scalar_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parse @p text as one JSON document.
 *
 * @param text Full document (trailing whitespace allowed).
 * @param out Receives the root value on success.
 * @param err Optional; receives a one-line diagnostic on failure.
 * @return true on success; false leaves @p out untouched.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *err = nullptr);

/**
 * Serialize @p v compactly (no whitespace). Object member order and
 * number source tokens are preserved, so parse -> write round-trips a
 * compactly-written document byte-for-byte — which lets run_json
 * re-embed nested documents (e.g. the stats tree) without loss.
 */
void writeJsonCompact(std::ostream &os, const JsonValue &v);

} // namespace util
} // namespace wlcache

#endif // WLCACHE_UTIL_JSON_HH
