#include "util/arg_parser.hh"

#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"
#include "util/strings.hh"

namespace wlcache {
namespace util {

ArgParser::ArgParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary))
{
}

ArgParser &
ArgParser::option(const std::string &name,
                  const std::string &default_value,
                  const std::string &help)
{
    wlc_assert(find(name) == nullptr, "duplicate option --%s",
               name.c_str());
    options_.push_back({ name, default_value, help, false });
    return *this;
}

ArgParser &
ArgParser::flag(const std::string &name, const std::string &help)
{
    wlc_assert(find(name) == nullptr, "duplicate flag --%s",
               name.c_str());
    options_.push_back({ name, "0", help, true });
    return *this;
}

ArgParser &
ArgParser::listOption(const std::string &name, const std::string &help)
{
    wlc_assert(find(name) == nullptr, "duplicate option --%s",
               name.c_str());
    Option opt{ name, "", help, false };
    opt.is_list = true;
    options_.push_back(std::move(opt));
    return *this;
}

ArgParser::Option *
ArgParser::find(const std::string &name)
{
    for (auto &o : options_)
        if (o.name == name)
            return &o;
    return nullptr;
}

const ArgParser::Option *
ArgParser::find(const std::string &name) const
{
    return const_cast<ArgParser *>(this)->find(name);
}

bool
ArgParser::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            return false;
        }
        if (!startsWith(arg, "--")) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        std::string value;
        bool has_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_value = true;
        }
        Option *opt = find(arg);
        if (!opt) {
            std::fprintf(stderr, "%s: unknown option --%s\n%s",
                         program_.c_str(), arg.c_str(),
                         usage().c_str());
            return false;
        }
        if (opt->is_flag) {
            if (has_value) {
                std::fprintf(stderr,
                             "%s: flag --%s takes no value\n",
                             program_.c_str(), arg.c_str());
                return false;
            }
            opt->value = "1";
            continue;
        }
        if (!has_value) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: option --%s needs a value\n",
                             program_.c_str(), arg.c_str());
                return false;
            }
            value = argv[++i];
        }
        if (opt->is_list) {
            for (const auto &item : split(value, ','))
                if (!item.empty())
                    opt->values.push_back(item);
        } else {
            opt->value = value;
        }
    }
    return true;
}

std::string
ArgParser::get(const std::string &name) const
{
    const Option *opt = find(name);
    if (!opt)
        fatal("unknown option '%s'", name.c_str());
    return opt->value;
}

long
ArgParser::getInt(const std::string &name) const
{
    return std::strtol(get(name).c_str(), nullptr, 0);
}

double
ArgParser::getDouble(const std::string &name) const
{
    return std::strtod(get(name).c_str(), nullptr);
}

bool
ArgParser::getFlag(const std::string &name) const
{
    return get(name) == "1";
}

const std::vector<std::string> &
ArgParser::getList(const std::string &name) const
{
    const Option *opt = find(name);
    if (!opt)
        fatal("unknown option '%s'", name.c_str());
    if (!opt->is_list)
        fatal("option '%s' is not a list option", name.c_str());
    return opt->values;
}

std::string
ArgParser::usage() const
{
    std::string out = program_ + " - " + summary_ + "\n\noptions:\n";
    for (const auto &o : options_) {
        std::string left = "  --" + o.name;
        if (!o.is_flag)
            left += " <v>";
        out += padRight(left, 28) + o.help;
        if (o.is_list)
            out += " (repeatable)";
        else if (!o.is_flag && !o.value.empty())
            out += " (default: " + o.value + ")";
        out += "\n";
    }
    return out;
}

} // namespace util
} // namespace wlcache
