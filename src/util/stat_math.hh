/**
 * @file
 * Numeric helpers: geometric mean, power-of-two math, alignment.
 */

#ifndef WLCACHE_UTIL_STAT_MATH_HH
#define WLCACHE_UTIL_STAT_MATH_HH

#include <cstdint>
#include <vector>

namespace wlcache {
namespace util {

/**
 * Geometric mean of a vector of positive values.
 * @return 0.0 for an empty vector or any non-positive entry.
 */
double geoMean(const std::vector<double> &values);

/** Arithmetic mean; 0.0 for an empty vector. */
double mean(const std::vector<double> &values);

/** True iff @p v is a power of two (0 is not). */
bool isPowerOfTwo(std::uint64_t v);

/** floor(log2(v)); @p v must be non-zero. */
unsigned floorLog2(std::uint64_t v);

/** Round @p v down to a multiple of the power-of-two @p align. */
std::uint64_t alignDown(std::uint64_t v, std::uint64_t align);

/** Round @p v up to a multiple of the power-of-two @p align. */
std::uint64_t alignUp(std::uint64_t v, std::uint64_t align);

} // namespace util
} // namespace wlcache

#endif // WLCACHE_UTIL_STAT_MATH_HH
