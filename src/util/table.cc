#include "util/table.hh"

#include <algorithm>

#include "util/strings.hh"

namespace wlcache {
namespace util {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
    rows_.clear();
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::rowDoubles(const std::string &label,
                      const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(fmtDouble(v, precision));
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    // Compute per-column widths across header and all rows.
    std::vector<std::size_t> widths;
    auto account = [&widths](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    account(header_);
    for (const auto &r : rows_)
        account(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << "  ";
            // Left-align the first column (labels), right-align data.
            os << (i == 0 ? padRight(cells[i], widths[i])
                          : padLeft(cells[i], widths[i]));
        }
        os << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
}

} // namespace util
} // namespace wlcache
