#include "util/strings.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace wlcache {
namespace util {

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return std::string(buf);
}

std::string
fmtBytes(std::uint64_t bytes)
{
    static const char *suffixes[] = { "B", "KiB", "MiB", "GiB" };
    int idx = 0;
    std::uint64_t v = bytes;
    while (v >= 1024 && v % 1024 == 0 && idx < 3) {
        v /= 1024;
        ++idx;
    }
    if (v >= 1024 && idx < 3) {
        // Not an exact multiple: fall back to one decimal place.
        double dv = static_cast<double>(v);
        while (dv >= 1024.0 && idx < 3) {
            dv /= 1024.0;
            ++idx;
        }
        return fmtDouble(dv, 1) + suffixes[idx];
    }
    return std::to_string(v) + suffixes[idx];
}

namespace {

std::string
fmtWithPrefix(double value, const char *const *prefixes, int count,
              double step)
{
    double v = std::fabs(value);
    int idx = 0;
    while (idx + 1 < count && v < 1.0 && v > 0.0) {
        v *= step;
        value *= step;
        ++idx;
    }
    return fmtDouble(value, 3) + prefixes[idx];
}

} // anonymous namespace

std::string
fmtEnergy(double joules)
{
    static const char *prefixes[] = { "J", "mJ", "uJ", "nJ", "pJ" };
    return fmtWithPrefix(joules, prefixes, 5, 1000.0);
}

std::string
fmtSeconds(double seconds)
{
    static const char *prefixes[] = { "s", "ms", "us", "ns" };
    return fmtWithPrefix(seconds, prefixes, 4, 1000.0);
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, delim))
        out.push_back(item);
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
        s.compare(0, prefix.size(), prefix) == 0;
}

std::string
toLower(std::string s)
{
    for (auto &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

std::string
fnv1a128Hex(const void *data, std::size_t bytes)
{
    constexpr std::uint64_t kPrime = 0x100000001b3ull;
    std::uint64_t h0 = 0xcbf29ce484222325ull;
    std::uint64_t h1 = 0x9ae16a3b2f90404full;
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
        h0 = (h0 ^ p[i]) * kPrime;
        h1 = (h1 ^ (p[i] + 0x5bu)) * kPrime;
    }
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(h0),
                  static_cast<unsigned long long>(h1));
    return buf;
}

} // namespace util
} // namespace wlcache
