#include "util/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "sim/logging.hh"

namespace wlcache {
namespace util {

bool
JsonValue::asBool() const
{
    wlc_assert(isBool());
    return bool_;
}

double
JsonValue::asDouble() const
{
    wlc_assert(isNumber());
    return std::strtod(scalar_.c_str(), nullptr);
}

std::uint64_t
JsonValue::asU64() const
{
    wlc_assert(isNumber());
    // Integral tokens parse exactly; scientific/fractional tokens
    // fall back to the double value.
    if (scalar_.find_first_of(".eE") == std::string::npos &&
        !scalar_.empty() && scalar_[0] != '-')
        return std::strtoull(scalar_.c_str(), nullptr, 10);
    return static_cast<std::uint64_t>(asDouble());
}

const std::string &
JsonValue::numberToken() const
{
    wlc_assert(isNumber());
    return scalar_;
}

const std::string &
JsonValue::asString() const
{
    wlc_assert(isString());
    return scalar_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    wlc_assert(isArray());
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    wlc_assert(isObject());
    return members_;
}

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (!isObject())
        return nullptr;
    for (const auto &[k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue{};
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(std::string token)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.scalar_ = std::move(token);
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.scalar_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.items_ = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(
    std::vector<std::pair<std::string, JsonValue>> members)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.members_ = std::move(members);
    return v;
}

namespace {

/** Recursive-descent parser over the document text. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {}

    bool
    parseDocument(JsonValue &out)
    {
        skipWs();
        JsonValue v;
        if (!parseValue(v, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        out = std::move(v);
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const std::string &what)
    {
        if (err_)
            *err_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        const char c = text_[pos_];
        switch (c) {
          case '{': return parseObject(out, depth);
          case '[': return parseArray(out, depth);
          case '"': return parseString(out);
          case 't':
            if (!literal("true"))
                return fail("bad literal");
            out = JsonValue::makeBool(true);
            return true;
          case 'f':
            if (!literal("false"))
                return fail("bad literal");
            out = JsonValue::makeBool(false);
            return true;
          case 'n':
            if (!literal("null"))
                return fail("bad literal");
            out = JsonValue::makeNull();
            return true;
          default:
            return parseNumber(out);
        }
    }

    bool
    parseString(JsonValue &out)
    {
        std::string s;
        if (!parseRawString(s))
            return false;
        out = JsonValue::makeString(std::move(s));
        return true;
    }

    bool
    parseRawString(std::string &s)
    {
        wlc_assert(text_[pos_] == '"');
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                s += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': s += '"'; break;
              case '\\': s += '\\'; break;
              case '/': s += '/'; break;
              case 'b': s += '\b'; break;
              case 'f': s += '\f'; break;
              case 'n': s += '\n'; break;
              case 'r': s += '\r'; break;
              case 't': s += '\t'; break;
              case 'u': {
                // ASCII-only escapes are enough for our writers.
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                if (code > 0x7f)
                    return fail("non-ASCII \\u escape unsupported");
                s += static_cast<char>(code);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        // Integer part: one digit, or a nonzero digit followed by
        // more — JSON forbids leading zeros ("0123") and a bare
        // fraction (".5").
        const std::size_t int_start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ == int_start)
            return fail("malformed number");
        if (text_[int_start] == '0' && pos_ - int_start > 1)
            return fail("leading zero in number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            bool frac_digits = false;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                frac_digits = true;
            }
            // "1." is not a JSON number either.
            if (!frac_digits)
                return fail("malformed fraction");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            bool exp_digits = false;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                exp_digits = true;
            }
            if (!exp_digits)
                return fail("malformed exponent");
        }
        out = JsonValue::makeNumber(text_.substr(start, pos_ - start));
        return true;
    }

    bool
    parseArray(JsonValue &out, int depth)
    {
        ++pos_; // '['
        std::vector<JsonValue> items;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            out = JsonValue::makeArray(std::move(items));
            return true;
        }
        for (;;) {
            skipWs();
            JsonValue v;
            if (!parseValue(v, depth + 1))
                return false;
            items.push_back(std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            const char c = text_[pos_++];
            if (c == ']')
                break;
            if (c != ',')
                return fail("expected ',' or ']'");
        }
        out = JsonValue::makeArray(std::move(items));
        return true;
    }

    bool
    parseObject(JsonValue &out, int depth)
    {
        ++pos_; // '{'
        std::vector<std::pair<std::string, JsonValue>> members;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            out = JsonValue::makeObject(std::move(members));
            return true;
        }
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected member name");
            std::string key;
            if (!parseRawString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_++] != ':')
                return fail("expected ':'");
            skipWs();
            JsonValue v;
            if (!parseValue(v, depth + 1))
                return false;
            members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            const char c = text_[pos_++];
            if (c == '}')
                break;
            if (c != ',')
                return fail("expected ',' or '}'");
        }
        out = JsonValue::makeObject(std::move(members));
        return true;
    }

    const std::string &text_;
    std::string *err_;
    std::size_t pos_ = 0;
};

} // anonymous namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string *err)
{
    Parser p(text, err);
    return p.parseDocument(out);
}

namespace {

void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"':  os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // anonymous namespace

void
writeJsonCompact(std::ostream &os, const JsonValue &v)
{
    switch (v.kind()) {
      case JsonValue::Kind::Null:
        os << "null";
        break;
      case JsonValue::Kind::Bool:
        os << (v.asBool() ? "true" : "false");
        break;
      case JsonValue::Kind::Number:
        // The source token verbatim: integers above 2^53 and exact
        // decimal representations survive the round-trip.
        os << v.numberToken();
        break;
      case JsonValue::Kind::String:
        writeEscaped(os, v.asString());
        break;
      case JsonValue::Kind::Array: {
        os << '[';
        bool first = true;
        for (const JsonValue &item : v.items()) {
            if (!first)
                os << ',';
            first = false;
            writeJsonCompact(os, item);
        }
        os << ']';
        break;
      }
      case JsonValue::Kind::Object: {
        os << '{';
        bool first = true;
        for (const auto &[key, member] : v.members()) {
            if (!first)
                os << ',';
            first = false;
            writeEscaped(os, key);
            os << ':';
            writeJsonCompact(os, member);
        }
        os << '}';
        break;
      }
    }
}

} // namespace util
} // namespace wlcache
