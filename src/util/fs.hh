/**
 * @file
 * Filesystem helpers shared by every component that publishes
 * artifacts into a directory other processes may be reading or
 * writing concurrently (result cache, snapshot store, run manifests,
 * daemon state files).
 *
 * Two primitives cover all of them:
 *
 *  - FileLock: an RAII advisory lock (flock(2)) on a sentinel file.
 *    Writers serialize on it; readers never take it — the atomic
 *    publish below guarantees a reader only ever observes complete
 *    files, so the read path stays lock-free.
 *
 *  - writeFileAtomic: write to `<name>.tmp.<pid>.<seq>` in the target
 *    directory, then rename(2) into place.  The temp name is unique
 *    across *processes* (pid) and across threads within a process
 *    (a process-wide atomic sequence), so concurrent writers of the
 *    same entry cannot collide; the loser's rename simply replaces
 *    the winner's identical content.
 */

#ifndef WLCACHE_UTIL_FS_HH
#define WLCACHE_UTIL_FS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace wlcache {
namespace util {

/**
 * RAII advisory file lock.  Opens (creating if needed) `path` and
 * holds a flock(2) lock on it until destruction.  Advisory: only
 * cooperating FileLock users are excluded, which is exactly the
 * artifact-store contract — readers do not lock.
 */
class FileLock
{
  public:
    FileLock() = default;
    ~FileLock() { unlock(); }

    FileLock(FileLock &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    FileLock &operator=(FileLock &&other) noexcept;

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

    /** Block until the exclusive lock on `path` is held. */
    bool lockExclusive(const std::string &path);

    /**
     * Try to take the exclusive lock without blocking.  Returns
     * false (without holding anything) if another holder exists.
     */
    bool tryLockExclusive(const std::string &path);

    /** Release early; harmless if not held. */
    void unlock();

    bool held() const { return fd_ >= 0; }

  private:
    bool open(const std::string &path);

    int fd_ = -1;
};

/** Slurp a file; false if it cannot be opened or read. */
bool readFileBytes(const std::string &path,
                   std::vector<std::uint8_t> &out);
bool readFileText(const std::string &path, std::string &out);

/**
 * Atomically publish `data` as `final_path` (which must live inside
 * `dir`; the rename is same-filesystem by construction).  Creates
 * `dir` if needed.  On failure the temp file is removed, a warning
 * (or `*err`) describes why, and `final_path` is untouched.
 */
bool writeFileAtomic(const std::string &dir,
                     const std::string &final_path,
                     const void *data, std::size_t size,
                     std::string *err = nullptr);
bool writeFileAtomic(const std::string &dir,
                     const std::string &final_path,
                     const std::string &data,
                     std::string *err = nullptr);
bool writeFileAtomic(const std::string &dir,
                     const std::string &final_path,
                     const std::vector<std::uint8_t> &data,
                     std::string *err = nullptr);

} // namespace util
} // namespace wlcache

#endif // WLCACHE_UTIL_FS_HH
