/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to render
 * each paper table/figure as aligned rows on stdout.
 */

#ifndef WLCACHE_UTIL_TABLE_HH
#define WLCACHE_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace wlcache {
namespace util {

/**
 * Accumulates rows of string cells and prints them with per-column
 * alignment. The first added row is treated as the header.
 */
class TextTable
{
  public:
    /** Set the header row; clears any previous contents. */
    void header(std::vector<std::string> cells);

    /** Append a data row. Rows may differ in length. */
    void row(std::vector<std::string> cells);

    /** Convenience: append a row of doubles, formatted. */
    void rowDoubles(const std::string &label,
                    const std::vector<double> &values,
                    int precision = 3);

    /** Render the table to @p os with a separator under the header. */
    void print(std::ostream &os) const;

    /** Number of data rows (excluding the header). */
    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace util
} // namespace wlcache

#endif // WLCACHE_UTIL_TABLE_HH
