#include "serve/worker_pool.hh"

#include <sys/socket.h>
#include <sys/wait.h>

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>

#include "serve/frame.hh"
#include "serve/messages.hh"
#include "serve/net.hh"
#include "sim/logging.hh"

namespace wlcache {
namespace serve {

WorkerPool::WorkerPool(WorkerPoolConfig cfg, runner::JobQueue &queue)
    : cfg_(std::move(cfg)), queue_(queue), slots_(cfg_.workers)
{}

WorkerPool::~WorkerPool()
{
    join();
}

bool
WorkerPool::spawn(Slot &slot, std::string *err)
{
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) <
        0) {
        if (err)
            *err = std::string("socketpair: ") + std::strerror(errno);
        return false;
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        if (err)
            *err = std::string("fork: ") + std::strerror(errno);
        closeFd(sv[0]);
        closeFd(sv[1]);
        return false;
    }
    if (pid == 0) {
        // Child: only async-signal-safe calls until exec. dup2 onto
        // fd 3 also clears CLOEXEC for the worker's end.
        ::dup2(sv[1], 3);
        const char *argv[] = {
            cfg_.exe_path.c_str(),
            "--worker-fd", "3",
            "--cache-dir", cfg_.cache_dir.c_str(),
            "--snapshot-dir", cfg_.snapshot_dir.c_str(),
            nullptr,
        };
        ::execv(cfg_.exe_path.c_str(),
                const_cast<char *const *>(argv));
        _exit(127);
    }

    closeFd(sv[1]);
    slot.pid.store(pid, std::memory_order_release);
    slot.fd.store(sv[0], std::memory_order_release);
    return true;
}

void
WorkerPool::reap(Slot &slot)
{
    const int fd = slot.fd.exchange(-1);
    closeFd(fd);
    const pid_t pid = slot.pid.exchange(-1);
    if (pid > 0) {
        int status = 0;
        ::waitpid(pid, &status, 0);
    }
}

bool
WorkerPool::start(std::string *err)
{
    // Fork the whole fleet before any dispatcher thread exists, so
    // the initial forks happen from a quiescent (single-threaded
    // here) parent. Respawns later fork+exec immediately, which is
    // safe from a threaded process.
    for (Slot &slot : slots_)
        if (!spawn(slot, err))
            return false;
    for (Slot &slot : slots_)
        slot.dispatcher =
            std::thread([this, &slot] { dispatchLoop(slot); });
    return true;
}

void
WorkerPool::dispatchLoop(Slot &slot)
{
    runner::QueueJob job;
    while (queue_.steal(job)) {
        slot.busy.store(true, std::memory_order_release);

        bool delivered = false;
        while (!delivered) {
            const int fd = slot.fd.load(std::memory_order_acquire);
            if (fd < 0) {
                if (joining_.load() ||
                    slot.respawns >= cfg_.max_respawns) {
                    queue_.requeue(job.key, "no worker available");
                    // requeue either re-offers (another dispatcher
                    // picks it up) or fails the waiters; this slot
                    // is done either way.
                    slot.busy.store(false);
                    return;
                }
                ++slot.respawns;
                std::string err;
                if (!spawn(slot, &err)) {
                    warn("worker respawn failed: %s", err.c_str());
                    continue;
                }
            }

            const std::string req = JObj()
                .str("type", "job")
                .str("key", job.key)
                .str("id", job.id)
                .str("spec_text", job.spec_text)
                .num("max_events", job.max_events)
                .text();
            if (!sendAll(slot.fd.load(), encodeFrame(req))) {
                reap(slot);
                continue;
            }

            // Await this job's terminal reply.
            FrameReader reader;
            std::string payload;
            bool connection_dead = false;
            for (;;) {
                const FrameReader::Status st = reader.next(payload);
                if (st == FrameReader::Status::Error) {
                    warn("worker sent a bad frame: %s",
                         reader.error().c_str());
                    connection_dead = true;
                    break;
                }
                if (st == FrameReader::Status::NeedMore) {
                    std::string chunk;
                    const long n =
                        recvSome(slot.fd.load(), chunk);
                    if (n <= 0) {
                        connection_dead = true;
                        break;
                    }
                    reader.feed(chunk);
                    continue;
                }

                util::JsonValue msg;
                std::string perr;
                if (!util::parseJson(payload, msg, &perr)) {
                    warn("worker sent bad JSON: %s", perr.c_str());
                    connection_dead = true;
                    break;
                }
                const std::string type = messageType(msg);
                if (type == "done") {
                    runner::JobOutcome o;
                    o.ok = true;
                    const util::JsonValue *ex = msg.get("executed");
                    o.executed = ex && ex->isBool() && ex->asBool();
                    const util::JsonValue *res = msg.get("result");
                    if (res) {
                        std::ostringstream ss;
                        util::writeJsonCompact(ss, *res);
                        o.result_json = ss.str();
                    }
                    queue_.complete(job.key, std::move(o));
                    delivered = true;
                    break;
                }
                if (type == "cut") {
                    // Drain checkpointed the job; hand it back.
                    queue_.requeue(job.key, "cut by drain");
                    delivered = true;
                    break;
                }
                if (type == "error") {
                    runner::JobOutcome o;
                    const util::JsonValue *m = msg.get("message");
                    o.error = m && m->isString()
                        ? m->asString() : "worker error";
                    queue_.complete(job.key, std::move(o));
                    delivered = true;
                    break;
                }
                warn("worker sent unexpected '%s'", type.c_str());
            }

            if (connection_dead) {
                reap(slot);
                if (joining_.load()) {
                    queue_.requeue(job.key, "worker lost at drain");
                    slot.busy.store(false);
                    return;
                }
                queue_.requeue(job.key, "worker died");
                delivered = true; // Ownership returned to the queue.
            }
        }
        slot.busy.store(false, std::memory_order_release);
    }

    // Queue drained: release the worker.
    const int fd = slot.fd.load(std::memory_order_acquire);
    if (fd >= 0)
        sendAll(fd, encodeFrame(JObj().str("type", "exit").text()));
    reap(slot);
}

void
WorkerPool::requestCut()
{
    joining_.store(true);
    for (Slot &slot : slots_) {
        if (!slot.busy.load(std::memory_order_acquire))
            continue;
        const pid_t pid = slot.pid.load(std::memory_order_acquire);
        if (pid > 0)
            ::kill(pid, SIGUSR1);
    }
}

void
WorkerPool::join()
{
    joining_.store(true);
    for (Slot &slot : slots_) {
        if (slot.dispatcher.joinable())
            slot.dispatcher.join();
        reap(slot);
    }
}

std::size_t
WorkerPool::workersAlive() const
{
    std::size_t n = 0;
    for (const Slot &slot : slots_)
        n += slot.pid.load(std::memory_order_acquire) > 0;
    return n;
}

std::size_t
WorkerPool::workersBusy() const
{
    std::size_t n = 0;
    for (const Slot &slot : slots_)
        n += slot.busy.load(std::memory_order_acquire);
    return n;
}

} // namespace serve
} // namespace wlcache
