#include "serve/client.hh"

#include <sstream>
#include <utility>

#include "runner/spec_key.hh"
#include "serve/messages.hh"
#include "serve/net.hh"

namespace wlcache {
namespace serve {

namespace {

std::string
getStr(const util::JsonValue &msg, const std::string &key,
       const std::string &dflt = "")
{
    const util::JsonValue *v = msg.get(key);
    return v && v->isString() ? v->asString() : dflt;
}

std::uint64_t
getU64(const util::JsonValue &msg, const std::string &key,
       std::uint64_t dflt = 0)
{
    const util::JsonValue *v = msg.get(key);
    return v && v->isNumber() ? v->asU64() : dflt;
}

bool
getBool(const util::JsonValue &msg, const std::string &key,
        bool dflt = false)
{
    const util::JsonValue *v = msg.get(key);
    return v && v->isBool() ? v->asBool() : dflt;
}

/** Run @p call and fail with the protocol error text on an error reply. */
bool
callChecked(Client &c, const std::string &payload,
            util::JsonValue &reply, std::string *err,
            const Client::ProgressFn &on_progress = nullptr)
{
    if (!c.call(payload, reply, err, on_progress))
        return false;
    if (Client::isError(reply)) {
        if (err)
            *err = Client::errorText(reply);
        return false;
    }
    return true;
}

} // anonymous namespace

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd_ >= 0) {
        closeFd(fd_);
        fd_ = -1;
    }
}

bool
Client::connect(const std::string &addr_spec, std::string *err)
{
    Address addr;
    if (!parseAddress(addr_spec, addr, err))
        return false;
    fd_ = connectTo(addr, err);
    if (fd_ < 0)
        return false;

    util::JsonValue reply;
    if (!call(JObj()
                  .str("type", "hello")
                  .num("proto", kProtocolVersion)
                  .text(),
              reply, err)) {
        close();
        return false;
    }
    if (messageType(reply) != "hello_ok") {
        if (err)
            *err = isError(reply) ? errorText(reply)
                                  : "unexpected handshake reply '" +
                       messageType(reply) + "'";
        close();
        return false;
    }
    return true;
}

bool
Client::readFrame(std::string &payload, std::string *err)
{
    for (;;) {
        const FrameReader::Status st = reader_.next(payload);
        if (st == FrameReader::Status::Frame)
            return true;
        if (st == FrameReader::Status::Error) {
            if (err)
                *err = "corrupt frame from daemon: " +
                       reader_.error();
            return false;
        }
        std::string chunk;
        const long n = recvSome(fd_, chunk);
        if (n <= 0) {
            if (err)
                *err = "daemon closed the connection";
            return false;
        }
        reader_.feed(chunk);
    }
}

bool
Client::call(const std::string &payload, util::JsonValue &reply,
             std::string *err, const ProgressFn &on_progress)
{
    if (fd_ < 0) {
        if (err)
            *err = "not connected";
        return false;
    }
    if (!sendAll(fd_, encodeFrame(payload))) {
        if (err)
            *err = "send to daemon failed";
        return false;
    }
    for (;;) {
        std::string frame;
        if (!readFrame(frame, err))
            return false;
        util::JsonValue msg;
        std::string perr;
        if (!util::parseJson(frame, msg, &perr)) {
            if (err)
                *err = "bad JSON from daemon: " + perr;
            return false;
        }
        if (messageType(msg) == "progress") {
            if (on_progress)
                on_progress(getStr(msg, "line"));
            continue;
        }
        reply = std::move(msg);
        return true;
    }
}

bool
Client::isError(const util::JsonValue &reply)
{
    return messageType(reply) == "error";
}

std::string
Client::errorText(const util::JsonValue &reply)
{
    return getStr(reply, "code", "error") + ": " +
           getStr(reply, "message", "(no message)");
}

// --- Typed submissions ------------------------------------------------

bool
submitSweep(Client &c, const SweepRequest &req, SweepReply &out,
            std::string *err, const Client::ProgressFn &on_progress)
{
    JObj msg;
    msg.str("type", "submit")
        .str("kind", "sweep")
        .str("spec", req.spec_json);
    if (!req.objectives.empty()) {
        std::vector<util::JsonValue> items;
        for (const std::string &o : req.objectives)
            items.push_back(util::JsonValue::makeString(o));
        msg.add("objectives",
                util::JsonValue::makeArray(std::move(items)));
    }
    if (!req.mode.empty())
        msg.str("mode", req.mode);
    msg.num("jobs", req.jobs).boolean("progress", req.progress);

    util::JsonValue reply;
    if (!callChecked(c, msg.text(), reply, err, on_progress))
        return false;
    out.summary = getStr(reply, "summary");
    out.csv = getStr(reply, "csv");
    out.report_md = getStr(reply, "report_md");
    out.executed = getU64(reply, "executed");
    out.cache_hits = getU64(reply, "cache_hits");
    return true;
}

bool
submitFleet(Client &c, const FleetRequest &req, FleetReply &out,
            std::string *err, const Client::ProgressFn &on_progress)
{
    JObj msg;
    msg.str("type", "submit")
        .str("kind", "fleet")
        .str("spec", req.spec_json)
        .num("jobs", req.jobs)
        .boolean("progress", req.progress);

    util::JsonValue reply;
    if (!callChecked(c, msg.text(), reply, err, on_progress))
        return false;
    out.summary = getStr(reply, "summary");
    out.csv = getStr(reply, "csv");
    out.report_md = getStr(reply, "report_md");
    out.executed = getU64(reply, "executed");
    out.cache_hits = getU64(reply, "cache_hits");
    return true;
}

bool
submitCampaign(Client &c, const CampaignRequest &req,
               CampaignReply &out, std::string *err,
               const Client::ProgressFn &on_progress)
{
    JObj msg;
    msg.str("type", "submit")
        .str("kind", "campaign")
        .str("design", req.design)
        .str("workload", req.workload)
        .str("trace_kind", req.trace_kind)
        .boolean("ambient", req.ambient)
        .num("scale", req.scale)
        .num("seed", req.seed)
        .num("power_seed", req.power_seed);
    if (!req.points.empty()) {
        std::vector<util::JsonValue> items;
        for (const std::uint64_t p : req.points)
            items.push_back(
                util::JsonValue::makeNumber(std::to_string(p)));
        msg.add("points",
                util::JsonValue::makeArray(std::move(items)));
    }
    msg.num("stride", req.stride);
    if (req.has_window)
        msg.add("window", JObj()
                              .num("begin", req.window_begin)
                              .num("end", req.window_end)
                              .num("step", req.window_step)
                              .build());
    msg.boolean("bisect", req.bisect)
        .boolean("inject_checkpoint_skip",
                 req.inject_checkpoint_skip)
        .boolean("inject_register_skip", req.inject_register_skip)
        .num("jobs", req.jobs)
        .num("snapshot_interval", req.snapshot_interval)
        .num("timeline_window", req.timeline_window)
        .boolean("progress", req.progress);

    util::JsonValue reply;
    if (!callChecked(c, msg.text(), reply, err, on_progress))
        return false;
    out.summary = getStr(reply, "summary");
    out.report_json = getStr(reply, "report_json");
    out.golden_clean = getBool(reply, "golden_clean");
    out.num_divergent = getU64(reply, "num_divergent");
    return true;
}

bool
submitRun(Client &c, const nvp::ExperimentSpec &spec, RunReply &out,
          std::string *err)
{
    const std::string spec_text = runner::specKeyText(spec);
    const std::string key = runner::hashKeyText(spec_text);

    util::JsonValue reply;
    if (!callChecked(c,
                     JObj()
                         .str("type", "submit")
                         .str("kind", "run")
                         .str("key", key)
                         .str("id", spec.workload)
                         .str("spec_text", spec_text)
                         .text(),
                     reply, err))
        return false;
    out.executed = getBool(reply, "executed");
    const util::JsonValue *res = reply.get("result");
    if (res) {
        std::ostringstream ss;
        util::writeJsonCompact(ss, *res);
        out.result_json = ss.str();
    }
    return true;
}

bool
pingDaemon(Client &c, std::string *err)
{
    util::JsonValue reply;
    if (!callChecked(c, JObj().str("type", "ping").text(), reply,
                     err))
        return false;
    if (messageType(reply) != "pong") {
        if (err)
            *err = "unexpected ping reply '" + messageType(reply) +
                   "'";
        return false;
    }
    return true;
}

bool
fetchStats(Client &c, util::JsonValue &out, std::string *err)
{
    return callChecked(c, JObj().str("type", "stats").text(), out,
                       err);
}

bool
requestDrain(Client &c, std::string *err)
{
    util::JsonValue reply;
    if (!callChecked(c, JObj().str("type", "drain").text(), reply,
                     err))
        return false;
    if (messageType(reply) != "drain_ok") {
        if (err)
            *err = "unexpected drain reply '" + messageType(reply) +
                   "'";
        return false;
    }
    return true;
}

} // namespace serve
} // namespace wlcache
