/**
 * @file
 * The wlcached worker fleet: N forked worker *processes* (the daemon
 * re-execs its own binary with --worker-fd over a socketpair), each
 * owned by one parent-side dispatcher thread that steals from the
 * shared JobQueue, ships the job, and routes the reply back into the
 * queue's fan-out. Process isolation means a simulator crash or
 * panic() costs one job attempt, not the daemon; the dispatcher
 * requeues the job and respawns the worker.
 */

#ifndef WLCACHE_SERVE_WORKER_POOL_HH
#define WLCACHE_SERVE_WORKER_POOL_HH

#include <sys/types.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "runner/job_queue.hh"

namespace wlcache {
namespace serve {

struct WorkerPoolConfig
{
    unsigned workers = 2;
    std::string exe_path;     //!< Binary to re-exec (/proc/self/exe).
    std::string cache_dir;    //!< Shared artifact store.
    std::string snapshot_dir;
    unsigned max_respawns = 5; //!< Per slot, before giving up.
};

class WorkerPool
{
  public:
    explicit WorkerPool(WorkerPoolConfig cfg,
                        runner::JobQueue &queue);
    ~WorkerPool();

    /**
     * Fork the initial fleet (before any dispatcher thread exists,
     * keeping fork clean), then start one dispatcher per worker.
     * @return false with @p *err on spawn failure.
     */
    bool start(std::string *err);

    /**
     * Ask every busy worker to checkpoint its in-flight job
     * (SIGUSR1 -> cooperative cut at the next event boundary).
     */
    void requestCut();

    /**
     * Join the fleet. Call after the queue started draining: idle
     * dispatchers exit on steal() == false; busy ones finish when
     * their worker replies (done or cut).
     */
    void join();

    std::size_t workersAlive() const;
    std::size_t workersBusy() const;

  private:
    struct Slot
    {
        std::atomic<pid_t> pid{ -1 };
        std::atomic<int> fd{ -1 };
        std::atomic<bool> busy{ false };
        unsigned respawns = 0;
        std::thread dispatcher;
    };

    bool spawn(Slot &slot, std::string *err);
    void reap(Slot &slot);
    void dispatchLoop(Slot &slot);

    WorkerPoolConfig cfg_;
    runner::JobQueue &queue_;
    std::vector<Slot> slots_;
    std::atomic<bool> joining_{ false };
};

} // namespace serve
} // namespace wlcache

#endif // WLCACHE_SERVE_WORKER_POOL_HH
