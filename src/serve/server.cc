#include "serve/server.hh"

#include <poll.h>
#include <sys/socket.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <streambuf>

#include "energy/power_trace.hh"
#include "explore/explorer.hh"
#include "explore/objectives.hh"
#include "explore/report.hh"
#include "explore/sweep_spec.hh"
#include "fleet/fleet.hh"
#include "fleet/fleet_spec.hh"
#include "fleet/report.hh"
#include "nvp/run_json.hh"
#include "nvp/system_config.hh"
#include "runner/spec_codec.hh"
#include "runner/spec_key.hh"
#include "serve/messages.hh"
#include "sim/logging.hh"
#include "util/fs.hh"
#include "verify/campaign.hh"
#include "workloads/workloads.hh"

namespace wlcache {
namespace serve {

namespace {

std::string
getStr(const util::JsonValue &msg, const std::string &key,
       const std::string &dflt = "")
{
    const util::JsonValue *v = msg.get(key);
    return v && v->isString() ? v->asString() : dflt;
}

std::uint64_t
getU64(const util::JsonValue &msg, const std::string &key,
       std::uint64_t dflt = 0)
{
    const util::JsonValue *v = msg.get(key);
    return v && v->isNumber() ? v->asU64() : dflt;
}

bool
getBool(const util::JsonValue &msg, const std::string &key,
        bool dflt = false)
{
    const util::JsonValue *v = msg.get(key);
    return v && v->isBool() ? v->asBool() : dflt;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Line-buffered streambuf that ships every completed line as a
 * {"type":"progress"} frame. The progress reporter emits whole lines
 * in single write() calls (its single-writer discipline), so locking
 * per write keeps concurrent runner threads from interleaving.
 */
class LineFrameBuf : public std::streambuf
{
  public:
    explicit LineFrameBuf(Session::SendFn send)
        : send_(std::move(send))
    {}

  protected:
    std::streamsize xsputn(const char *s, std::streamsize n) override
    {
        std::lock_guard<std::mutex> lock(m_);
        for (std::streamsize i = 0; i < n; ++i)
            put(s[i]);
        return n;
    }

    int overflow(int ch) override
    {
        if (ch == traits_type::eof())
            return 0;
        std::lock_guard<std::mutex> lock(m_);
        put(static_cast<char>(ch));
        return ch;
    }

  private:
    void put(char c)
    {
        if (c != '\n') {
            line_.push_back(c);
            return;
        }
        // Best effort: a slow client drops progress, never the run.
        send_(encodeFrame(JObj()
                              .str("type", "progress")
                              .str("line", line_)
                              .text()));
        line_.clear();
    }

    Session::SendFn send_;
    std::mutex m_;
    std::string line_;
};

/** Per-job wall-clock span of one client's request. */
struct Span
{
    std::string id;
    std::string key;
    bool executed = false;
    double t_start_s = 0.0;
    double t_end_s = 0.0;
};

util::JsonValue
spansJson(const std::vector<Span> &spans)
{
    std::vector<util::JsonValue> items;
    items.reserve(spans.size());
    for (const Span &s : spans)
        items.push_back(JObj()
                            .str("id", s.id)
                            .str("key", s.key)
                            .boolean("executed", s.executed)
                            .numD("t_start_s", s.t_start_s)
                            .numD("t_end_s", s.t_end_s)
                            .build());
    return util::JsonValue::makeArray(std::move(items));
}

/**
 * RemoteExecutor that routes every cache-miss job through the shared
 * queue (dedupe + fan-out) and records a per-job span for the client.
 * References outlive the executor: the engines return before the
 * handler's locals die.
 */
runner::RemoteExecutor
queueExecutor(ServerContext &ctx, std::vector<Span> &spans,
              std::mutex &spans_m,
              std::chrono::steady_clock::time_point start)
{
    return [&ctx, &spans, &spans_m, start](
               const runner::Job &job, nvp::RunResult &out,
               bool &remote_executed, std::string *err) -> bool {
        runner::QueueJob qj;
        qj.key = job.key;
        qj.id = job.id;
        qj.spec_text = runner::specKeyText(job.spec);
        qj.max_events = job.max_events;

        const double t0 = secondsSince(start);
        runner::JobTicket ticket = ctx.queue->submit(std::move(qj));
        const runner::JobOutcome &o = ticket.wait();
        const double t1 = secondsSince(start);
        {
            std::lock_guard<std::mutex> lock(spans_m);
            spans.push_back(
                { job.id, job.key, o.ok && o.executed, t0, t1 });
        }

        if (!o.ok) {
            if (err)
                *err = o.error;
            return false;
        }
        remote_executed = o.executed;
        std::istringstream ss(o.result_json);
        return nvp::readRunResultJson(ss, out, err);
    };
}

} // anonymous namespace

// --- Session ---------------------------------------------------------

Session::Session(ServerContext &ctx, SendFn send)
    : ctx_(ctx), send_(std::move(send))
{}

bool
Session::send(const std::string &payload)
{
    return send_(encodeFrame(payload));
}

void
Session::sendError(const std::string &code, const std::string &msg)
{
    send(errorPayload(code, msg));
}

bool
Session::onBytes(const char *data, std::size_t len)
{
    reader_.feed(data, len);
    std::string payload;
    for (;;) {
        const FrameReader::Status st = reader_.next(payload);
        if (st == FrameReader::Status::NeedMore)
            return true;
        if (st == FrameReader::Status::Error) {
            sendError(errc::kBadFrame, reader_.error());
            return false;
        }
        if (!handlePayload(payload))
            return false;
    }
}

bool
Session::handlePayload(const std::string &payload)
{
    util::JsonValue msg;
    std::string err;
    if (!util::parseJson(payload, msg, &err)) {
        sendError(errc::kBadJson, err);
        return true;
    }
    const std::string type = messageType(msg);

    if (type == "hello")
        return handleHello(msg);
    if (!hello_done_) {
        sendError(errc::kNeedHello,
                  "handshake required before '" + type + "'");
        return true;
    }

    if (type == "ping") {
        send(JObj()
                 .str("type", "pong")
                 .num("proto", kProtocolVersion)
                 .text());
        return true;
    }
    if (type == "stats") {
        handleStats();
        return true;
    }
    if (type == "drain") {
        // Ack first: the drain may tear this connection down.
        send(JObj().str("type", "drain_ok").text());
        ctx_.draining.store(true, std::memory_order_release);
        if (ctx_.request_drain)
            ctx_.request_drain();
        return true;
    }
    if (type == "submit") {
        handleSubmit(msg);
        return true;
    }
    sendError(errc::kUnknownType, "unknown request '" + type + "'");
    return true;
}

bool
Session::handleHello(const util::JsonValue &msg)
{
    const std::uint64_t proto = getU64(msg, "proto");
    if (proto != kProtocolVersion) {
        sendError(errc::kVersionMismatch,
                  "daemon speaks protocol " +
                      std::to_string(kProtocolVersion) +
                      ", client offered " + std::to_string(proto));
        return false;
    }
    hello_done_ = true;
    send(JObj()
             .str("type", "hello_ok")
             .num("proto", kProtocolVersion)
             .num("schema", runner::kResultSchemaVersion)
             .text());
    return true;
}

void
Session::handleStats()
{
    const runner::JobQueue::Counters c = ctx_.queue->counters();
    JObj q;
    q.num("submitted", c.submitted)
        .num("coalesced", c.coalesced)
        .num("completed", c.completed)
        .num("failed", c.failed)
        .num("executed", c.executed)
        .num("requeued", c.requeued)
        .num("cancelled", c.cancelled)
        .num("max_executions_per_key", c.max_executions_per_key)
        .num("queued", c.queued)
        .num("in_flight", c.in_flight);
    send(JObj()
             .str("type", "stats")
             .num("proto", kProtocolVersion)
             .num("schema", runner::kResultSchemaVersion)
             .boolean("draining",
                      ctx_.draining.load(std::memory_order_acquire))
             .num("sessions", ctx_.sessions.load())
             .num("workers_alive",
                  ctx_.pool ? ctx_.pool->workersAlive() : 0)
             .num("workers_busy",
                  ctx_.pool ? ctx_.pool->workersBusy() : 0)
             .add("queue", q.build())
             .text());
}

void
Session::handleSubmit(const util::JsonValue &msg)
{
    if (ctx_.draining.load(std::memory_order_acquire)) {
        sendError(errc::kDraining, "daemon is draining");
        return;
    }
    const std::string kind = getStr(msg, "kind");
    const bool progress = getBool(msg, "progress");
    if (kind == "sweep")
        handleSweep(msg, progress);
    else if (kind == "fleet")
        handleFleet(msg, progress);
    else if (kind == "campaign")
        handleCampaign(msg, progress);
    else if (kind == "run")
        handleRun(msg);
    else
        sendError(errc::kBadRequest,
                  "submit kind must be sweep|fleet|campaign|run, "
                  "got '" + kind + "'");
}

void
Session::handleSweep(const util::JsonValue &msg, bool progress)
{
    const util::JsonValue *spec = msg.get("spec");
    if (!spec || !spec->isString()) {
        sendError(errc::kBadRequest,
                  "sweep submit needs a string 'spec' (the sweep-spec "
                  "JSON text)");
        return;
    }

    explore::ExploreConfig cfg;
    std::string err;
    if (!explore::parseSweepSpec(spec->asString(), cfg.sweep, &err)) {
        sendError(errc::kBadSpec, err);
        return;
    }

    const std::string mode = getStr(msg, "mode");
    if (mode == "exhaustive")
        cfg.sweep.mode = explore::SearchMode::Exhaustive;
    else if (mode == "halving")
        cfg.sweep.mode = explore::SearchMode::Halving;
    else if (!mode.empty()) {
        sendError(errc::kBadRequest,
                  "mode must be exhaustive|halving, got '" + mode +
                      "'");
        return;
    }

    if (const util::JsonValue *objs = msg.get("objectives")) {
        if (!objs->isArray()) {
            sendError(errc::kBadRequest,
                      "'objectives' must be an array of names");
            return;
        }
        for (const util::JsonValue &o : objs->items()) {
            if (!o.isString() ||
                !explore::findObjective(o.asString())) {
                sendError(errc::kBadRequest,
                          "unknown objective" +
                              (o.isString() ? " '" + o.asString() + "'"
                                            : std::string()) +
                              " (valid: " +
                              explore::objectiveNameList() + ")");
                return;
            }
            cfg.objectives.push_back(o.asString());
        }
    }

    cfg.jobs = static_cast<unsigned>(getU64(msg, "jobs"));
    cfg.cache_dir = ctx_.cache_dir;
    cfg.snapshot_dir = ctx_.snapshot_dir;

    std::vector<Span> spans;
    std::mutex spans_m;
    const auto start = std::chrono::steady_clock::now();
    cfg.executor = queueExecutor(ctx_, spans, spans_m, start);

    LineFrameBuf pbuf(send_);
    std::ostream pout(&pbuf);
    if (progress) {
        cfg.progress = true;
        cfg.progress_out = &pout;
    }

    explore::ExploreReport report;
    if (!explore::runExploration(cfg, report, &err)) {
        sendError(errc::kBadSpec, err);
        return;
    }

    std::ostringstream summary, csv, md;
    explore::writeSummaryText(summary, report);
    explore::writeCsv(csv, report);
    explore::writeFrontierMarkdown(md, report, ctx_.cache_dir);

    send(JObj()
             .str("type", "result")
             .str("kind", "sweep")
             .str("summary", summary.str())
             .str("csv", csv.str())
             .str("report_md", md.str())
             .num("executed", report.executed)
             .num("cache_hits", report.cache_hits)
             .add("spans", spansJson(spans))
             .text());
}

void
Session::handleFleet(const util::JsonValue &msg, bool progress)
{
    const util::JsonValue *spec = msg.get("spec");
    if (!spec || !spec->isString()) {
        sendError(errc::kBadRequest,
                  "fleet submit needs a string 'spec' (the fleet-spec "
                  "JSON text)");
        return;
    }

    fleet::FleetConfig cfg;
    std::string err;
    if (!fleet::parseFleetSpec(spec->asString(), cfg.spec, &err)) {
        sendError(errc::kBadSpec, err);
        return;
    }

    cfg.jobs = static_cast<unsigned>(getU64(msg, "jobs"));
    cfg.cache_dir = ctx_.cache_dir;
    cfg.snapshot_dir = ctx_.snapshot_dir;

    std::vector<Span> spans;
    std::mutex spans_m;
    const auto start = std::chrono::steady_clock::now();
    cfg.executor = queueExecutor(ctx_, spans, spans_m, start);

    LineFrameBuf pbuf(send_);
    std::ostream pout(&pbuf);
    if (progress) {
        cfg.progress = true;
        cfg.progress_out = &pout;
    }

    fleet::FleetReport report;
    if (!fleet::runFleet(cfg, report, &err)) {
        sendError(errc::kBadSpec, err);
        return;
    }

    std::ostringstream summary, csv, md;
    fleet::writeFleetSummaryText(summary, report);
    fleet::writeFleetCsv(csv, report);
    fleet::writeFleetMarkdown(md, report);

    send(JObj()
             .str("type", "result")
             .str("kind", "fleet")
             .str("summary", summary.str())
             .str("csv", csv.str())
             .str("report_md", md.str())
             .num("executed", report.executed)
             .num("cache_hits", report.cache_hits)
             .add("spans", spansJson(spans))
             .text());
}

void
Session::handleCampaign(const util::JsonValue &msg, bool progress)
{
    verify::CampaignConfig cc;

    const std::string design = getStr(msg, "design");
    if (!nvp::designKindFromName(design, cc.base.design)) {
        sendError(errc::kBadRequest,
                  "unknown design '" + design +
                  "' (valid: " + nvp::designKindNameList() + ")");
        return;
    }
    const std::string workload = getStr(msg, "workload");
    if (!workloads::findWorkload(workload)) {
        sendError(errc::kBadRequest,
                  "unknown workload '" + workload + "'");
        return;
    }
    cc.base.workload = workload;

    const std::string trace = getStr(msg, "trace_kind", "constant");
    if (!energy::traceKindFromName(trace, cc.base.power)) {
        sendError(errc::kBadRequest,
                  "unknown trace '" + trace + "' (valid: " +
                  energy::traceKindNameList() + ")");
        return;
    }
    cc.ambient = getBool(msg, "ambient");
    cc.base.no_failure = !cc.ambient;
    cc.base.scale = static_cast<unsigned>(getU64(msg, "scale", 1));
    cc.base.workload_seed = getU64(msg, "seed", 42);
    cc.base.power_seed = getU64(msg, "power_seed", 7);

    if (const util::JsonValue *pts = msg.get("points")) {
        if (!pts->isArray()) {
            sendError(errc::kBadRequest,
                      "'points' must be an array of cycles");
            return;
        }
        for (const util::JsonValue &p : pts->items()) {
            if (!p.isNumber()) {
                sendError(errc::kBadRequest,
                          "'points' must be an array of cycles");
                return;
            }
            cc.points.push_back(p.asU64());
        }
    }
    cc.stride = getU64(msg, "stride");
    if (const util::JsonValue *w = msg.get("window")) {
        if (!w->isObject()) {
            sendError(errc::kBadRequest,
                      "'window' must be {begin,end,step}");
            return;
        }
        cc.has_window = true;
        cc.window_begin = getU64(*w, "begin");
        cc.window_end = getU64(*w, "end");
        cc.window_step = getU64(*w, "step", 1);
        if (cc.window_end <= cc.window_begin || cc.window_step == 0) {
            sendError(errc::kBadRequest,
                      "bad window (need end > begin, step > 0)");
            return;
        }
    }
    cc.bisect = getBool(msg, "bisect");
    cc.inject_checkpoint_skip =
        getBool(msg, "inject_checkpoint_skip");
    cc.inject_register_skip = getBool(msg, "inject_register_skip");
    cc.jobs = static_cast<unsigned>(getU64(msg, "jobs"));
    cc.cache_dir = ctx_.cache_dir;
    cc.snapshot_interval = getU64(msg, "snapshot_interval");
    cc.snapshot_dir = ctx_.snapshot_dir;
    cc.timeline_window =
        static_cast<std::size_t>(getU64(msg, "timeline_window", 64));

    std::vector<Span> spans;
    std::mutex spans_m;
    const auto start = std::chrono::steady_clock::now();
    cc.executor = queueExecutor(ctx_, spans, spans_m, start);

    LineFrameBuf pbuf(send_);
    std::ostream pout(&pbuf);
    if (progress) {
        cc.progress = true;
        cc.progress_out = &pout;
    }

    const verify::CampaignReport rep = verify::runCampaign(cc);

    std::ostringstream summary, json;
    verify::writeCampaignSummary(summary, rep);
    verify::writeCampaignReportJson(json, rep);

    send(JObj()
             .str("type", "result")
             .str("kind", "campaign")
             .str("summary", summary.str())
             .str("report_json", json.str())
             .boolean("golden_clean", rep.golden_clean)
             .num("num_divergent", rep.num_divergent)
             .add("spans", spansJson(spans))
             .text());
}

void
Session::handleRun(const util::JsonValue &msg)
{
    const std::string key = getStr(msg, "key");
    const std::string spec_text = getStr(msg, "spec_text");
    const std::uint64_t max_events = getU64(msg, "max_events");
    if (key.empty() || spec_text.empty()) {
        sendError(errc::kBadRequest,
                  "run submit needs 'key' and 'spec_text'");
        return;
    }

    // Validate before queueing so a bad spec fails fast (the worker
    // re-derives the key anyway; this keeps garbage out of the queue).
    nvp::ExperimentSpec spec;
    std::string err;
    if (!runner::parseSpecText(spec_text, spec, &err)) {
        sendError(errc::kBadSpec, err);
        return;
    }
    const std::string derived = max_events
        ? runner::partialKey(spec, max_events)
        : runner::specKey(spec);
    if (derived != key) {
        sendError(errc::kBadRequest,
                  "key mismatch: client sent " + key +
                      ", daemon derived " + derived);
        return;
    }

    runner::QueueJob qj;
    qj.key = key;
    qj.id = getStr(msg, "id", key);
    qj.spec_text = spec_text;
    qj.max_events = max_events;
    runner::JobTicket ticket = ctx_.queue->submit(std::move(qj));
    const runner::JobOutcome &o = ticket.wait();

    if (!o.ok) {
        sendError(o.error == "draining" ? errc::kDraining
                                        : errc::kInternal,
                  o.error);
        return;
    }
    JObj reply;
    reply.str("type", "result")
        .str("kind", "run")
        .str("key", key)
        .boolean("executed", o.executed);
    if (!o.result_json.empty())
        reply.raw("result", o.result_json);
    send(reply.text());
}

// --- Pending-job persistence -----------------------------------------

std::string
pendingPath(const std::string &state_dir)
{
    return state_dir + "/pending.json";
}

bool
savePendingJobs(const std::string &state_dir,
                const std::vector<runner::QueueJob> &jobs,
                std::string *err)
{
    util::FileLock lock;
    if (!lock.lockExclusive(pendingPath(state_dir) + ".lock")) {
        if (err)
            *err = "cannot lock pending-job state";
        return false;
    }
    std::vector<util::JsonValue> items;
    items.reserve(jobs.size());
    for (const runner::QueueJob &j : jobs)
        items.push_back(JObj()
                            .str("key", j.key)
                            .str("id", j.id)
                            .str("spec_text", j.spec_text)
                            .num("max_events", j.max_events)
                            .build());
    const std::string text =
        JObj()
            .num("version", 1)
            .add("jobs", util::JsonValue::makeArray(std::move(items)))
            .text();
    return util::writeFileAtomic(state_dir, pendingPath(state_dir),
                                 text, err);
}

bool
loadPendingJobs(const std::string &state_dir,
                std::vector<runner::QueueJob> &out, std::string *err)
{
    std::string text;
    if (!util::readFileText(pendingPath(state_dir), text))
        return true; // No file: nothing pending.
    util::JsonValue root;
    if (!util::parseJson(text, root, err))
        return false;
    if (getU64(root, "version") != 1) {
        if (err)
            *err = "unknown pending-job state version";
        return false;
    }
    const util::JsonValue *jobs = root.get("jobs");
    if (!jobs || !jobs->isArray()) {
        if (err)
            *err = "pending-job state has no 'jobs' array";
        return false;
    }
    for (const util::JsonValue &j : jobs->items()) {
        runner::QueueJob qj;
        qj.key = getStr(j, "key");
        qj.id = getStr(j, "id");
        qj.spec_text = getStr(j, "spec_text");
        qj.max_events = getU64(j, "max_events");
        if (qj.key.empty() || qj.spec_text.empty()) {
            if (err)
                *err = "pending-job entry missing key/spec_text";
            return false;
        }
        out.push_back(std::move(qj));
    }
    return true;
}

// --- Server ----------------------------------------------------------

namespace {

/** Self-pipe write end for the signal handler (async-signal-safe). */
std::atomic<int> g_wake_fd{ -1 };

void
onStopSignal(int)
{
    const int fd = g_wake_fd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        const char c = 'x';
        [[maybe_unused]] const auto n = ::write(fd, &c, 1);
    }
}

} // anonymous namespace

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)) {}

Server::~Server()
{
    for (std::thread &t : conn_threads_)
        if (t.joinable())
            t.join();
    if (listen_fd_ >= 0)
        closeFd(listen_fd_);
    closeFd(wake_r_);
    closeFd(wake_w_);
    if (cfg_.address.kind == Address::Kind::Unix &&
        !cfg_.address.path.empty())
        ::remove(cfg_.address.path.c_str());
}

bool
Server::start(std::string *err)
{
    if (cfg_.exe_path.empty()) {
        if (err)
            *err = "worker exe_path not set";
        return false;
    }

    ctx_.queue = &queue_;
    ctx_.cache_dir = cfg_.cache_dir;
    ctx_.snapshot_dir = cfg_.snapshot_dir;
    ctx_.request_drain = [this] { requestDrain(); };

    // Re-offer jobs a previous instance persisted at drain. Nobody
    // waits on the tickets; completions just warm the shared cache.
    if (!cfg_.state_dir.empty()) {
        std::vector<runner::QueueJob> pending;
        std::string perr;
        if (!loadPendingJobs(cfg_.state_dir, pending, &perr))
            warn("ignoring pending-job state: %s", perr.c_str());
        if (!pending.empty()) {
            inform("re-offering %zu persisted job(s)",
                   pending.size());
            for (runner::QueueJob &j : pending)
                reoffered_.push_back(queue_.submit(std::move(j)));
        }
        ::remove(pendingPath(cfg_.state_dir).c_str());
    }

    WorkerPoolConfig wpc;
    wpc.workers = cfg_.workers ? cfg_.workers : 1;
    wpc.exe_path = cfg_.exe_path;
    wpc.cache_dir = cfg_.cache_dir;
    wpc.snapshot_dir = cfg_.snapshot_dir;
    pool_ = std::make_unique<WorkerPool>(wpc, queue_);
    ctx_.pool = pool_.get();
    if (!pool_->start(err))
        return false;

    listen_fd_ = listenOn(cfg_.address, err);
    if (listen_fd_ < 0)
        return false;

    int p[2];
    if (::pipe(p) != 0) {
        if (err)
            *err = std::string("pipe: ") + std::strerror(errno);
        return false;
    }
    wake_r_ = p[0];
    wake_w_ = p[1];
    ::fcntl(wake_r_, F_SETFD, FD_CLOEXEC);
    ::fcntl(wake_w_, F_SETFD, FD_CLOEXEC);
    return true;
}

void
Server::requestDrain()
{
    const int fd = wake_w_;
    if (fd >= 0) {
        const char c = 'x';
        [[maybe_unused]] const auto n = ::write(fd, &c, 1);
    }
}

int
Server::run()
{
    g_wake_fd.store(wake_w_, std::memory_order_relaxed);
    struct sigaction sa{};
    sa.sa_handler = onStopSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    inform("wlcached listening on %s (%u workers)",
           cfg_.address.describe().c_str(), cfg_.workers);

    for (;;) {
        struct pollfd fds[2];
        fds[0].fd = listen_fd_;
        fds[0].events = POLLIN;
        fds[1].fd = wake_r_;
        fds[1].events = POLLIN;
        if (::poll(fds, 2, -1) < 0) {
            if (errno == EINTR)
                continue;
            warn("poll: %s", std::strerror(errno));
            break;
        }
        if (fds[1].revents & POLLIN)
            break; // Drain requested (signal or client).
        if (!(fds[0].revents & POLLIN))
            continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::lock_guard<std::mutex> lock(conns_m_);
        conn_fds_.push_back(fd);
        conn_threads_.emplace_back(
            [this, fd] { handleConnection(fd); });
    }

    drain();

    closeFd(listen_fd_);
    listen_fd_ = -1;
    for (std::thread &t : conn_threads_)
        if (t.joinable())
            t.join();
    conn_threads_.clear();
    g_wake_fd.store(-1, std::memory_order_relaxed);
    inform("wlcached drained, exiting");
    return 0;
}

void
Server::drain()
{
    ctx_.draining.store(true, std::memory_order_release);

    // Stop producing: queued-but-unstolen jobs come back for
    // persistence, busy workers get a cooperative cut request, and
    // the pool joins once every in-flight job resolved (done or cut).
    std::vector<runner::QueueJob> pending = queue_.shutdownAndDrain();
    pool_->requestCut();
    pool_->join();
    for (runner::QueueJob &j : queue_.takeDrained())
        pending.push_back(std::move(j));

    if (!cfg_.state_dir.empty()) {
        std::string err;
        if (!savePendingJobs(cfg_.state_dir, pending, &err))
            warn("could not persist %zu pending job(s): %s",
                 pending.size(), err.c_str());
        else if (!pending.empty())
            inform("persisted %zu pending job(s) for restart",
                   pending.size());
    } else if (!pending.empty()) {
        warn("dropping %zu pending job(s) (no --state-dir)",
             pending.size());
    }

    // Unblock connection threads stuck in recv.
    std::lock_guard<std::mutex> lock(conns_m_);
    for (const int fd : conn_fds_)
        ::shutdown(fd, SHUT_RDWR);
}

void
Server::handleConnection(int fd)
{
    ctx_.sessions.fetch_add(1, std::memory_order_relaxed);

    auto send_m = std::make_shared<std::mutex>();
    Session session(ctx_, [fd, send_m](const std::string &bytes) {
        std::lock_guard<std::mutex> lock(*send_m);
        return sendAll(fd, bytes);
    });

    std::string chunk;
    for (;;) {
        chunk.clear();
        const long n = recvSome(fd, chunk);
        if (n <= 0)
            break;
        if (!session.onBytes(chunk))
            break;
    }

    {
        // Unregister before closing so a concurrent drain() cannot
        // shut down a recycled descriptor.
        std::lock_guard<std::mutex> lock(conns_m_);
        for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it)
            if (*it == fd) {
                conn_fds_.erase(it);
                break;
            }
    }
    closeFd(fd);
}

} // namespace serve
} // namespace wlcache
