/**
 * @file
 * wlcached worker process. The daemon fork+execs its own binary with
 * `--worker-fd N`; that fd is one end of a socketpair speaking the
 * same length-framed JSON protocol as the client socket:
 *
 *   parent -> worker: {"type":"job","key","id","spec_text",
 *                      "max_events"}  |  {"type":"exit"}
 *   worker -> parent: {"type":"done","key","executed",
 *                      "worker_cached","result":<run record>}
 *                   | {"type":"cut","key"}         (drain checkpoint)
 *                   | {"type":"error","key","message"}
 *
 * Jobs arrive as specKeyText() payloads; the worker re-derives the
 * content key and refuses to run on any mismatch, so a daemon/worker
 * version skew can never publish under a wrong key. SIGTERM/SIGUSR1
 * request a cooperative cut: the in-flight simulation stops at the
 * next event boundary, checkpoints through the snapshot store, and
 * reports "cut" so the daemon can re-offer the job later.
 */

#ifndef WLCACHE_SERVE_WORKER_HH
#define WLCACHE_SERVE_WORKER_HH

#include <string>

namespace wlcache {
namespace serve {

/** Worker-side artifact store locations (shared with the daemon). */
struct WorkerConfig
{
    std::string cache_dir;    //!< Shared RunResult cache.
    std::string snapshot_dir; //!< Shared snapshot store.
};

/**
 * Serve jobs on @p fd until an exit message or EOF.
 * @return process exit status.
 */
int runWorkerLoop(int fd, const WorkerConfig &cfg);

/** Drain-snapshot key for a job ("drain-" + resume-compat key). */
std::string drainKey(const std::string &resume_key);

} // namespace serve
} // namespace wlcache

#endif // WLCACHE_SERVE_WORKER_HH
