/**
 * @file
 * wlcached protocol vocabulary. Every frame payload is one JSON
 * object with a "type" member. The session opens with a handshake:
 *
 *   client:  {"type":"hello", "proto": <kProtocolVersion>}
 *   daemon:  {"type":"hello_ok", "proto":..., "schema":...}
 *
 * and any other frame before a successful handshake (or a version
 * mismatch) yields a structured {"type":"error"} reply. JObj is a
 * tiny fluent builder over util::JsonValue so replies are constructed
 * and serialized through the same JSON layer the parser uses.
 */

#ifndef WLCACHE_SERVE_MESSAGES_HH
#define WLCACHE_SERVE_MESSAGES_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hh"

namespace wlcache {
namespace serve {

/**
 * Wire-protocol version. Independent of the result-record schema
 * (runner::kResultSchemaVersion, also reported in the handshake):
 * the protocol version gates message framing and vocabulary, the
 * schema version gates cache-key compatibility.
 */
constexpr unsigned kProtocolVersion = 1;

/** Machine-readable error codes carried by {"type":"error"}. */
namespace errc {
constexpr const char *kBadFrame = "bad_frame";
constexpr const char *kBadJson = "bad_json";
constexpr const char *kBadRequest = "bad_request";
constexpr const char *kBadSpec = "bad_spec";
constexpr const char *kNeedHello = "need_hello";
constexpr const char *kVersionMismatch = "version_mismatch";
constexpr const char *kUnknownType = "unknown_type";
constexpr const char *kDraining = "draining";
constexpr const char *kInternal = "internal";
} // namespace errc

/** Fluent JSON-object builder for protocol frames. */
class JObj
{
  public:
    JObj &add(const std::string &key, util::JsonValue v)
    {
        members_.emplace_back(key, std::move(v));
        return *this;
    }
    JObj &str(const std::string &key, const std::string &v)
    {
        return add(key, util::JsonValue::makeString(v));
    }
    JObj &num(const std::string &key, std::uint64_t v)
    {
        return add(key,
                   util::JsonValue::makeNumber(std::to_string(v)));
    }
    JObj &numD(const std::string &key, double v);
    JObj &boolean(const std::string &key, bool v)
    {
        return add(key, util::JsonValue::makeBool(v));
    }
    /** Embed a pre-serialized JSON document verbatim. */
    JObj &raw(const std::string &key, const std::string &json_text);

    util::JsonValue build()
    {
        return util::JsonValue::makeObject(std::move(members_));
    }
    /** Serialize compactly (the frame payload). */
    std::string text();

  private:
    std::vector<std::pair<std::string, util::JsonValue>> members_;
};

/** {"type":"error","code":...,"message":...} payload. */
std::string errorPayload(const std::string &code,
                         const std::string &message);

/** Convenience: payload's "type" member, or "" when absent. */
std::string messageType(const util::JsonValue &v);

} // namespace serve
} // namespace wlcache

#endif // WLCACHE_SERVE_MESSAGES_HH
