#include "serve/net.hh"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/strings.hh"

namespace wlcache {
namespace serve {

namespace {

std::string
errnoText()
{
    return std::strerror(errno);
}

bool
fail(std::string *err, const std::string &what)
{
    if (err)
        *err = what;
    return false;
}

} // anonymous namespace

std::string
Address::describe() const
{
    if (kind == Kind::Unix)
        return "unix:" + path;
    return "tcp:" + host + ":" + std::to_string(port);
}

bool
parseAddress(const std::string &spec, Address &out, std::string *err)
{
    if (spec.empty())
        return fail(err, "empty address");
    if (spec.rfind("unix:", 0) == 0) {
        out.kind = Address::Kind::Unix;
        out.path = spec.substr(5);
        if (out.path.empty())
            return fail(err, "unix: address needs a path");
        return true;
    }
    if (spec.rfind("tcp:", 0) == 0) {
        const std::string rest = spec.substr(4);
        const std::size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= rest.size())
            return fail(err, "tcp: address must be tcp:HOST:PORT");
        out.kind = Address::Kind::Tcp;
        out.host = rest.substr(0, colon);
        const std::string port_s = rest.substr(colon + 1);
        char *end = nullptr;
        const unsigned long p = std::strtoul(port_s.c_str(), &end, 10);
        if (!end || *end || p == 0 || p > 65535)
            return fail(err, "bad tcp port '" + port_s + "'");
        out.port = static_cast<unsigned short>(p);
        return true;
    }
    // Bare path = Unix socket.
    out.kind = Address::Kind::Unix;
    out.path = spec;
    return true;
}

namespace {

bool
fillUnixAddr(const std::string &path, sockaddr_un &sa,
             std::string *err)
{
    std::memset(&sa, 0, sizeof(sa));
    sa.sun_family = AF_UNIX;
    if (path.size() >= sizeof(sa.sun_path)) {
        fail(err, "unix socket path too long: " + path);
        return false;
    }
    std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
    return true;
}

bool
resolveTcp(const Address &addr, sockaddr_in &sa, std::string *err)
{
    std::memset(&sa, 0, sizeof(sa));
    sa.sin_family = AF_INET;
    sa.sin_port = htons(addr.port);
    if (inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) == 1)
        return true;

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    if (getaddrinfo(addr.host.c_str(), nullptr, &hints, &res) != 0 ||
        !res) {
        fail(err, "cannot resolve host '" + addr.host + "'");
        return false;
    }
    sa.sin_addr =
        reinterpret_cast<sockaddr_in *>(res->ai_addr)->sin_addr;
    freeaddrinfo(res);
    return true;
}

} // anonymous namespace

int
listenOn(const Address &addr, std::string *err)
{
    int fd = -1;
    if (addr.kind == Address::Kind::Unix) {
        sockaddr_un sa;
        if (!fillUnixAddr(addr.path, sa, err))
            return -1;
        fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            fail(err, "socket: " + errnoText());
            return -1;
        }
        // Replace a stale socket file from a previous instance.
        ::unlink(addr.path.c_str());
        if (::bind(fd, reinterpret_cast<sockaddr *>(&sa),
                   sizeof(sa)) < 0) {
            fail(err, "bind " + addr.describe() + ": " + errnoText());
            closeFd(fd);
            return -1;
        }
    } else {
        sockaddr_in sa;
        if (!resolveTcp(addr, sa, err))
            return -1;
        fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            fail(err, "socket: " + errnoText());
            return -1;
        }
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, reinterpret_cast<sockaddr *>(&sa),
                   sizeof(sa)) < 0) {
            fail(err, "bind " + addr.describe() + ": " + errnoText());
            closeFd(fd);
            return -1;
        }
    }
    if (::listen(fd, 64) < 0) {
        fail(err, "listen: " + errnoText());
        closeFd(fd);
        return -1;
    }
    return fd;
}

int
connectTo(const Address &addr, std::string *err)
{
    int fd = -1;
    if (addr.kind == Address::Kind::Unix) {
        sockaddr_un sa;
        if (!fillUnixAddr(addr.path, sa, err))
            return -1;
        fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            fail(err, "socket: " + errnoText());
            return -1;
        }
        if (::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                      sizeof(sa)) < 0) {
            fail(err,
                 "connect " + addr.describe() + ": " + errnoText());
            closeFd(fd);
            return -1;
        }
    } else {
        sockaddr_in sa;
        if (!resolveTcp(addr, sa, err))
            return -1;
        fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            fail(err, "socket: " + errnoText());
            return -1;
        }
        if (::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                      sizeof(sa)) < 0) {
            fail(err,
                 "connect " + addr.describe() + ": " + errnoText());
            closeFd(fd);
            return -1;
        }
    }
    return fd;
}

bool
sendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

long
recvSome(int fd, std::string &out, std::size_t cap)
{
    std::string buf(cap, '\0');
    ssize_t n;
    do {
        n = ::recv(fd, buf.data(), cap, 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0)
        return n == 0 ? 0 : -1;
    out.append(buf.data(), static_cast<std::size_t>(n));
    return n;
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

} // namespace serve
} // namespace wlcache
