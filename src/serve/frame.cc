#include "serve/frame.hh"

namespace wlcache {
namespace serve {

std::string
encodeFrame(const std::string &payload)
{
    std::string out = std::to_string(payload.size());
    out += '\n';
    out += payload;
    out += '\n';
    return out;
}

void
FrameReader::feed(const char *data, std::size_t len)
{
    if (poisoned_)
        return;
    buf_.append(data, len);
}

FrameReader::Status
FrameReader::fail(const std::string &why)
{
    poisoned_ = true;
    error_ = why;
    buf_.clear();
    return Status::Error;
}

FrameReader::Status
FrameReader::next(std::string &payload)
{
    if (poisoned_)
        return Status::Error;

    // The length line: 1..20 decimal digits then '\n'. Reject junk
    // before waiting for more bytes, so a garbage stream can't make
    // the reader buffer forever.
    std::size_t i = 0;
    while (i < buf_.size() && buf_[i] >= '0' && buf_[i] <= '9')
        ++i;
    if (i == 0 && !buf_.empty())
        return fail("frame length is not a decimal number");
    if (i > 20)
        return fail("frame length line too long");
    if (i >= buf_.size())
        return Status::NeedMore;
    if (buf_[i] != '\n')
        return fail("frame length line not terminated by newline");

    unsigned long long n = 0;
    for (std::size_t k = 0; k < i; ++k) {
        if (n > (~0ull - 9) / 10)
            return fail("frame length overflows");
        n = n * 10 + static_cast<unsigned>(buf_[k] - '0');
    }
    if (n > max_payload_)
        return fail("frame payload of " + std::to_string(n) +
                    " bytes exceeds the " +
                    std::to_string(max_payload_) + " byte limit");

    const std::size_t need = i + 1 + static_cast<std::size_t>(n) + 1;
    if (buf_.size() < need)
        return Status::NeedMore;
    if (buf_[need - 1] != '\n')
        return fail("frame payload not terminated by newline");

    payload.assign(buf_, i + 1, static_cast<std::size_t>(n));
    buf_.erase(0, need);
    return Status::Frame;
}

} // namespace serve
} // namespace wlcache
