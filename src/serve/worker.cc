#include "serve/worker.hh"

#include <csignal>

#include <atomic>
#include <sstream>

#include "nvp/experiment.hh"
#include "nvp/run_json.hh"
#include "runner/result_cache.hh"
#include "runner/snapshot_store.hh"
#include "runner/spec_codec.hh"
#include "runner/spec_key.hh"
#include "serve/frame.hh"
#include "serve/messages.hh"
#include "serve/net.hh"
#include "sim/logging.hh"

namespace wlcache {
namespace serve {

namespace {

/** Set by SIGTERM/SIGUSR1; polled by the simulation loop. */
std::atomic<bool> g_cut_requested{false};

void
onCutSignal(int)
{
    g_cut_requested.store(true, std::memory_order_relaxed);
}

void
installCutHandlers()
{
    struct sigaction sa{};
    sa.sa_handler = onCutSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGUSR1, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);
}

/** Process one job request; returns the reply payload. */
std::string
handleJob(const util::JsonValue &msg, const WorkerConfig &cfg)
{
    const util::JsonValue *key_v = msg.get("key");
    const util::JsonValue *spec_v = msg.get("spec_text");
    const util::JsonValue *budget_v = msg.get("max_events");
    if (!key_v || !key_v->isString() || !spec_v ||
        !spec_v->isString())
        return errorPayload(errc::kBadRequest,
                            "job needs string key and spec_text");
    const std::string &key = key_v->asString();
    const std::uint64_t max_events =
        budget_v && budget_v->isNumber() ? budget_v->asU64() : 0;

    auto jobError = [&](const std::string &message) {
        return JObj()
            .str("type", "error")
            .str("key", key)
            .str("code", errc::kBadSpec)
            .str("message", message)
            .text();
    };

    nvp::ExperimentSpec spec;
    std::string err;
    if (!runner::parseSpecText(spec_v->asString(), spec, &err))
        return jobError("spec parse failed: " + err);

    // Never trust the scheduler's key: publish only under the key
    // this binary derives from the spec it actually runs.
    const std::string derived = max_events
        ? runner::partialKey(spec, max_events)
        : runner::specKey(spec);
    if (derived != key)
        return jobError("key mismatch: daemon sent " + key +
                        ", worker derived " + derived);

    const runner::ResultCache cache(cfg.cache_dir);
    const runner::SnapshotStore snaps(cfg.snapshot_dir);

    nvp::RunResult result;
    if (cache.load(key, result)) {
        std::ostringstream rec;
        nvp::writeRunResultJson(rec, result);
        return JObj()
            .str("type", "done")
            .str("key", key)
            .boolean("executed", false)
            .boolean("worker_cached", true)
            .raw("result", rec.str())
            .text();
    }

    // A drain checkpoint from a previous instance fast-forwards this
    // run; best-effort, since the snapshot may predate a schema
    // change (then we just run cold).
    const std::string dkey = drainKey(runner::resumeKey(spec));
    nvp::SystemSnapshot resume_snap;
    const bool have_resume = snaps.load(dkey, resume_snap);

    nvp::SystemSnapshot cut;
    nvp::RunOptions ro;
    ro.max_events = max_events;
    ro.cut = &cut;
    ro.cut_request = &g_cut_requested;
    if (have_resume) {
        ro.resume = &resume_snap;
        ro.resume_best_effort = true;
    }
    result = nvp::runExperimentEx(spec, ro);

    if (g_cut_requested.load(std::memory_order_relaxed) &&
        !result.completed && cut.valid()) {
        // Cut mid-run by a drain: checkpoint so the next instance
        // resumes instead of restarting, and hand the job back.
        snaps.store(dkey, cut);
        return JObj().str("type", "cut").str("key", key).text();
    }

    cache.store(key, result);
    if (max_events && cut.valid())
        snaps.store(key, cut);

    std::ostringstream rec;
    nvp::writeRunResultJson(rec, result);
    return JObj()
        .str("type", "done")
        .str("key", key)
        .boolean("executed", true)
        .boolean("worker_cached", false)
        .raw("result", rec.str())
        .text();
}

} // anonymous namespace

std::string
drainKey(const std::string &resume_key)
{
    return "drain-" + resume_key;
}

int
runWorkerLoop(int fd, const WorkerConfig &cfg)
{
    installCutHandlers();

    FrameReader reader;
    std::string payload;
    for (;;) {
        const FrameReader::Status st = reader.next(payload);
        if (st == FrameReader::Status::Error) {
            warn("worker: bad frame from daemon: %s",
                 reader.error().c_str());
            return 1;
        }
        if (st == FrameReader::Status::NeedMore) {
            std::string chunk;
            const long n = recvSome(fd, chunk);
            if (n <= 0)
                return 0; // Daemon went away: quiet exit.
            reader.feed(chunk);
            continue;
        }

        util::JsonValue msg;
        std::string err;
        if (!util::parseJson(payload, msg, &err)) {
            if (!sendAll(fd, encodeFrame(errorPayload(
                                 errc::kBadJson, err))))
                return 1;
            continue;
        }
        const std::string type = messageType(msg);
        if (type == "exit")
            return 0;
        if (type != "job") {
            if (!sendAll(fd, encodeFrame(errorPayload(
                                 errc::kUnknownType,
                                 "worker got '" + type + "'"))))
                return 1;
            continue;
        }
        if (!sendAll(fd, encodeFrame(handleJob(msg, cfg))))
            return 1;
        // One cut poisons at most one job; later jobs (after a
        // restart-less drain abort) run normally.
        if (g_cut_requested.load(std::memory_order_relaxed))
            return 0;
    }
}

} // namespace serve
} // namespace wlcache
