/**
 * @file
 * The wlcached daemon: a persistent simulation service. One Server
 * owns the JobQueue, the forked WorkerPool, and the listening socket;
 * each accepted connection gets a Session (the protocol state
 * machine) on its own thread. Sessions submit sweep/campaign/run
 * requests; the heavy engines (explore, verify) run inside the
 * handler thread with a RemoteExecutor that routes every cache-miss
 * job through the shared queue — so overlapping submissions from
 * different clients coalesce into one worker execution whose result
 * fans out to every waiter.
 *
 * Session is deliberately transport-free (bytes in via onBytes(),
 * frames out via a send callback) so the protocol surface is testable
 * without sockets; Server adds the poll()-based accept loop, the
 * SIGTERM/--drain graceful shutdown, and pending-job persistence.
 */

#ifndef WLCACHE_SERVE_SERVER_HH
#define WLCACHE_SERVE_SERVER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runner/job_queue.hh"
#include "serve/frame.hh"
#include "serve/net.hh"
#include "serve/worker_pool.hh"
#include "util/json.hh"

namespace wlcache {
namespace serve {

struct ServerConfig
{
    Address address;
    unsigned workers = 2;      //!< Worker processes in the fleet.
    std::string exe_path;      //!< Binary to re-exec for workers.
    std::string cache_dir;     //!< Shared RunResult cache.
    std::string snapshot_dir;  //!< Shared snapshot store.
    /**
     * Directory for drain persistence (pending.json). Jobs still
     * queued when a drain lands are saved here and re-offered by the
     * next daemon instance. Empty disables persistence.
     */
    std::string state_dir;
};

/**
 * Shared state a Session needs. The Server wires this up; serve_test
 * builds one by hand (pool may be null — stats then report an empty
 * fleet, submits still exercise the queue).
 */
struct ServerContext
{
    runner::JobQueue *queue = nullptr;
    WorkerPool *pool = nullptr;
    std::string cache_dir;
    std::string snapshot_dir;
    std::atomic<bool> draining{ false };
    std::atomic<std::uint64_t> sessions{ 0 };
    /** Hook a client "drain" request triggers; may be null. */
    std::function<void()> request_drain;
};

/**
 * One client connection's protocol state machine. Feed transport
 * bytes in; complete frames are decoded, dispatched, and answered
 * through the send callback. Handlers run on the caller's thread and
 * may block for the duration of a sweep/campaign; progress frames are
 * emitted through the same (thread-safe) callback while the engine
 * runs.
 */
class Session
{
  public:
    /** Ship one encoded frame; must be callable from any thread. */
    using SendFn = std::function<bool(const std::string &bytes)>;

    Session(ServerContext &ctx, SendFn send);

    /**
     * Consume transport bytes. @return false when the connection must
     * close (corrupt framing, version mismatch); a structured error
     * frame has already been sent when possible.
     */
    bool onBytes(const char *data, std::size_t len);
    bool onBytes(const std::string &chunk)
    {
        return onBytes(chunk.data(), chunk.size());
    }

  private:
    bool handlePayload(const std::string &payload);
    bool handleHello(const util::JsonValue &msg);
    void handleStats();
    void handleSubmit(const util::JsonValue &msg);
    void handleSweep(const util::JsonValue &msg, bool progress);
    void handleFleet(const util::JsonValue &msg, bool progress);
    void handleCampaign(const util::JsonValue &msg, bool progress);
    void handleRun(const util::JsonValue &msg);
    bool send(const std::string &payload);
    void sendError(const std::string &code, const std::string &msg);

    ServerContext &ctx_;
    SendFn send_;
    FrameReader reader_;
    bool hello_done_ = false;
};

/** `<state_dir>/pending.json`. */
std::string pendingPath(const std::string &state_dir);

/**
 * Persist @p jobs for the next daemon instance (atomic publish under
 * the state-dir lock).
 */
bool savePendingJobs(const std::string &state_dir,
                     const std::vector<runner::QueueJob> &jobs,
                     std::string *err = nullptr);

/**
 * Load persisted jobs; a missing file is success with an empty list.
 */
bool loadPendingJobs(const std::string &state_dir,
                     std::vector<runner::QueueJob> &out,
                     std::string *err = nullptr);

class Server
{
  public:
    explicit Server(ServerConfig cfg);
    ~Server();

    /**
     * Listen, fork the worker fleet, and re-offer any persisted
     * pending jobs. @return false with @p *err on failure.
     */
    bool start(std::string *err);

    /**
     * Accept/serve until a drain lands (SIGTERM, SIGINT, or a client
     * "drain" request), then shut down gracefully: stop producing
     * work, ask busy workers to checkpoint, persist what is left.
     * @return process exit status.
     */
    int run();

    /** Begin graceful shutdown (callable from any thread). */
    void requestDrain();

  private:
    void handleConnection(int fd);
    void drain();

    ServerConfig cfg_;
    runner::JobQueue queue_;
    std::unique_ptr<WorkerPool> pool_;
    ServerContext ctx_;

    int listen_fd_ = -1;
    int wake_r_ = -1;
    int wake_w_ = -1;

    std::mutex conns_m_;
    std::vector<int> conn_fds_;
    std::vector<std::thread> conn_threads_;

    /** Tickets of re-offered persisted jobs (outcome fans out here). */
    std::vector<runner::JobTicket> reoffered_;
};

} // namespace serve
} // namespace wlcache

#endif // WLCACHE_SERVE_SERVER_HH
