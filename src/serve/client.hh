/**
 * @file
 * Client side of the wlcached protocol: a framed connection with the
 * handshake baked in, plus typed submit helpers shared by
 * wlcache_client and the --server paths of wlcache_explore /
 * wlcache_verify — so every front end serializes requests (and
 * interprets replies) identically.
 */

#ifndef WLCACHE_SERVE_CLIENT_HH
#define WLCACHE_SERVE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "nvp/experiment.hh"
#include "serve/frame.hh"
#include "util/json.hh"

namespace wlcache {
namespace serve {

class Client
{
  public:
    /** Receives each streamed progress line (without newline). */
    using ProgressFn = std::function<void(const std::string &line)>;

    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Connect to "unix:PATH" / "tcp:HOST:PORT" / bare path and
     * perform the hello handshake.
     */
    bool connect(const std::string &addr_spec, std::string *err);

    bool connected() const { return fd_ >= 0; }
    void close();

    /**
     * Send one request payload and read to its final reply,
     * forwarding interleaved {"type":"progress"} frames to
     * @p on_progress. An {"type":"error"} reply is returned as
     * @p reply (not a transport failure); false means the connection
     * itself broke.
     */
    bool call(const std::string &payload, util::JsonValue &reply,
              std::string *err,
              const ProgressFn &on_progress = nullptr);

    /** True when @p reply is a protocol error frame. */
    static bool isError(const util::JsonValue &reply);
    /** "code: message" of an error reply. */
    static std::string errorText(const util::JsonValue &reply);

  private:
    bool readFrame(std::string &payload, std::string *err);

    int fd_ = -1;
    FrameReader reader_;
};

// --- Typed submissions ------------------------------------------------

struct SweepRequest
{
    std::string spec_json; //!< Raw sweep-spec file text.
    std::vector<std::string> objectives;
    std::string mode;      //!< ""|exhaustive|halving.
    unsigned jobs = 0;
    bool progress = false;
};

struct SweepReply
{
    std::string summary;   //!< writeSummaryText() bytes.
    std::string csv;       //!< writeCsv() bytes.
    std::string report_md; //!< writeFrontierMarkdown() bytes.
    std::uint64_t executed = 0;
    std::uint64_t cache_hits = 0;
};

bool submitSweep(Client &c, const SweepRequest &req, SweepReply &out,
                 std::string *err,
                 const Client::ProgressFn &on_progress = nullptr);

struct FleetRequest
{
    std::string spec_json; //!< Raw fleet-spec file text.
    unsigned jobs = 0;
    bool progress = false;
};

struct FleetReply
{
    std::string summary;   //!< writeFleetSummaryText() bytes.
    std::string csv;       //!< writeFleetCsv() bytes.
    std::string report_md; //!< writeFleetMarkdown() bytes.
    std::uint64_t executed = 0;
    std::uint64_t cache_hits = 0;
};

bool submitFleet(Client &c, const FleetRequest &req, FleetReply &out,
                 std::string *err,
                 const Client::ProgressFn &on_progress = nullptr);

struct CampaignRequest
{
    std::string design;    //!< Canonical nvp::designKindName().
    std::string workload;
    std::string trace_kind = "constant";
    bool ambient = false;
    unsigned scale = 1;
    std::uint64_t seed = 42;
    std::uint64_t power_seed = 7;

    std::vector<std::uint64_t> points;
    std::uint64_t stride = 0;
    bool has_window = false;
    std::uint64_t window_begin = 0;
    std::uint64_t window_end = 0;
    std::uint64_t window_step = 1;

    bool bisect = false;
    bool inject_checkpoint_skip = false;
    bool inject_register_skip = false;

    unsigned jobs = 0;
    std::uint64_t snapshot_interval = 0;
    std::uint64_t timeline_window = 64;
    bool progress = false;
};

struct CampaignReply
{
    std::string summary;     //!< writeCampaignSummary() bytes.
    std::string report_json; //!< writeCampaignReportJson() bytes.
    bool golden_clean = false;
    std::uint64_t num_divergent = 0;
};

bool submitCampaign(Client &c, const CampaignRequest &req,
                    CampaignReply &out, std::string *err,
                    const Client::ProgressFn &on_progress = nullptr);

struct RunReply
{
    bool executed = false;
    std::string result_json; //!< Serialized run record.
};

/**
 * Submit one experiment. The client derives the content key and wire
 * spec text locally (runner::specKey / specKeyText), so a version
 * skew against the daemon is caught as a key mismatch.
 */
bool submitRun(Client &c, const nvp::ExperimentSpec &spec,
               RunReply &out, std::string *err);

/** {"type":"ping"} round trip. */
bool pingDaemon(Client &c, std::string *err);
/** Fetch the daemon's stats object. */
bool fetchStats(Client &c, util::JsonValue &out, std::string *err);
/** Ask the daemon to drain (graceful shutdown). */
bool requestDrain(Client &c, std::string *err);

} // namespace serve
} // namespace wlcache

#endif // WLCACHE_SERVE_CLIENT_HH
