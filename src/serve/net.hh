/**
 * @file
 * Minimal socket plumbing for wlcached: address parsing
 * ("unix:/path", "tcp:host:port", or a bare filesystem path),
 * listening/connecting, and whole-buffer send/recv helpers. All
 * blocking; the server multiplexes with one thread per connection
 * and a poll()-based accept loop with a self-pipe for signals.
 */

#ifndef WLCACHE_SERVE_NET_HH
#define WLCACHE_SERVE_NET_HH

#include <cstddef>
#include <string>

namespace wlcache {
namespace serve {

/** Parsed listen/connect endpoint. */
struct Address
{
    enum class Kind { Unix, Tcp };
    Kind kind = Kind::Unix;
    std::string path;          //!< Unix socket path.
    std::string host;          //!< TCP host.
    unsigned short port = 0;   //!< TCP port.

    std::string describe() const;
};

/**
 * Parse "unix:PATH", "tcp:HOST:PORT", or a bare path (treated as a
 * Unix socket). @return false with @p *err set on a malformed spec.
 */
bool parseAddress(const std::string &spec, Address &out,
                  std::string *err);

/**
 * Bind+listen on @p addr. A pre-existing Unix socket file is
 * replaced (daemons re-binding after a crash). @return the listening
 * fd, or -1 with @p *err set.
 */
int listenOn(const Address &addr, std::string *err);

/** Connect to @p addr. @return fd or -1 with @p *err set. */
int connectTo(const Address &addr, std::string *err);

/** Write all of @p data (retrying short writes). False on error. */
bool sendAll(int fd, const std::string &data);

/**
 * Read up to @p cap bytes into @p out (appending).
 * @return bytes read; 0 on orderly EOF; -1 on error.
 */
long recvSome(int fd, std::string &out, std::size_t cap = 65536);

/** Best-effort close (EINTR-safe). */
void closeFd(int fd);

} // namespace serve
} // namespace wlcache

#endif // WLCACHE_SERVE_NET_HH
