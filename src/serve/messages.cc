#include "serve/messages.hh"

#include <cstdio>
#include <sstream>

#include "sim/logging.hh"

namespace wlcache {
namespace serve {

JObj &
JObj::numD(const std::string &key, double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return add(key, util::JsonValue::makeNumber(buf));
}

JObj &
JObj::raw(const std::string &key, const std::string &json_text)
{
    util::JsonValue v;
    std::string err;
    if (!util::parseJson(json_text, v, &err))
        panic("JObj::raw: embedded document is not JSON: %s",
              err.c_str());
    return add(key, std::move(v));
}

std::string
JObj::text()
{
    std::ostringstream os;
    util::writeJsonCompact(os, build());
    return os.str();
}

std::string
errorPayload(const std::string &code, const std::string &message)
{
    return JObj()
        .str("type", "error")
        .str("code", code)
        .str("message", message)
        .text();
}

std::string
messageType(const util::JsonValue &v)
{
    if (!v.isObject())
        return "";
    const util::JsonValue *t = v.get("type");
    return t && t->isString() ? t->asString() : "";
}

} // namespace serve
} // namespace wlcache
