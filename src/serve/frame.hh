/**
 * @file
 * Length-framed NDJSON wire format for the wlcached protocol. Each
 * frame is
 *
 *     <payload length, ASCII decimal>\n
 *     <payload bytes>\n
 *
 * where the payload is one JSON document and the trailing newline is
 * part of the frame (making captures of the stream valid NDJSON once
 * the length lines are stripped). FrameReader consumes an arbitrary
 * byte stream incrementally — partial reads, split frames, and
 * multiple frames per chunk all work — and turns malformed input
 * (non-digit length, oversized payload, missing terminator) into a
 * sticky error instead of a crash or an unbounded buffer.
 */

#ifndef WLCACHE_SERVE_FRAME_HH
#define WLCACHE_SERVE_FRAME_HH

#include <cstddef>
#include <string>

namespace wlcache {
namespace serve {

/** Default ceiling on one frame's payload bytes. */
constexpr std::size_t kDefaultMaxPayload = 64u << 20;

/** Encode one payload as a wire frame. */
std::string encodeFrame(const std::string &payload);

class FrameReader
{
  public:
    enum class Status
    {
        NeedMore, //!< No complete frame buffered yet.
        Frame,    //!< One payload extracted.
        Error,    //!< Stream corrupt; reader is poisoned.
    };

    explicit FrameReader(std::size_t max_payload = kDefaultMaxPayload)
        : max_payload_(max_payload)
    {}

    /** Append raw bytes from the transport. */
    void feed(const char *data, std::size_t len);
    void feed(const std::string &chunk)
    {
        feed(chunk.data(), chunk.size());
    }

    /**
     * Try to extract the next payload. Returns Frame and fills
     * @p payload, NeedMore when the buffer holds no complete frame,
     * or Error once the stream is unrecoverable (sticky: every later
     * call keeps returning Error; error() describes the cause).
     */
    Status next(std::string &payload);

    const std::string &error() const { return error_; }

  private:
    Status fail(const std::string &why);

    const std::size_t max_payload_;
    std::string buf_;
    std::string error_;
    bool poisoned_ = false;
};

} // namespace serve
} // namespace wlcache

#endif // WLCACHE_SERVE_FRAME_HH
