/**
 * @file
 * Cycle-stamped structured event timeline. Components record typed,
 * fixed-size records into a per-simulation ring buffer
 * (TimelineBuffer); when the ring wraps, the oldest events are
 * overwritten and a per-type drop counter remembers what was lost.
 * Recording is observational only — no timing or energy is charged —
 * and a disabled timeline (null pointer at the call site, see
 * WLC_TIMELINE) costs exactly one branch per call site.
 *
 * The buffer is exported after a run as a Chrome/Perfetto trace-event
 * JSON or a compact CSV (telemetry/exporters.hh), and the verify
 * campaign engine attaches a window of the last events before a
 * divergence to its reports.
 */

#ifndef WLCACHE_TELEMETRY_TIMELINE_HH
#define WLCACHE_TELEMETRY_TIMELINE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hh"

namespace wlcache {
namespace telemetry {

/**
 * Format version of the exported timeline (Perfetto `otherData` and
 * the CSV header carry it). Bump whenever the event taxonomy or the
 * meaning of a payload field changes, so downstream tooling (and the
 * CI schema gate) rejects traces it would misread.
 */
inline constexpr std::uint64_t kTimelineSchemaVersion = 4;

/** Typed timeline records (the event taxonomy, DESIGN.md §11). */
enum class EventType : std::uint8_t
{
    OutageBegin,    //!< Voltage fell to Vbackup; outage starts.
    OutageEnd,      //!< Recharge reached Von; power restored.
    Checkpoint,     //!< JIT checkpoint completed.
    Restore,        //!< Boot-time state restoration completed.
    DqInsert,       //!< DirtyQueue insertion (clean->dirty line).
    DqClean,        //!< Asynchronous cleaning issued.
    DqStale,        //!< Stale DirtyQueue entry dropped (§5.4).
    Eviction,       //!< Cache line evicted by a fill.
    NvmRead,        //!< Timed NVM read.
    NvmWrite,       //!< Timed NVM write.
    AdaptDecision,  //!< Boot-time maxline reconfiguration decision.
    CapThreshold,   //!< Capacitor threshold crossing (Vbackup/Von).
    CoreProgress,   //!< Sampled instruction-count progress marker.
    SnapshotTaken,  //!< Deterministic system snapshot captured.
    SnapshotResume, //!< Run resumed from a system snapshot.
    BankConflict,   //!< NVM access gated by pending bank work.
    QueueStall,     //!< NVM access stalled on a full bank queue.
    LogAppend,      //!< Journal record appended (mem/log/).
    LogReplay,      //!< Boot-time journal replay scan completed.
    LogCompact,     //!< Journal segment compacted (lines migrated).
};

/** Number of distinct event types (drop-counter array size). */
inline constexpr std::size_t kNumEventTypes =
    static_cast<std::size_t>(EventType::LogCompact) + 1;

/** Stable lowercase name ("outage_begin", "dq_clean", ...). */
const char *eventTypeName(EventType t);

/** Export track an event type renders on (one Perfetto thread each). */
enum class Track : std::uint8_t
{
    Cache,
    Queue,
    Power,
    Nvm,
    Adapt,
    Core,
};

inline constexpr std::size_t kNumTracks =
    static_cast<std::size_t>(Track::Core) + 1;

Track eventTrack(EventType t);
const char *trackName(Track t);

/**
 * One fixed-size timeline record. The payload fields are generic;
 * their meaning depends on the type (see DESIGN.md §11 for the full
 * table): @c a0 is typically an address, index, or old value; @c a1 a
 * count or new value; @c v a voltage, energy (J), or duration (s).
 */
struct TimelineEvent
{
    Cycle cycle = 0;
    std::uint64_t seq = 0;   //!< Global record order (tie-breaker).
    std::uint64_t a0 = 0;
    std::uint64_t a1 = 0;
    double v = 0.0;
    const char *comp = "";   //!< Component name (static string).
    EventType type = EventType::OutageBegin;
};

/**
 * Fixed-capacity ring of TimelineEvents. All memory is allocated up
 * front; record() never allocates, so it is safe on the simulator's
 * hottest paths. Not thread-safe — one buffer belongs to exactly one
 * simulation instance (the runner gives every job its own).
 */
class TimelineBuffer
{
  public:
    /** @param capacity Ring slots (>= 1); allocated immediately. */
    explicit TimelineBuffer(std::size_t capacity = 65536);

    std::size_t capacity() const { return ring_.size(); }

    /** Events currently held (<= capacity). */
    std::size_t size() const { return count_; }

    /** Every record() call ever made, including overwritten ones. */
    std::uint64_t totalRecorded() const { return seq_; }

    /** Events of type @p t overwritten by ring wrap-around. */
    std::uint64_t dropped(EventType t) const
    {
        return drops_[static_cast<std::size_t>(t)];
    }

    std::uint64_t droppedTotal() const;

    /** Append one record, overwriting the oldest when full. */
    void record(EventType type, Cycle cycle, const char *comp,
                std::uint64_t a0 = 0, std::uint64_t a1 = 0,
                double v = 0.0);

    /** Visit held events oldest-to-newest. */
    void forEach(
        const std::function<void(const TimelineEvent &)> &fn) const;

    /** Held events oldest-to-newest (copy). */
    std::vector<TimelineEvent> snapshot() const;

    /**
     * The last (up to) @p k events stamped at or before @p cycle, in
     * chronological order — the "what led up to it" window the verify
     * campaign attaches to a first-divergence record.
     */
    std::vector<TimelineEvent> lastBefore(Cycle cycle,
                                          std::size_t k) const;

    /** Forget all events and drop counters (capacity unchanged). */
    void clear();

  private:
    std::vector<TimelineEvent> ring_;
    std::size_t head_ = 0;    //!< Next write slot.
    std::size_t count_ = 0;
    std::uint64_t seq_ = 0;
    std::array<std::uint64_t, kNumEventTypes> drops_{};
};

} // namespace telemetry

/**
 * Record a timeline event when a buffer is attached. @p tl is a
 * `telemetry::TimelineBuffer *` that is null when telemetry is
 * disabled — the null check is the disabled path's entire cost.
 * Usage:
 *   WLC_TIMELINE(tl_, DqClean, now, "wl_cache", laddr, dirty);
 */
#define WLC_TIMELINE(tl, type, cycle, comp, ...)                          \
    do {                                                                  \
        if (tl)                                                           \
            (tl)->record(::wlcache::telemetry::EventType::type, cycle,    \
                         comp, ##__VA_ARGS__);                            \
    } while (0)

} // namespace wlcache

#endif // WLCACHE_TELEMETRY_TIMELINE_HH
