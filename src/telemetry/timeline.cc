#include "telemetry/timeline.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace wlcache {
namespace telemetry {

const char *
eventTypeName(EventType t)
{
    switch (t) {
      case EventType::OutageBegin:   return "outage_begin";
      case EventType::OutageEnd:     return "outage_end";
      case EventType::Checkpoint:    return "checkpoint";
      case EventType::Restore:       return "restore";
      case EventType::DqInsert:      return "dq_insert";
      case EventType::DqClean:       return "dq_clean";
      case EventType::DqStale:       return "dq_stale";
      case EventType::Eviction:      return "eviction";
      case EventType::NvmRead:       return "nvm_read";
      case EventType::NvmWrite:      return "nvm_write";
      case EventType::AdaptDecision: return "adapt_decision";
      case EventType::CapThreshold:  return "cap_threshold";
      case EventType::CoreProgress:  return "core_progress";
      case EventType::SnapshotTaken:  return "snapshot_taken";
      case EventType::SnapshotResume: return "snapshot_resume";
      case EventType::BankConflict:   return "bank_conflict";
      case EventType::QueueStall:     return "queue_stall";
      case EventType::LogAppend:      return "log_append";
      case EventType::LogReplay:      return "log_replay";
      case EventType::LogCompact:     return "log_compact";
    }
    panic("unknown EventType %d", static_cast<int>(t));
}

Track
eventTrack(EventType t)
{
    switch (t) {
      case EventType::OutageBegin:
      case EventType::OutageEnd:
      case EventType::Checkpoint:
      case EventType::Restore:
      case EventType::CapThreshold:
      case EventType::SnapshotTaken:
      case EventType::SnapshotResume:
        return Track::Power;
      case EventType::DqInsert:
      case EventType::DqClean:
      case EventType::DqStale:
        return Track::Queue;
      case EventType::Eviction:
        return Track::Cache;
      case EventType::NvmRead:
      case EventType::NvmWrite:
      case EventType::BankConflict:
      case EventType::QueueStall:
      case EventType::LogAppend:
      case EventType::LogReplay:
      case EventType::LogCompact:
        return Track::Nvm;
      case EventType::AdaptDecision:
        return Track::Adapt;
      case EventType::CoreProgress:
        return Track::Core;
    }
    panic("unknown EventType %d", static_cast<int>(t));
}

const char *
trackName(Track t)
{
    switch (t) {
      case Track::Cache: return "cache";
      case Track::Queue: return "queue";
      case Track::Power: return "power";
      case Track::Nvm:   return "nvm";
      case Track::Adapt: return "adapt";
      case Track::Core:  return "core";
    }
    panic("unknown Track %d", static_cast<int>(t));
}

TimelineBuffer::TimelineBuffer(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity))
{
}

std::uint64_t
TimelineBuffer::droppedTotal() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t d : drops_)
        total += d;
    return total;
}

void
TimelineBuffer::record(EventType type, Cycle cycle, const char *comp,
                       std::uint64_t a0, std::uint64_t a1, double v)
{
    TimelineEvent &slot = ring_[head_];
    if (count_ == ring_.size()) {
        // Ring is full: this write overwrites the oldest event.
        ++drops_[static_cast<std::size_t>(slot.type)];
    } else {
        ++count_;
    }
    slot.cycle = cycle;
    slot.seq = seq_++;
    slot.a0 = a0;
    slot.a1 = a1;
    slot.v = v;
    slot.comp = comp;
    slot.type = type;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
}

void
TimelineBuffer::forEach(
    const std::function<void(const TimelineEvent &)> &fn) const
{
    // Oldest event sits at head_ when full, at 0 otherwise.
    const std::size_t start =
        count_ == ring_.size() ? head_ : 0;
    for (std::size_t i = 0; i < count_; ++i)
        fn(ring_[(start + i) % ring_.size()]);
}

std::vector<TimelineEvent>
TimelineBuffer::snapshot() const
{
    std::vector<TimelineEvent> out;
    out.reserve(count_);
    forEach([&out](const TimelineEvent &ev) { out.push_back(ev); });
    return out;
}

std::vector<TimelineEvent>
TimelineBuffer::lastBefore(Cycle cycle, std::size_t k) const
{
    // Events are recorded in nondecreasing cycle order, so the window
    // is a contiguous suffix of everything stamped <= cycle.
    std::vector<TimelineEvent> hits;
    forEach([&hits, cycle](const TimelineEvent &ev) {
        if (ev.cycle <= cycle)
            hits.push_back(ev);
    });
    if (hits.size() > k)
        hits.erase(hits.begin(),
                   hits.begin() + (hits.size() - k));
    return hits;
}

void
TimelineBuffer::clear()
{
    head_ = 0;
    count_ = 0;
    seq_ = 0;
    drops_.fill(0);
}

} // namespace telemetry
} // namespace wlcache
