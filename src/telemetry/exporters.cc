#include "telemetry/exporters.hh"

#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <vector>

namespace wlcache {
namespace telemetry {

namespace {

/** Per-track Perfetto tid; 0 is reserved so tids start at 1. */
int
trackTid(Track t)
{
    return static_cast<int>(t) + 1;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    return out;
}

/** Cycle (ns) as trace-event ts (µs), exactly 3 decimals. */
std::string
tsMicros(Cycle cycle)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u",
                  cycle / 1000, static_cast<unsigned>(cycle % 1000));
    return buf;
}

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

class EventList
{
  public:
    explicit EventList(std::ostream &os) : os_(os) {}

    /** Emit one raw trace-event object body (without braces). */
    void emit(const std::string &body)
    {
        if (!first_)
            os_ << ",\n";
        first_ = false;
        os_ << "    {" << body << "}";
    }

  private:
    std::ostream &os_;
    bool first_ = true;
};

void
emitMetadata(EventList &out, const ExportMeta &meta)
{
    out.emit("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
             "\"tid\":0,\"args\":{\"name\":\"wlcache " +
             jsonEscape(meta.design) + "/" +
             jsonEscape(meta.workload) + "\"}");
    for (std::size_t i = 0; i < kNumTracks; ++i) {
        const Track t = static_cast<Track>(i);
        out.emit("\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":" + std::to_string(trackTid(t)) +
                 ",\"args\":{\"name\":\"" +
                 std::string(trackName(t)) + "\"}");
        // Force track order to match the Track enum, not first-use.
        out.emit("\"name\":\"thread_sort_index\",\"ph\":\"M\","
                 "\"pid\":1,\"tid\":" + std::to_string(trackTid(t)) +
                 ",\"args\":{\"sort_index\":" + std::to_string(i) +
                 "}");
    }
}

void
emitInstant(EventList &out, const TimelineEvent &ev)
{
    out.emit("\"name\":\"" + std::string(eventTypeName(ev.type)) +
             "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" +
             std::to_string(trackTid(eventTrack(ev.type))) +
             ",\"ts\":" + tsMicros(ev.cycle) +
             ",\"args\":{\"comp\":\"" + jsonEscape(ev.comp) +
             "\",\"a0\":" + std::to_string(ev.a0) +
             ",\"a1\":" + std::to_string(ev.a1) +
             ",\"v\":" + num(ev.v) +
             ",\"cycle\":" + std::to_string(ev.cycle) +
             ",\"seq\":" + std::to_string(ev.seq) + "}");
}

void
emitFrame(EventList &out, std::uint64_t index, Cycle begin, Cycle end)
{
    if (end < begin)
        return;
    out.emit("\"name\":\"power_on#" + std::to_string(index) +
             "\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
             std::to_string(trackTid(Track::Power)) +
             ",\"ts\":" + tsMicros(begin) +
             ",\"dur\":" + tsMicros(end - begin) +
             ",\"args\":{\"begin_cycle\":" + std::to_string(begin) +
             ",\"end_cycle\":" + std::to_string(end) + "}");
}

void
emitCounter(EventList &out, const char *name, Cycle cycle,
            const char *series, const std::string &value)
{
    out.emit("\"name\":\"" + std::string(name) +
             "\",\"ph\":\"C\",\"pid\":1,\"ts\":" + tsMicros(cycle) +
             ",\"args\":{\"" + series + "\":" + value + "}");
}

/**
 * Power-on intervals reconstructed from the event stream: the span
 * from run start (or each OutageEnd) to the next OutageBegin (or the
 * last held event) is one frame. Works on a wrapped ring too — the
 * first frame then just starts at the oldest held event.
 */
void
emitPowerFrames(EventList &out, const TimelineBuffer &tl)
{
    if (tl.size() == 0)
        return;
    bool have_begin = false;
    Cycle begin = 0;
    Cycle last = 0;
    std::uint64_t index = 0;
    bool saw_any = false;
    tl.forEach([&](const TimelineEvent &ev) {
        if (!saw_any) {
            saw_any = true;
            have_begin = true;
            begin = ev.cycle;
        }
        last = ev.cycle;
        if (ev.type == EventType::OutageBegin) {
            if (have_begin)
                emitFrame(out, index++, begin, ev.cycle);
            have_begin = false;
        } else if (ev.type == EventType::OutageEnd) {
            have_begin = true;
            begin = ev.cycle;
        }
    });
    if (have_begin)
        emitFrame(out, index, begin, last);
}

void
emitCounters(EventList &out, const TimelineBuffer &tl)
{
    tl.forEach([&](const TimelineEvent &ev) {
        switch (ev.type) {
          case EventType::DqInsert:
          case EventType::DqClean:
          case EventType::DqStale:
            // a1 carries the dirty count after the operation.
            emitCounter(out, "dirty_lines", ev.cycle, "dirty",
                        std::to_string(ev.a1));
            break;
          case EventType::CapThreshold:
          case EventType::OutageBegin:
          case EventType::OutageEnd:
            // v carries the capacitor voltage at the crossing.
            emitCounter(out, "voltage", ev.cycle, "volts",
                        num(ev.v));
            break;
          default:
            break;
        }
    });
}

} // anonymous namespace

void
writePerfettoJson(std::ostream &os, const TimelineBuffer &tl,
                  const ExportMeta &meta)
{
    os << "{\n  \"traceEvents\": [\n";
    EventList out(os);
    emitMetadata(out, meta);
    tl.forEach([&out](const TimelineEvent &ev) {
        emitInstant(out, ev);
    });
    emitPowerFrames(out, tl);
    emitCounters(out, tl);
    os << "\n  ],\n";
    os << "  \"displayTimeUnit\": \"ns\",\n";
    os << "  \"otherData\": {\n";
    os << "    \"schema_version\": " << kTimelineSchemaVersion
       << ",\n";
    os << "    \"design\": \"" << jsonEscape(meta.design) << "\",\n";
    os << "    \"workload\": \"" << jsonEscape(meta.workload)
       << "\",\n";
    os << "    \"events_recorded\": " << tl.totalRecorded() << ",\n";
    os << "    \"events_held\": " << tl.size() << ",\n";
    os << "    \"events_dropped\": " << tl.droppedTotal() << ",\n";
    os << "    \"dropped_by_type\": {";
    bool first = true;
    for (std::size_t i = 0; i < kNumEventTypes; ++i) {
        const EventType t = static_cast<EventType>(i);
        if (tl.dropped(t) == 0)
            continue;
        os << (first ? "" : ", ") << "\"" << eventTypeName(t)
           << "\": " << tl.dropped(t);
        first = false;
    }
    os << "}\n  }\n}\n";
}

void
writeTimelineCsv(std::ostream &os, const TimelineBuffer &tl)
{
    os << "# schema_version=" << kTimelineSchemaVersion
       << " recorded=" << tl.totalRecorded()
       << " dropped=" << tl.droppedTotal() << "\n";
    os << "seq,cycle,type,track,comp,a0,a1,v\n";
    tl.forEach([&os](const TimelineEvent &ev) {
        os << ev.seq << ',' << ev.cycle << ','
           << eventTypeName(ev.type) << ','
           << trackName(eventTrack(ev.type)) << ','
           << ev.comp << ',' << ev.a0 << ',' << ev.a1 << ','
           << num(ev.v) << '\n';
    });
}

} // namespace telemetry
} // namespace wlcache
