/**
 * @file
 * Per-power-interval rollups. A power interval is one contiguous
 * power-on span: run start (or an OutageEnd boot) up to the next
 * OutageBegin (or graceful completion). SystemSim aggregates a small
 * fixed record per interval so run JSON can answer "how did dirty
 * state and cleaning behave between outages #3 and #4" without a full
 * timeline attached.
 */

#ifndef WLCACHE_TELEMETRY_ROLLUP_HH
#define WLCACHE_TELEMETRY_ROLLUP_HH

#include <cstdint>

#include "sim/types.hh"

namespace wlcache {
namespace telemetry {

struct IntervalRollup
{
    std::uint64_t index = 0;       //!< 0-based power-on interval.
    Cycle start_cycle = 0;         //!< Boot (or run start) cycle.
    Cycle end_cycle = 0;           //!< Outage (or completion) cycle.
    std::uint64_t instructions = 0;
    std::uint64_t nvm_writes = 0;
    std::uint64_t cleans = 0;      //!< Async cleanings issued.
    unsigned dirty_high_water = 0; //!< Peak concurrently-dirty lines.
    double checkpoint_j = 0.0;     //!< Energy of the closing ckpt (J).
    double harvested_j = 0.0;      //!< Ambient energy taken in (J).
};

} // namespace telemetry
} // namespace wlcache

#endif // WLCACHE_TELEMETRY_ROLLUP_HH
