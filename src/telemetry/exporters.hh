/**
 * @file
 * Timeline exporters: Chrome/Perfetto trace-event JSON (load the file
 * in ui.perfetto.dev or chrome://tracing) and a compact CSV for
 * scripted analysis. Both are pure functions of a TimelineBuffer —
 * they never mutate it and can be called repeatedly.
 */

#ifndef WLCACHE_TELEMETRY_EXPORTERS_HH
#define WLCACHE_TELEMETRY_EXPORTERS_HH

#include <iosfwd>
#include <string>

#include "telemetry/timeline.hh"

namespace wlcache {
namespace telemetry {

/** Run identity stamped into the exported trace. */
struct ExportMeta
{
    std::string design;
    std::string workload;
};

/**
 * Write the buffer as a Chrome trace-event JSON object. Tracks
 * (cache, queue, power, nvm, adapt, core) render as threads of one
 * process; every event becomes a thread-scoped instant; power-on
 * intervals render as duration ("X") frames on the power track; the
 * dirty-line count and capacitor voltage render as counter tracks.
 * `otherData.schema_version` carries kTimelineSchemaVersion for the
 * CI gate.
 */
void writePerfettoJson(std::ostream &os, const TimelineBuffer &tl,
                       const ExportMeta &meta);

/**
 * Write the buffer as CSV: a `# schema_version=N` comment, a header
 * row, then one `seq,cycle,type,track,comp,a0,a1,v` row per event,
 * oldest first.
 */
void writeTimelineCsv(std::ostream &os, const TimelineBuffer &tl);

} // namespace telemetry
} // namespace wlcache

#endif // WLCACHE_TELEMETRY_EXPORTERS_HH
