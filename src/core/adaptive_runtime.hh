/**
 * @file
 * Boot-time adaptive maxline/waterline management (paper §4). The
 * runtime system measures each power-on interval with a watchdog
 * timer (a 2-byte NVFF-backed value), keeps the last two measurements
 * across outages, and at every reboot compares them: a significantly
 * longer interval implies a good energy source (raise maxline, act
 * more like write-back); a significantly shorter one implies a poor
 * source (lower maxline, act more like write-through). Thresholds
 * never change mid-interval — reconfiguration happens only at boot,
 * where Vbackup can be adjusted safely.
 */

#ifndef WLCACHE_CORE_ADAPTIVE_RUNTIME_HH
#define WLCACHE_CORE_ADAPTIVE_RUNTIME_HH

#include <cstdint>

#include "sim/stats.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace core {

/** Adaptive-management tunables. */
struct AdaptiveConfig
{
    bool enabled = true;
    /** Relative change in power-on time considered significant. */
    double delta = 0.15;
    unsigned maxline_min = 2;
    unsigned maxline_max = 6;
    /** Watchdog timer tick (2-byte counter => 65.5 ms range). */
    double timer_resolution_s = 1.0e-6;
};

/** Direction of a boot-time reconfiguration decision. */
enum class AdaptDecision
{
    Keep,
    Raise,
    Lower,
};

/**
 * The adaptive controller. Owns the NVFF-resident state: the last
 * two quantized power-on times and the current maxline.
 */
class AdaptiveRuntime
{
  public:
    AdaptiveRuntime(const AdaptiveConfig &cfg, unsigned initial_maxline);

    /**
     * Called at each reboot with the measured duration of the
     * just-finished power-on interval.
     * @return the maxline to use for the next interval.
     */
    unsigned onBoot(double prev_on_time_s);

    unsigned maxline() const { return maxline_; }
    const AdaptiveConfig &config() const { return cfg_; }

    /** Direction of the most recent onBoot() decision. */
    AdaptDecision lastDecision() const { return last_decision_; }

    /** Quantize a duration the way the 2-byte watchdog NVFF would. */
    std::uint16_t quantize(double seconds) const;

    /** NVFF bytes this runtime persists across outages (§5.5). */
    static constexpr unsigned kNvffBytes = 2 /*maxline+waterline*/ +
                                           2 * 2 /*two timers*/;

    // --- Reported statistics (paper §6.6) ---
    unsigned reconfigurations() const { return reconfigs_; }
    unsigned observedMaxlineMin() const { return observed_min_; }
    unsigned observedMaxlineMax() const { return observed_max_; }
    /** Fraction of boot-time decisions the next interval validated. */
    double predictionAccuracy() const;

    /** Reset history and statistics (new experiment). */
    void reset(unsigned initial_maxline);

    /** Serialize the controller's mutable state. */
    void saveState(SnapshotWriter &w) const;

    /** Restore a state saved with saveState(). */
    void restoreState(SnapshotReader &r);

  private:
    AdaptDecision decide(std::uint16_t t_prev2,
                         std::uint16_t t_prev1) const;

    AdaptiveConfig cfg_;
    unsigned maxline_;
    std::uint16_t t_n2_ = 0;  //!< T[n-2], quantized.
    std::uint16_t t_n1_ = 0;  //!< T[n-1], quantized.
    unsigned boots_ = 0;
    unsigned reconfigs_ = 0;
    unsigned observed_min_;
    unsigned observed_max_;
    AdaptDecision last_decision_ = AdaptDecision::Keep;
    bool cooldown_ = false;  //!< Skip one comparison after a change.
    bool have_pending_prediction_ = false;
    unsigned predictions_ = 0;
    unsigned correct_predictions_ = 0;
};

} // namespace core
} // namespace wlcache

#endif // WLCACHE_CORE_ADAPTIVE_RUNTIME_HH
