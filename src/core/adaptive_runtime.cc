#include "core/adaptive_runtime.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace wlcache {
namespace core {

AdaptiveRuntime::AdaptiveRuntime(const AdaptiveConfig &cfg,
                                 unsigned initial_maxline)
    : cfg_(cfg), maxline_(initial_maxline),
      observed_min_(initial_maxline), observed_max_(initial_maxline)
{
    wlc_assert(cfg_.maxline_min >= 1);
    wlc_assert(cfg_.maxline_min <= cfg_.maxline_max);
    wlc_assert(cfg_.delta > 0.0);
    maxline_ = std::clamp(maxline_, cfg_.maxline_min, cfg_.maxline_max);
}

std::uint16_t
AdaptiveRuntime::quantize(double seconds) const
{
    const double ticks = seconds / cfg_.timer_resolution_s;
    if (ticks >= 65535.0)
        return 65535;
    if (ticks <= 0.0)
        return 0;
    return static_cast<std::uint16_t>(std::lround(ticks));
}

AdaptDecision
AdaptiveRuntime::decide(std::uint16_t t_prev2, std::uint16_t t_prev1) const
{
    const double a = static_cast<double>(t_prev2);
    const double b = static_cast<double>(t_prev1);
    if (a <= 0.0)
        return AdaptDecision::Keep;
    if (b > a * (1.0 + cfg_.delta))
        return AdaptDecision::Raise;
    if (b < a * (1.0 - cfg_.delta))
        return AdaptDecision::Lower;
    return AdaptDecision::Keep;
}

unsigned
AdaptiveRuntime::onBoot(double prev_on_time_s)
{
    const std::uint16_t t_new = quantize(prev_on_time_s);

    // Grade the previous boot's decision against the interval it
    // predicted (paper §6.6 reports >98% accuracy).
    if (have_pending_prediction_) {
        ++predictions_;
        const double prev = static_cast<double>(t_n1_);
        const double cur = static_cast<double>(t_new);
        bool correct = true;
        if (last_decision_ == AdaptDecision::Raise)
            correct = cur >= prev * (1.0 - cfg_.delta);
        else if (last_decision_ == AdaptDecision::Lower)
            correct = cur <= prev * (1.0 + cfg_.delta);
        if (correct)
            ++correct_predictions_;
    }

    // Shift the NVFF history window.
    t_n2_ = t_n1_;
    t_n1_ = t_new;
    ++boots_;

    if (!cfg_.enabled || boots_ < 2) {
        have_pending_prediction_ = false;
        return maxline_;
    }

    // A reconfiguration moves Von/Vbackup, which changes the length
    // of the next power-on interval regardless of the energy source.
    // Comparing across the change would read our own adjustment as a
    // source-quality trend and ratchet the threshold, so the first
    // interval after a change only re-baselines the watchdog history.
    if (cooldown_) {
        cooldown_ = false;
        have_pending_prediction_ = false;
        return maxline_;
    }

    const AdaptDecision d = decide(t_n2_, t_n1_);
    last_decision_ = d;
    have_pending_prediction_ = true;

    unsigned next = maxline_;
    if (d == AdaptDecision::Raise && maxline_ < cfg_.maxline_max)
        next = maxline_ + 1;
    else if (d == AdaptDecision::Lower && maxline_ > cfg_.maxline_min)
        next = maxline_ - 1;

    if (next != maxline_) {
        ++reconfigs_;
        maxline_ = next;
        observed_min_ = std::min(observed_min_, maxline_);
        observed_max_ = std::max(observed_max_, maxline_);
        cooldown_ = true;
    }
    return maxline_;
}

double
AdaptiveRuntime::predictionAccuracy() const
{
    if (predictions_ == 0)
        return 1.0;
    return static_cast<double>(correct_predictions_) /
        static_cast<double>(predictions_);
}

void
AdaptiveRuntime::reset(unsigned initial_maxline)
{
    maxline_ =
        std::clamp(initial_maxline, cfg_.maxline_min, cfg_.maxline_max);
    t_n2_ = t_n1_ = 0;
    boots_ = 0;
    reconfigs_ = 0;
    observed_min_ = observed_max_ = maxline_;
    last_decision_ = AdaptDecision::Keep;
    cooldown_ = false;
    have_pending_prediction_ = false;
    predictions_ = 0;
    correct_predictions_ = 0;
}

void
AdaptiveRuntime::saveState(SnapshotWriter &w) const
{
    w.section("ADPT");
    w.u32(maxline_);
    w.u32(t_n2_);
    w.u32(t_n1_);
    w.u32(boots_);
    w.u32(reconfigs_);
    w.u32(observed_min_);
    w.u32(observed_max_);
    w.u8(static_cast<std::uint8_t>(last_decision_));
    w.b(cooldown_);
    w.b(have_pending_prediction_);
    w.u32(predictions_);
    w.u32(correct_predictions_);
}

void
AdaptiveRuntime::restoreState(SnapshotReader &r)
{
    r.section("ADPT");
    maxline_ = r.u32();
    t_n2_ = static_cast<std::uint16_t>(r.u32());
    t_n1_ = static_cast<std::uint16_t>(r.u32());
    boots_ = r.u32();
    reconfigs_ = r.u32();
    observed_min_ = r.u32();
    observed_max_ = r.u32();
    last_decision_ = static_cast<AdaptDecision>(r.u8());
    cooldown_ = r.b();
    have_pending_prediction_ = r.b();
    predictions_ = r.u32();
    correct_predictions_ = r.u32();
}

} // namespace core
} // namespace wlcache
