#include "core/wl_cache.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "sim/trace_log.hh"
#include "telemetry/timeline.hh"

namespace wlcache {
namespace core {

WLCache::WLCache(const cache::CacheParams &params, const WlParams &wl,
                 mem::NvmMemory &nvm, energy::EnergyMeter *meter)
    : WLCache("wl_cache", params, wl, nvm, meter)
{
}

WLCache::WLCache(const std::string &name,
                 const cache::CacheParams &params, const WlParams &wl,
                 mem::NvmMemory &nvm, energy::EnergyMeter *meter)
    : BaseTagCache(name, params, nvm, meter), wl_(wl),
      dq_(wl.dq_size, wl.dq_repl), wl_stats_(stat_group_)
{
    wlc_assert(wl_.maxline >= 1 && wl_.maxline <= wl_.dq_size,
               "maxline must be in [1, |DirtyQueue|]");
}

void
WLCache::chargeDqAccess()
{
    if (meter_)
        meter_->add(energy::EnergyCategory::CacheWrite,
                    wl_.dq_access_energy);
}

void
WLCache::tick(Cycle now)
{
    // Step 4 of the replacement protocol: remove entries whose
    // write-back ACK has arrived.
    dq_.completeInFlight(now);
}

bool
WLCache::cleanOne(Cycle now)
{
    const auto slot = dq_.selectVictim();
    if (!slot)
        return false;
    chargeDqAccess();
    const Addr laddr = dq_.entry(*slot).line_addr;
    const auto ref = tags_.lookup(laddr);
    if (!ref || !tags_.dirty(*ref)) {
        // Stale entry (§5.4): the line was evicted or already cleaned.
        WLC_DPRINTF(trace::kQueue, now, "wl_cache",
                    "stale DQ entry 0x%llx dropped",
                    static_cast<unsigned long long>(laddr));
        WLC_TIMELINE(tl_, DqStale, now, "wl_cache", laddr,
                     tags_.dirtyCount());
        dq_.remove(*slot);
        ++wl_stats_.stale_drops;
        return true;
    }
    // Step 1: mark the line clean *before* launching the write-back,
    // so a racing store to the same line re-inserts into the queue.
    tags_.setDirty(*ref, false);
    // Step 2: asynchronous write-back; the line stays in the cache.
    chargeLineRead();
    const Cycle ready = persistLine(laddr, tags_.data(*ref),
                                    tags_.lineBytes(), now);
    ++stats_.writebacks;
    ++wl_stats_.cleanings;
    WLC_DPRINTF(trace::kQueue, now, "wl_cache",
                "clean 0x%llx (dirty=%u/%u, ack@%llu)",
                static_cast<unsigned long long>(laddr),
                tags_.dirtyCount(), wl_.maxline,
                static_cast<unsigned long long>(ready));
    WLC_TIMELINE(tl_, DqClean, now, "wl_cache", laddr,
                 tags_.dirtyCount());
    // Steps 3-4 complete via tick()/completeInFlight at the ACK.
    dq_.markInFlight(*slot, ready);
    return true;
}

Cycle
WLCache::cleanAboveWaterline(Cycle now)
{
    while (tags_.dirtyCount() > waterline()) {
        // Dynamic adaptation (§4): rather than write a line back due
        // to the waterline constraint, raise maxline when the
        // capacitor can afford to JIT-checkpoint one more line.
        if (try_reserve_ && wl_.maxline < wl_.dq_size &&
            try_reserve_(lineCheckpointEnergy())) {
            ++wl_.maxline;
            ++wl_stats_.dyn_maxline_raises;
            continue;
        }
        if (!cleanOne(now))
            break;
    }
    return now;
}

Cycle
WLCache::ensureDirtyCapacity(Cycle now)
{
    Cycle t = now;
    bool stalled = false;
    for (;;) {
        tick(t);
        const bool at_maxline = tags_.dirtyCount() >= wl_.maxline;
        if (!at_maxline && !dq_.full())
            break;

        // Opportunistic dynamic adaptation (§4): if the capacitor can
        // afford checkpointing one more line, raise maxline instead
        // of stalling.
        if (at_maxline && !dq_.full() && wl_.maxline < wl_.dq_size &&
            try_reserve_ && try_reserve_(lineCheckpointEnergy())) {
            ++wl_.maxline;
            ++wl_stats_.dyn_maxline_raises;
            continue;
        }

        if (const auto ready = dq_.earliestInFlightReady()) {
            if (*ready > t) {
                if (!stalled) {
                    stalled = true;
                    ++wl_stats_.store_stalls;
                    WLC_DPRINTF(trace::kQueue, t, "wl_cache",
                                "store stalls until %llu (§5.1)",
                                static_cast<unsigned long long>(
                                    *ready));
                }
                stats_.stall_cycles += *ready - t;
                t = *ready;
            }
            continue;
        }
        // No write-back outstanding: launch one and wait for it.
        if (!cleanOne(t)) {
            panic("DirtyQueue wedged: %u dirty lines, %u slots used, "
                  "nothing pending",
                  tags_.dirtyCount(), dq_.size());
        }
    }
    return t;
}

cache::CacheAccessResult
WLCache::access(MemOp op, Addr addr, unsigned bytes, std::uint64_t value,
                std::uint64_t *load_out, Cycle now)
{
    tick(now);
    auto ref = tags_.lookup(addr);

    if (op == MemOp::Load) {
        // The decoupled DirtyQueue is off the load path (§3.3): hits
        // and misses behave exactly like a conventional SRAM cache.
        ++stats_.loads;
        if (ref) {
            ++stats_.load_hits;
            tags_.touch(*ref);
            chargeArrayRead();
            chargeReplUpdate();
            if (load_out)
                *load_out = readLineData(*ref, addr, bytes);
            if (probe_)
                probe_(now + params_.hit_latency);
            return { now + params_.hit_latency, true };
        }
        const auto [line, ready] =
            fillLine(addr, now + params_.miss_lookup_latency);
        chargeArrayRead();
        chargeReplUpdate();
        if (load_out)
            *load_out = readLineData(line, addr, bytes);
        if (probe_)
            probe_(ready + params_.hit_latency);
        return { ready + params_.hit_latency, false };
    }

    ++stats_.stores;
    Cycle t = now;
    bool hit = false;
    if (ref) {
        hit = true;
        ++stats_.store_hits;
    } else {
        // Write-allocate: the fill may evict a dirty victim, leaving
        // its DirtyQueue entry stale (§5.4).
        const auto [line, ready] =
            fillLine(addr, now + params_.miss_lookup_latency);
        ref = line;
        t = ready;
    }

    const Addr laddr = tags_.lineAddrOf(addr);
    const bool was_dirty = tags_.dirty(*ref);
    if (!was_dirty) {
        // Clean -> dirty transition: insertion protocol (§5.1).
        t = ensureDirtyCapacity(t);
        // The fill/stall above cannot have re-dirtied this line.
        for (unsigned i = 0; i < dq_.capacity(); ++i) {
            const auto &e = dq_.entry(i);
            if (e.state != DqEntryState::Free && e.line_addr == laddr) {
                ++wl_stats_.redundant_entries;
                break;
            }
        }
        const auto slot = dq_.insert(laddr);
        wlc_assert(slot.has_value(),
                   "DirtyQueue full after capacity check");
        chargeDqAccess();
        tags_.setDirty(*ref, true);
        WLC_TIMELINE(tl_, DqInsert, t, "wl_cache", laddr,
                     tags_.dirtyCount());
    } else if (wl_.dq_repl == cache::ReplPolicy::LRU) {
        // DQ-LRU needs per-store recency updates, which is exactly
        // the search cost §6.4 blames for LRU losing to FIFO.
        dq_.touch(laddr);
        if (meter_)
            meter_->add(energy::EnergyCategory::CacheWrite,
                        wl_.dq_lru_search_energy);
    }

    tags_.touch(*ref);
    writeLineData(*ref, addr, bytes, value);
    chargeArrayWrite();
    chargeReplUpdate();

    t = cleanAboveWaterline(t);
    if (probe_)
        probe_(t + params_.write_hit_latency);
    return { t + params_.write_hit_latency, hit };
}

Cycle
WLCache::checkpoint(Cycle now)
{
    wl_stats_.dirty_at_ckpt.sample(tags_.dirtyCount());
    Cycle t = now;
    unsigned persisted = 0;
    for (unsigned i = 0; i < dq_.capacity(); ++i) {
        const DqEntry &e = dq_.entry(i);
        if (e.state == DqEntryState::Free)
            continue;
        chargeDqAccess();
        if (e.state == DqEntryState::Pending) {
            const auto ref = tags_.lookup(e.line_addr);
            if (ref && tags_.dirty(*ref)) {
                chargeLineRead();
                t = persistLine(e.line_addr, tags_.data(*ref),
                                tags_.lineBytes(), t);
                tags_.setDirty(*ref, false);
                ++persisted;
            } else {
                ++wl_stats_.stale_drops;
            }
        }
        // InFlight entries were already cleaned (step 1 ran), so the
        // NVM holds their data; re-writing would merely be redundant.
    }
    stats_.checkpoint_lines += persisted;
    WLC_DPRINTF(trace::kPower, now, "wl_cache",
                "JIT checkpoint persisted %u line(s), done@%llu",
                persisted, static_cast<unsigned long long>(t));
    WLC_TIMELINE(tl_, Checkpoint, now, "wl_cache", persisted,
                 t - now);
    wlc_assert(persisted <= wl_.maxline,
               "JIT checkpoint exceeded the maxline bound");
    dq_.clear();
    if (probe_)
        probe_(t);
    return t;
}

void
WLCache::powerLoss()
{
    tags_.invalidateAll();
    dq_.clear();
}

Cycle
WLCache::drainAndFlush(Cycle now)
{
    Cycle t = now;
    // Wait out any in-flight cleanings.
    for (unsigned i = 0; i < dq_.capacity(); ++i) {
        const DqEntry &e = dq_.entry(i);
        if (e.state == DqEntryState::InFlight)
            t = std::max(t, e.wb_ready);
    }
    tick(t);
    tags_.forEachValidLine([&](cache::LineRef ref, Addr, bool dirty) {
        if (dirty) {
            t = writeBackLine(ref, t);
            tags_.setDirty(ref, false);
        }
    });
    dq_.clear();
    return t;
}

double
WLCache::lineCheckpointEnergy() const
{
    return nvm_.params().writeEnergy(tags_.lineBytes()) +
        params_.line_read_energy;
}

double
WLCache::checkpointEnergyBound() const
{
    return static_cast<double>(wl_.maxline) * lineCheckpointEnergy() +
        static_cast<double>(wl_.dq_size) * wl_.dq_access_energy;
}

double
WLCache::leakageWatts() const
{
    return params_.leakage_watts + wl_.dq_leakage_watts;
}

void
WLCache::setMaxline(unsigned maxline)
{
    wlc_assert(maxline >= 1 && maxline <= wl_.dq_size,
               "maxline %u out of range [1, %u]", maxline, wl_.dq_size);
    wl_.maxline = maxline;
}

void
WLCache::onDirtyEviction(Addr line_addr)
{
    if (!wl_.eager_evict_cleanup) {
        // §5.4 default: the entry goes stale and is dropped lazily
        // when selected for cleaning or checkpointing.
        return;
    }
    // Ablation: CAM-search the queue and release the slot now.
    if (meter_)
        meter_->add(energy::EnergyCategory::CacheWrite,
                    wl_.dq_cam_search_energy);
    for (unsigned i = 0; i < dq_.capacity(); ++i) {
        const DqEntry &e = dq_.entry(i);
        if (e.state == DqEntryState::Pending &&
            e.line_addr == line_addr) {
            dq_.remove(i);
            return;
        }
    }
}

void
WLCache::saveState(SnapshotWriter &w) const
{
    BaseTagCache::saveState(w);
    w.section("WLC ");
    w.u32(wl_.maxline);
    dq_.saveState(w);
}

void
WLCache::restoreState(SnapshotReader &r)
{
    BaseTagCache::restoreState(r);
    r.section("WLC ");
    setMaxline(r.u32());
    dq_.restoreState(r);
}

} // namespace core
} // namespace wlcache
