/**
 * @file
 * WL-Cache: the paper's contribution. A volatile SRAM write-back
 * cache whose number of dirty lines is bounded by a reconfigurable
 * maxline threshold tracked in a DirtyQueue. When the dirty count
 * exceeds the waterline threshold, one line is *cleaned* — written
 * back asynchronously and left in the cache in the clean state —
 * overlapping the NVM write with subsequent instructions (§3.1).
 * When the dirty count would exceed maxline, the store stalls (§5.1).
 * A JIT checkpoint flushes the bounded set of dirty lines, so only
 * maxline line-writes worth of capacitor energy must be reserved.
 */

#ifndef WLCACHE_CORE_WL_CACHE_HH
#define WLCACHE_CORE_WL_CACHE_HH

#include <functional>

#include "cache/base_tag_cache.hh"
#include "core/dirty_queue.hh"

namespace wlcache {
namespace core {

/** WL-Cache configuration knobs (paper §3, §6.1 defaults). */
struct WlParams
{
    unsigned dq_size = 8;          //!< DirtyQueue slots.
    unsigned maxline = 6;          //!< Initial dirty-line bound.
    unsigned waterline_gap = 1;    //!< waterline = maxline - gap.
    cache::ReplPolicy dq_repl = cache::ReplPolicy::FIFO;

    /** Energy of one DirtyQueue access (CACTI-lite, §6.2). */
    double dq_access_energy = 0.8e-12;
    /** DirtyQueue + control logic leakage (paper §6.2: 0.1 mW). */
    double dq_leakage_watts = 0.1e-3;
    /** Extra DQ search energy per store when dq_repl is LRU. */
    double dq_lru_search_energy = 1.5e-12;

    /**
     * Ablation of §5.4: eagerly drop the DirtyQueue entry when its
     * line is evicted (requires a CAM search the paper avoids; extra
     * energy charged per eviction). Default is the paper's lazy
     * stale-entry scheme.
     */
    bool eager_evict_cleanup = false;
    double dq_cam_search_energy = 4.0e-12;

    unsigned waterline() const
    {
        return maxline > waterline_gap ? maxline - waterline_gap : 0;
    }
};

/** WL-Cache statistics beyond the common CacheStats. */
struct WlStats
{
    explicit WlStats(stats::StatGroup &g)
        : cleanings(g.addScalar("cleanings",
                                "asynchronous line cleanings issued")),
          stale_drops(g.addScalar("stale_drops",
                                  "stale DQ entries dropped (§5.4)")),
          store_stalls(g.addScalar("store_stalls",
                                   "stores stalled at maxline")),
          redundant_entries(
              g.addScalar("redundant_entries",
                          "duplicate DQ inserts (§5.3 race)")),
          dyn_maxline_raises(
              g.addScalar("dyn_maxline_raises",
                          "dynamic maxline increments (§4)")),
          dirty_at_ckpt(g.addDistribution(
              "dirty_at_ckpt", "dirty lines seen by JIT checkpoints"))
    {}

    stats::Scalar &cleanings;
    stats::Scalar &stale_drops;
    stats::Scalar &store_stalls;
    stats::Scalar &redundant_entries;
    stats::Scalar &dyn_maxline_raises;
    stats::Distribution &dirty_at_ckpt;
};

/** The Write-Light cache. */
class WLCache : public cache::BaseTagCache
{
  public:
    /**
     * Callback used by opportunistic dynamic adaptation (§4): asks
     * the platform whether @p extra_joules more checkpoint reserve
     * can be secured right now; returns true (and raises Vbackup) on
     * success.
     */
    using TryReserveFn = std::function<bool(double extra_joules)>;

    WLCache(const cache::CacheParams &params, const WlParams &wl,
            mem::NvmMemory &nvm, energy::EnergyMeter *meter);

  protected:
    /** For derived designs (WL-Log) wanting their own stats name. */
    WLCache(const std::string &name, const cache::CacheParams &params,
            const WlParams &wl, mem::NvmMemory &nvm,
            energy::EnergyMeter *meter);

  public:

    cache::CacheAccessResult access(MemOp op, Addr addr, unsigned bytes,
                                    std::uint64_t value,
                                    std::uint64_t *load_out,
                                    Cycle now) override;

    void tick(Cycle now) override;
    Cycle checkpoint(Cycle now) override;
    void powerLoss() override;
    Cycle drainAndFlush(Cycle now) override;
    double checkpointEnergyBound() const override;
    double leakageWatts() const override;
    const char *designName() const override { return "WL-Cache"; }

    std::uint64_t cleaningsIssued() const override
    {
        return static_cast<std::uint64_t>(wl_stats_.cleanings.value());
    }

    // --- Threshold management (boot-time, §4/§5.5) ---

    /** Reconfigure maxline (waterline follows at the configured gap). */
    void setMaxline(unsigned maxline);

    unsigned maxline() const { return wl_.maxline; }
    unsigned waterline() const { return wl_.waterline(); }
    const WlParams &wlParams() const { return wl_; }
    const DirtyQueue &dirtyQueue() const { return dq_; }
    unsigned dirtyLineCount() const { return tags_.dirtyCount(); }
    const WlStats &wlStats() const { return wl_stats_; }

    /**
     * Checkpoint-reserve energy for one additional dirty line.
     * Virtual: log-structured persists cost a slot-sized (header +
     * payload) NVM write instead of a bare line write.
     */
    virtual double lineCheckpointEnergy() const;

    /** Enable opportunistic dynamic maxline adaptation (§4). */
    void enableDynamicAdaptation(TryReserveFn fn)
    {
        try_reserve_ = std::move(fn);
    }

    /**
     * Observation hook fired after every completed access and after
     * every JIT checkpoint: property tests attach one to assert the
     * DirtyQueue invariants — dirty lines never exceed maxline;
     * cleaning engages above the waterline — at every step of a run
     * instead of only at hand-picked instants. Purely observational:
     * no timing or energy is charged.
     */
    using ProbeFn = std::function<void(Cycle now)>;
    void setAccessProbe(ProbeFn fn) { probe_ = std::move(fn); }

    /**
     * Serialize tags/stats (base), the DirtyQueue, and the current
     * maxline. The reserve/probe callbacks are reattached by the
     * owning system, not serialized.
     */
    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

  protected:
    void onDirtyEviction(Addr line_addr) override;

  private:
    void chargeDqAccess();

    /**
     * Waterline protocol (§5.2/§5.3): while the dirty count exceeds
     * the waterline, select a victim, mark it clean (step 1), and
     * launch the asynchronous write-back (step 2).
     */
    Cycle cleanAboveWaterline(Cycle now);

    /** Issue one cleaning; @return issue time (entry goes InFlight). */
    bool cleanOne(Cycle now);

    /**
     * Block until a store may create a new dirty line: the dirty
     * count must be below maxline and a DQ slot must be free (§5.1).
     * @return possibly-advanced cycle after stalling.
     */
    Cycle ensureDirtyCapacity(Cycle now);

    WlParams wl_;
    DirtyQueue dq_;
    WlStats wl_stats_;
    TryReserveFn try_reserve_;
    ProbeFn probe_;
};

} // namespace core
} // namespace wlcache

#endif // WLCACHE_CORE_WL_CACHE_HH
