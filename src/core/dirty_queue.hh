/**
 * @file
 * The DirtyQueue (paper §3, §5): a small hardware structure that
 * tracks the addresses of dirty cache lines. Entries move through a
 * Pending -> InFlight lifecycle: Pending while the line is dirty (or
 * stale, see §5.4), InFlight while an asynchronous write-back is
 * outstanding; the entry is removed only after the write-back ACK
 * (§5.3 step 4), which is what makes the cleaning protocol
 * failure-atomic. Duplicate addresses are permitted (§5.3): a store
 * that re-dirties a line whose clean-back is still in flight inserts
 * a second entry rather than searching for the old one.
 */

#ifndef WLCACHE_CORE_DIRTY_QUEUE_HH
#define WLCACHE_CORE_DIRTY_QUEUE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/cache_params.hh"
#include "sim/types.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace core {

/** Lifecycle state of a DirtyQueue entry. */
enum class DqEntryState : std::uint8_t
{
    Free,
    Pending,   //!< Tracking a (possibly stale) dirty line.
    InFlight,  //!< Asynchronous write-back outstanding.
};

/** One DirtyQueue slot. */
struct DqEntry
{
    DqEntryState state = DqEntryState::Free;
    Addr line_addr = 0;
    std::uint64_t insert_seq = 0;  //!< FIFO order.
    std::uint64_t touch_seq = 0;   //!< LRU order (last store).
    Cycle wb_ready = 0;            //!< ACK cycle while InFlight.
};

/**
 * Fixed-capacity queue of dirty-line addresses with FIFO or LRU
 * victim selection among Pending entries.
 */
class DirtyQueue
{
  public:
    /**
     * @param capacity Number of hardware slots (paper default 8).
     * @param repl Replacement policy among pending entries.
     */
    DirtyQueue(unsigned capacity, cache::ReplPolicy repl);

    unsigned capacity() const { return capacity_; }
    cache::ReplPolicy policy() const { return repl_; }

    /** Occupied slots (Pending + InFlight). */
    unsigned size() const { return occupied_; }

    /** Pending entries only. */
    unsigned pendingCount() const;

    bool full() const { return occupied_ == capacity_; }
    bool empty() const { return occupied_ == 0; }

    /**
     * Insert a newly dirty line address.
     * @return slot index, or nullopt when the queue is full.
     */
    std::optional<unsigned> insert(Addr line_addr);

    /**
     * Refresh the LRU recency of the *youngest* pending entry for
     * @p line_addr (a store hit on an already-dirty line). No-op if
     * no pending entry matches.
     */
    void touch(Addr line_addr);

    /**
     * Select the replacement victim among Pending entries: FIFO picks
     * the oldest insertion, LRU the least recently stored-to.
     * @return slot index, or nullopt if nothing is pending.
     */
    std::optional<unsigned> selectVictim() const;

    /** Transition a Pending entry to InFlight with its ACK cycle. */
    void markInFlight(unsigned slot, Cycle wb_ready);

    /** Release a slot (ACK arrived, or a stale entry was dropped). */
    void remove(unsigned slot);

    /** Earliest ACK cycle among InFlight entries, if any. */
    std::optional<Cycle> earliestInFlightReady() const;

    /** Release every InFlight slot whose ACK cycle is <= @p now. */
    void completeInFlight(Cycle now);

    /** Access a slot (checkpoint walks, tests). */
    const DqEntry &entry(unsigned slot) const;

    /** Drop all entries (power loss / post-checkpoint). */
    void clear();

    /** Serialize every slot plus the sequence/occupancy counters. */
    void saveState(SnapshotWriter &w) const;

    /** Restore a state saved with saveState(). */
    void restoreState(SnapshotReader &r);

  private:
    unsigned capacity_;
    cache::ReplPolicy repl_;
    std::vector<DqEntry> slots_;
    std::uint64_t seq_ = 0;
    unsigned occupied_ = 0;
};

} // namespace core
} // namespace wlcache

#endif // WLCACHE_CORE_DIRTY_QUEUE_HH
