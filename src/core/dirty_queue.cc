#include "core/dirty_queue.hh"

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace wlcache {
namespace core {

DirtyQueue::DirtyQueue(unsigned capacity, cache::ReplPolicy repl)
    : capacity_(capacity), repl_(repl), slots_(capacity)
{
    wlc_assert(capacity_ > 0);
}

unsigned
DirtyQueue::pendingCount() const
{
    unsigned n = 0;
    for (const auto &e : slots_)
        if (e.state == DqEntryState::Pending)
            ++n;
    return n;
}

std::optional<unsigned>
DirtyQueue::insert(Addr line_addr)
{
    for (unsigned i = 0; i < capacity_; ++i) {
        if (slots_[i].state == DqEntryState::Free) {
            DqEntry &e = slots_[i];
            e.state = DqEntryState::Pending;
            e.line_addr = line_addr;
            e.insert_seq = ++seq_;
            e.touch_seq = seq_;
            e.wb_ready = 0;
            ++occupied_;
            return i;
        }
    }
    return std::nullopt;
}

void
DirtyQueue::touch(Addr line_addr)
{
    // Refresh the youngest pending entry for this address; older
    // duplicates are stale w.r.t. the new store.
    int best = -1;
    std::uint64_t best_seq = 0;
    for (unsigned i = 0; i < capacity_; ++i) {
        const DqEntry &e = slots_[i];
        if (e.state == DqEntryState::Pending &&
            e.line_addr == line_addr && e.insert_seq >= best_seq) {
            best = static_cast<int>(i);
            best_seq = e.insert_seq;
        }
    }
    if (best >= 0)
        slots_[best].touch_seq = ++seq_;
}

std::optional<unsigned>
DirtyQueue::selectVictim() const
{
    int best = -1;
    std::uint64_t best_seq = UINT64_MAX;
    for (unsigned i = 0; i < capacity_; ++i) {
        const DqEntry &e = slots_[i];
        if (e.state != DqEntryState::Pending)
            continue;
        const std::uint64_t s = repl_ == cache::ReplPolicy::FIFO
            ? e.insert_seq : e.touch_seq;
        if (s < best_seq) {
            best_seq = s;
            best = static_cast<int>(i);
        }
    }
    if (best < 0)
        return std::nullopt;
    return static_cast<unsigned>(best);
}

void
DirtyQueue::markInFlight(unsigned slot, Cycle wb_ready)
{
    wlc_assert(slot < capacity_);
    DqEntry &e = slots_[slot];
    wlc_assert(e.state == DqEntryState::Pending);
    e.state = DqEntryState::InFlight;
    e.wb_ready = wb_ready;
}

void
DirtyQueue::remove(unsigned slot)
{
    wlc_assert(slot < capacity_);
    DqEntry &e = slots_[slot];
    wlc_assert(e.state != DqEntryState::Free);
    e.state = DqEntryState::Free;
    wlc_assert(occupied_ > 0);
    --occupied_;
}

std::optional<Cycle>
DirtyQueue::earliestInFlightReady() const
{
    std::optional<Cycle> best;
    for (const auto &e : slots_) {
        if (e.state == DqEntryState::InFlight &&
            (!best || e.wb_ready < *best)) {
            best = e.wb_ready;
        }
    }
    return best;
}

void
DirtyQueue::completeInFlight(Cycle now)
{
    for (unsigned i = 0; i < capacity_; ++i) {
        if (slots_[i].state == DqEntryState::InFlight &&
            slots_[i].wb_ready <= now) {
            remove(i);
        }
    }
}

const DqEntry &
DirtyQueue::entry(unsigned slot) const
{
    wlc_assert(slot < capacity_);
    return slots_[slot];
}

void
DirtyQueue::clear()
{
    for (auto &e : slots_)
        e.state = DqEntryState::Free;
    occupied_ = 0;
}

void
DirtyQueue::saveState(SnapshotWriter &w) const
{
    w.section("DQ  ");
    w.u64(slots_.size());
    for (const DqEntry &e : slots_) {
        w.u8(static_cast<std::uint8_t>(e.state));
        w.u64(e.line_addr);
        w.u64(e.insert_seq);
        w.u64(e.touch_seq);
        w.u64(e.wb_ready);
    }
    w.u64(seq_);
    w.u32(occupied_);
}

void
DirtyQueue::restoreState(SnapshotReader &r)
{
    r.section("DQ  ");
    const std::uint64_t n = r.u64();
    wlc_assert(n == slots_.size(),
               "dirty-queue snapshot capacity mismatch");
    for (DqEntry &e : slots_) {
        e.state = static_cast<DqEntryState>(r.u8());
        e.line_addr = r.u64();
        e.insert_seq = r.u64();
        e.touch_seq = r.u64();
        e.wb_ready = r.u64();
    }
    seq_ = r.u64();
    occupied_ = r.u32();
}

} // namespace core
} // namespace wlcache
