#include "workloads/guest_env.hh"

#include "util/stat_math.hh"

namespace wlcache {
namespace workloads {

GuestEnv::GuestEnv(std::uint64_t seed, Addr data_base,
                   std::size_t heap_bytes)
    : data_base_(data_base), backing_(heap_bytes, 0),
      initial_(heap_bytes, 0), rng_(seed)
{
    wlc_assert(util::isPowerOfTwo(64) && data_base % 64 == 0,
               "data base must be line aligned");
}

Addr
GuestEnv::alloc(std::size_t bytes, std::size_t align)
{
    wlc_assert(util::isPowerOfTwo(align) && align <= 64);
    brk_ = static_cast<std::size_t>(
        util::alignUp(brk_, static_cast<std::uint64_t>(align)));
    const Addr addr = data_base_ + brk_;
    brk_ += bytes;
    wlc_assert(brk_ <= backing_.size(), "guest heap exhausted");
    return addr;
}

std::uint8_t *
GuestEnv::ptr(Addr addr, unsigned bytes)
{
    wlc_assert(addr >= data_base_, "guest access below data segment");
    const std::size_t off = static_cast<std::size_t>(addr - data_base_);
    wlc_assert(off + bytes <= backing_.size(),
               "guest access beyond heap");
    wlc_assert(addr % bytes == 0,
               "unaligned guest access: addr=0x%llx size=%u",
               static_cast<unsigned long long>(addr), bytes);
    return backing_.data() + off;
}

void
GuestEnv::record(MemOp op, Addr addr, unsigned bytes, std::uint64_t v)
{
    MemAccess ev;
    ev.computeGap = gap_;
    ev.op = op;
    ev.size = static_cast<AccessSize>(bytes);
    ev.addr = addr;
    ev.value = v;
    trace_.push_back(ev);
    gap_ = 0;
}

void
GuestEnv::markInit(Addr addr, unsigned bytes)
{
    const std::size_t off = static_cast<std::size_t>(addr - data_base_);
    std::memcpy(initial_.data() + off, backing_.data() + off, bytes);
}

void
GuestEnv::finish()
{
    if (gap_ > 0) {
        // Flush the trailing compute gap with a scratch load so no
        // instructions are lost from the timing model.
        const Addr scratch = data_base_;
        std::uint64_t v = 0;
        std::memcpy(&v, backing_.data(), 4);
        record(MemOp::Load, scratch, 4, v & 0xffffffffull);
    }
}

} // namespace workloads
} // namespace wlcache
