/**
 * @file
 * Guest execution environment for workload kernels. Each of the 23
 * benchmark kernels runs its real algorithm against this environment:
 * data lives in a guest address space, every load/store goes through
 * typed accessors that record a trace event, and arithmetic work is
 * accounted through compute() gaps. The result is a deterministic
 * memory-reference trace with the genuine locality of the algorithm,
 * plus the initial NVM image and the expected final memory state the
 * crash-consistency oracle checks against.
 */

#ifndef WLCACHE_WORKLOADS_GUEST_ENV_HH
#define WLCACHE_WORKLOADS_GUEST_ENV_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace wlcache {
namespace workloads {

/** The guest address space, allocator, and trace recorder. */
class GuestEnv
{
  public:
    /**
     * @param seed Seed for workload input generation.
     * @param data_base Guest data segment base address.
     * @param heap_bytes Guest heap capacity.
     */
    explicit GuestEnv(std::uint64_t seed, Addr data_base = 0x0010'0000,
                      std::size_t heap_bytes = 4u << 20);

    /** Bump-allocate @p bytes aligned to @p align (power of two). */
    Addr alloc(std::size_t bytes, std::size_t align = 8);

    /** Typed load: records a trace event. */
    template <typename T>
    T
    load(Addr addr)
    {
        static_assert(sizeof(T) <= 8);
        T v{};
        std::memcpy(&v, ptr(addr, sizeof(T)), sizeof(T));
        record(MemOp::Load, addr, sizeof(T), toBits(v));
        return v;
    }

    /** Typed store: records a trace event. */
    template <typename T>
    void
    store(Addr addr, T v)
    {
        static_assert(sizeof(T) <= 8);
        std::memcpy(ptr(addr, sizeof(T)), &v, sizeof(T));
        record(MemOp::Store, addr, sizeof(T), toBits(v));
    }

    /**
     * Initialize memory without recording a trace event: models data
     * present in the NVM image before the program starts (inputs,
     * constant tables).
     */
    template <typename T>
    void
    init(Addr addr, T v)
    {
        static_assert(sizeof(T) <= 8);
        std::memcpy(ptr(addr, sizeof(T)), &v, sizeof(T));
        markInit(addr, sizeof(T));
    }

    /** Account @p n non-memory instructions before the next access. */
    void compute(unsigned n) { gap_ += n; }

    /** Deterministic input-generation RNG. */
    Rng &rng() { return rng_; }

    /** Flush any trailing compute gap into a final trace event. */
    void finish();

    // --- Results ------------------------------------------------------------

    const std::vector<MemAccess> &trace() const { return trace_; }

    Addr dataBase() const { return data_base_; }

    /** Bytes of heap in use (high-water mark). */
    std::size_t heapUsed() const { return brk_; }

    /**
     * Initial NVM image: the initialized prefix of the data segment
     * (init() data; un-initialized bytes are zero, matching NVM).
     */
    const std::vector<std::uint8_t> &initialImage() const
    {
        return initial_;
    }

    /** Final expected memory contents after a crash-free run. */
    const std::vector<std::uint8_t> &finalImage() const
    {
        return backing_;
    }

  private:
    std::uint8_t *ptr(Addr addr, unsigned bytes);
    void record(MemOp op, Addr addr, unsigned bytes, std::uint64_t v);
    void markInit(Addr addr, unsigned bytes);

    template <typename T>
    static std::uint64_t
    toBits(T v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(T));
        return bits;
    }

    Addr data_base_;
    std::size_t brk_ = 0;
    std::vector<std::uint8_t> backing_;
    std::vector<std::uint8_t> initial_;
    std::vector<MemAccess> trace_;
    Rng rng_;
    std::uint32_t gap_ = 0;
};

/**
 * Typed guest array view: the workhorse for writing kernels against
 * GuestEnv without sprinkling address arithmetic everywhere.
 */
template <typename T>
class GArray
{
  public:
    GArray(GuestEnv &env, std::size_t n)
        : env_(&env), base_(env.alloc(n * sizeof(T), sizeof(T))), n_(n)
    {
    }

    /** Traced element read. */
    T
    get(std::size_t i) const
    {
        wlc_assert(i < n_);
        return env_->load<T>(base_ + i * sizeof(T));
    }

    /** Traced element write. */
    void
    set(std::size_t i, T v)
    {
        wlc_assert(i < n_);
        env_->store<T>(base_ + i * sizeof(T), v);
    }

    /** Untraced initialization (input data in the NVM image). */
    void
    initAt(std::size_t i, T v)
    {
        wlc_assert(i < n_);
        env_->init<T>(base_ + i * sizeof(T), v);
    }

    Addr addrOf(std::size_t i) const { return base_ + i * sizeof(T); }
    std::size_t size() const { return n_; }

  private:
    GuestEnv *env_;
    Addr base_;
    std::size_t n_;
};

} // namespace workloads
} // namespace wlcache

#endif // WLCACHE_WORKLOADS_GUEST_ENV_HH
