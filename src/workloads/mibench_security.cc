/**
 * @file
 * MiBench security kernels: Rijndael (AES-128) encryption and
 * decryption in ECB mode over a buffer. S-boxes, round keys, and the
 * state block live in guest memory, so the table-lookup-heavy inner
 * loop reaches the cache models exactly as the reference C code's
 * does.
 */

#include <cstdint>

#include "workloads/kernels.hh"

namespace wlcache {
namespace workloads {

namespace {

const std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67,
    0x2b, 0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59,
    0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7,
    0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1,
    0x71, 0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05,
    0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83,
    0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29,
    0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa,
    0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c,
    0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc,
    0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19,
    0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee,
    0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4,
    0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6,
    0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70,
    0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9,
    0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e,
    0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf, 0x8c, 0xa1,
    0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0,
    0x54, 0xbb, 0x16,
};

std::uint8_t
xtime(std::uint8_t x)
{
    return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

std::uint8_t
gmul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

/** AES tables + key schedule in guest memory. */
struct AesCtx
{
    GArray<std::uint8_t> sbox;
    GArray<std::uint8_t> inv_sbox;
    GArray<std::uint8_t> round_keys;  //!< 11 x 16 bytes.

    AesCtx(GuestEnv &env)
        : sbox(env, 256), inv_sbox(env, 256), round_keys(env, 176)
    {
        for (unsigned i = 0; i < 256; ++i) {
            sbox.initAt(i, kSbox[i]);
            inv_sbox.initAt(kSbox[i], static_cast<std::uint8_t>(i));
        }
    }

    /** Real AES-128 key expansion with traced S-box lookups. */
    void
    expandKey(GuestEnv &env, const std::uint8_t key[16])
    {
        for (unsigned i = 0; i < 16; ++i)
            round_keys.initAt(i, key[i]);
        std::uint8_t rcon = 1;
        for (unsigned i = 16; i < 176; i += 4) {
            std::uint8_t t[4];
            for (unsigned j = 0; j < 4; ++j)
                t[j] = round_keys.get(i - 4 + j);
            if (i % 16 == 0) {
                const std::uint8_t tmp = t[0];
                t[0] = static_cast<std::uint8_t>(sbox.get(t[1]) ^ rcon);
                t[1] = sbox.get(t[2]);
                t[2] = sbox.get(t[3]);
                t[3] = sbox.get(tmp);
                rcon = xtime(rcon);
                env.compute(8);
            }
            for (unsigned j = 0; j < 4; ++j)
                round_keys.set(i + j, static_cast<std::uint8_t>(
                                          round_keys.get(i - 16 + j) ^
                                          t[j]));
            env.compute(6);
        }
    }
};

void
addRoundKey(GuestEnv &env, AesCtx &ctx, std::uint8_t st[16],
            unsigned round)
{
    for (unsigned i = 0; i < 16; ++i)
        st[i] ^= ctx.round_keys.get(round * 16 + i);
    env.compute(16);
}

void
encryptBlock(GuestEnv &env, AesCtx &ctx, std::uint8_t st[16])
{
    addRoundKey(env, ctx, st, 0);
    for (unsigned round = 1; round <= 10; ++round) {
        // SubBytes (traced table lookups).
        for (unsigned i = 0; i < 16; ++i)
            st[i] = ctx.sbox.get(st[i]);
        env.compute(16);
        // ShiftRows.
        std::uint8_t t;
        t = st[1]; st[1] = st[5]; st[5] = st[9]; st[9] = st[13];
        st[13] = t;
        t = st[2]; st[2] = st[10]; st[10] = t;
        t = st[6]; st[6] = st[14]; st[14] = t;
        t = st[15]; st[15] = st[11]; st[11] = st[7]; st[7] = st[3];
        st[3] = t;
        env.compute(12);
        // MixColumns (skipped in the final round).
        if (round != 10) {
            for (unsigned c = 0; c < 4; ++c) {
                std::uint8_t *col = st + 4 * c;
                const std::uint8_t a0 = col[0], a1 = col[1],
                                   a2 = col[2], a3 = col[3];
                col[0] = static_cast<std::uint8_t>(
                    xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
                col[1] = static_cast<std::uint8_t>(
                    a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
                col[2] = static_cast<std::uint8_t>(
                    a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
                col[3] = static_cast<std::uint8_t>(
                    (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
                env.compute(16);
            }
        }
        addRoundKey(env, ctx, st, round);
    }
}

void
decryptBlock(GuestEnv &env, AesCtx &ctx, std::uint8_t st[16])
{
    addRoundKey(env, ctx, st, 10);
    for (unsigned round = 10; round >= 1; --round) {
        // InvShiftRows.
        std::uint8_t t;
        t = st[13]; st[13] = st[9]; st[9] = st[5]; st[5] = st[1];
        st[1] = t;
        t = st[2]; st[2] = st[10]; st[10] = t;
        t = st[6]; st[6] = st[14]; st[14] = t;
        t = st[3]; st[3] = st[7]; st[7] = st[11]; st[11] = st[15];
        st[15] = t;
        env.compute(12);
        // InvSubBytes.
        for (unsigned i = 0; i < 16; ++i)
            st[i] = ctx.inv_sbox.get(st[i]);
        env.compute(16);
        addRoundKey(env, ctx, st, round - 1);
        // InvMixColumns (skipped after the last round key).
        if (round != 1) {
            for (unsigned c = 0; c < 4; ++c) {
                std::uint8_t *col = st + 4 * c;
                const std::uint8_t a0 = col[0], a1 = col[1],
                                   a2 = col[2], a3 = col[3];
                col[0] = static_cast<std::uint8_t>(
                    gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^
                    gmul(a3, 9));
                col[1] = static_cast<std::uint8_t>(
                    gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^
                    gmul(a3, 13));
                col[2] = static_cast<std::uint8_t>(
                    gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^
                    gmul(a3, 11));
                col[3] = static_cast<std::uint8_t>(
                    gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^
                    gmul(a3, 14));
                env.compute(60);
            }
        }
    }
}

void
runRijndael(GuestEnv &env, unsigned scale, bool encrypt)
{
    const std::size_t n_bytes = 3200u * scale;
    const std::size_t n_blocks = n_bytes / 16;
    AesCtx ctx(env);
    GArray<std::uint8_t> input(env, n_bytes);
    GArray<std::uint8_t> output(env, n_bytes);
    std::uint8_t key[16];
    for (unsigned i = 0; i < 16; ++i)
        key[i] = static_cast<std::uint8_t>(env.rng().next());
    for (std::size_t i = 0; i < n_bytes; ++i)
        input.initAt(i, static_cast<std::uint8_t>(env.rng().next()));
    ctx.expandKey(env, key);

    for (std::size_t blk = 0; blk < n_blocks; ++blk) {
        std::uint8_t st[16];
        for (unsigned i = 0; i < 16; ++i)
            st[i] = input.get(blk * 16 + i);
        if (encrypt)
            encryptBlock(env, ctx, st);
        else
            decryptBlock(env, ctx, st);
        for (unsigned i = 0; i < 16; ++i)
            output.set(blk * 16 + i, st[i]);
    }
}

} // anonymous namespace

bool
aesSelfTest()
{
    // FIPS-197 Appendix C.1: AES-128 with key 000102...0f maps
    // 00112233445566778899aabbccddeeff to
    // 69c4e0d86a7b0430d8cdb78070b4c55a.
    GuestEnv env(0);
    AesCtx ctx(env);
    std::uint8_t key[16], st[16];
    for (unsigned i = 0; i < 16; ++i) {
        key[i] = static_cast<std::uint8_t>(i);
        st[i] = static_cast<std::uint8_t>((i << 4) | i);
    }
    ctx.expandKey(env, key);
    encryptBlock(env, ctx, st);
    static const std::uint8_t kExpected[16] = {
        0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
        0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a,
    };
    for (unsigned i = 0; i < 16; ++i)
        if (st[i] != kExpected[i])
            return false;
    decryptBlock(env, ctx, st);
    for (unsigned i = 0; i < 16; ++i)
        if (st[i] != static_cast<std::uint8_t>((i << 4) | i))
            return false;
    return true;
}

void
runRijndaelEncrypt(GuestEnv &env, unsigned scale)
{
    runRijndael(env, scale, true);
}

void
runRijndaelDecrypt(GuestEnv &env, unsigned scale)
{
    runRijndael(env, scale, false);
}

} // namespace workloads
} // namespace wlcache
