/**
 * @file
 * Audio codec kernels: IMA ADPCM encode/decode (MediaBench
 * adpcm), an adaptive-predictor ADPCM in the style of G.721, and an
 * LPC analysis/synthesis pair in the style of GSM 06.10. All tables
 * and signal buffers live in guest memory so the reference stream
 * carries the codecs' real access patterns.
 */

#include <cstdint>

#include "workloads/kernels.hh"

namespace wlcache {
namespace workloads {

namespace {

/** IMA ADPCM index adjustment table. */
const int kImaIndexTable[16] = {
    -1, -1, -1, -1, 2, 4, 6, 8,
    -1, -1, -1, -1, 2, 4, 6, 8,
};

/** IMA ADPCM quantizer step table (89 entries). */
const int kImaStepTable[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
};

int
clampInt(int v, int lo, int hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** Generate a deterministic speech-like waveform into @p pcm. */
void
makeSpeech(GuestEnv &env, GArray<std::int16_t> &pcm)
{
    double phase1 = 0.0, phase2 = 0.0;
    std::int32_t noise_state = 12345;
    for (std::size_t i = 0; i < pcm.size(); ++i) {
        phase1 += 0.061 + 0.02 * env.rng().nextDouble();
        phase2 += 0.173;
        noise_state = noise_state * 1103515245 + 12345;
        const int noise = (noise_state >> 20) & 0x3ff;
        const double s = 6000.0 * (phase1 - static_cast<int>(phase1)) +
            2500.0 * (phase2 - static_cast<int>(phase2)) + noise - 4200.0;
        pcm.initAt(i, static_cast<std::int16_t>(clampInt(
                          static_cast<int>(s), -32768, 32767)));
    }
}

/** Load the IMA tables into guest memory. */
struct ImaTables
{
    GArray<std::int32_t> index_table;
    GArray<std::int32_t> step_table;

    explicit ImaTables(GuestEnv &env)
        : index_table(env, 16), step_table(env, 89)
    {
        for (std::size_t i = 0; i < 16; ++i)
            index_table.initAt(i, kImaIndexTable[i]);
        for (std::size_t i = 0; i < 89; ++i)
            step_table.initAt(i, kImaStepTable[i]);
    }
};

} // anonymous namespace

void
runAdpcmEncode(GuestEnv &env, unsigned scale)
{
    const std::size_t n = 22000u * scale;
    ImaTables tables(env);
    GArray<std::int16_t> pcm(env, n);
    GArray<std::uint8_t> out(env, n / 2);
    makeSpeech(env, pcm);

    int predicted = 0;
    int index = 0;
    std::uint8_t pack = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const int sample = pcm.get(i);
        const int step = tables.step_table.get(
            static_cast<std::size_t>(index));
        int diff = sample - predicted;
        env.compute(4);

        int code = 0;
        if (diff < 0) {
            code = 8;
            diff = -diff;
        }
        // Successive-approximation quantization of diff/step.
        int temp_step = step;
        int delta = temp_step >> 3;
        if (diff >= temp_step) {
            code |= 4;
            diff -= temp_step;
            delta += temp_step;
        }
        temp_step >>= 1;
        if (diff >= temp_step) {
            code |= 2;
            diff -= temp_step;
            delta += temp_step;
        }
        temp_step >>= 1;
        if (diff >= temp_step) {
            code |= 1;
            delta += temp_step;
        }
        env.compute(10);

        predicted += (code & 8) ? -delta : delta;
        predicted = clampInt(predicted, -32768, 32767);
        index = clampInt(index + tables.index_table.get(
                                     static_cast<std::size_t>(code & 7)),
                         0, 88);
        env.compute(5);

        if (i & 1)
            out.set(i / 2, static_cast<std::uint8_t>(
                               pack | ((code & 0xf) << 4)));
        else
            pack = static_cast<std::uint8_t>(code & 0xf);
    }
}

void
runAdpcmDecode(GuestEnv &env, unsigned scale)
{
    const std::size_t n = 26000u * scale;
    ImaTables tables(env);
    GArray<std::uint8_t> in(env, n / 2);
    GArray<std::int16_t> out(env, n);
    for (std::size_t i = 0; i < n / 2; ++i)
        in.initAt(i, static_cast<std::uint8_t>(env.rng().next() & 0xff));

    int predicted = 0;
    int index = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t byte = in.get(i / 2);
        const int code = (i & 1) ? (byte >> 4) : (byte & 0xf);
        const int step = tables.step_table.get(
            static_cast<std::size_t>(index));
        env.compute(3);

        int delta = step >> 3;
        if (code & 4)
            delta += step;
        if (code & 2)
            delta += step >> 1;
        if (code & 1)
            delta += step >> 2;
        predicted += (code & 8) ? -delta : delta;
        predicted = clampInt(predicted, -32768, 32767);
        index = clampInt(index + tables.index_table.get(
                                     static_cast<std::size_t>(code & 7)),
                         0, 88);
        env.compute(8);

        out.set(i, static_cast<std::int16_t>(predicted));
    }
}

namespace {

/**
 * Adaptive-predictor ADPCM in the style of G.721: a six-tap zero
 * predictor with sign-sign LMS adaptation and a backward-adaptive
 * quantizer scale. State arrays live in guest memory like the
 * reference code's persistent predictor state.
 */
struct G721State
{
    GArray<std::int32_t> b;   //!< Zero-predictor coefficients (x256).
    GArray<std::int32_t> dq;  //!< Last six quantized differences.
    std::int32_t y = 512;     //!< Quantizer scale (x16).

    explicit G721State(GuestEnv &env) : b(env, 6), dq(env, 6)
    {
        for (std::size_t i = 0; i < 6; ++i) {
            b.initAt(i, 0);
            dq.initAt(i, 0);
        }
    }

    /** Zero-predictor estimate. */
    std::int32_t
    predict(GuestEnv &env)
    {
        std::int64_t acc = 0;
        for (std::size_t i = 0; i < 6; ++i) {
            acc += static_cast<std::int64_t>(b.get(i)) * dq.get(i);
            env.compute(2);
        }
        return static_cast<std::int32_t>(acc >> 8);
    }

    /** Update predictor and quantizer state with a new dq. */
    void
    update(GuestEnv &env, std::int32_t dq_new, int code_mag)
    {
        // Sign-sign LMS on the six taps.
        for (std::size_t i = 0; i < 6; ++i) {
            const std::int32_t bi = b.get(i);
            const std::int32_t di = dq.get(i);
            std::int32_t adj = 0;
            if (dq_new != 0 && di != 0)
                adj = ((dq_new > 0) == (di > 0)) ? 2 : -2;
            b.set(i, clampInt(bi - (bi >> 8) + adj, -20480, 20480));
            env.compute(5);
        }
        // Shift the difference history.
        for (std::size_t i = 5; i > 0; --i)
            dq.set(i, dq.get(i - 1));
        dq.set(0, dq_new);
        // Backward-adaptive scale: grow on big codes, decay on small.
        const int target = code_mag >= 4 ? 2048 : 128;
        y = y + ((target - y) >> 5);
        y = clampInt(y, 64, 8192);
        env.compute(6);
    }
};

} // anonymous namespace

void
runG721Encode(GuestEnv &env, unsigned scale)
{
    const std::size_t n = 7000u * scale;
    GArray<std::int16_t> pcm(env, n);
    GArray<std::uint8_t> out(env, n);
    makeSpeech(env, pcm);
    G721State st(env);

    for (std::size_t i = 0; i < n; ++i) {
        const int sample = pcm.get(i);
        const std::int32_t se = st.predict(env);
        const std::int32_t d = sample - se;
        // 4-bit magnitude+sign quantization against scale y.
        const std::int32_t step = st.y >> 2;
        int mag = step > 0 ? static_cast<int>(
                                 (d < 0 ? -d : d) / (step + 1)) : 0;
        mag = clampInt(mag, 0, 7);
        const int code = (d < 0 ? 8 : 0) | mag;
        const std::int32_t dq_new =
            (d < 0 ? -1 : 1) * mag * (step + 1);
        env.compute(9);
        out.set(i, static_cast<std::uint8_t>(code));
        st.update(env, dq_new, mag);
    }
}

void
runG721Decode(GuestEnv &env, unsigned scale)
{
    const std::size_t n = 7000u * scale;
    GArray<std::uint8_t> in(env, n);
    GArray<std::int16_t> out(env, n);
    for (std::size_t i = 0; i < n; ++i)
        in.initAt(i, static_cast<std::uint8_t>(env.rng().next() & 0xf));
    G721State st(env);

    for (std::size_t i = 0; i < n; ++i) {
        const int code = in.get(i);
        const int mag = code & 7;
        const std::int32_t step = st.y >> 2;
        const std::int32_t dq_new =
            ((code & 8) ? -1 : 1) * mag * (step + 1);
        const std::int32_t se = st.predict(env);
        const std::int32_t sr = clampInt(se + dq_new, -32768, 32767);
        env.compute(7);
        out.set(i, static_cast<std::int16_t>(sr));
        st.update(env, dq_new, mag);
    }
}

namespace {

constexpr std::size_t kGsmFrame = 160;
constexpr std::size_t kGsmOrder = 8;

} // anonymous namespace

void
runGsmEncode(GuestEnv &env, unsigned scale)
{
    const std::size_t frames = 34u * scale;
    const std::size_t n = frames * kGsmFrame;
    GArray<std::int16_t> pcm(env, n);
    GArray<std::int32_t> autocorr(env, kGsmOrder + 1);
    GArray<std::int32_t> refl(env, kGsmOrder);
    GArray<std::int32_t> err(env, kGsmOrder + 1);
    GArray<std::int16_t> residual(env, n);
    GArray<std::int16_t> hist(env, kGsmOrder);
    makeSpeech(env, pcm);
    for (std::size_t i = 0; i < kGsmOrder; ++i)
        hist.initAt(i, 0);

    for (std::size_t f = 0; f < frames; ++f) {
        const std::size_t base = f * kGsmFrame;

        // Autocorrelation lags 0..8.
        for (std::size_t k = 0; k <= kGsmOrder; ++k) {
            std::int64_t acc = 0;
            for (std::size_t i = k; i < kGsmFrame; i += 4) {
                acc += static_cast<std::int64_t>(pcm.get(base + i)) *
                    pcm.get(base + i - k);
                env.compute(3);
            }
            autocorr.set(k, static_cast<std::int32_t>(acc >> 16));
        }

        // Levinson-Durbin style reflection coefficients (x4096).
        std::int64_t e = autocorr.get(0);
        if (e <= 0)
            e = 1;
        err.set(0, static_cast<std::int32_t>(e));
        for (std::size_t m = 0; m < kGsmOrder; ++m) {
            const std::int64_t num = autocorr.get(m + 1);
            std::int32_t k = static_cast<std::int32_t>(
                (num << 12) / (err.get(m) + 1));
            k = clampInt(k, -4000, 4000);
            refl.set(m, k);
            const std::int64_t em = err.get(m);
            err.set(m + 1, static_cast<std::int32_t>(
                               em - ((em * k * k) >> 24) + 1));
            env.compute(12);
        }

        // Short-term analysis filter: residual via lattice-ish pass.
        for (std::size_t i = 0; i < kGsmFrame; ++i) {
            std::int32_t s = pcm.get(base + i);
            for (std::size_t m = 0; m < kGsmOrder; m += 2) {
                const std::int32_t k = refl.get(m);
                const std::int32_t h = hist.get(m);
                s -= static_cast<std::int32_t>(
                    (static_cast<std::int64_t>(k) * h) >> 12);
                env.compute(4);
            }
            for (std::size_t m = kGsmOrder - 1; m > 0; --m)
                hist.set(m, hist.get(m - 1));
            hist.set(0, static_cast<std::int16_t>(
                            clampInt(s, -32768, 32767)));
            residual.set(base + i, static_cast<std::int16_t>(
                                       clampInt(s >> 2, -32768, 32767)));
            env.compute(4);
        }
    }
}

void
runGsmDecode(GuestEnv &env, unsigned scale)
{
    const std::size_t frames = 40u * scale;
    const std::size_t n = frames * kGsmFrame;
    GArray<std::int16_t> residual(env, n);
    GArray<std::int32_t> refl(env, kGsmOrder);
    GArray<std::int16_t> hist(env, kGsmOrder);
    GArray<std::int16_t> out(env, n);
    for (std::size_t i = 0; i < n; ++i)
        residual.initAt(i, static_cast<std::int16_t>(
                               (env.rng().next() & 0x7ff) - 1024));
    for (std::size_t i = 0; i < kGsmOrder; ++i)
        hist.initAt(i, 0);

    for (std::size_t f = 0; f < frames; ++f) {
        const std::size_t base = f * kGsmFrame;
        // Per-frame reflection coefficients (decoded parameters).
        for (std::size_t m = 0; m < kGsmOrder; ++m) {
            refl.set(m, static_cast<std::int32_t>(
                            (env.rng().next() % 6000) - 3000));
            env.compute(3);
        }
        // Short-term synthesis filter.
        for (std::size_t i = 0; i < kGsmFrame; ++i) {
            std::int32_t s = residual.get(base + i) << 2;
            for (std::size_t m = 0; m < kGsmOrder; m += 2) {
                const std::int32_t k = refl.get(m);
                const std::int32_t h = hist.get(m);
                s += static_cast<std::int32_t>(
                    (static_cast<std::int64_t>(k) * h) >> 12);
                env.compute(4);
            }
            s = clampInt(s, -32768, 32767);
            for (std::size_t m = kGsmOrder - 1; m > 0; --m)
                hist.set(m, hist.get(m - 1));
            hist.set(0, static_cast<std::int16_t>(s));
            out.set(base + i, static_cast<std::int16_t>(s));
            env.compute(3);
        }
    }
}

} // namespace workloads
} // namespace wlcache
