/**
 * @file
 * Image kernels: JPEG-style 8x8 DCT encode/decode, an EPIC-style
 * Laplacian pyramid coder, and SUSAN corner/edge detection. Images,
 * block scratch buffers, and quantization tables live in guest
 * memory, so the blocked access patterns (hot 8x8 scratch, strided
 * row walks, stencil windows) reach the cache models faithfully.
 */

#include <cmath>
#include <cstdint>

#include "workloads/kernels.hh"

namespace wlcache {
namespace workloads {

namespace {

/** JPEG luminance quantization table (Annex K). */
const int kJpegQuant[64] = {
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
};

/** Fill an image with a deterministic scene (gradients + blobs). */
void
makeImage(GuestEnv &env, GArray<std::int16_t> &img, unsigned w,
          unsigned h)
{
    // A few random bright blobs over a smooth gradient.
    const unsigned n_blobs = 6;
    int bx[8], by[8], br[8];
    for (unsigned b = 0; b < n_blobs; ++b) {
        bx[b] = static_cast<int>(env.rng().nextBelow(w));
        by[b] = static_cast<int>(env.rng().nextBelow(h));
        br[b] = 4 + static_cast<int>(env.rng().nextBelow(12));
    }
    for (unsigned y = 0; y < h; ++y) {
        for (unsigned x = 0; x < w; ++x) {
            int v = static_cast<int>((x * 96) / w + (y * 64) / h);
            for (unsigned b = 0; b < n_blobs; ++b) {
                const int dx = static_cast<int>(x) - bx[b];
                const int dy = static_cast<int>(y) - by[b];
                if (dx * dx + dy * dy < br[b] * br[b])
                    v += 90;
            }
            img.initAt(y * static_cast<std::size_t>(w) + x,
                       static_cast<std::int16_t>(v > 255 ? 255 : v));
        }
    }
}

/** Integer 1-D DCT-II butterfly pass over 8 samples (in scratch). */
void
dct1d(GuestEnv &env, GArray<std::int32_t> &s, std::size_t base,
      std::size_t stride)
{
    // AAN-style integer butterfly; coefficients x256.
    static const int c1 = 251, c2 = 236, c3 = 212, c5 = 142, c6 = 97,
                     c7 = 49;
    std::int32_t x[8];
    for (unsigned i = 0; i < 8; ++i)
        x[i] = s.get(base + i * stride);
    env.compute(6);
    const std::int32_t s07 = x[0] + x[7], d07 = x[0] - x[7];
    const std::int32_t s16 = x[1] + x[6], d16 = x[1] - x[6];
    const std::int32_t s25 = x[2] + x[5], d25 = x[2] - x[5];
    const std::int32_t s34 = x[3] + x[4], d34 = x[3] - x[4];
    env.compute(8);
    const std::int32_t e0 = s07 + s34, e3 = s07 - s34;
    const std::int32_t e1 = s16 + s25, e2 = s16 - s25;
    s.set(base + 0 * stride, (e0 + e1) >> 1);
    s.set(base + 4 * stride, (e0 - e1) >> 1);
    s.set(base + 2 * stride, (e3 * c2 + e2 * c6) >> 9);
    s.set(base + 6 * stride, (e3 * c6 - e2 * c2) >> 9);
    s.set(base + 1 * stride,
          (d07 * c1 + d16 * c3 + d25 * c5 + d34 * c7) >> 9);
    s.set(base + 3 * stride,
          (d07 * c3 - d16 * c7 - d25 * c1 - d34 * c5) >> 9);
    s.set(base + 5 * stride,
          (d07 * c5 - d16 * c1 + d25 * c7 + d34 * c3) >> 9);
    s.set(base + 7 * stride,
          (d07 * c7 - d16 * c5 + d25 * c3 - d34 * c1) >> 9);
    env.compute(28);
}

/** Crude integer inverse transform (transpose-free, two passes). */
void
idct1d(GuestEnv &env, GArray<std::int32_t> &s, std::size_t base,
       std::size_t stride)
{
    std::int32_t x[8];
    for (unsigned i = 0; i < 8; ++i)
        x[i] = s.get(base + i * stride);
    env.compute(6);
    static const int c1 = 251, c2 = 236, c3 = 212, c5 = 142, c6 = 97,
                     c7 = 49;
    const std::int32_t e0 = x[0] + x[4], e1 = x[0] - x[4];
    const std::int32_t e2 = (x[2] * c2 + x[6] * c6) >> 9;
    const std::int32_t e3 = (x[2] * c6 - x[6] * c2) >> 9;
    const std::int32_t o0 =
        (x[1] * c1 + x[3] * c3 + x[5] * c5 + x[7] * c7) >> 9;
    const std::int32_t o1 =
        (x[1] * c3 - x[3] * c7 - x[5] * c1 - x[7] * c5) >> 9;
    const std::int32_t o2 =
        (x[1] * c5 - x[3] * c1 + x[5] * c7 + x[7] * c3) >> 9;
    const std::int32_t o3 =
        (x[1] * c7 - x[3] * c5 + x[5] * c3 - x[7] * c1) >> 9;
    env.compute(30);
    s.set(base + 0 * stride, e0 + e2 + o0);
    s.set(base + 7 * stride, e0 + e2 - o0);
    s.set(base + 1 * stride, e1 + e3 + o1);
    s.set(base + 6 * stride, e1 + e3 - o1);
    s.set(base + 2 * stride, e1 - e3 + o2);
    s.set(base + 5 * stride, e1 - e3 - o2);
    s.set(base + 3 * stride, e0 - e2 + o3);
    s.set(base + 4 * stride, e0 - e2 - o3);
    env.compute(10);
}

} // anonymous namespace

void
runJpegEncode(GuestEnv &env, unsigned scale)
{
    const unsigned w = 112, h = 112 * scale;
    GArray<std::int16_t> img(env, static_cast<std::size_t>(w) * h);
    GArray<std::int32_t> quant(env, 64);
    GArray<std::int32_t> block(env, 64);
    GArray<std::int16_t> coeffs(env, static_cast<std::size_t>(w) * h);
    makeImage(env, img, w, h);
    for (unsigned i = 0; i < 64; ++i)
        quant.initAt(i, kJpegQuant[i]);

    for (unsigned by = 0; by < h; by += 8) {
        for (unsigned bx = 0; bx < w; bx += 8) {
            // Load the block into the hot scratch buffer.
            for (unsigned y = 0; y < 8; ++y)
                for (unsigned x = 0; x < 8; ++x) {
                    block.set(y * 8 + x,
                              img.get((by + y) *
                                          static_cast<std::size_t>(w) +
                                      bx + x) - 128);
                    env.compute(2);
                }
            // 2-D DCT: rows then columns.
            for (unsigned r = 0; r < 8; ++r)
                dct1d(env, block, r * 8, 1);
            for (unsigned c = 0; c < 8; ++c)
                dct1d(env, block, c, 8);
            // Quantize and emit.
            for (unsigned i = 0; i < 64; ++i) {
                const std::int32_t q = quant.get(i);
                const std::int32_t v = block.get(i) / (q * 2);
                coeffs.set((by + i / 8) * static_cast<std::size_t>(w) +
                               bx + i % 8,
                           static_cast<std::int16_t>(v));
                env.compute(4);
            }
        }
    }
}

void
runJpegDecode(GuestEnv &env, unsigned scale)
{
    const unsigned w = 112, h = 112 * scale;
    GArray<std::int16_t> coeffs(env, static_cast<std::size_t>(w) * h);
    GArray<std::int32_t> quant(env, 64);
    GArray<std::int32_t> block(env, 64);
    GArray<std::uint8_t> out(env, static_cast<std::size_t>(w) * h);
    for (unsigned i = 0; i < 64; ++i)
        quant.initAt(i, kJpegQuant[i]);
    // Sparse coefficient field, as a real entropy decoder would emit.
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
        const bool nz = (i % 64) < 12 || env.rng().nextBool(0.04);
        coeffs.initAt(i, nz ? static_cast<std::int16_t>(
                                  (env.rng().next() & 0x1f) - 16)
                            : 0);
    }

    for (unsigned by = 0; by < h; by += 8) {
        for (unsigned bx = 0; bx < w; bx += 8) {
            for (unsigned i = 0; i < 64; ++i) {
                const std::int32_t q = quant.get(i);
                block.set(i, coeffs.get(
                                 (by + i / 8) *
                                     static_cast<std::size_t>(w) +
                                 bx + i % 8) * q);
                env.compute(3);
            }
            for (unsigned c = 0; c < 8; ++c)
                idct1d(env, block, c, 8);
            for (unsigned r = 0; r < 8; ++r)
                idct1d(env, block, r * 8, 1);
            for (unsigned i = 0; i < 64; ++i) {
                std::int32_t v = (block.get(i) >> 3) + 128;
                v = v < 0 ? 0 : (v > 255 ? 255 : v);
                out.set((by + i / 8) * static_cast<std::size_t>(w) +
                            bx + i % 8,
                        static_cast<std::uint8_t>(v));
                env.compute(3);
            }
        }
    }
}

void
runEpic(GuestEnv &env, unsigned scale)
{
    // EPIC builds a filter-subsample pyramid and quantizes each band.
    const unsigned w0 = 96, h0 = 96 * scale;
    GArray<std::int16_t> level0(env,
                                static_cast<std::size_t>(w0) * h0);
    GArray<std::int16_t> level1(env,
                                static_cast<std::size_t>(w0 / 2) *
                                    (h0 / 2));
    GArray<std::int16_t> level2(env,
                                static_cast<std::size_t>(w0 / 4) *
                                    (h0 / 4));
    GArray<std::int16_t> tmp(env, static_cast<std::size_t>(w0) * h0);
    GArray<std::int32_t> taps(env, 5);
    makeImage(env, level0, w0, h0);
    const int kTaps[5] = { 14, 62, 104, 62, 14 };  // x256 binomial
    for (unsigned i = 0; i < 5; ++i)
        taps.initAt(i, kTaps[i]);

    struct Band
    {
        GArray<std::int16_t> *src;
        GArray<std::int16_t> *dst;
        unsigned w, h;
    };
    Band bands[2] = {
        { &level0, &level1, w0, h0 },
        { &level1, &level2, w0 / 2, h0 / 2 },
    };

    for (const Band &b : bands) {
        // Horizontal 5-tap filter into tmp.
        for (unsigned y = 0; y < b.h; ++y) {
            for (unsigned x = 2; x + 2 < b.w; ++x) {
                std::int32_t acc = 0;
                for (int t = -2; t <= 2; ++t) {
                    acc += b.src->get(y * static_cast<std::size_t>(b.w) +
                                      x + t) *
                        taps.get(static_cast<std::size_t>(t + 2));
                    env.compute(3);
                }
                tmp.set(y * static_cast<std::size_t>(b.w) + x,
                        static_cast<std::int16_t>(acc >> 8));
            }
        }
        // Vertical filter + 2x subsample + dead-zone quantize.
        for (unsigned y = 2; y + 2 < b.h; y += 2) {
            for (unsigned x = 0; x < b.w; x += 2) {
                std::int32_t acc = 0;
                for (int t = -2; t <= 2; ++t) {
                    acc += tmp.get((y + t) *
                                       static_cast<std::size_t>(b.w) +
                                   x) *
                        taps.get(static_cast<std::size_t>(t + 2));
                    env.compute(3);
                }
                std::int32_t q = acc >> 12;
                if (q > -2 && q < 2)
                    q = 0;  // dead zone
                b.dst->set((y / 2) * static_cast<std::size_t>(b.w / 2) +
                               x / 2,
                           static_cast<std::int16_t>(q));
                env.compute(4);
            }
        }
    }
}

namespace {

/** Shared SUSAN driver: USAN area per pixel with a 37-pixel mask. */
void
susanCommon(GuestEnv &env, unsigned w, unsigned h, int usan_threshold,
            int geometric_threshold, GArray<std::uint8_t> &result,
            GArray<std::int16_t> &img, GArray<std::int32_t> &lut)
{
    // 37-pixel circular mask offsets (radius ~3.4).
    static const int kMask[37][2] = {
        { -1, -3 }, { 0, -3 }, { 1, -3 },
        { -2, -2 }, { -1, -2 }, { 0, -2 }, { 1, -2 }, { 2, -2 },
        { -3, -1 }, { -2, -1 }, { -1, -1 }, { 0, -1 }, { 1, -1 },
        { 2, -1 }, { 3, -1 },
        { -3, 0 }, { -2, 0 }, { -1, 0 }, { 0, 0 }, { 1, 0 }, { 2, 0 },
        { 3, 0 },
        { -3, 1 }, { -2, 1 }, { -1, 1 }, { 0, 1 }, { 1, 1 }, { 2, 1 },
        { 3, 1 },
        { -2, 2 }, { -1, 2 }, { 0, 2 }, { 1, 2 }, { 2, 2 },
        { -1, 3 }, { 0, 3 }, { 1, 3 },
    };
    for (unsigned y = 3; y + 3 < h; ++y) {
        for (unsigned x = 3; x + 3 < w; ++x) {
            const int center =
                img.get(y * static_cast<std::size_t>(w) + x);
            std::int32_t usan = 0;
            for (unsigned m = 0; m < 37; ++m) {
                const int px = img.get(
                    (y + kMask[m][1]) * static_cast<std::size_t>(w) +
                    (x + kMask[m][0]));
                int diff = px - center;
                if (diff < 0)
                    diff = -diff;
                if (diff > 255)
                    diff = 255;
                // Similarity via precomputed LUT (exp curve).
                usan += lut.get(static_cast<std::size_t>(
                    diff / usan_threshold > 15
                        ? 15 : diff / usan_threshold));
                env.compute(6);
            }
            const bool hit = usan < geometric_threshold;
            result.set(y * static_cast<std::size_t>(w) + x,
                       hit ? static_cast<std::uint8_t>(
                                 (geometric_threshold - usan) >> 4)
                           : 0);
            env.compute(3);
        }
    }
}

} // anonymous namespace

void
runSusanCorners(GuestEnv &env, unsigned scale)
{
    const unsigned w = 64, h = 64 * scale;
    GArray<std::int16_t> img(env, static_cast<std::size_t>(w) * h);
    GArray<std::uint8_t> result(env, static_cast<std::size_t>(w) * h);
    GArray<std::int32_t> lut(env, 16);
    makeImage(env, img, w, h);
    for (unsigned i = 0; i < 16; ++i)
        lut.initAt(i, static_cast<std::int32_t>(
                          100.0 * std::exp(-(i * i) / 16.0)));
    // Corners: hard geometric threshold at half the max USAN.
    susanCommon(env, w, h, 12, 37 * 50, result, img, lut);
}

void
runSusanEdges(GuestEnv &env, unsigned scale)
{
    const unsigned w = 64, h = 64 * scale;
    GArray<std::int16_t> img(env, static_cast<std::size_t>(w) * h);
    GArray<std::uint8_t> result(env, static_cast<std::size_t>(w) * h);
    GArray<std::int32_t> lut(env, 16);
    makeImage(env, img, w, h);
    for (unsigned i = 0; i < 16; ++i)
        lut.initAt(i, static_cast<std::int32_t>(
                          100.0 * std::exp(-(i * i) / 24.0)));
    // Edges: three-quarter geometric threshold, softer brightness cut.
    susanCommon(env, w, h, 20, 37 * 75, result, img, lut);
}

} // namespace workloads
} // namespace wlcache
