/**
 * @file
 * Video kernels in the style of MPEG-2: the decoder performs motion
 * compensation plus block reconstruction; the encoder performs block
 * motion estimation (SAD search) plus a forward transform of the
 * residual. Reference and current frames are guest arrays, so the
 * 2-D strided window walks hit the cache models directly.
 */

#include <cstdint>

#include "workloads/kernels.hh"

namespace wlcache {
namespace workloads {

namespace {

constexpr unsigned kMb = 16;  //!< Macroblock edge.

void
makeFrame(GuestEnv &env, GArray<std::uint8_t> &f, unsigned w, unsigned h,
          unsigned phase)
{
    for (unsigned y = 0; y < h; ++y)
        for (unsigned x = 0; x < w; ++x) {
            const unsigned v =
                ((x + phase) * 5 + (y + phase / 2) * 3) & 0xff;
            f.initAt(y * static_cast<std::size_t>(w) + x,
                     static_cast<std::uint8_t>(
                         (v >> 1) + (env.rng().next() & 0x1f)));
        }
}

} // anonymous namespace

void
runMpeg2Decode(GuestEnv &env, unsigned scale)
{
    const unsigned w = 64, h = 64;
    const unsigned frames = 6 * scale;
    GArray<std::uint8_t> ref(env, static_cast<std::size_t>(w) * h);
    GArray<std::uint8_t> cur(env, static_cast<std::size_t>(w) * h);
    GArray<std::int16_t> resid(env, static_cast<std::size_t>(w) * h);
    makeFrame(env, ref, w, h, 0);
    // Residual field the entropy decoder would have produced.
    for (std::size_t i = 0; i < resid.size(); ++i)
        resid.initAt(i, static_cast<std::int16_t>(
                            (env.rng().next() & 0x0f) - 8));

    for (unsigned f = 0; f < frames; ++f) {
        for (unsigned my = 0; my < h; my += kMb) {
            for (unsigned mx = 0; mx < w; mx += kMb) {
                // Decoded motion vector, clamped to the frame.
                int vx = static_cast<int>(env.rng().nextRange(-3, 3));
                int vy = static_cast<int>(env.rng().nextRange(-3, 3));
                if (static_cast<int>(mx) + vx < 0 ||
                    mx + vx + kMb > w)
                    vx = 0;
                if (static_cast<int>(my) + vy < 0 ||
                    my + vy + kMb > h)
                    vy = 0;
                env.compute(12);
                // Motion compensation + residual add.
                for (unsigned y = 0; y < kMb; ++y) {
                    for (unsigned x = 0; x < kMb; ++x) {
                        const std::size_t src =
                            (my + vy + y) * static_cast<std::size_t>(w) +
                            (mx + vx + x);
                        const std::size_t dst =
                            (my + y) * static_cast<std::size_t>(w) +
                            (mx + x);
                        int v = ref.get(src) + resid.get(dst);
                        v = v < 0 ? 0 : (v > 255 ? 255 : v);
                        cur.set(dst, static_cast<std::uint8_t>(v));
                        env.compute(4);
                    }
                }
            }
        }
        // The reconstructed frame becomes the next reference.
        for (std::size_t i = 0; i < ref.size(); i += 4) {
            ref.set(i, cur.get(i));
            env.compute(2);
        }
    }
}

void
runMpeg2Encode(GuestEnv &env, unsigned scale)
{
    const unsigned w = 64, h = 64;
    const unsigned frames = 3 * scale;
    GArray<std::uint8_t> ref(env, static_cast<std::size_t>(w) * h);
    GArray<std::uint8_t> cur(env, static_cast<std::size_t>(w) * h);
    GArray<std::int16_t> resid(env, static_cast<std::size_t>(w) * h);
    GArray<std::int32_t> mvs(env, (w / kMb) * (h / kMb) * 2);
    makeFrame(env, ref, w, h, 0);

    for (unsigned f = 0; f < frames; ++f) {
        // "Capture" the next frame: shifted reference (true motion).
        for (unsigned y = 0; y < h; ++y)
            for (unsigned x = 0; x < w; ++x) {
                const unsigned sx = (x + 2 + f) % w;
                const unsigned sy = (y + 1) % h;
                cur.set(y * static_cast<std::size_t>(w) + x,
                        ref.get(sy * static_cast<std::size_t>(w) + sx));
                env.compute(3);
            }

        unsigned mb_idx = 0;
        for (unsigned my = 0; my < h; my += kMb) {
            for (unsigned mx = 0; mx < w; mx += kMb, ++mb_idx) {
                // Motion search: +-4 at step 2 on subsampled pixels.
                int best_sad = INT32_MAX, best_vx = 0, best_vy = 0;
                for (int vy = -4; vy <= 4; vy += 2) {
                    for (int vx = -4; vx <= 4; vx += 2) {
                        if (static_cast<int>(mx) + vx < 0 ||
                            mx + vx + kMb > w ||
                            static_cast<int>(my) + vy < 0 ||
                            my + vy + kMb > h)
                            continue;
                        int sad = 0;
                        for (unsigned y = 0; y < kMb; y += 2) {
                            for (unsigned x = 0; x < kMb; x += 2) {
                                const int a = cur.get(
                                    (my + y) *
                                        static_cast<std::size_t>(w) +
                                    mx + x);
                                const int b = ref.get(
                                    (my + vy + y) *
                                        static_cast<std::size_t>(w) +
                                    mx + vx + x);
                                sad += a > b ? a - b : b - a;
                                env.compute(4);
                            }
                        }
                        if (sad < best_sad) {
                            best_sad = sad;
                            best_vx = vx;
                            best_vy = vy;
                        }
                        env.compute(3);
                    }
                }
                mvs.set(mb_idx * 2, best_vx);
                mvs.set(mb_idx * 2 + 1, best_vy);
                // Residual against the motion-compensated predictor.
                for (unsigned y = 0; y < kMb; y += 2) {
                    for (unsigned x = 0; x < kMb; x += 2) {
                        const std::size_t dst =
                            (my + y) * static_cast<std::size_t>(w) +
                            mx + x;
                        const int a = cur.get(dst);
                        const int b = ref.get(
                            (my + best_vy + y) *
                                static_cast<std::size_t>(w) +
                            mx + best_vx + x);
                        resid.set(dst,
                                  static_cast<std::int16_t>(a - b));
                        env.compute(3);
                    }
                }
            }
        }
        // Reconstruct reference for the next frame (simplified).
        for (std::size_t i = 0; i < ref.size(); i += 2) {
            ref.set(i, cur.get(i));
            env.compute(2);
        }
    }
}

} // namespace workloads
} // namespace wlcache
