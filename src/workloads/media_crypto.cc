/**
 * @file
 * Crypto-flavoured MediaBench kernels: a real SHA-1 over a buffer,
 * and a block-cipher decryption standing in for Pegwit's decrypt path
 * (Pegwit's elliptic-curve keying is replaced by an XTEA-CBC stream:
 * same per-block load/round/store structure the cache sees — see
 * DESIGN.md §2).
 */

#include <cstdint>

#include "workloads/kernels.hh"

namespace wlcache {
namespace workloads {

namespace {

std::uint32_t
rotl32(std::uint32_t v, int s)
{
    return (v << s) | (v >> (32 - s));
}

} // anonymous namespace

void
runSha(GuestEnv &env, unsigned scale)
{
    const std::size_t n_bytes = 28u * 1024 * scale;
    const std::size_t n_words = n_bytes / 4;
    GArray<std::uint32_t> msg(env, n_words);
    GArray<std::uint32_t> w(env, 80);
    GArray<std::uint32_t> digest(env, 5);
    for (std::size_t i = 0; i < n_words; ++i)
        msg.initAt(i, static_cast<std::uint32_t>(env.rng().next()));

    std::uint32_t h0 = 0x67452301u, h1 = 0xefcdab89u, h2 = 0x98badcfeu,
                  h3 = 0x10325476u, h4 = 0xc3d2e1f0u;

    for (std::size_t chunk = 0; chunk + 16 <= n_words; chunk += 16) {
        for (unsigned t = 0; t < 16; ++t) {
            w.set(t, msg.get(chunk + t));
            env.compute(2);
        }
        for (unsigned t = 16; t < 80; ++t) {
            const std::uint32_t v = rotl32(
                w.get(t - 3) ^ w.get(t - 8) ^ w.get(t - 14) ^
                    w.get(t - 16),
                1);
            w.set(t, v);
            env.compute(5);
        }
        std::uint32_t a = h0, b = h1, c = h2, d = h3, e = h4;
        for (unsigned t = 0; t < 80; ++t) {
            std::uint32_t f, k;
            if (t < 20) {
                f = (b & c) | ((~b) & d);
                k = 0x5a827999u;
            } else if (t < 40) {
                f = b ^ c ^ d;
                k = 0x6ed9eba1u;
            } else if (t < 60) {
                f = (b & c) | (b & d) | (c & d);
                k = 0x8f1bbcdcu;
            } else {
                f = b ^ c ^ d;
                k = 0xca62c1d6u;
            }
            const std::uint32_t temp =
                rotl32(a, 5) + f + e + k + w.get(t);
            e = d;
            d = c;
            c = rotl32(b, 30);
            b = a;
            a = temp;
            env.compute(9);
        }
        h0 += a;
        h1 += b;
        h2 += c;
        h3 += d;
        h4 += e;
        env.compute(5);
    }
    digest.set(0, h0);
    digest.set(1, h1);
    digest.set(2, h2);
    digest.set(3, h3);
    digest.set(4, h4);
}

void
runPegwitDecrypt(GuestEnv &env, unsigned scale)
{
    const std::size_t n_bytes = 14u * 1024 * scale;
    const std::size_t n_blocks = n_bytes / 8;
    GArray<std::uint32_t> cipher(env, n_blocks * 2);
    GArray<std::uint32_t> plain(env, n_blocks * 2);
    GArray<std::uint32_t> key(env, 4);
    for (std::size_t i = 0; i < n_blocks * 2; ++i)
        cipher.initAt(i, static_cast<std::uint32_t>(env.rng().next()));
    for (unsigned i = 0; i < 4; ++i)
        key.initAt(i, static_cast<std::uint32_t>(env.rng().next()));

    constexpr std::uint32_t kDelta = 0x9e3779b9u;
    std::uint32_t iv0 = 0x01234567u, iv1 = 0x89abcdefu;

    for (std::size_t blk = 0; blk < n_blocks; ++blk) {
        std::uint32_t v0 = cipher.get(blk * 2);
        std::uint32_t v1 = cipher.get(blk * 2 + 1);
        const std::uint32_t c0 = v0, c1 = v1;
        std::uint32_t sum = kDelta * 32;
        for (unsigned round = 0; round < 32; ++round) {
            const std::uint32_t k_hi =
                key.get((sum >> 11) & 3);
            v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + k_hi);
            sum -= kDelta;
            const std::uint32_t k_lo = key.get(sum & 3);
            v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + k_lo);
            env.compute(14);
        }
        // CBC chaining with the previous ciphertext block.
        plain.set(blk * 2, v0 ^ iv0);
        plain.set(blk * 2 + 1, v1 ^ iv1);
        iv0 = c0;
        iv1 = c1;
        env.compute(4);
    }
}

} // namespace workloads
} // namespace wlcache
