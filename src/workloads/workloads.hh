/**
 * @file
 * Workload registry and trace builder. The registry enumerates the
 * paper's 23 applications with their suite and an estimated code
 * footprint (drives the synthetic L1I stream). getTrace() runs a
 * kernel once, caches the recorded events plus the initial/final
 * memory images, and hands them to the NVP system simulator.
 */

#ifndef WLCACHE_WORKLOADS_WORKLOADS_HH
#define WLCACHE_WORKLOADS_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "workloads/guest_env.hh"

namespace wlcache {
namespace workloads {

/** Registry entry for one benchmark application. */
struct WorkloadInfo
{
    const char *name;    //!< Paper's label, e.g. "adpcmdecode".
    const char *suite;   //!< "Media" or "MiBench".
    unsigned code_kb;    //!< Code footprint for the L1I stream model.
    void (*run)(GuestEnv &, unsigned scale);
};

/** All 23 applications in the paper's presentation order. */
const std::vector<WorkloadInfo> &allWorkloads();

/** Find a workload by name; null if unknown. */
const WorkloadInfo *findWorkload(const std::string &name);

/** A recorded, replayable workload execution. */
struct BuiltTrace
{
    std::string name;
    const WorkloadInfo *info = nullptr;
    std::uint64_t seed = 0;
    unsigned scale = 1;

    std::vector<MemAccess> events;
    Addr image_base = 0;                     //!< Data segment base.
    std::vector<std::uint8_t> initial_image; //!< NVM at program load.
    std::vector<std::uint8_t> final_image;   //!< Expected at the end.

    /** Total instructions (compute gaps + memory ops). */
    std::uint64_t totalInstructions() const;

    /** Fraction of trace events that are stores. */
    double storeFraction() const;
};

/**
 * Build (or fetch from the process-wide cache) the trace for
 * @p name at the given @p scale and @p seed.
 */
const BuiltTrace &getTrace(const std::string &name, unsigned scale = 1,
                           std::uint64_t seed = 42);

/** Drop all cached traces (tests that care about memory). */
void clearTraceCache();

} // namespace workloads
} // namespace wlcache

#endif // WLCACHE_WORKLOADS_WORKLOADS_HH
