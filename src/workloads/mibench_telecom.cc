/**
 * @file
 * MiBench telecom kernels: iterative radix-2 FFT and inverse FFT on
 * complex doubles held in guest memory, including the bit-reversal
 * permutation (the classic strided-then-butterfly access pattern).
 */

#include <cmath>
#include <cstdint>

#include "workloads/kernels.hh"

namespace wlcache {
namespace workloads {

namespace {

constexpr std::size_t kFftSize = 2048;

/** Bit-reversal permutation of re/im arrays. */
void
bitReverse(GuestEnv &env, GArray<double> &re, GArray<double> &im,
           std::size_t n)
{
    std::size_t j = 0;
    for (std::size_t i = 0; i < n - 1; ++i) {
        if (i < j) {
            const double tr = re.get(i);
            re.set(i, re.get(j));
            re.set(j, tr);
            const double ti = im.get(i);
            im.set(i, im.get(j));
            im.set(j, ti);
            env.compute(8);
        }
        std::size_t m = n >> 1;
        while (m >= 1 && (j & m)) {
            j ^= m;
            m >>= 1;
            env.compute(3);
        }
        j |= m;
        env.compute(2);
    }
}

/** Radix-2 Cooley-Tukey; @p sign -1 forward, +1 inverse. */
void
fftCore(GuestEnv &env, GArray<double> &re, GArray<double> &im,
        std::size_t n, double sign)
{
    bitReverse(env, re, im, n);
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double ang = sign * 2.0 * M_PI /
            static_cast<double>(len);
        const double wr = std::cos(ang), wi = std::sin(ang);
        for (std::size_t base = 0; base < n; base += len) {
            double cur_r = 1.0, cur_i = 0.0;
            for (std::size_t k = 0; k < len / 2; ++k) {
                const std::size_t even = base + k;
                const std::size_t odd = base + k + len / 2;
                const double er = re.get(even), ei = im.get(even);
                const double orr = re.get(odd), oi = im.get(odd);
                const double tr = orr * cur_r - oi * cur_i;
                const double ti = orr * cur_i + oi * cur_r;
                re.set(even, er + tr);
                im.set(even, ei + ti);
                re.set(odd, er - tr);
                im.set(odd, ei - ti);
                const double nr = cur_r * wr - cur_i * wi;
                cur_i = cur_r * wi + cur_i * wr;
                cur_r = nr;
                env.compute(20);
            }
        }
    }
}

void
makeSignal(GuestEnv &env, GArray<double> &re, GArray<double> &im,
           std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i);
        re.initAt(i, std::sin(0.037 * t) + 0.5 * std::sin(0.231 * t) +
                         0.1 * env.rng().nextGaussian());
        im.initAt(i, 0.0);
    }
}

} // anonymous namespace

void
runFft(GuestEnv &env, unsigned scale)
{
    const unsigned waves = 4 * scale;
    GArray<double> re(env, kFftSize);
    GArray<double> im(env, kFftSize);
    GArray<double> mag(env, kFftSize / 2);
    makeSignal(env, re, im, kFftSize);

    for (unsigned wv = 0; wv < waves; ++wv) {
        fftCore(env, re, im, kFftSize, -1.0);
        // Power spectrum of the lower half.
        for (std::size_t i = 0; i < kFftSize / 2; ++i) {
            const double r = re.get(i), m = im.get(i);
            mag.set(i, r * r + m * m);
            env.compute(5);
        }
    }
}

void
runFftInverse(GuestEnv &env, unsigned scale)
{
    const unsigned waves = 4 * scale;
    GArray<double> re(env, kFftSize);
    GArray<double> im(env, kFftSize);
    makeSignal(env, re, im, kFftSize);

    // Forward once, then repeated inverse+renormalize rounds (the
    // MiBench FFT -i invocation exercises the inverse path).
    fftCore(env, re, im, kFftSize, -1.0);
    for (unsigned wv = 0; wv < waves; ++wv) {
        fftCore(env, re, im, kFftSize, 1.0);
        const double inv_n = 1.0 / static_cast<double>(kFftSize);
        for (std::size_t i = 0; i < kFftSize; i += 2) {
            re.set(i, re.get(i) * inv_n);
            im.set(i, im.get(i) * inv_n);
            env.compute(4);
        }
    }
}

} // namespace workloads
} // namespace wlcache
