#include "workloads/workloads.hh"

#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "sim/logging.hh"
#include "workloads/kernels.hh"

namespace wlcache {
namespace workloads {

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> table = {
        // --- MediaBench-class (paper order) ---
        { "adpcmdecode", "Media", 6, runAdpcmDecode },
        { "adpcmencode", "Media", 6, runAdpcmEncode },
        { "epic", "Media", 14, runEpic },
        { "g721decode", "Media", 10, runG721Decode },
        { "g721encode", "Media", 10, runG721Encode },
        { "gsmdecode", "Media", 12, runGsmDecode },
        { "gsmencode", "Media", 14, runGsmEncode },
        { "jpegdecode", "Media", 16, runJpegDecode },
        { "jpegencode", "Media", 16, runJpegEncode },
        { "mpeg2decode", "Media", 18, runMpeg2Decode },
        { "mpeg2encode", "Media", 20, runMpeg2Encode },
        { "pegwitdecrypt", "Media", 8, runPegwitDecrypt },
        { "sha", "Media", 6, runSha },
        { "susancorners", "Media", 10, runSusanCorners },
        { "susanedges", "Media", 10, runSusanEdges },
        // --- MiBench-class ---
        { "basicmath", "MiBench", 8, runBasicmath },
        { "qsort", "MiBench", 6, runQsort },
        { "dijkstra", "MiBench", 6, runDijkstra },
        { "FFT", "MiBench", 10, runFft },
        { "FFT_i", "MiBench", 10, runFftInverse },
        { "patricia", "MiBench", 8, runPatricia },
        { "rijndael_d", "MiBench", 12, runRijndaelDecrypt },
        { "rijndael_e", "MiBench", 12, runRijndaelEncrypt },
    };
    return table;
}

const WorkloadInfo *
findWorkload(const std::string &name)
{
    for (const auto &w : allWorkloads())
        if (name == w.name)
            return &w;
    return nullptr;
}

std::uint64_t
BuiltTrace::totalInstructions() const
{
    std::uint64_t n = 0;
    for (const auto &ev : events)
        n += ev.computeGap + 1;
    return n;
}

double
BuiltTrace::storeFraction() const
{
    if (events.empty())
        return 0.0;
    std::uint64_t stores = 0;
    for (const auto &ev : events)
        if (ev.op == MemOp::Store)
            ++stores;
    return static_cast<double>(stores) /
        static_cast<double>(events.size());
}

namespace {

using TraceKey = std::tuple<std::string, unsigned, std::uint64_t>;

/**
 * Process-wide trace cache, shared by every runner worker thread.
 * The mutex guards lookup and build; the map's node-based storage
 * keeps handed-out BuiltTrace references stable across inserts, and
 * a built trace is immutable afterwards, so readers need no lock.
 */
std::mutex trace_cache_mutex;

std::map<TraceKey, std::unique_ptr<BuiltTrace>> &
traceCache()
{
    static std::map<TraceKey, std::unique_ptr<BuiltTrace>> cache;
    return cache;
}

} // anonymous namespace

const BuiltTrace &
getTrace(const std::string &name, unsigned scale, std::uint64_t seed)
{
    wlc_assert(scale >= 1);
    const TraceKey key{ name, scale, seed };
    const std::lock_guard<std::mutex> lock(trace_cache_mutex);
    auto &cache = traceCache();
    auto it = cache.find(key);
    if (it != cache.end())
        return *it->second;

    const WorkloadInfo *info = findWorkload(name);
    if (!info)
        fatal("unknown workload '%s'", name.c_str());

    GuestEnv env(seed);
    info->run(env, scale);
    env.finish();

    auto built = std::make_unique<BuiltTrace>();
    built->name = name;
    built->info = info;
    built->seed = seed;
    built->scale = scale;
    built->events = env.trace();
    built->image_base = env.dataBase();
    const std::size_t used = env.heapUsed();
    built->initial_image.assign(env.initialImage().begin(),
                                env.initialImage().begin() + used);
    built->final_image.assign(env.finalImage().begin(),
                              env.finalImage().begin() + used);
    wlc_assert(!built->events.empty(), "workload '%s' recorded nothing",
               name.c_str());

    const BuiltTrace &ref = *built;
    cache.emplace(key, std::move(built));
    return ref;
}

void
clearTraceCache()
{
    const std::lock_guard<std::mutex> lock(trace_cache_mutex);
    traceCache().clear();
}

} // namespace workloads
} // namespace wlcache
