/**
 * @file
 * MiBench patricia: a Patricia trie keyed by 32-bit addresses, with
 * inserts followed by a lookup-heavy phase. Nodes are guest-memory
 * records, so the pointer-chasing traversal produces the scattered,
 * dependent-load pattern tries are known for.
 *
 * Encoding: each node stores a bit rank in [1, 33] (rank = tested bit
 * index + 1); the head sentinel has rank 0. Child links that point at
 * a node with rank <= the parent's rank are upward (leaf) links, the
 * classic Patricia termination condition.
 */

#include <cstdint>

#include "workloads/kernels.hh"

namespace wlcache {
namespace workloads {

namespace {

constexpr std::size_t kFieldRank = 0;
constexpr std::size_t kFieldLeft = 1;
constexpr std::size_t kFieldRight = 2;
constexpr std::size_t kFieldKey = 3;
constexpr std::size_t kNodeWords = 4;

struct Trie
{
    GuestEnv &env;
    GArray<std::uint32_t> pool;
    std::uint32_t next_node = 0;
    std::uint32_t head;

    Trie(GuestEnv &e, std::size_t max_nodes)
        : env(e), pool(e, max_nodes * kNodeWords), head(alloc(0, 0))
    {
        setField(head, kFieldLeft, head);
        setField(head, kFieldRight, head);
    }

    std::uint32_t
    alloc(std::uint32_t key, std::uint32_t rank)
    {
        const std::uint32_t id = next_node++;
        wlc_assert(static_cast<std::size_t>(id + 1) * kNodeWords <=
                       pool.size(),
                   "trie pool exhausted");
        setField(id, kFieldKey, key);
        setField(id, kFieldRank, rank);
        setField(id, kFieldLeft, id);
        setField(id, kFieldRight, id);
        return id;
    }

    std::uint32_t
    field(std::uint32_t node, std::size_t f)
    {
        return pool.get(static_cast<std::size_t>(node) * kNodeWords + f);
    }

    void
    setField(std::uint32_t node, std::size_t f, std::uint32_t v)
    {
        pool.set(static_cast<std::size_t>(node) * kNodeWords + f, v);
    }

    /** Test bit of rank @p rank (rank >= 1) in @p key, MSB first. */
    static bool
    bitSet(std::uint32_t key, std::uint32_t rank)
    {
        return (key >> (32 - rank)) & 1u;
    }

    /** Descend to the leaf link for @p key. */
    std::uint32_t
    search(std::uint32_t key)
    {
        std::uint32_t p = head;
        std::uint32_t cur = field(p, kFieldLeft);
        env.compute(2);
        while (field(cur, kFieldRank) > field(p, kFieldRank)) {
            p = cur;
            cur = bitSet(key, field(cur, kFieldRank))
                ? field(cur, kFieldRight) : field(cur, kFieldLeft);
            env.compute(6);
        }
        return cur;
    }

    /** Insert @p key if absent; @return true when inserted. */
    bool
    insert(std::uint32_t key)
    {
        const std::uint32_t near = search(key);
        const std::uint32_t near_key = field(near, kFieldKey);
        if (near == head ? false : near_key == key)
            return false;

        // Rank of the first differing bit (head compares vs key 0).
        const std::uint32_t diff =
            near == head ? key : (near_key ^ key);
        std::uint32_t rank = 1;
        while (rank <= 32 && !((diff >> (32 - rank)) & 1u)) {
            ++rank;
            env.compute(2);
        }
        if (rank > 32)
            return false;  // identical keys

        // Re-descend until the next node's rank exceeds the new rank.
        std::uint32_t p = head;
        std::uint32_t cur = field(p, kFieldLeft);
        bool went_right = false;
        while (field(cur, kFieldRank) > field(p, kFieldRank) &&
               field(cur, kFieldRank) < rank) {
            p = cur;
            went_right = bitSet(key, field(cur, kFieldRank));
            cur = went_right ? field(cur, kFieldRight)
                             : field(cur, kFieldLeft);
            env.compute(6);
        }

        const std::uint32_t node = alloc(key, rank);
        if (bitSet(key, rank)) {
            setField(node, kFieldRight, node);
            setField(node, kFieldLeft, cur);
        } else {
            setField(node, kFieldLeft, node);
            setField(node, kFieldRight, cur);
        }
        if (p == head)
            setField(p, kFieldLeft, node);
        else if (went_right)
            setField(p, kFieldRight, node);
        else
            setField(p, kFieldLeft, node);
        env.compute(8);
        return true;
    }
};

} // anonymous namespace

void
runPatricia(GuestEnv &env, unsigned scale)
{
    const std::size_t n_insert = 1400u * scale;
    const std::size_t n_lookup = 5200u * scale;
    Trie trie(env, n_insert + 8);
    GArray<std::uint32_t> keys(env, n_insert);
    GArray<std::uint32_t> stats(env, 2);
    stats.initAt(0, 0);
    stats.initAt(1, 0);

    // Insert phase: synthetic IPv4-like addresses, clustered subnets.
    std::uint32_t inserted = 0;
    for (std::size_t i = 0; i < n_insert; ++i) {
        const std::uint32_t subnet =
            static_cast<std::uint32_t>(env.rng().nextBelow(64)) << 24;
        const std::uint32_t host =
            static_cast<std::uint32_t>(env.rng().next() & 0xffffff);
        const std::uint32_t key = subnet | host;
        keys.initAt(i, key);
        if (trie.insert(keys.get(i)))
            ++inserted;
    }
    stats.set(0, inserted);

    // Lookup phase: mix of present and absent keys.
    std::uint32_t found = 0;
    for (std::size_t i = 0; i < n_lookup; ++i) {
        std::uint32_t key;
        if (env.rng().nextBool(0.7))
            key = keys.get(env.rng().nextBelow(n_insert));
        else
            key = static_cast<std::uint32_t>(env.rng().next());
        const std::uint32_t leaf = trie.search(key);
        if (trie.field(leaf, kFieldKey) == key)
            ++found;
        env.compute(5);
    }
    stats.set(1, found);
    wlc_assert(found > 0, "patricia lookups found nothing");
}

} // namespace workloads
} // namespace wlcache
