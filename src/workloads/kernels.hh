/**
 * @file
 * The 23 benchmark kernels (15 MediaBench-class, 8 MiBench-class)
 * used throughout the paper's evaluation. Each kernel implements the
 * real algorithm against GuestEnv so the recorded reference stream
 * carries the genuine locality and store density of the application.
 * The @p scale parameter multiplies the input size.
 */

#ifndef WLCACHE_WORKLOADS_KERNELS_HH
#define WLCACHE_WORKLOADS_KERNELS_HH

#include "workloads/guest_env.hh"

namespace wlcache {
namespace workloads {

// --- MediaBench-class -----------------------------------------------------
void runAdpcmEncode(GuestEnv &env, unsigned scale);
void runAdpcmDecode(GuestEnv &env, unsigned scale);
void runG721Encode(GuestEnv &env, unsigned scale);
void runG721Decode(GuestEnv &env, unsigned scale);
void runGsmEncode(GuestEnv &env, unsigned scale);
void runGsmDecode(GuestEnv &env, unsigned scale);
void runEpic(GuestEnv &env, unsigned scale);
void runJpegEncode(GuestEnv &env, unsigned scale);
void runJpegDecode(GuestEnv &env, unsigned scale);
void runMpeg2Encode(GuestEnv &env, unsigned scale);
void runMpeg2Decode(GuestEnv &env, unsigned scale);
void runPegwitDecrypt(GuestEnv &env, unsigned scale);
void runSha(GuestEnv &env, unsigned scale);
void runSusanCorners(GuestEnv &env, unsigned scale);
void runSusanEdges(GuestEnv &env, unsigned scale);

// --- MiBench-class ----------------------------------------------------------
void runBasicmath(GuestEnv &env, unsigned scale);
void runQsort(GuestEnv &env, unsigned scale);
void runDijkstra(GuestEnv &env, unsigned scale);
void runFft(GuestEnv &env, unsigned scale);
void runFftInverse(GuestEnv &env, unsigned scale);
void runPatricia(GuestEnv &env, unsigned scale);
void runRijndaelEncrypt(GuestEnv &env, unsigned scale);
void runRijndaelDecrypt(GuestEnv &env, unsigned scale);

/**
 * FIPS-197 known-answer self-test of the Rijndael kernel's cipher
 * core (encrypt the appendix-C vector, compare, decrypt back).
 * @return true when both directions match the standard.
 */
bool aesSelfTest();

} // namespace workloads
} // namespace wlcache

#endif // WLCACHE_WORKLOADS_KERNELS_HH
