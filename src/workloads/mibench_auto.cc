/**
 * @file
 * MiBench automotive/office kernels: basicmath (cubic roots, integer
 * square roots, angle conversions), qsort (actual quicksort over
 * guest memory), and dijkstra (shortest paths on an adjacency
 * matrix, as the MiBench network benchmark does).
 */

#include <cmath>
#include <cstdint>

#include "workloads/kernels.hh"

namespace wlcache {
namespace workloads {

namespace {

/** Bit-by-bit integer square root (as MiBench's isqrt). */
std::uint32_t
isqrt(GuestEnv &env, std::uint32_t x)
{
    std::uint32_t r = 0, bit = 1u << 30;
    while (bit > x)
        bit >>= 2;
    while (bit != 0) {
        if (x >= r + bit) {
            x -= r + bit;
            r = (r >> 1) + bit;
        } else {
            r >>= 1;
        }
        bit >>= 2;
        env.compute(5);
    }
    return r;
}

} // anonymous namespace

void
runBasicmath(GuestEnv &env, unsigned scale)
{
    const std::size_t n = 5200u * scale;
    GArray<double> coeff_a(env, n);
    GArray<double> coeff_b(env, n);
    GArray<double> roots(env, n * 3);
    GArray<std::uint32_t> squares(env, n);
    GArray<std::uint32_t> sqrts(env, n);
    GArray<double> degrees(env, n);
    GArray<double> radians(env, n);

    for (std::size_t i = 0; i < n; ++i) {
        coeff_a.initAt(i, env.rng().nextDouble(-10.0, 10.0));
        coeff_b.initAt(i, env.rng().nextDouble(-20.0, 20.0));
        squares.initAt(i, static_cast<std::uint32_t>(
                              env.rng().next() & 0x3ffffff));
        degrees.initAt(i, env.rng().nextDouble(0.0, 360.0));
    }

    // Cubic x^3 + a x^2 + b x + c = 0 via the trigonometric method.
    for (std::size_t i = 0; i < n; ++i) {
        const double a = coeff_a.get(i);
        const double b = coeff_b.get(i);
        const double c = 1.0;
        const double q = (a * a - 3.0 * b) / 9.0;
        const double r =
            (2.0 * a * a * a - 9.0 * a * b + 27.0 * c) / 54.0;
        env.compute(18);
        if (q > 0.0 && r * r < q * q * q) {
            const double theta = std::acos(r / std::sqrt(q * q * q));
            const double s = -2.0 * std::sqrt(q);
            roots.set(i * 3 + 0, s * std::cos(theta / 3.0) - a / 3.0);
            roots.set(i * 3 + 1,
                      s * std::cos((theta + 2.0 * M_PI) / 3.0) -
                          a / 3.0);
            roots.set(i * 3 + 2,
                      s * std::cos((theta - 2.0 * M_PI) / 3.0) -
                          a / 3.0);
            env.compute(40);
        } else {
            const double e = std::cbrt(std::fabs(r) +
                                       std::sqrt(r * r - q * q * q +
                                                 1e-9));
            roots.set(i * 3 + 0,
                      (r < 0 ? e : -e) + q / (e + 1e-12) - a / 3.0);
            roots.set(i * 3 + 1, 0.0);
            roots.set(i * 3 + 2, 0.0);
            env.compute(30);
        }
    }

    // Integer square roots.
    for (std::size_t i = 0; i < n; ++i)
        sqrts.set(i, isqrt(env, squares.get(i)));

    // Degree <-> radian round trips.
    for (std::size_t i = 0; i < n; ++i) {
        const double rad = degrees.get(i) * (M_PI / 180.0);
        radians.set(i, rad);
        env.compute(4);
    }
}

namespace {

/** In-place quicksort over a guest array (median-of-three pivot). */
void
quickSort(GuestEnv &env, GArray<std::uint32_t> &a, std::int64_t lo,
          std::int64_t hi)
{
    while (lo < hi) {
        if (hi - lo < 12) {
            // Insertion sort for small partitions, as real qsort does.
            for (std::int64_t i = lo + 1; i <= hi; ++i) {
                const std::uint32_t key =
                    a.get(static_cast<std::size_t>(i));
                std::int64_t j = i - 1;
                while (j >= lo &&
                       a.get(static_cast<std::size_t>(j)) > key) {
                    a.set(static_cast<std::size_t>(j + 1),
                          a.get(static_cast<std::size_t>(j)));
                    --j;
                    env.compute(5);
                }
                a.set(static_cast<std::size_t>(j + 1), key);
                env.compute(4);
            }
            return;
        }
        const std::int64_t mid = lo + (hi - lo) / 2;
        std::uint32_t pa = a.get(static_cast<std::size_t>(lo));
        std::uint32_t pb = a.get(static_cast<std::size_t>(mid));
        std::uint32_t pc = a.get(static_cast<std::size_t>(hi));
        std::uint32_t pivot =
            pa < pb ? (pb < pc ? pb : (pa < pc ? pc : pa))
                    : (pa < pc ? pa : (pb < pc ? pc : pb));
        env.compute(10);

        std::int64_t i = lo, j = hi;
        while (i <= j) {
            while (a.get(static_cast<std::size_t>(i)) < pivot) {
                ++i;
                env.compute(3);
            }
            while (a.get(static_cast<std::size_t>(j)) > pivot) {
                --j;
                env.compute(3);
            }
            if (i <= j) {
                const std::uint32_t t =
                    a.get(static_cast<std::size_t>(i));
                a.set(static_cast<std::size_t>(i),
                      a.get(static_cast<std::size_t>(j)));
                a.set(static_cast<std::size_t>(j), t);
                ++i;
                --j;
                env.compute(6);
            }
        }
        // Recurse into the smaller half, iterate on the larger.
        if (j - lo < hi - i) {
            quickSort(env, a, lo, j);
            lo = i;
        } else {
            quickSort(env, a, i, hi);
            hi = j;
        }
    }
}

} // anonymous namespace

void
runQsort(GuestEnv &env, unsigned scale)
{
    const std::size_t n = 7000u * scale;
    GArray<std::uint32_t> a(env, n);
    for (std::size_t i = 0; i < n; ++i)
        a.initAt(i, static_cast<std::uint32_t>(env.rng().next()));
    quickSort(env, a, 0, static_cast<std::int64_t>(n) - 1);
    // Verification sweep (as the benchmark's output pass).
    std::uint32_t prev = 0;
    for (std::size_t i = 0; i < n; i += 2) {
        const std::uint32_t v = a.get(i);
        wlc_assert(v >= prev, "qsort produced unsorted output");
        prev = v;
        env.compute(3);
    }
}

void
runDijkstra(GuestEnv &env, unsigned scale)
{
    const unsigned n_nodes = 88;
    const unsigned n_sources = 7 * scale;
    GArray<std::int32_t> adj(env,
                             static_cast<std::size_t>(n_nodes) * n_nodes);
    GArray<std::int32_t> dist(env, n_nodes);
    GArray<std::uint8_t> visited(env, n_nodes);
    GArray<std::int32_t> result(env, n_sources);

    for (unsigned i = 0; i < n_nodes; ++i)
        for (unsigned j = 0; j < n_nodes; ++j)
            adj.initAt(static_cast<std::size_t>(i) * n_nodes + j,
                       i == j ? 0 : static_cast<std::int32_t>(
                                        1 + env.rng().nextBelow(50)));

    constexpr std::int32_t kInf = 1 << 28;
    for (unsigned src = 0; src < n_sources; ++src) {
        for (unsigned i = 0; i < n_nodes; ++i) {
            dist.set(i, i == src % n_nodes ? 0 : kInf);
            visited.set(i, 0);
            env.compute(3);
        }
        for (unsigned iter = 0; iter < n_nodes; ++iter) {
            // Extract-min scan.
            std::int32_t best = kInf + 1;
            int u = -1;
            for (unsigned i = 0; i < n_nodes; ++i) {
                if (!visited.get(i) && dist.get(i) < best) {
                    best = dist.get(i);
                    u = static_cast<int>(i);
                }
                env.compute(4);
            }
            if (u < 0)
                break;
            visited.set(static_cast<std::size_t>(u), 1);
            // Relax neighbours.
            for (unsigned v = 0; v < n_nodes; ++v) {
                const std::int32_t wgt = adj.get(
                    static_cast<std::size_t>(u) * n_nodes + v);
                if (wgt > 0 && best + wgt < dist.get(v)) {
                    dist.set(v, best + wgt);
                    env.compute(3);
                }
                env.compute(3);
            }
        }
        result.set(src, dist.get((src * 31 + 7) % n_nodes));
    }
}

} // namespace workloads
} // namespace wlcache
