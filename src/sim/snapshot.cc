#include "sim/snapshot.hh"

#include <cstring>

#include "sim/logging.hh"

namespace wlcache {

void
SnapshotWriter::section(const char *tag)
{
    wlc_assert(tag && std::strlen(tag) == 4,
               "snapshot section tags are exactly 4 characters");
    bytes(tag, 4);
}

void
SnapshotWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
SnapshotWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
SnapshotWriter::f64(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
SnapshotWriter::str(const std::string &s)
{
    u64(s.size());
    bytes(s.data(), s.size());
}

void
SnapshotWriter::bytes(const void *p, std::size_t n)
{
    const auto *b = static_cast<const std::uint8_t *>(p);
    buf_.insert(buf_.end(), b, b + n);
}

void
SnapshotWriter::vecU8(const std::vector<std::uint8_t> &v)
{
    u64(v.size());
    bytes(v.data(), v.size());
}

void
SnapshotReader::need(std::size_t n) const
{
    wlc_assert(pos_ + n <= buf_.size(),
               "snapshot stream underflow: need %zu at offset %zu "
               "of %zu",
               n, pos_, buf_.size());
}

void
SnapshotReader::section(const char *tag)
{
    wlc_assert(tag && std::strlen(tag) == 4);
    need(4);
    if (std::memcmp(buf_.data() + pos_, tag, 4) != 0) {
        char got[5] = { 0, 0, 0, 0, 0 };
        std::memcpy(got, buf_.data() + pos_, 4);
        panic("snapshot section mismatch at offset %zu: "
              "expected '%s', found '%s'",
              pos_, tag, got);
    }
    pos_ += 4;
}

std::uint8_t
SnapshotReader::u8()
{
    need(1);
    return buf_[pos_++];
}

std::uint32_t
SnapshotReader::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t
SnapshotReader::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(buf_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

double
SnapshotReader::f64()
{
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
SnapshotReader::str()
{
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char *>(buf_.data() + pos_),
                  n);
    pos_ += n;
    return s;
}

void
SnapshotReader::bytes(void *p, std::size_t n)
{
    need(n);
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
}

std::vector<std::uint8_t>
SnapshotReader::vecU8()
{
    const std::uint64_t n = u64();
    need(n);
    std::vector<std::uint8_t> v(buf_.begin() +
                                    static_cast<std::ptrdiff_t>(pos_),
                                buf_.begin() +
                                    static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return v;
}

} // namespace wlcache
