/**
 * @file
 * gem5-style debug tracing. Components emit categorized, cycle-
 * stamped lines through WLC_DPRINTF; the user enables categories at
 * run time (e.g.\ `wlcache_sim --trace cache,power`). Disabled
 * categories cost one branch per call site.
 */

#ifndef WLCACHE_SIM_TRACE_LOG_HH
#define WLCACHE_SIM_TRACE_LOG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace wlcache {
namespace trace {

/** Debug categories (bitmask). */
enum Category : std::uint32_t
{
    kNone = 0,
    kCache = 1u << 0,   //!< Hits/misses/fills/evictions.
    kQueue = 1u << 1,   //!< DirtyQueue insert/clean/stale.
    kPower = 1u << 2,   //!< Outages, checkpoints, recharge, boot.
    kNvm = 1u << 3,     //!< NVM reads/writes.
    kAdapt = 1u << 4,   //!< Adaptive runtime decisions.
    kAll = 0xffffffffu,
};

/** Enable exactly the given category set. */
void setEnabled(std::uint32_t categories);

/** Currently enabled categories. */
std::uint32_t enabled();

/** True when @p cat is enabled. */
inline bool
isOn(Category cat)
{
    return (enabled() & cat) != 0;
}

/**
 * Parse a comma-separated category list ("cache,power", "all").
 *
 * @param spec Comma-separated names; empty items are ignored.
 * @param mask Receives the bitmask on success; untouched on failure.
 * @param err Optional; on failure receives a one-line diagnostic that
 *            names the offending token and lists every valid category.
 * @return true when every name is known; false on the first unknown.
 */
bool parseCategories(const std::string &spec, std::uint32_t &mask,
                     std::string *err = nullptr);

/** All valid category names, comma-separated (for diagnostics). */
const char *validCategoryNames();

/** Backend for WLC_DPRINTF; printf-style. */
void print(Category cat, Cycle when, const char *component,
           const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

} // namespace trace

/**
 * Emit a cycle-stamped trace line when @p cat is enabled.
 * Usage: WLC_DPRINTF(trace::kQueue, now, "wl_cache", "clean 0x%llx", a);
 */
#define WLC_DPRINTF(cat, when, component, ...)                            \
    do {                                                                  \
        if (::wlcache::trace::isOn(cat))                                  \
            ::wlcache::trace::print(cat, when, component,                 \
                                    __VA_ARGS__);                         \
    } while (0)

} // namespace wlcache

#endif // WLCACHE_SIM_TRACE_LOG_HH
