#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace wlcache {

namespace {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    wlc_assert(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    wlc_assert(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next()
                                                    : nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    if (have_cached_gaussian_) {
        have_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1 = nextDouble();
    double u2 = nextDouble();
    while (u1 <= 1e-300)
        u1 = nextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    have_cached_gaussian_ = true;
    return r * std::cos(theta);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextExponential(double mean_value)
{
    double u = nextDouble();
    while (u <= 1e-300)
        u = nextDouble();
    return -mean_value * std::log(u);
}

void
Rng::saveState(SnapshotWriter &w) const
{
    w.section("RNG ");
    for (const std::uint64_t s : s_)
        w.u64(s);
    w.b(have_cached_gaussian_);
    w.f64(cached_gaussian_);
}

void
Rng::restoreState(SnapshotReader &r)
{
    r.section("RNG ");
    for (std::uint64_t &s : s_)
        s = r.u64();
    have_cached_gaussian_ = r.b();
    cached_gaussian_ = r.f64();
}

} // namespace wlcache
