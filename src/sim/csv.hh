/**
 * @file
 * Minimal CSV emitter so benchmark harnesses can dump machine-readable
 * series next to the human-readable tables.
 */

#ifndef WLCACHE_SIM_CSV_HH
#define WLCACHE_SIM_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace wlcache {

/**
 * Writes RFC-4180-ish CSV rows to a stream the caller owns. Fields
 * containing commas, quotes, or newlines are quoted and escaped.
 */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    /** Emit one row of string fields. */
    void row(const std::vector<std::string> &fields);

    /** Emit a label followed by numeric fields. */
    void row(const std::string &label, const std::vector<double> &values,
             int precision = 6);

  private:
    static std::string escape(const std::string &field);

    std::ostream &os_;
};

} // namespace wlcache

#endif // WLCACHE_SIM_CSV_HH
