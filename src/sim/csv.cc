#include "sim/csv.hh"

#include "util/strings.hh"

namespace wlcache {

void
CsvWriter::row(const std::vector<std::string> &fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << escape(fields[i]);
    }
    os_ << '\n';
}

void
CsvWriter::row(const std::string &label, const std::vector<double> &values,
               int precision)
{
    std::vector<std::string> fields;
    fields.reserve(values.size() + 1);
    fields.push_back(label);
    for (double v : values)
        fields.push_back(util::fmtDouble(v, precision));
    row(fields);
}

std::string
CsvWriter::escape(const std::string &field)
{
    bool needs_quotes = false;
    for (char c : field) {
        if (c == ',' || c == '"' || c == '\n' || c == '\r') {
            needs_quotes = true;
            break;
        }
    }
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

} // namespace wlcache
