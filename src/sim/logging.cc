#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace wlcache {

namespace {

// Atomic: runner worker threads read this while a driver thread may
// still be configuring verbosity.
std::atomic<bool> quiet_flag{ false };

void
vreport(const char *tag, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

} // anonymous namespace

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quiet_flag)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (quiet_flag)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
setQuiet(bool quiet)
{
    quiet_flag = quiet;
}

bool
isQuiet()
{
    return quiet_flag;
}

namespace detail {

void
assertFail(const char *expr, const char *file, int line, const char *fmt,
           ...)
{
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d", expr,
                 file, line);
    if (fmt && fmt[0]) {
        std::fputs(": ", stderr);
        std::va_list ap;
        va_start(ap, fmt);
        std::vfprintf(stderr, fmt, ap);
        va_end(ap);
    }
    std::fputc('\n', stderr);
    std::abort();
}

} // namespace detail

} // namespace wlcache
