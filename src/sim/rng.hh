/**
 * @file
 * Deterministic pseudo-random number generation for workload inputs
 * and power-trace synthesis. All simulator randomness flows through
 * this class so experiments are reproducible bit-for-bit.
 */

#ifndef WLCACHE_SIM_RNG_HH
#define WLCACHE_SIM_RNG_HH

#include <cstdint>

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

/**
 * xoshiro256** PRNG seeded via SplitMix64. Small, fast, and fully
 * deterministic across platforms (no libstdc++ distribution use).
 */
class Rng
{
  public:
    /** Construct with the given 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound); @p bound must be non-zero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in the inclusive range [lo, hi]. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Standard-normal sample (Box-Muller, deterministic). */
    double nextGaussian();

    /** Bernoulli trial with probability @p p of returning true. */
    bool nextBool(double p = 0.5);

    /**
     * Exponentially distributed sample with the given mean
     * (inter-arrival times for bursty power traces).
     */
    double nextExponential(double mean_value);

    /** Serialize the generator state (stream + cached gaussian). */
    void saveState(SnapshotWriter &w) const;

    /** Restore a state saved with saveState(). */
    void restoreState(SnapshotReader &r);

  private:
    std::uint64_t s_[4];
    bool have_cached_gaussian_ = false;
    double cached_gaussian_ = 0.0;
};

} // namespace wlcache

#endif // WLCACHE_SIM_RNG_HH
