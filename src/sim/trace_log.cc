#include "sim/trace_log.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>

#include "sim/logging.hh"
#include "util/strings.hh"

namespace wlcache {
namespace trace {

namespace {

// Atomic: read on every WLC_DPRINTF site, including runner workers.
std::atomic<std::uint32_t> enabled_categories{ kNone };

const char *
categoryName(Category cat)
{
    switch (cat) {
      case kCache: return "cache";
      case kQueue: return "queue";
      case kPower: return "power";
      case kNvm:   return "nvm";
      case kAdapt: return "adapt";
      default:     return "?";
    }
}

} // anonymous namespace

void
setEnabled(std::uint32_t categories)
{
    enabled_categories = categories;
}

std::uint32_t
enabled()
{
    return enabled_categories;
}

const char *
validCategoryNames()
{
    return "cache, queue, power, nvm, adapt, all";
}

bool
parseCategories(const std::string &spec, std::uint32_t &mask,
                std::string *err)
{
    std::uint32_t out = kNone;
    for (const auto &name : util::split(spec, ',')) {
        const std::string n = util::toLower(name);
        if (n.empty())
            continue;
        if (n == "all")
            out |= kAll;
        else if (n == "cache")
            out |= kCache;
        else if (n == "queue")
            out |= kQueue;
        else if (n == "power")
            out |= kPower;
        else if (n == "nvm")
            out |= kNvm;
        else if (n == "adapt")
            out |= kAdapt;
        else {
            if (err)
                *err = "unknown trace category '" + n +
                    "' (valid: " + validCategoryNames() + ")";
            return false;
        }
    }
    mask = out;
    return true;
}

void
print(Category cat, Cycle when, const char *component, const char *fmt,
      ...)
{
    std::fprintf(stderr, "%10llu: %-6s %-10s ",
                 static_cast<unsigned long long>(when),
                 categoryName(cat), component);
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
}

} // namespace trace
} // namespace wlcache
