/**
 * @file
 * gem5-style status/error reporting: panic() for simulator bugs,
 * fatal() for user/configuration errors, warn()/inform() for status.
 */

#ifndef WLCACHE_SIM_LOGGING_HH
#define WLCACHE_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace wlcache {

/**
 * Report an internal simulator bug and abort(). Use only for
 * conditions that can never happen regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning about questionable behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (used by tests and benches). */
void setQuiet(bool quiet);

/** @return true when warn()/inform() output is suppressed. */
bool isQuiet();

namespace detail {

/** Implementation backend for wlc_assert; always aborts. */
[[noreturn]] void assertFail(const char *expr, const char *file, int line,
                             const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

} // namespace detail

/**
 * Condition check that survives NDEBUG builds; panics with a message
 * naming the failed expression when @p cond is false. An optional
 * printf-style message may follow the condition.
 */
#define wlc_assert(cond, ...)                                             \
    do {                                                                  \
        if (!(cond))                                                      \
            ::wlcache::detail::assertFail(#cond, __FILE__, __LINE__,      \
                                          "" __VA_ARGS__);                \
    } while (0)

} // namespace wlcache

#endif // WLCACHE_SIM_LOGGING_HH
