/**
 * @file
 * Lightweight statistics framework in the spirit of gem5's stats
 * package. Components create named scalar and distribution statistics
 * inside a StatGroup; groups nest, dump to a stream, and reset between
 * simulation phases.
 */

#ifndef WLCACHE_SIM_STATS_HH
#define WLCACHE_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace stats {

/** Abstract named statistic. */
class Statistic
{
  public:
    Statistic(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}
    virtual ~Statistic() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Render the current value for dumping. */
    virtual std::string render() const = 0;

    /** Write the value as one compact JSON object. */
    virtual void writeJson(std::ostream &os) const = 0;

    /** Reset to the initial value. */
    virtual void reset() = 0;

    /** Serialize the accumulator state for a simulation snapshot. */
    virtual void saveState(SnapshotWriter &w) const = 0;

    /** Restore a state saved with saveState(). */
    virtual void restoreState(SnapshotReader &r) = 0;

  private:
    std::string name_;
    std::string desc_;
};

/**
 * Simple accumulating scalar (counter or gauge). Unsigned integral
 * increments accumulate into a dedicated 64-bit integer so hot
 * counters stay exact past 2^53 (doubles silently lose low bits
 * there); the rendered/reported value is the sum of both halves.
 */
class Scalar : public Statistic
{
  public:
    using Statistic::Statistic;

    Scalar &operator+=(double v) { value_ += v; return *this; }

    /** Overflow-safe increment for unsigned integral counters. */
    template <typename T,
              std::enable_if_t<std::is_integral_v<T> &&
                               std::is_unsigned_v<T>, int> = 0>
    Scalar &operator+=(T v)
    {
        u64_ += static_cast<std::uint64_t>(v);
        return *this;
    }

    Scalar &operator++() { ++u64_; return *this; }
    void set(double v) { value_ = v; u64_ = 0; }

    double value() const
    {
        return value_ + static_cast<double>(u64_);
    }

    /** Exact integer half (the unsigned-increment accumulator). */
    std::uint64_t valueU64() const { return u64_; }

    std::string render() const override;
    void writeJson(std::ostream &os) const override;
    void reset() override { value_ = 0.0; u64_ = 0; }
    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

  private:
    double value_ = 0.0;
    std::uint64_t u64_ = 0;
};

/**
 * Streaming distribution: tracks count, sum, min, max, and sum of
 * squares, enough for mean and standard deviation without storing
 * samples.
 */
class Distribution : public Statistic
{
  public:
    /** Power-of-two histogram buckets (bucket i holds [2^(i-1), 2^i)). */
    static constexpr std::size_t kNumBuckets = 64;

    using Statistic::Statistic;

    void sample(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const;
    double stddev() const;

    /** Samples in log2 bucket @p i (0 = everything below 1). */
    std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }

    /** Log2 bucket index a sample value falls in. */
    static std::size_t bucketIndex(double v);

    std::string render() const override;
    void writeJson(std::ostream &os) const override;
    void reset() override;
    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    std::array<std::uint64_t, kNumBuckets> buckets_{};
};

/**
 * A named collection of statistics. Groups own their statistics and
 * may own child groups, forming a dump tree.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Create (and own) a scalar statistic. */
    Scalar &addScalar(const std::string &name, const std::string &desc);

    /** Create (and own) a distribution statistic. */
    Distribution &addDistribution(const std::string &name,
                                  const std::string &desc);

    /** Register a child group (not owned). */
    void addChild(StatGroup *child);

    /** Reset every statistic in this group and its children. */
    void resetAll();

    /** Dump "group.stat value # desc" lines recursively. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Dump the group as one compact JSON object: each statistic is a
     * member (see Scalar/Distribution::writeJson), each child group a
     * nested object keyed by its name. Machine-readable counterpart
     * of dump(); lands in RunResult::stats_json.
     */
    void dumpJson(std::ostream &os) const;

    /** Find a statistic by name in this group only; null if absent. */
    const Statistic *find(const std::string &name) const;

    /**
     * Serialize every owned statistic and child group in registration
     * order. Restore requires the identical group structure (the same
     * component built from the same configuration), which snapshots
     * guarantee via their compatibility key.
     */
    void saveState(SnapshotWriter &w) const;

    /** Restore a state saved with saveState(). */
    void restoreState(SnapshotReader &r);

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<std::unique_ptr<Statistic>> owned_;
    std::vector<StatGroup *> children_;
};

} // namespace stats
} // namespace wlcache

#endif // WLCACHE_SIM_STATS_HH
