/**
 * @file
 * Fundamental simulator types and units.
 *
 * The simulated core runs at 1 GHz (paper Table 2), so one cycle is
 * one nanosecond. All latencies in the models are expressed in cycles;
 * wall-clock durations (power traces, charging intervals) are expressed
 * in seconds as doubles.
 */

#ifndef WLCACHE_SIM_TYPES_HH
#define WLCACHE_SIM_TYPES_HH

#include <cstdint>

namespace wlcache {

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle count (1 cycle == 1 ns at 1 GHz). */
using Cycle = std::uint64_t;

/** Core clock frequency, Hz (paper Table 2: 1.0 GHz). */
constexpr double kCoreFreqHz = 1.0e9;

/** Seconds per simulated cycle. */
constexpr double kSecondsPerCycle = 1.0 / kCoreFreqHz;

/** Convert cycles to seconds. */
constexpr double
cyclesToSeconds(Cycle c)
{
    return static_cast<double>(c) * kSecondsPerCycle;
}

/** Convert a duration in seconds to whole cycles (rounded down). */
constexpr Cycle
secondsToCycles(double s)
{
    return static_cast<Cycle>(s * kCoreFreqHz);
}

/**
 * How the simulator integrates energy over a multi-cycle span.
 *
 * Percycle is the reference implementation: leakage and harvest are
 * applied one cycle at a time. SkipAhead integrates a whole span in
 * one closed-form step. Both operate on integer attojoules, so they
 * are bit-identical by construction; the differential harness in
 * tests/skip_ahead_equivalence_test.cc enforces it forever.
 */
enum class StepMode : std::uint8_t
{
    Percycle,
    SkipAhead,
};

/** Kind of a data-memory operation issued by the core. */
enum class MemOp : std::uint8_t
{
    Load,
    Store,
};

/** Access width in bytes for a memory operation (1, 2, 4, or 8). */
using AccessSize = std::uint8_t;

/**
 * One data-memory reference in a workload trace.
 *
 * @c computeGap is the number of non-memory instructions the core
 * executes *before* this reference; it models the compute/memory mix
 * without recording every ALU instruction.
 */
struct MemAccess
{
    std::uint32_t computeGap;
    MemOp op;
    AccessSize size;
    Addr addr;
    std::uint64_t value;  //!< Store data (or loaded data for checking).
};

} // namespace wlcache

#endif // WLCACHE_SIM_TYPES_HH
