#include "sim/stats.hh"

#include <cmath>

#include "sim/logging.hh"
#include "util/strings.hh"

namespace wlcache {
namespace stats {

std::string
Scalar::render() const
{
    // Integers render without a fraction; everything else with 6
    // significant digits.
    if (value_ == static_cast<double>(static_cast<std::int64_t>(value_)))
        return std::to_string(static_cast<std::int64_t>(value_));
    return util::fmtDouble(value_, 6);
}

void
Distribution::sample(double v)
{
    ++count_;
    sum_ += v;
    sum_sq_ += v * v;
    if (v < min_)
        min_ = v;
    if (v > max_)
        max_ = v;
}

double
Distribution::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

std::string
Distribution::render() const
{
    return "n=" + std::to_string(count_) +
        " mean=" + util::fmtDouble(mean(), 4) +
        " min=" + util::fmtDouble(min(), 4) +
        " max=" + util::fmtDouble(max(), 4) +
        " sd=" + util::fmtDouble(stddev(), 4);
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    sum_sq_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

Scalar &
StatGroup::addScalar(const std::string &name, const std::string &desc)
{
    wlc_assert(find(name) == nullptr, "duplicate stat '%s'", name.c_str());
    auto stat = std::make_unique<Scalar>(name, desc);
    Scalar &ref = *stat;
    owned_.push_back(std::move(stat));
    return ref;
}

Distribution &
StatGroup::addDistribution(const std::string &name, const std::string &desc)
{
    wlc_assert(find(name) == nullptr, "duplicate stat '%s'", name.c_str());
    auto stat = std::make_unique<Distribution>(name, desc);
    Distribution &ref = *stat;
    owned_.push_back(std::move(stat));
    return ref;
}

void
StatGroup::addChild(StatGroup *child)
{
    wlc_assert(child != nullptr);
    children_.push_back(child);
}

void
StatGroup::resetAll()
{
    for (auto &s : owned_)
        s->reset();
    for (auto *c : children_)
        c->resetAll();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &s : owned_) {
        os << util::padRight(full + "." + s->name(), 44) << ' '
           << util::padLeft(s->render(), 14) << "  # " << s->desc()
           << '\n';
    }
    for (const auto *c : children_)
        c->dump(os, full);
}

const Statistic *
StatGroup::find(const std::string &name) const
{
    for (const auto &s : owned_)
        if (s->name() == name)
            return s.get();
    return nullptr;
}

} // namespace stats
} // namespace wlcache
