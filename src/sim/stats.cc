#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "util/strings.hh"

namespace wlcache {
namespace stats {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** A double as a JSON number token (shortest exact form). */
std::string
jsonNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // anonymous namespace

std::string
Scalar::render() const
{
    // The pure-integer path renders the exact accumulator; mixed or
    // fractional values render like before (integers without a
    // fraction, everything else with 6 significant digits).
    if (value_ == 0.0)
        return std::to_string(u64_);
    const double total = value();
    if (total == static_cast<double>(static_cast<std::int64_t>(total)))
        return std::to_string(static_cast<std::int64_t>(total));
    return util::fmtDouble(total, 6);
}

void
Scalar::writeJson(std::ostream &os) const
{
    os << "{\"type\":\"scalar\",\"value\":";
    if (value_ == 0.0)
        os << u64_;   // Exact past 2^53.
    else
        os << jsonNum(value());
    os << ",\"desc\":\"" << jsonEscape(desc()) << "\"}";
}

void
Distribution::sample(double v)
{
    ++count_;
    sum_ += v;
    sum_sq_ += v * v;
    if (v < min_)
        min_ = v;
    if (v > max_)
        max_ = v;
    ++buckets_[bucketIndex(v)];
}

std::size_t
Distribution::bucketIndex(double v)
{
    if (!(v >= 1.0))
        return 0;   // Sub-unit, zero, and negative samples.
    const int l = std::ilogb(v);
    return std::min<std::size_t>(kNumBuckets - 1,
                                 static_cast<std::size_t>(l) + 1);
}

double
Distribution::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    // All-equal samples have zero variance by definition; computing
    // it would amplify catastrophic cancellation in sum_sq_ - sum_^2/n
    // into a spurious nonzero stddev for large magnitudes.
    if (min_ == max_)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

std::string
Distribution::render() const
{
    return "n=" + std::to_string(count_) +
        " mean=" + util::fmtDouble(mean(), 4) +
        " min=" + util::fmtDouble(min(), 4) +
        " max=" + util::fmtDouble(max(), 4) +
        " sd=" + util::fmtDouble(stddev(), 4);
}

void
Distribution::writeJson(std::ostream &os) const
{
    os << "{\"type\":\"distribution\",\"count\":" << count_
       << ",\"sum\":" << jsonNum(sum_)
       << ",\"min\":" << jsonNum(min())
       << ",\"max\":" << jsonNum(max())
       << ",\"mean\":" << jsonNum(mean())
       << ",\"stddev\":" << jsonNum(stddev())
       << ",\"buckets\":[";
    bool first = true;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        if (buckets_[i] == 0)
            continue;
        if (!first)
            os << ',';
        first = false;
        os << '[' << i << ',' << buckets_[i] << ']';
    }
    os << "],\"desc\":\"" << jsonEscape(desc()) << "\"}";
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    sum_sq_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
    buckets_.fill(0);
}

void
Scalar::saveState(SnapshotWriter &w) const
{
    w.f64(value_);
    w.u64(u64_);
}

void
Scalar::restoreState(SnapshotReader &r)
{
    value_ = r.f64();
    u64_ = r.u64();
}

void
Distribution::saveState(SnapshotWriter &w) const
{
    w.u64(count_);
    w.f64(sum_);
    w.f64(sum_sq_);
    w.f64(min_);
    w.f64(max_);
    for (const std::uint64_t b : buckets_)
        w.u64(b);
}

void
Distribution::restoreState(SnapshotReader &r)
{
    count_ = r.u64();
    sum_ = r.f64();
    sum_sq_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
    for (std::uint64_t &b : buckets_)
        b = r.u64();
}

Scalar &
StatGroup::addScalar(const std::string &name, const std::string &desc)
{
    wlc_assert(find(name) == nullptr, "duplicate stat '%s'", name.c_str());
    auto stat = std::make_unique<Scalar>(name, desc);
    Scalar &ref = *stat;
    owned_.push_back(std::move(stat));
    return ref;
}

Distribution &
StatGroup::addDistribution(const std::string &name, const std::string &desc)
{
    wlc_assert(find(name) == nullptr, "duplicate stat '%s'", name.c_str());
    auto stat = std::make_unique<Distribution>(name, desc);
    Distribution &ref = *stat;
    owned_.push_back(std::move(stat));
    return ref;
}

void
StatGroup::addChild(StatGroup *child)
{
    wlc_assert(child != nullptr);
    children_.push_back(child);
}

void
StatGroup::resetAll()
{
    for (auto &s : owned_)
        s->reset();
    for (auto *c : children_)
        c->resetAll();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &s : owned_) {
        os << util::padRight(full + "." + s->name(), 44) << ' '
           << util::padLeft(s->render(), 14) << "  # " << s->desc()
           << '\n';
    }
    for (const auto *c : children_)
        c->dump(os, full);
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << '{';
    bool first = true;
    for (const auto &s : owned_) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(s->name()) << "\":";
        s->writeJson(os);
    }
    for (const auto *c : children_) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(c->name()) << "\":";
        c->dumpJson(os);
    }
    os << '}';
}

void
StatGroup::saveState(SnapshotWriter &w) const
{
    w.section("STAT");
    w.u64(owned_.size());
    for (const auto &s : owned_)
        s->saveState(w);
    w.u64(children_.size());
    for (const auto *c : children_)
        c->saveState(w);
}

void
StatGroup::restoreState(SnapshotReader &r)
{
    r.section("STAT");
    const std::uint64_t n_owned = r.u64();
    wlc_assert(n_owned == owned_.size(),
               "stat group '%s': snapshot has %llu statistics, "
               "group has %zu",
               name_.c_str(),
               static_cast<unsigned long long>(n_owned),
               owned_.size());
    for (auto &s : owned_)
        s->restoreState(r);
    const std::uint64_t n_children = r.u64();
    wlc_assert(n_children == children_.size(),
               "stat group '%s': snapshot has %llu children, "
               "group has %zu",
               name_.c_str(),
               static_cast<unsigned long long>(n_children),
               children_.size());
    for (auto *c : children_)
        c->restoreState(r);
}

const Statistic *
StatGroup::find(const std::string &name) const
{
    for (const auto &s : owned_)
        if (s->name() == name)
            return s.get();
    return nullptr;
}

} // namespace stats
} // namespace wlcache
