/**
 * @file
 * Sectioned binary serializer for deterministic simulation snapshots.
 * Every field is written individually (no struct memcpy, so padding
 * bytes never leak into the stream) and doubles travel as their exact
 * IEEE-754 bit pattern, making the encoding bit-stable across runs.
 * Four-character section tags frame each component's state; a reader
 * that drifts out of sync panics on the first tag mismatch instead of
 * silently misinterpreting bytes.
 */

#ifndef WLCACHE_SIM_SNAPSHOT_HH
#define WLCACHE_SIM_SNAPSHOT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wlcache {

/** Append-only little-endian byte-stream writer. */
class SnapshotWriter
{
  public:
    /** Frame the fields that follow with a 4-character tag. */
    void section(const char *tag);

    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /** Exact IEEE-754 bit pattern; NaN payloads round-trip. */
    void f64(double v);
    void b(bool v) { u8(v ? 1 : 0); }
    /** Length-prefixed UTF-8 bytes. */
    void str(const std::string &s);
    /** Raw bytes, no length prefix (caller knows the size). */
    void bytes(const void *p, std::size_t n);
    /** Length-prefixed byte vector. */
    void vecU8(const std::vector<std::uint8_t> &v);

    const std::vector<std::uint8_t> &data() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Mirror-image reader. Any mismatch — wrong section tag, stream
 * underflow — is a fatal error: a snapshot either restores exactly or
 * not at all.
 */
class SnapshotReader
{
  public:
    explicit SnapshotReader(const std::vector<std::uint8_t> &buf)
        : buf_(buf)
    {}

    /** Consume and verify a 4-character section tag. */
    void section(const char *tag);

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    bool b() { return u8() != 0; }
    std::string str();
    void bytes(void *p, std::size_t n);
    std::vector<std::uint8_t> vecU8();

    /** True once every byte has been consumed. */
    bool atEnd() const { return pos_ == buf_.size(); }

  private:
    void need(std::size_t n) const;

    const std::vector<std::uint8_t> &buf_;
    std::size_t pos_ = 0;
};

} // namespace wlcache

#endif // WLCACHE_SIM_SNAPSHOT_HH
