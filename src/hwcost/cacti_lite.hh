/**
 * @file
 * CACTI-lite: a small analytic area/energy/leakage model for SRAM-
 * and CAM-style structures at 90 nm, in the spirit of CACTI 3.0
 * which the paper uses for its §6.2 hardware-cost analysis of the
 * DirtyQueue. The model captures first-order scaling (cells + sense
 * amps + decoder) — enough to reproduce the paper's single-number
 * claims: DirtyQueue area <= 0.005 mm^2, dynamic access <= 0.0008 nJ,
 * leakage ~0.1 mW (~9% of an NV cache's leakage).
 */

#ifndef WLCACHE_HWCOST_CACTI_LITE_HH
#define WLCACHE_HWCOST_CACTI_LITE_HH

#include <cstddef>

namespace wlcache {
namespace hwcost {

/** Process-technology constants. */
struct TechParams
{
    double feature_nm = 90.0;
    /** 6T SRAM cell area, um^2 (90 nm: ~1.0 um^2). */
    double sram_cell_area_um2 = 1.0;
    /** CAM cell area overhead factor vs SRAM (9T/10T cells). */
    double cam_cell_factor = 1.8;
    /** Dynamic energy per bit read/written, pJ. */
    double dyn_energy_per_bit_pj = 0.011;
    /** Leakage per bit, nW (90 nm SRAM). */
    double leakage_per_bit_nw = 85.0;
    /** Peripheral (decoder/sense) area overhead factor. */
    double periphery_factor = 1.35;
    /** Control-logic leakage floor, mW. */
    double logic_leakage_mw = 0.07;
};

/** Cost report for one structure. */
struct StructureCost
{
    double area_mm2;
    double dynamic_access_nj;
    double leakage_mw;
};

/** Analytic model entry points. */
class CactiLite
{
  public:
    explicit CactiLite(const TechParams &tech = {}) : tech_(tech) {}

    /**
     * Cost of a RAM-style array.
     * @param entries Number of entries.
     * @param bits_per_entry Bits in each entry.
     * @param cam True for a content-addressable array.
     */
    StructureCost ramArray(std::size_t entries,
                           std::size_t bits_per_entry,
                           bool cam = false) const;

    /**
     * Cost of the WL-Cache DirtyQueue (paper §6.2): @p entries slots
     * of address + state bits, plus threshold registers and the
     * watchdog timer, with control logic folded into the leakage
     * floor. The DirtyQueue is *not* a CAM — the paper's protocols
     * explicitly avoid search.
     */
    StructureCost dirtyQueue(std::size_t entries,
                             std::size_t addr_bits = 26) const;

    /** Cost of a full cache array (tags + data), for comparison. */
    StructureCost cacheArray(std::size_t size_bytes,
                             std::size_t line_bytes, unsigned assoc,
                             double leakage_scale = 1.0) const;

    const TechParams &tech() const { return tech_; }

  private:
    TechParams tech_;
};

} // namespace hwcost
} // namespace wlcache

#endif // WLCACHE_HWCOST_CACTI_LITE_HH
