#include "hwcost/cacti_lite.hh"

#include <cmath>

#include "sim/logging.hh"
#include "util/stat_math.hh"

namespace wlcache {
namespace hwcost {

StructureCost
CactiLite::ramArray(std::size_t entries, std::size_t bits_per_entry,
                    bool cam) const
{
    wlc_assert(entries > 0 && bits_per_entry > 0);
    const double bits =
        static_cast<double>(entries) *
        static_cast<double>(bits_per_entry);
    const double cell_factor = cam ? tech_.cam_cell_factor : 1.0;

    StructureCost c;
    c.area_mm2 = bits * tech_.sram_cell_area_um2 * cell_factor *
        tech_.periphery_factor * 1e-6;
    // One access touches a full entry (plus a decoded wordline); CAM
    // compares touch every entry.
    const double bits_touched = cam
        ? bits
        : static_cast<double>(bits_per_entry) *
            (1.0 + 0.1 * std::log2(static_cast<double>(entries) + 1.0));
    c.dynamic_access_nj =
        bits_touched * tech_.dyn_energy_per_bit_pj * 1e-3;
    c.leakage_mw = bits * tech_.leakage_per_bit_nw * cell_factor * 1e-6;
    return c;
}

StructureCost
CactiLite::dirtyQueue(std::size_t entries, std::size_t addr_bits) const
{
    // Each slot: line address + 2 state bits + 2 order counters
    // (insert/touch sequence, 8 bits folded).
    const std::size_t bits_per_entry = addr_bits + 2 + 8;
    StructureCost dq = ramArray(entries, bits_per_entry, false);
    // Threshold registers (maxline/waterline, 1 byte each) and the
    // two 2-byte watchdog history values (§5.5).
    StructureCost regs = ramArray(6, 8, false);
    StructureCost c;
    c.area_mm2 = dq.area_mm2 + regs.area_mm2;
    c.dynamic_access_nj = dq.dynamic_access_nj;
    c.leakage_mw =
        dq.leakage_mw + regs.leakage_mw + tech_.logic_leakage_mw;
    return c;
}

StructureCost
CactiLite::cacheArray(std::size_t size_bytes, std::size_t line_bytes,
                      unsigned assoc, double leakage_scale) const
{
    wlc_assert(line_bytes > 0 && assoc > 0);
    const std::size_t lines = size_bytes / line_bytes;
    const std::size_t sets = lines / assoc;
    const unsigned tag_bits =
        32 - util::floorLog2(static_cast<std::uint64_t>(line_bytes)) -
        util::floorLog2(static_cast<std::uint64_t>(sets ? sets : 1));
    const std::size_t bits_per_line =
        line_bytes * 8 + tag_bits + 2 /*valid+dirty*/ + 8 /*repl*/;
    StructureCost c = ramArray(lines, bits_per_line, false);
    // An access reads one way's line segment plus all tags in the set.
    c.dynamic_access_nj =
        (64.0 * 8.0 + assoc * (tag_bits + 2.0)) *
        tech_.dyn_energy_per_bit_pj * 1e-3;
    c.leakage_mw *= leakage_scale;
    return c;
}

} // namespace hwcost
} // namespace wlcache
