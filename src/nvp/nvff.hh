/**
 * @file
 * Non-volatile flip-flop (NVFF) backup storage. NVP-class systems
 * pair every architectural register with a neighbouring NVFF so a
 * JIT checkpoint can capture the core state in-place (paper §2.1);
 * WL-Cache adds a few more NVFF bytes for the maxline/waterline
 * thresholds and the two watchdog power-on times (§5.5). This class
 * models that storage: contents survive power loss, and every
 * checkpoint/restore charges the energy meter.
 */

#ifndef WLCACHE_NVP_NVFF_HH
#define WLCACHE_NVP_NVFF_HH

#include <cstdint>
#include <vector>

#include "energy/energy_meter.hh"
#include "sim/types.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace nvp {

/** A small bank of non-volatile flip-flops. */
class NvffStore
{
  public:
    /**
     * @param capacity_bytes Size of the bank.
     * @param write_energy_per_byte JIT-checkpoint cost.
     * @param read_energy_per_byte Boot-restore cost.
     * @param meter Energy meter (may be null).
     * @param write_latency_per_byte Cycles per checkpointed byte.
     */
    NvffStore(unsigned capacity_bytes, double write_energy_per_byte,
              double read_energy_per_byte,
              energy::EnergyMeter *meter = nullptr,
              double write_latency_per_byte = 0.125);

    unsigned capacity() const
    {
        return static_cast<unsigned>(data_.size());
    }

    /**
     * Checkpoint @p bytes of @p data into the bank at @p offset.
     * @return cycles the (parallel flash-style) capture takes.
     */
    Cycle checkpoint(const void *data, unsigned bytes,
                     unsigned offset = 0);

    /** Restore @p bytes from the bank into @p data. */
    Cycle restore(void *data, unsigned bytes, unsigned offset = 0) const;

    /** Whether a checkpoint has ever been captured. */
    bool hasImage() const { return has_image_; }

    /** Total checkpoints performed (statistics). */
    std::uint64_t checkpointCount() const { return checkpoints_; }

    /** Serialize the bank contents and checkpoint bookkeeping. */
    void saveState(SnapshotWriter &w) const;

    /** Restore a state saved with saveState(). */
    void restoreState(SnapshotReader &r);

  private:
    std::vector<std::uint8_t> data_;
    double write_energy_per_byte_;
    double read_energy_per_byte_;
    energy::EnergyMeter *meter_;
    double write_latency_per_byte_;
    bool has_image_ = false;
    std::uint64_t checkpoints_ = 0;
};

} // namespace nvp
} // namespace wlcache

#endif // WLCACHE_NVP_NVFF_HH
