/**
 * @file
 * Whole-system configuration: which cache design backs the NVP, the
 * platform energy parameters (capacitor, thresholds, NVFF costs),
 * and the per-design presets from the paper's Table 2.
 */

#ifndef WLCACHE_NVP_SYSTEM_CONFIG_HH
#define WLCACHE_NVP_SYSTEM_CONFIG_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cache/cache_params.hh"
#include "cache/nvsram_cache.hh"
#include "cache/nvsram_practical_cache.hh"
#include "cache/replay_cache.hh"
#include "cache/wt_buffered_cache.hh"
#include "core/adaptive_runtime.hh"
#include "core/wl_cache.hh"
#include "cpu/inorder_core.hh"
#include "mem/log/nvm_journal.hh"
#include "mem/nvm_params.hh"
#include "sim/types.hh"

namespace wlcache {

namespace telemetry { class TimelineBuffer; }

namespace nvp {

/** The cache designs the paper compares (Figure 1, Table 1). */
enum class DesignKind
{
    NoCache,      //!< NVP without a cache (Fig. 1a).
    VCacheWT,     //!< Volatile write-through SRAM (Fig. 1b).
    NVCacheWB,    //!< Non-volatile write-back (Fig. 1c).
    NvsramWB,     //!< NVSRAM ideal write-back (Fig. 1d) — the baseline.
    NvsramFull,   //!< NVSRAM(full): backs up the whole array (§2.3.3).
    NvsramPractical, //!< Way-partitioned SRAM+NV hybrid (§2.3.3).
    Replay,       //!< ReplayCache (volatile WB + region persistence).
    WtBuffered,   //!< WT + CAM write-back buffer (§3.3 alternative).
    WL,           //!< WL-Cache (Fig. 1e) — the contribution.
    WLLog,        //!< WL-Cache over a log-structured NVM write path.
};

/** Human-readable design name matching the paper's figures. */
const char *designKindName(DesignKind kind);

/**
 * Inverse of designKindName(): parse a figure-style design name.
 * @return true and set @p out on a match; false on an unknown name.
 */
bool designKindFromName(const std::string &name, DesignKind &out);

/**
 * Every valid designKindName(), comma-separated — for error messages
 * and diagnostics wherever a design name fails to parse.
 */
std::string designKindNameList();

/**
 * WL-Cache family: designs built on the DirtyQueue/maxline machinery
 * (adaptive runtime, threshold schedule, maxline NVFF state).
 */
inline bool
isWlFamily(DesignKind kind)
{
    return kind == DesignKind::WL || kind == DesignKind::WLLog;
}

/** Step-mode name: "percycle" or "skip_ahead". */
const char *stepModeName(StepMode mode);

/**
 * Inverse of stepModeName().
 * @return true and set @p out on a match; false on an unknown name.
 */
bool stepModeFromName(const std::string &name, StepMode &out);

/** Platform energy/threshold parameters (Table 2). */
struct PlatformParams
{
    double capacitance_f = 1.0e-6;  //!< Default 1 uF.
    double vmin = 2.8;
    double vmax = 3.5;
    /** Restore (boot) voltage; per-design preset (Table 2). */
    double von = 3.3;
    /**
     * JIT-checkpointing voltage threshold; per-design preset
     * (Table 2: NV 2.9, NVSRAM 3.1, WL 2.95..3.1 by maxline). The
     * energy reserved between Vbackup and Vmin scales with the
     * capacitor, exactly as a voltage-divider threshold does in the
     * MSP430-class hardware the paper assumes (§5.5).
     */
    double vbackup = 2.9;
    double harvest_efficiency = 0.7;

    /**
     * WL-Cache threshold schedule (§4, §5.5): Vbackup and Von as
     * linear functions of the current maxline, anchored at
     * maxline = 2 and matching Table 2's 2.95..3.1 / 3.3..3.5 ranges
     * at the default DirtyQueue bounds [2, 6].
     */
    double wl_vbackup_base = 2.95;
    double wl_vbackup_step = 0.0375;
    double wl_von_base = 3.3;
    double wl_von_step = 0.05;
    unsigned wl_threshold_anchor = 2;  //!< maxline anchor for bases.

    /** NVFF write energy per byte (registers, thresholds, timers). */
    double nvff_energy_per_byte = 18.0e-12;
    /** NVFF read (restore) energy per byte at boot. */
    double nvff_restore_energy_per_byte = 5.0e-12;

    /** Cycles for wake-up/boot before execution resumes. */
    Cycle reboot_latency_cycles = 2000;
};

/** Full system configuration. */
struct SystemConfig
{
    DesignKind design = DesignKind::WL;

    /**
     * How the run loop integrates energy over multi-cycle spans
     * (DESIGN.md §15). SkipAhead (the default) uses closed-form
     * integer integration; Percycle is the cycle-by-cycle reference
     * kept compiled-in forever so the two paths stay differentially
     * testable. Results are bit-identical, but the mode is still part
     * of dumpConfigKey() so cached run records say which path
     * produced them; snapshots neutralize it (cross-mode resume is
     * supported by construction).
     */
    StepMode step_mode = StepMode::SkipAhead;

    cache::CacheParams dcache;
    cache::CacheParams icache;
    cache::NvsramParams nvsram;
    cache::NvsramPracticalParams nvsram_practical;
    cache::ReplayParams replay;
    cache::WtBufferParams wt_buffer;
    core::WlParams wl;
    core::AdaptiveConfig adaptive;
    /** WL-Cache opportunistic dynamic adaptation (§4). */
    bool wl_dynamic = false;

    mem::NvmParams nvm;
    /** WL-Log journal geometry/policy (ignored by other designs). */
    mem::NvmLogParams log;
    cpu::CoreParams core;
    PlatformParams platform;

    /** Run the crash-consistency oracle at every recovery point. */
    bool validate_consistency = false;
    /**
     * Fault injection (testing the oracle itself): skip the cache's
     * JIT checkpoint at every power failure. A correct oracle MUST
     * flag violations for designs whose persistence depends on the
     * checkpoint (NVSRAM, WL-Cache).
     */
    bool inject_checkpoint_skip = false;
    /**
     * Fault injection: skip the NVFF register checkpoint at every
     * power failure, so the boot-time restore hands the core stale
     * register state. Only the register-file differential check can
     * see this — the NVM oracle cannot.
     */
    bool inject_register_skip = false;
    /** Check every load's value against the recorded trace. */
    bool check_load_values = false;

    /**
     * Forced-outage schedule (verification campaigns, §3.2/§5.3):
     * sorted cycle points at which a power failure is forced
     * regardless of the stored energy — each point fires exactly once,
     * at the first event boundary at or after the requested cycle.
     * Works in infinite-power runs too, which is how the verify
     * campaign engine makes the forced point the *only* outage.
     */
    std::vector<std::uint64_t> forced_outage_cycles;

    /** Give up after this many outages (dead-environment guard). */
    std::uint64_t max_outages = 2'000'000;

    /**
     * Optional telemetry timeline (non-owning, may be null). When set,
     * the system and every component it builds record cycle-stamped
     * events into it. Purely observational — attaching a timeline
     * never changes timing, energy, or results — so this pointer is
     * deliberately NOT part of dumpConfigKey(): cached results remain
     * valid whether or not a run was traced.
     */
    telemetry::TimelineBuffer *timeline = nullptr;

    /**
     * Cap on the per-power-interval rollups a run accumulates into
     * RunResult::intervals (dirty-line high water, cleanings,
     * checkpoint energy per interval). Intervals past the cap are
     * counted in RunResult::intervals_dropped but not stored, so a
     * million-outage run cannot balloon its result record. 0 disables
     * rollup collection entirely.
     */
    unsigned max_interval_rollups = 256;

    /**
     * Preset for a given design: cache technology (SRAM vs NV array),
     * restore voltage, and adaptive defaults per the paper.
     */
    static SystemConfig forDesign(DesignKind kind);
};

/**
 * Write every simulation-affecting field of @p cfg as canonical
 * `key=value` lines (stable order, full double precision). The
 * runner's content-addressed result cache hashes this dump, so two
 * configurations collide exactly when the simulator cannot tell them
 * apart. When adding a SystemConfig field, extend this dump and bump
 * runner::kResultSchemaVersion.
 */
void dumpConfigKey(std::ostream &os, const SystemConfig &cfg);

} // namespace nvp
} // namespace wlcache

#endif // WLCACHE_NVP_SYSTEM_CONFIG_HH
