#include "nvp/system.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "cache/no_cache.hh"
#include "cache/nv_cache.hh"
#include "cache/nvsram_practical_cache.hh"
#include "cache/replay_cache.hh"
#include "cache/vcache_wt.hh"
#include "cache/wt_buffered_cache.hh"
#include "core/wl_log_cache.hh"
#include "cpu/register_file.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "sim/trace_log.hh"
#include "telemetry/timeline.hh"
#include "util/strings.hh"

#include <ostream>
#include <sstream>

namespace wlcache {
namespace nvp {

SystemSim::SystemSim(const SystemConfig &cfg,
                     const workloads::BuiltTrace &trace,
                     const energy::PowerTrace &power, bool infinite_power)
    : cfg_(cfg), trace_(trace),
      nvm_(std::make_unique<mem::NvmMemory>(cfg.nvm, &meter_)),
      cap_(cfg.platform.capacitance_f, cfg.platform.vmin,
           cfg.platform.vmax),
      harvester_(power, cfg.platform.harvest_efficiency, infinite_power)
{
    // Load the program's initial data image into NVM. The write
    // journal starts empty afterwards: every system built from the
    // same trace shares this baseline, so snapshots only need the
    // pages a run actually mutated.
    if (!trace_.initial_image.empty())
        nvm_->poke(trace_.image_base,
                   static_cast<unsigned>(trace_.initial_image.size()),
                   trace_.initial_image.data());
    nvm_->clearJournal();

    buildCaches();

    cpu::ICacheStreamParams icp;
    icp.code_bytes = trace_.info ? trace_.info->code_kb << 10
                                 : 12u << 10;
    icp.seed = trace_.seed ^
        std::hash<std::string>{}(trace_.name);
    cpu::ICacheStream stream(icp);
    core_ = std::make_unique<cpu::InOrderCore>(cfg_.core, *icache_,
                                               *dcache_, stream,
                                               &meter_);

    if (isWlFamily(cfg_.design)) {
        runtime_ = std::make_unique<core::AdaptiveRuntime>(
            cfg_.adaptive, cfg_.wl.maxline);
        if (cfg_.wl_dynamic) {
            wl_->enableDynamicAdaptation([this](double extra_j) {
                if (harvester_.infinite())
                    return true;
                // Raising maxline by one moves Vbackup up a step
                // (paper §4: dynamic adaptation raises Vbackup when
                // the capacitor can afford another line).
                const unsigned next_ml = wl_->maxline() + 1;
                const double v_next = wlVbackup(next_ml);
                const double c = cfg_.platform.capacitance_f;
                const double new_level = 0.5 * c * v_next * v_next;
                if (cap_.storedEnergy() > new_level + 4.0 * extra_j) {
                    backup_energy_level_ = new_level;
                    backup_level_aj_ = cap_.energyAjForVoltage(v_next);
                    vbackup_now_ = v_next;
                    return true;
                }
                return false;
            });
        }
    }

    if (cfg_.validate_consistency && !trace_.initial_image.empty())
        checker_.applyInit(trace_.image_base,
                           trace_.initial_image.data(),
                           static_cast<unsigned>(
                               trace_.initial_image.size()));

    unsigned nvff_bytes = cpu::RegisterFile::sizeBytes();
    if (isWlFamily(cfg_.design))
        nvff_bytes += core::AdaptiveRuntime::kNvffBytes;
    nvff_ = std::make_unique<NvffStore>(
        nvff_bytes, cfg_.platform.nvff_energy_per_byte,
        cfg_.platform.nvff_restore_energy_per_byte, &meter_);

    leak_watts_ = cfg_.core.leakage_watts + dcache_->leakageWatts() +
        icache_->leakageWatts();
    leak_aj_per_cycle_ =
        energy::toAttojoules(leak_watts_ * kSecondsPerCycle);
    tl_ = cfg_.timeline;
    attachTimeline();
    recomputeThresholds();

    // Resume-compatibility key: every configuration knob the captured
    // state depends on. The forced-outage schedule and the injection
    // flags are neutralized deliberately — they only *trigger* extra
    // behaviour at or after a scheduled point, so a golden run's
    // prefix snapshot resumes correctly into a point run. max_outages
    // is likewise prefix-invariant (it only decides when to give up).
    SystemConfig keyed = cfg_;
    keyed.forced_outage_cycles.clear();
    keyed.inject_checkpoint_skip = false;
    keyed.inject_register_skip = false;
    keyed.max_outages = 0;
    keyed.timeline = nullptr;
    // The two step modes are bit-identical by construction (integer
    // attojoule integration), so a snapshot taken under one resumes
    // under the other; the mode is neutralized out of the key.
    keyed.step_mode = StepMode::SkipAhead;
    std::ostringstream ks;
    dumpConfigKey(ks, keyed);
    ks << "trace=" << trace_.name << '\n'
       << "trace_seed=" << trace_.seed << '\n'
       << "trace_events=" << trace_.events.size() << '\n'
       << "infinite_power=" << (harvester_.infinite() ? 1 : 0) << '\n'
       << "power_period=" << power.samplePeriod() << '\n'
       << "power_hash="
       << util::fnv1a128Hex(power.samples().data(),
                            power.samples().size() * sizeof(double))
       << '\n'
       << "snapshot_format=" << SystemSnapshot::kFormatVersion << '\n';
    const std::string key_text = ks.str();
    snapshot_key_ = util::fnv1a128Hex(key_text.data(), key_text.size());
}

void
SystemSim::attachTimeline()
{
    nvm_->setTimeline(tl_);
    dcache_->setTimeline(tl_);
    icache_->setTimeline(tl_);
    core_->setTimeline(tl_);
    if (wllog_)
        wllog_->journal().setTimeline(tl_);
}

SystemSim::~SystemSim() = default;

void
SystemSim::buildCaches()
{
    using cache::ICacheKind;
    switch (cfg_.design) {
      case DesignKind::NoCache:
        dcache_ = std::make_unique<cache::NoCache>(*nvm_, &meter_);
        icache_ = std::make_unique<cache::InstrCache>(
            cfg_.icache, ICacheKind::None, *nvm_, &meter_);
        break;
      case DesignKind::VCacheWT:
        dcache_ = std::make_unique<cache::VCacheWT>(cfg_.dcache, *nvm_,
                                                    &meter_);
        icache_ = std::make_unique<cache::InstrCache>(
            cfg_.icache, ICacheKind::Volatile, *nvm_, &meter_);
        break;
      case DesignKind::NVCacheWB:
        dcache_ = std::make_unique<cache::NVCacheWB>(cfg_.dcache, *nvm_,
                                                     &meter_);
        icache_ = std::make_unique<cache::InstrCache>(
            cfg_.icache, ICacheKind::NonVolatile, *nvm_, &meter_);
        break;
      case DesignKind::NvsramWB:
        dcache_ = std::make_unique<cache::NvsramCacheWB>(
            cfg_.dcache, cfg_.nvsram, *nvm_, &meter_);
        icache_ = std::make_unique<cache::InstrCache>(
            cfg_.icache, ICacheKind::WarmRestore, *nvm_, &meter_,
            cfg_.nvsram.restore_line_energy,
            cfg_.nvsram.restore_line_latency);
        break;
      case DesignKind::NvsramFull: {
        cache::NvsramParams full = cfg_.nvsram;
        full.backup_full = true;
        dcache_ = std::make_unique<cache::NvsramCacheWB>(
            cfg_.dcache, full, *nvm_, &meter_);
        icache_ = std::make_unique<cache::InstrCache>(
            cfg_.icache, ICacheKind::WarmRestore, *nvm_, &meter_,
            cfg_.nvsram.restore_line_energy,
            cfg_.nvsram.restore_line_latency);
        break;
      }
      case DesignKind::NvsramPractical:
        dcache_ = std::make_unique<cache::NvsramPracticalCache>(
            cfg_.dcache, cache::nvCacheParams(),
            cfg_.nvsram_practical, *nvm_, &meter_);
        icache_ = std::make_unique<cache::InstrCache>(
            cfg_.icache, ICacheKind::Volatile, *nvm_, &meter_);
        break;
      case DesignKind::WtBuffered:
        dcache_ = std::make_unique<cache::WtBufferedCache>(
            cfg_.dcache, cfg_.wt_buffer, *nvm_, &meter_);
        icache_ = std::make_unique<cache::InstrCache>(
            cfg_.icache, ICacheKind::Volatile, *nvm_, &meter_);
        break;
      case DesignKind::Replay: {
        auto rc = std::make_unique<cache::ReplayCacheModel>(
            cfg_.dcache, cfg_.replay, *nvm_, &meter_);
        replay_ = rc.get();
        dcache_ = std::move(rc);
        icache_ = std::make_unique<cache::InstrCache>(
            cfg_.icache, ICacheKind::Volatile, *nvm_, &meter_);
        break;
      }
      case DesignKind::WL: {
        auto wl = std::make_unique<core::WLCache>(cfg_.dcache, cfg_.wl,
                                                  *nvm_, &meter_);
        wl_ = wl.get();
        dcache_ = std::move(wl);
        icache_ = std::make_unique<cache::InstrCache>(
            cfg_.icache, ICacheKind::Volatile, *nvm_, &meter_);
        break;
      }
      case DesignKind::WLLog: {
        auto wl = std::make_unique<core::WlLogCache>(
            cfg_.dcache, cfg_.wl, cfg_.log, *nvm_, &meter_);
        wllog_ = wl.get();
        wl_ = wl.get();
        // The journal region is carved from the top of NVM: the
        // workload image must fit entirely below it.
        const Addr region_start = wllog_->journal().regionStart();
        const std::size_t image_size =
            std::max(trace_.initial_image.size(),
                     trace_.final_image.size());
        if (trace_.image_base + image_size > region_start) {
            fatal("WL-Log journal region [0x%llx..) overlaps the "
                  "workload image [0x%llx, 0x%llx): shrink "
                  "log.region_lines or grow nvm.size_bytes",
                  static_cast<unsigned long long>(region_start),
                  static_cast<unsigned long long>(trace_.image_base),
                  static_cast<unsigned long long>(trace_.image_base +
                                                  image_size));
        }
        dcache_ = std::move(wl);
        icache_ = std::make_unique<cache::InstrCache>(
            cfg_.icache, ICacheKind::Volatile, *nvm_, &meter_);
        break;
      }
    }
}

double
SystemSim::reserveNeededJ() const
{
    unsigned nvff_bytes = cpu::RegisterFile::sizeBytes();
    if (isWlFamily(cfg_.design))
        nvff_bytes += core::AdaptiveRuntime::kNvffBytes;
    return dcache_->checkpointEnergyBound() +
        nvff_bytes * cfg_.platform.nvff_energy_per_byte;
}

double
SystemSim::wlVbackup(unsigned maxline) const
{
    const auto &p = cfg_.platform;
    const double v = p.wl_vbackup_base +
        p.wl_vbackup_step *
            static_cast<double>(maxline > p.wl_threshold_anchor
                                    ? maxline - p.wl_threshold_anchor
                                    : 0);
    return std::min(v, p.vmax);
}

double
SystemSim::wlVon(unsigned maxline) const
{
    const auto &p = cfg_.platform;
    const double v = p.wl_von_base +
        p.wl_von_step *
            static_cast<double>(maxline > p.wl_threshold_anchor
                                    ? maxline - p.wl_threshold_anchor
                                    : 0);
    return std::min(v, p.vmax);
}

void
SystemSim::recomputeThresholds()
{
    if (isWlFamily(cfg_.design)) {
        vbackup_now_ = wlVbackup(wl_->maxline());
        von_now_ = wlVon(wl_->maxline());
    } else if (cfg_.design == DesignKind::NvsramWB ||
               cfg_.design == DesignKind::NvsramFull ||
               cfg_.design == DesignKind::NvsramPractical) {
        // NVSRAM sizes its threshold for the worst-case all-dirty
        // backup (paper §2.3.3): at the default 8 KB / 1 uF this
        // lands on Table 2's 3.1 V, and it scales with the array.
        vbackup_now_ = std::min(
            cfg_.platform.vmax,
            std::max(2.85, cap_.voltageForEnergyAbove(
                               cfg_.platform.vmin,
                               1.25 * reserveNeededJ())));
        von_now_ = cfg_.platform.von;
    } else {
        vbackup_now_ = cfg_.platform.vbackup;
        von_now_ = cfg_.platform.von;
    }
    const double c = cfg_.platform.capacitance_f;
    backup_energy_level_ = 0.5 * c * vbackup_now_ * vbackup_now_;
    backup_level_aj_ = cap_.energyAjForVoltage(vbackup_now_);

    WLC_TIMELINE(tl_, CapThreshold, now_, "system", 0, 0, vbackup_now_);
    WLC_TIMELINE(tl_, CapThreshold, now_, "system", 1, 0, von_now_);

    // Sanity: the reserved slice must cover the worst-case JIT
    // checkpoint. With voltage-divider thresholds this can become
    // infeasible for tiny capacitors (Figure 10b's left edge).
    const double vmin = cfg_.platform.vmin;
    const double reserve =
        backup_energy_level_ - 0.5 * c * vmin * vmin;
    if (reserve < reserveNeededJ() && !warned_reserve_) {
        warned_reserve_ = true;
        warn("%s: checkpoint reserve %.3g J below worst-case need "
             "%.3g J (capacitor too small for these thresholds)",
             designKindName(cfg_.design), reserve, reserveNeededJ());
    }
}

void
SystemSim::drawConsumedEnergy()
{
    const energy::Attojoules total = meter_.totalAj();
    const energy::Attojoules delta = total - last_meter_aj_;
    last_meter_aj_ = total;
    if (harvester_.infinite())
        return;
    cap_.drawAj(delta);
}

void
SystemSim::accountPassage(Cycle from, Cycle to)
{
    if (to <= from)
        return;
    const Cycle span = to - from;
    if (cfg_.step_mode == StepMode::Percycle) {
        // Reference path: one leakage add and one harvester step per
        // cycle. Integer attojoules make the sum exactly the batched
        // form below — the equivalence suite holds the two together.
        for (Cycle i = 0; i < span; ++i) {
            meter_.addAj(energy::EnergyCategory::Leakage,
                         leak_aj_per_cycle_);
            harvester_.advanceCycles(1, cap_);
        }
        return;
    }
    // Skip-ahead: integrate the whole span closed-form.
    meter_.addAj(energy::EnergyCategory::Leakage,
                 energy::scaleAttojoules(leak_aj_per_cycle_, span));
    harvester_.advanceCycles(span, cap_);
}

void
SystemSim::beginInterval()
{
    interval_start_cycle_ = now_;
    interval_instret_base_ = core_->instructionsRetired();
    interval_nvm_writes_base_ = nvm_->numWrites();
    interval_cleans_base_ = dcache_->cleaningsIssued();
    interval_harvest_base_ = harvester_.totalHarvested();
    dcache_->resetDirtyHighWater();
}

void
SystemSim::endInterval(double checkpoint_j)
{
    if (res_.intervals.size() <
        static_cast<std::size_t>(cfg_.max_interval_rollups)) {
        telemetry::IntervalRollup r;
        r.index = interval_index_;
        r.start_cycle = interval_start_cycle_;
        r.end_cycle = now_;
        r.instructions =
            core_->instructionsRetired() - interval_instret_base_;
        r.nvm_writes = nvm_->numWrites() - interval_nvm_writes_base_;
        r.cleans = dcache_->cleaningsIssued() - interval_cleans_base_;
        r.dirty_high_water = dcache_->dirtyHighWater();
        r.checkpoint_j = checkpoint_j;
        r.harvested_j =
            harvester_.totalHarvested() - interval_harvest_base_;
        res_.intervals.push_back(r);
    } else {
        ++res_.intervals_dropped;
    }
    ++interval_index_;
}

void
SystemSim::collectStatsJson()
{
    std::ostringstream ss;
    ss << "{\"dcache\":";
    dcache_->statGroup().dumpJson(ss);
    ss << ",\"icache\":";
    icache_->statGroup().dumpJson(ss);
    ss << ",\"core\":";
    core_->statGroup().dumpJson(ss);
    ss << ",\"nvm\":";
    nvm_->statGroup().dumpJson(ss);
    ss << '}';
    res_.stats_json = ss.str();
}

void
SystemSim::recordDivergence(const char *kind, std::uint64_t addr)
{
    res_.divergence = true;
    if (res_.has_first_divergence)
        return;
    res_.has_first_divergence = true;
    res_.first_divergence_kind = kind;
    res_.first_divergence_addr = addr;
    res_.first_divergence_cycle = now_;
    res_.first_divergence_outage = res_.outages;
}

void
SystemSim::checkConsistency()
{
    ++res_.consistency_checks;
    std::unordered_map<Addr, std::uint8_t> overlay;
    dcache_->collectPersistentOverlay(overlay);
    std::function<bool(Addr)> skip;
    if (replay_)
        // In-flight region: rewritten on re-execution.
        skip = [this](Addr a) {
            return region_dirty_bytes_.count(a) != 0;
        };
    const mem::StateDiff diff = checker_.diffState(*nvm_, overlay, skip);
    if (!diff.consistent()) {
        ++res_.consistency_violations;
        recordDivergence("nvm", diff.mismatches.front().addr);
    }
}

void
SystemSim::powerFail()
{
    ++res_.outages;
    WLC_DPRINTF(trace::kPower, now_, "system",
                "voltage hit Vbackup=%.3fV: outage #%llu",
                vbackup_now_,
                static_cast<unsigned long long>(res_.outages));
    WLC_TIMELINE(tl_, OutageBegin, now_, "system", res_.outages, 0,
                 cap_.voltage());
    const double ckpt_e0 = meter_.total();

    // JIT checkpoint: the design persists its bounded state, then the
    // registers (and, for WL-Cache, the runtime thresholds and the
    // two watchdog values) capture into their NVFFs in parallel.
    Cycle ckpt_done = cfg_.inject_checkpoint_skip
        ? now_ : dcache_->checkpoint(now_);
    const auto regs = core_->regs().snapshot();
    last_ckpt_regs_ = regs;      // what a correct restore must produce
    has_ckpt_regs_ = true;
    if (!cfg_.inject_register_skip)
        ckpt_done += nvff_->checkpoint(
            regs.data(), cpu::RegisterFile::sizeBytes());
    if (isWlFamily(cfg_.design) && runtime_) {
        const std::uint8_t thresholds[2] = {
            static_cast<std::uint8_t>(wl_->maxline()),
            static_cast<std::uint8_t>(wl_->waterline()),
        };
        nvff_->checkpoint(thresholds, 2,
                          cpu::RegisterFile::sizeBytes());
        // (The watchdog history is maintained inside AdaptiveRuntime;
        // its 2 x 2 bytes live in the same bank.)
    }
    // Checkpoint-span leakage stays event-level in BOTH step modes:
    // the harvester clock is deliberately decoupled while the backup
    // runs (pre-existing modeling choice), so there is no per-cycle
    // state here for Percycle to step through.
    if (ckpt_done > now_)
        meter_.addAj(energy::EnergyCategory::Leakage,
                     energy::scaleAttojoules(leak_aj_per_cycle_,
                                             ckpt_done - now_));
    now_ = ckpt_done;
    drawConsumedEnergy();
    if (cap_.voltage() < cfg_.platform.vmin - 1e-6)
        ++res_.reserve_violations;
    endInterval(meter_.total() - ckpt_e0);

    const double t_on = cyclesToSeconds(now_ - boot_cycle_);

    // Volatile state is gone.
    dcache_->powerLoss();
    icache_->powerLoss();

    if (cfg_.validate_consistency)
        checkConsistency();

    // ReplayCache: roll back to the last committed region.
    if (replay_) {
        res_.replayed_events += idx_ - region_start_idx_;
        idx_ = region_start_idx_;
        if (region_stream_snapshot_)
            core_->restoreStream(*region_stream_snapshot_);
        region_dirty_bytes_.clear();
    }

    // The adaptive runtime decides the next interval's thresholds
    // from the NVFF-resident watchdog history before the system
    // sleeps, so the comparator charges toward the right Von (§4).
    if (isWlFamily(cfg_.design) && runtime_) {
        const unsigned before = wl_->maxline();
        const unsigned m = runtime_->onBoot(t_on);
        if (m != before)
            WLC_DPRINTF(trace::kAdapt, now_, "runtime",
                        "T=%.1fus: maxline %u -> %u", t_on * 1e6,
                        before, m);
        WLC_TIMELINE(tl_, AdaptDecision, now_, "runtime", before, m,
                     t_on);
        if (cfg_.adaptive.enabled)
            wl_->setMaxline(m);
        else
            wl_->setMaxline(cfg_.wl.maxline);  // undo dynamic raises
        recomputeThresholds();
    }

    // Power-off: the capacitor keeps whatever the checkpoint did not
    // consume and recharges from there to Von.
    const double off =
        harvester_.chargeUntil(cap_, von_now_, 1.0e4, cfg_.step_mode);
    res_.off_seconds += off;
    WLC_DPRINTF(trace::kPower, now_, "system",
                "recharged to Von=%.3fV in %.1f us", von_now_,
                off * 1e6);
    if (cap_.voltage() < von_now_ * (1.0 - 1e-7)) {
        environment_dead_ = true;  // chargeUntil gave up
        return;
    }
    WLC_TIMELINE(tl_, OutageEnd, now_, "system", res_.outages, 0, off);
    nvm_->resetChannel();

    bootAndRestore();
}

void
SystemSim::bootAndRestore()
{
    const Cycle boot_start = now_;
    now_ += cfg_.platform.reboot_latency_cycles;
    Cycle t = dcache_->powerRestore(now_);
    t = icache_->powerRestore(t);
    std::array<std::uint32_t, cpu::RegisterFile::kNumRegs> regs{};
    t += nvff_->restore(regs.data(), cpu::RegisterFile::sizeBytes());
    core_->regs().restore(regs);
    WLC_TIMELINE(tl_, Restore, t, "nvff",
                 cpu::RegisterFile::sizeBytes(), t - boot_start);

    // Register-file differential: whatever the NVFF bank hands back
    // must equal the snapshot taken at the failure. Only this check
    // can see a lost register checkpoint — the NVM oracle cannot.
    if (has_ckpt_regs_) {
        for (unsigned i = 0; i < cpu::RegisterFile::kNumRegs; ++i) {
            if (regs[i] != last_ckpt_regs_[i]) {
                ++res_.register_restore_mismatches;
                recordDivergence("register", i);
            }
        }
    }
    // Boot/restore-span leakage: event-level in both modes, like the
    // checkpoint span above.
    meter_.addAj(energy::EnergyCategory::Leakage,
                 energy::scaleAttojoules(leak_aj_per_cycle_,
                                         t - boot_start));
    now_ = t;
    drawConsumedEnergy();
    boot_cycle_ = now_;
    beginInterval();
}

bool
SystemSim::finalCheck()
{
    const std::size_t size = trace_.final_image.size();
    std::uint8_t buf[4096];
    std::size_t off = 0;
    while (off < size) {
        const unsigned chunk = static_cast<unsigned>(
            std::min<std::size_t>(sizeof(buf), size - off));
        nvm_->peek(trace_.image_base + off, chunk, buf);
        if (std::memcmp(buf, trace_.final_image.data() + off, chunk) !=
            0) {
            for (unsigned i = 0; i < chunk; ++i) {
                if (buf[i] != trace_.final_image[off + i]) {
                    recordDivergence("final",
                                     trace_.image_base + off + i);
                    break;
                }
            }
            return false;
        }
        off += chunk;
    }
    return true;
}

void
SystemSim::computeFinalDigest()
{
    // Digest the image region as the *persistent* state sees it: raw
    // NVM with the design's surviving overlay (e.g.\ NV cache lines)
    // applied on top. An interrupted run digests whatever state a
    // next boot would observe.
    const std::size_t size = std::max(trace_.initial_image.size(),
                                      trace_.final_image.size());
    if (size == 0 || trace_.image_base + size > nvm_->sizeBytes()) {
        res_.final_state_digest = util::fnv1a128Hex(nullptr, 0);
        return;
    }
    std::vector<std::uint8_t> img =
        nvm_->snapshotRange(trace_.image_base, size);
    std::unordered_map<Addr, std::uint8_t> overlay;
    dcache_->collectPersistentOverlay(overlay);
    for (const auto &[addr, byte] : overlay) {
        if (addr >= trace_.image_base &&
            addr < trace_.image_base + size)
            img[addr - trace_.image_base] = byte;
    }
    res_.final_state_digest = util::fnv1a128Hex(img.data(), img.size());
}

namespace {

/** Serialize every RunResult field ("RES " section). */
void
saveRunResult(SnapshotWriter &w, const RunResult &res)
{
    w.section("RES ");
    w.str(res.workload);
    w.u8(static_cast<std::uint8_t>(res.design));
    w.b(res.completed);
    w.u64(res.on_cycles);
    w.f64(res.off_seconds);
    w.f64(res.total_seconds);
    w.u64(res.instructions);
    w.u64(res.trace_events);
    w.u64(res.replayed_events);
    w.u64(res.outages);
    w.u64(res.reserve_violations);
    res.meter.saveState(w);
    w.u64(res.nvm_writes);
    w.u64(res.nvm_bytes_written);
    w.u64(res.nvm_reads);
    w.u64(res.nvm_bank_conflicts);
    w.u64(res.nvm_queue_stall_cycles);
    w.u64(res.nvm_turnaround_stall_cycles);
    w.u64(res.nvm_wear_max);
    w.u64(res.nvm_wear_lines_touched);
    w.u64(res.nvm_lifetime_headroom);
    w.f64(res.nvm_write_p99_latency);
    w.u64(res.nvm_row_hits);
    w.u64(res.nvm_row_misses);
    w.u64(res.log_appended_records);
    w.u64(res.log_appended_bytes);
    w.u64(res.log_replays);
    w.u64(res.log_replayed_records);
    w.u64(res.log_replayed_bytes);
    w.u64(res.log_compactions);
    w.u64(res.log_compacted_lines);
    w.u64(res.log_compacted_bytes);
    w.u64(res.log_live_lines);
    w.f64(res.dcache_load_hit_rate);
    w.f64(res.dcache_store_hit_rate);
    w.u64(res.store_stall_cycles);
    w.u32(res.reconfigurations);
    w.u32(res.maxline_min_seen);
    w.u32(res.maxline_max_seen);
    w.f64(res.prediction_accuracy);
    w.f64(res.avg_dirty_at_ckpt);
    w.f64(res.writebacks_per_on_period);
    w.u64(res.dyn_maxline_raises);
    w.u64(res.consistency_checks);
    w.u64(res.consistency_violations);
    w.u64(res.load_value_mismatches);
    w.b(res.final_state_correct);
    w.u64(res.forced_outages);
    w.u64(res.register_restore_mismatches);
    w.b(res.divergence);
    w.b(res.has_first_divergence);
    w.str(res.first_divergence_kind);
    w.u64(res.first_divergence_addr);
    w.u64(res.first_divergence_cycle);
    w.u64(res.first_divergence_outage);
    w.str(res.final_state_digest);
    w.str(res.stats_json);
    w.u64(res.intervals.size());
    for (const telemetry::IntervalRollup &iv : res.intervals) {
        w.u64(iv.index);
        w.u64(iv.start_cycle);
        w.u64(iv.end_cycle);
        w.u64(iv.instructions);
        w.u64(iv.nvm_writes);
        w.u64(iv.cleans);
        w.u32(iv.dirty_high_water);
        w.f64(iv.checkpoint_j);
        w.f64(iv.harvested_j);
    }
    w.u64(res.intervals_dropped);
}

/** Mirror of saveRunResult(). */
void
restoreRunResult(SnapshotReader &r, RunResult &res)
{
    r.section("RES ");
    res.workload = r.str();
    res.design = static_cast<DesignKind>(r.u8());
    res.completed = r.b();
    res.on_cycles = r.u64();
    res.off_seconds = r.f64();
    res.total_seconds = r.f64();
    res.instructions = r.u64();
    res.trace_events = r.u64();
    res.replayed_events = r.u64();
    res.outages = r.u64();
    res.reserve_violations = r.u64();
    res.meter.restoreState(r);
    res.nvm_writes = r.u64();
    res.nvm_bytes_written = r.u64();
    res.nvm_reads = r.u64();
    res.nvm_bank_conflicts = r.u64();
    res.nvm_queue_stall_cycles = r.u64();
    res.nvm_turnaround_stall_cycles = r.u64();
    res.nvm_wear_max = r.u64();
    res.nvm_wear_lines_touched = r.u64();
    res.nvm_lifetime_headroom = r.u64();
    res.nvm_write_p99_latency = r.f64();
    res.nvm_row_hits = r.u64();
    res.nvm_row_misses = r.u64();
    res.log_appended_records = r.u64();
    res.log_appended_bytes = r.u64();
    res.log_replays = r.u64();
    res.log_replayed_records = r.u64();
    res.log_replayed_bytes = r.u64();
    res.log_compactions = r.u64();
    res.log_compacted_lines = r.u64();
    res.log_compacted_bytes = r.u64();
    res.log_live_lines = r.u64();
    res.dcache_load_hit_rate = r.f64();
    res.dcache_store_hit_rate = r.f64();
    res.store_stall_cycles = r.u64();
    res.reconfigurations = r.u32();
    res.maxline_min_seen = r.u32();
    res.maxline_max_seen = r.u32();
    res.prediction_accuracy = r.f64();
    res.avg_dirty_at_ckpt = r.f64();
    res.writebacks_per_on_period = r.f64();
    res.dyn_maxline_raises = r.u64();
    res.consistency_checks = r.u64();
    res.consistency_violations = r.u64();
    res.load_value_mismatches = r.u64();
    res.final_state_correct = r.b();
    res.forced_outages = r.u64();
    res.register_restore_mismatches = r.u64();
    res.divergence = r.b();
    res.has_first_divergence = r.b();
    res.first_divergence_kind = r.str();
    res.first_divergence_addr = r.u64();
    res.first_divergence_cycle = r.u64();
    res.first_divergence_outage = r.u64();
    res.final_state_digest = r.str();
    res.stats_json = r.str();
    const std::uint64_t n_iv = r.u64();
    res.intervals.clear();
    res.intervals.reserve(n_iv);
    for (std::uint64_t i = 0; i < n_iv; ++i) {
        telemetry::IntervalRollup iv;
        iv.index = r.u64();
        iv.start_cycle = r.u64();
        iv.end_cycle = r.u64();
        iv.instructions = r.u64();
        iv.nvm_writes = r.u64();
        iv.cleans = r.u64();
        iv.dirty_high_water = r.u32();
        iv.checkpoint_j = r.f64();
        iv.harvested_j = r.f64();
        res.intervals.push_back(iv);
    }
    res.intervals_dropped = r.u64();
}

} // namespace

SystemSnapshot
SystemSim::takeSnapshot() const
{
    SnapshotWriter w;
    w.section("SYSH");
    w.u32(SystemSnapshot::kFormatVersion);
    w.u64(now_);
    w.u64(idx_);
    saveRunResult(w, res_);
    meter_.saveState(w);
    cap_.saveState(w);
    harvester_.saveState(w);
    nvm_->saveState(w);
    dcache_->saveState(w);
    icache_->saveState(w);
    core_->saveState(w);
    w.b(runtime_ != nullptr);
    if (runtime_)
        runtime_->saveState(w);
    nvff_->saveState(w);
    checker_.saveState(w);
    w.section("SYS2");
    w.u64(now_);
    w.u64(boot_cycle_);
    w.u64(last_meter_aj_);
    w.f64(backup_energy_level_);
    w.u64(backup_level_aj_);
    w.f64(vbackup_now_);
    w.f64(von_now_);
    w.b(environment_dead_);
    w.b(warned_reserve_);
    w.u64(interval_index_);
    w.u64(interval_start_cycle_);
    w.u64(interval_instret_base_);
    w.u64(interval_nvm_writes_base_);
    w.u64(interval_cleans_base_);
    w.f64(interval_harvest_base_);
    w.u64(forced_idx_);
    for (const std::uint32_t v : last_ckpt_regs_)
        w.u32(v);
    w.b(has_ckpt_regs_);
    w.u64(idx_);
    w.u64(region_start_idx_);
    w.b(region_stream_snapshot_ != nullptr);
    if (region_stream_snapshot_)
        region_stream_snapshot_->saveState(w);
    std::vector<Addr> dirty(region_dirty_bytes_.begin(),
                            region_dirty_bytes_.end());
    std::sort(dirty.begin(), dirty.end());
    w.u64(dirty.size());
    for (const Addr a : dirty)
        w.u64(a);

    SystemSnapshot snap;
    snap.compat_key = snapshot_key_;
    snap.cycle = now_;
    snap.event_index = idx_;
    snap.state = w.take();
    return snap;
}

void
SystemSim::restoreSnapshot(const SystemSnapshot &snap)
{
    wlc_assert(snap.valid(), "cannot restore an empty snapshot");
    wlc_assert(snap.compat_key == snapshot_key_,
               "snapshot resume-compatibility key mismatch "
               "(%s vs this system's %s)",
               snap.compat_key.c_str(), snapshot_key_.c_str());
    SnapshotReader r(snap.state);
    r.section("SYSH");
    const std::uint32_t ver = r.u32();
    wlc_assert(ver == SystemSnapshot::kFormatVersion,
               "unsupported snapshot format version %u", ver);
    const Cycle header_cycle = r.u64();
    const std::uint64_t header_idx = r.u64();
    wlc_assert(header_cycle == snap.cycle &&
                   header_idx == snap.event_index,
               "snapshot header disagrees with its metadata");
    restoreRunResult(r, res_);
    meter_.restoreState(r);
    cap_.restoreState(r);
    harvester_.restoreState(r);
    nvm_->restoreState(r);
    dcache_->restoreState(r);
    icache_->restoreState(r);
    core_->restoreState(r);
    const bool has_rt = r.b();
    wlc_assert(has_rt == (runtime_ != nullptr),
               "snapshot adaptive-runtime presence mismatch");
    if (runtime_)
        runtime_->restoreState(r);
    nvff_->restoreState(r);
    checker_.restoreState(r);
    r.section("SYS2");
    now_ = r.u64();
    boot_cycle_ = r.u64();
    last_meter_aj_ = r.u64();
    backup_energy_level_ = r.f64();
    backup_level_aj_ = r.u64();
    vbackup_now_ = r.f64();
    von_now_ = r.f64();
    environment_dead_ = r.b();
    warned_reserve_ = r.b();
    interval_index_ = r.u64();
    interval_start_cycle_ = r.u64();
    interval_instret_base_ = r.u64();
    interval_nvm_writes_base_ = r.u64();
    interval_cleans_base_ = r.u64();
    interval_harvest_base_ = r.f64();
    forced_idx_ = static_cast<std::size_t>(r.u64());
    for (std::uint32_t &v : last_ckpt_regs_)
        v = r.u32();
    has_ckpt_regs_ = r.b();
    idx_ = static_cast<std::size_t>(r.u64());
    region_start_idx_ = static_cast<std::size_t>(r.u64());
    if (r.b()) {
        if (!region_stream_snapshot_)
            region_stream_snapshot_ =
                std::make_unique<cpu::ICacheStream>(
                    core_->streamSnapshot());
        region_stream_snapshot_->restoreState(r);
    } else {
        region_stream_snapshot_.reset();
    }
    region_dirty_bytes_.clear();
    const std::uint64_t n_dirty = r.u64();
    region_dirty_bytes_.reserve(n_dirty);
    for (std::uint64_t i = 0; i < n_dirty; ++i)
        region_dirty_bytes_.insert(r.u64());
    wlc_assert(r.atEnd(), "trailing bytes after snapshot restore");
}

RunResult
SystemSim::run()
{
    return run(RunOptions{});
}

RunResult
SystemSim::run(const RunOptions &opts)
{
    const SystemSnapshot *resume = opts.resume;
    if (resume && opts.resume_best_effort &&
        resume->compat_key != snapshot_key_) {
        warn("ignoring incompatible resume snapshot (cold start)");
        resume = nullptr;
    }
    if (resume) {
        restoreSnapshot(*resume);
        WLC_TIMELINE(tl_, SnapshotResume, now_, "system", idx_,
                     res_.outages);
    } else {
        res_ = RunResult{};
        res_.workload = trace_.name;
        res_.design = cfg_.design;
        res_.trace_events = trace_.events.size();

        // Initial charge-up to the restore voltage.
        if (harvester_.infinite()) {
            cap_.setVoltage(cfg_.platform.vmax);
        } else {
            res_.off_seconds += harvester_.chargeUntil(
                cap_, von_now_, 1.0e4, cfg_.step_mode);
            if (cap_.voltage() < von_now_ * (1.0 - 1e-7)) {
                res_.completed = false;
                return res_;
            }
        }
        boot_cycle_ = now_ = 0;
        idx_ = 0;
        region_start_idx_ = 0;
        forced_idx_ = 0;
        has_ckpt_regs_ = false;
        interval_index_ = 0;
        beginInterval();
        if (replay_)
            region_stream_snapshot_ =
                std::make_unique<cpu::ICacheStream>(
                    core_->streamSnapshot());
    }

    const std::size_t n = trace_.events.size();
    const bool failures_possible = !harvester_.infinite();
    const std::uint64_t stop_idx =
        opts.max_events ? opts.max_events : ~std::uint64_t{0};
    Cycle next_snap = 0;
    if (opts.snapshot_interval)
        next_snap = (now_ / opts.snapshot_interval + 1) *
            opts.snapshot_interval;

    while (idx_ < n) {
        if (idx_ >= stop_idx ||
            (opts.cut_request &&
             opts.cut_request->load(std::memory_order_relaxed))) {
            // Event budget exhausted (or an external cut requested):
            // capture the cut state so a later run can resume exactly
            // here, then finalize as an interrupted run (completed
            // stays false).
            if (opts.cut)
                *opts.cut = takeSnapshot();
            break;
        }
        if (opts.snapshot_interval && now_ >= next_snap) {
            SystemSnapshot s = takeSnapshot();
            WLC_TIMELINE(tl_, SnapshotTaken, now_, "system", idx_,
                         s.state.size());
            if (opts.snapshot_sink)
                opts.snapshot_sink(std::move(s));
            next_snap = (now_ / opts.snapshot_interval + 1) *
                opts.snapshot_interval;
        }
        const MemAccess &ev = trace_.events[idx_];
        std::uint64_t load_val = 0;
        const Cycle end = core_->executeEvent(ev, now_, &load_val);

        if (cfg_.check_load_values && ev.op == MemOp::Load && !replay_) {
            // Mask to the access width before comparing.
            const std::uint64_t mask = ev.size >= 8
                ? ~0ull : ((1ull << (8 * ev.size)) - 1);
            if ((load_val & mask) != (ev.value & mask)) {
                ++res_.load_value_mismatches;
                recordDivergence("load", ev.addr);
            }
        }
        if (cfg_.validate_consistency && ev.op == MemOp::Store) {
            checker_.applyStore(ev.addr, ev.size, ev.value);
            if (replay_)
                for (unsigned i = 0; i < ev.size; ++i)
                    region_dirty_bytes_.insert(ev.addr + i);
        }

        accountPassage(now_, end);
        now_ = end;
        drawConsumedEnergy();
        ++idx_;

        // ReplayCache region boundary: drain persists, commit.
        if (replay_ &&
            idx_ - region_start_idx_ >= cfg_.replay.region_events) {
            const Cycle t = replay_->regionBoundary(now_);
            accountPassage(now_, t);
            now_ = t;
            drawConsumedEnergy();
            region_start_idx_ = idx_;
            region_stream_snapshot_ =
                std::make_unique<cpu::ICacheStream>(
                    core_->streamSnapshot());
            region_dirty_bytes_.clear();
        }

        // Power failure: either the capacitor drained to Vbackup or a
        // forced-outage schedule point was reached. Forced points
        // fire exactly once each, at the first event boundary at or
        // after the requested cycle — they work under infinite power
        // too, which is how verification campaigns make the forced
        // point the only outage of a run.
        // The outage comparator works on quantized energies, so both
        // step modes see the threshold crossing at the same event.
        bool want_fail = failures_possible &&
            cap_.storedAj() <= backup_level_aj_;
        if (forced_idx_ < cfg_.forced_outage_cycles.size() &&
            now_ >= cfg_.forced_outage_cycles[forced_idx_]) {
            ++forced_idx_;
            ++res_.forced_outages;
            want_fail = true;
        }
        if (want_fail) {
            powerFail();
            if (res_.outages >= cfg_.max_outages ||
                environment_dead_) {
                res_.completed = false;
                break;
            }
        }
    }

    if (idx_ >= n) {
        // Graceful completion: flush all dirty state.
        const Cycle t = dcache_->drainAndFlush(now_);
        accountPassage(now_, t);
        now_ = t;
        drawConsumedEnergy();
        endInterval(0.0);
        res_.completed = true;
        res_.final_state_correct = finalCheck();
    }
    computeFinalDigest();

    // --- Collect statistics ---
    res_.on_cycles = now_;
    res_.total_seconds = cyclesToSeconds(now_) + res_.off_seconds;
    res_.instructions = core_->instructionsRetired();
    res_.meter = meter_;
    res_.nvm_writes = nvm_->numWrites();
    res_.nvm_reads = nvm_->numReads();
    res_.nvm_bytes_written = nvm_->bytesWritten();
    res_.nvm_bank_conflicts = nvm_->bankConflicts();
    res_.nvm_queue_stall_cycles = nvm_->queueStallCycles();
    res_.nvm_turnaround_stall_cycles =
        nvm_->turnaroundStallCycles();
    res_.nvm_wear_max = nvm_->wearMax();
    res_.nvm_wear_lines_touched = nvm_->wearLinesTouched();
    res_.nvm_lifetime_headroom = nvm_->lifetimeHeadroom();
    res_.nvm_write_p99_latency = nvm_->writeLatencyP99();
    res_.nvm_row_hits = nvm_->rowHits();
    res_.nvm_row_misses = nvm_->rowMisses();
    if (wllog_) {
        const mem::NvmJournalStats &js = wllog_->journal().stats();
        res_.log_appended_records = js.appends;
        res_.log_appended_bytes = js.append_bytes;
        res_.log_replays = js.replays;
        res_.log_replayed_records = js.replay_records;
        res_.log_replayed_bytes = js.replay_bytes;
        res_.log_compactions = js.compactions;
        res_.log_compacted_lines = js.compacted_lines;
        res_.log_compacted_bytes = js.compacted_bytes;
        res_.log_live_lines = wllog_->journal().liveLines();
    }
    collectStatsJson();

    // Derived ratios must stay finite: a dead trace or a zero-outage
    // run can hand back 0/0 or x/0 here, and a NaN/Inf would poison
    // the run's JSON record (and through it the result cache).
    const auto finite_or = [](double v, double fallback) {
        return std::isfinite(v) ? v : fallback;
    };

    const auto &cs = dcache_->stats();
    const double loads = std::max(1.0, cs.loads.value());
    const double stores = std::max(1.0, cs.stores.value());
    res_.dcache_load_hit_rate =
        finite_or(cs.load_hits.value() / loads, 0.0);
    res_.dcache_store_hit_rate =
        finite_or(cs.store_hits.value() / stores, 0.0);
    res_.store_stall_cycles =
        static_cast<std::uint64_t>(cs.stall_cycles.value());

    if (wl_ && runtime_) {
        res_.reconfigurations = runtime_->reconfigurations();
        res_.maxline_min_seen = runtime_->observedMaxlineMin();
        res_.maxline_max_seen = runtime_->observedMaxlineMax();
        res_.prediction_accuracy =
            finite_or(runtime_->predictionAccuracy(), 1.0);
        res_.avg_dirty_at_ckpt =
            finite_or(wl_->wlStats().dirty_at_ckpt.mean(), 0.0);
        res_.dyn_maxline_raises = static_cast<std::uint64_t>(
            wl_->wlStats().dyn_maxline_raises.value());
        if (res_.outages > 0)
            res_.writebacks_per_on_period = finite_or(
                wl_->wlStats().cleanings.value() /
                    static_cast<double>(res_.outages),
                0.0);
    }
    return res_;
}

void
SystemSim::dumpStats(std::ostream &os) const
{
    dcache_->statGroup().dump(os, "system");
    icache_->statGroup().dump(os, "system");
    core_->statGroup().dump(os, "system");
    nvm_->statGroup().dump(os, "system");
}

} // namespace nvp
} // namespace wlcache
