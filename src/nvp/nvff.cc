#include "nvp/nvff.hh"

#include <cmath>
#include <cstring>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace wlcache {
namespace nvp {

NvffStore::NvffStore(unsigned capacity_bytes,
                     double write_energy_per_byte,
                     double read_energy_per_byte,
                     energy::EnergyMeter *meter,
                     double write_latency_per_byte)
    : data_(capacity_bytes, 0),
      write_energy_per_byte_(write_energy_per_byte),
      read_energy_per_byte_(read_energy_per_byte), meter_(meter),
      write_latency_per_byte_(write_latency_per_byte)
{
    wlc_assert(capacity_bytes > 0);
}

Cycle
NvffStore::checkpoint(const void *data, unsigned bytes, unsigned offset)
{
    wlc_assert(data != nullptr);
    wlc_assert(offset + bytes <= data_.size(),
               "NVFF checkpoint overflows the bank");
    std::memcpy(data_.data() + offset, data, bytes);
    if (meter_)
        meter_->add(energy::EnergyCategory::Checkpoint,
                    write_energy_per_byte_ * bytes);
    has_image_ = true;
    ++checkpoints_;
    return static_cast<Cycle>(
        std::ceil(write_latency_per_byte_ * bytes));
}

Cycle
NvffStore::restore(void *data, unsigned bytes, unsigned offset) const
{
    wlc_assert(data != nullptr);
    wlc_assert(offset + bytes <= data_.size(),
               "NVFF restore overflows the bank");
    std::memcpy(data, data_.data() + offset, bytes);
    if (meter_)
        meter_->add(energy::EnergyCategory::Restore,
                    read_energy_per_byte_ * bytes);
    return static_cast<Cycle>(
        std::ceil(write_latency_per_byte_ * bytes * 0.5));
}

void
NvffStore::saveState(SnapshotWriter &w) const
{
    w.section("NVFF");
    w.vecU8(data_);
    w.b(has_image_);
    w.u64(checkpoints_);
}

void
NvffStore::restoreState(SnapshotReader &r)
{
    r.section("NVFF");
    const auto bytes = r.vecU8();
    wlc_assert(bytes.size() == data_.size(),
               "NVFF snapshot capacity mismatch");
    data_ = bytes;
    has_image_ = r.b();
    checkpoints_ = r.u64();
}

} // namespace nvp
} // namespace wlcache
