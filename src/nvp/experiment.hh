/**
 * @file
 * Thin experiment harness shared by the benchmark binaries and the
 * examples: run (design x workload x power environment) and report a
 * RunResult. Centralizes the trace seeds and configuration tweaks so
 * every figure reproduces from the same defaults.
 */

#ifndef WLCACHE_NVP_EXPERIMENT_HH
#define WLCACHE_NVP_EXPERIMENT_HH

#include <functional>
#include <string>

#include "energy/power_trace.hh"
#include "nvp/system.hh"

namespace wlcache {
namespace nvp {

/** One experiment: a design running a workload in an environment. */
struct ExperimentSpec
{
    DesignKind design = DesignKind::WL;
    std::string workload = "sha";

    /** Ambient environment (ignored when no_failure is set). */
    energy::TraceKind power = energy::TraceKind::RfHome;
    /** Infinite-power mode (Figure 4). */
    bool no_failure = false;

    unsigned scale = 1;
    std::uint64_t workload_seed = 42;
    std::uint64_t power_seed = 7;

    /**
     * Fleet node identity: when power_jitter > 0 the environment trace
     * is re-derived per node via energy::deriveNodeTrace(), modelling N
     * sensors sharing one ambient environment with node-local gain.
     * Defaults (node 0, jitter 0) leave single-node runs untouched.
     */
    std::uint64_t power_node = 0;
    double power_jitter = 0.0;

    /** Optional configuration override hook. */
    std::function<void(SystemConfig &)> tweak;
};

/**
 * The SystemConfig a spec actually runs with: the design preset with
 * the tweak hook applied. Shared by runExperiment() and the runner's
 * content-addressed cache key so they can never disagree.
 */
SystemConfig resolveConfig(const ExperimentSpec &spec);

/** Run one experiment to completion. */
RunResult runExperiment(const ExperimentSpec &spec);

/**
 * Run one experiment with snapshot/resume/budget controls (see
 * RunOptions). runExperiment(spec) == runExperimentEx(spec, {}).
 */
RunResult runExperimentEx(const ExperimentSpec &spec,
                          const RunOptions &opts);

/** Execution-time speedup of @p x relative to @p baseline (>1 means
 *  @p x is faster). */
double speedupVs(const RunResult &x, const RunResult &baseline);

} // namespace nvp
} // namespace wlcache

#endif // WLCACHE_NVP_EXPERIMENT_HH
