#include "nvp/system_config.hh"

#include <cstdio>
#include <ostream>

#include "sim/logging.hh"

namespace wlcache {
namespace nvp {

const char *
designKindName(DesignKind kind)
{
    switch (kind) {
      case DesignKind::NoCache:   return "NVP-NoCache";
      case DesignKind::VCacheWT:  return "VCache-WT";
      case DesignKind::NVCacheWB: return "NVCache-WB";
      case DesignKind::NvsramWB:  return "NVSRAM-WB";
      case DesignKind::NvsramFull: return "NVSRAM-full";
      case DesignKind::NvsramPractical: return "NVSRAM-practical";
      case DesignKind::Replay:    return "ReplayCache";
      case DesignKind::WtBuffered: return "WT+Buffer";
      case DesignKind::WL:        return "WL-Cache";
      case DesignKind::WLLog:     return "WL-Log";
    }
    panic("unknown DesignKind %d", static_cast<int>(kind));
}

namespace {

constexpr DesignKind kAllDesignKinds[] = {
    DesignKind::NoCache,         DesignKind::VCacheWT,
    DesignKind::NVCacheWB,       DesignKind::NvsramWB,
    DesignKind::NvsramFull,      DesignKind::NvsramPractical,
    DesignKind::Replay,          DesignKind::WtBuffered,
    DesignKind::WL,              DesignKind::WLLog,
};

} // anonymous namespace

bool
designKindFromName(const std::string &name, DesignKind &out)
{
    for (const DesignKind k : kAllDesignKinds) {
        if (name == designKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

std::string
designKindNameList()
{
    std::string list;
    for (const DesignKind k : kAllDesignKinds) {
        if (!list.empty())
            list += ", ";
        list += designKindName(k);
    }
    return list;
}

const char *
stepModeName(StepMode mode)
{
    switch (mode) {
      case StepMode::Percycle:  return "percycle";
      case StepMode::SkipAhead: return "skip_ahead";
    }
    panic("unknown StepMode %d", static_cast<int>(mode));
}

bool
stepModeFromName(const std::string &name, StepMode &out)
{
    for (const StepMode m : { StepMode::Percycle, StepMode::SkipAhead }) {
        if (name == stepModeName(m)) {
            out = m;
            return true;
        }
    }
    return false;
}

SystemConfig
SystemConfig::forDesign(DesignKind kind)
{
    SystemConfig cfg;
    cfg.design = kind;
    cfg.dcache = cache::sramCacheParams();
    cfg.icache = cache::sramCacheParams();
    // The paper's FIFO I-side replacement matters little; keep LRU
    // defaults on both and let experiments override.

    switch (kind) {
      case DesignKind::NoCache:
        cfg.platform.von = 3.3;
        cfg.platform.vbackup = 2.9;
        break;
      case DesignKind::VCacheWT:
        cfg.platform.von = 3.3;
        cfg.platform.vbackup = 2.9;
        break;
      case DesignKind::NVCacheWB:
        cfg.dcache = cache::nvCacheParams();
        cfg.icache = cache::nvCacheParams();
        cfg.platform.von = 3.3;
        cfg.platform.vbackup = 2.9;
        break;
      case DesignKind::NvsramWB:
        // Table 2: NVSRAM checkpoints at 3.1 V and restores at 3.5 V
        // (the full-cache backup needs the largest margins).
        cfg.platform.von = 3.5;
        cfg.platform.vbackup = 3.1;
        break;
      case DesignKind::NvsramFull:
        cfg.nvsram.backup_full = true;
        cfg.platform.von = 3.5;
        cfg.platform.vbackup = 3.1;
        break;
      case DesignKind::NvsramPractical:
        // Table 1: medium hardware cost and a medium energy buffer —
        // only the SRAM half needs migration headroom.
        cfg.platform.von = 3.4;
        cfg.platform.vbackup = 3.0;
        break;
      case DesignKind::Replay:
        cfg.platform.von = 3.3;
        cfg.platform.vbackup = 2.9;
        break;
      case DesignKind::WtBuffered:
        // §3.3 alternative: needs a bigger margin than plain WT to
        // drain the buffer failure-atomically.
        cfg.platform.von = 3.3;
        cfg.platform.vbackup = 2.95;
        break;
      case DesignKind::WL:
      case DesignKind::WLLog:
        // Table 2: WL 2.95~3.1 / 3.3~3.5, tracked per maxline via
        // the wl_* threshold schedule. WL-Log keeps the same platform
        // preset: its checkpoint appends cost slightly more per line
        // (header bytes), which the threshold schedule absorbs via
        // the design's own checkpointEnergyBound().
        cfg.platform.von = 3.3;
        cfg.platform.vbackup = 2.95;
        cfg.adaptive.enabled = true;
        // Paper §6.6: observed maxline range 2..6 with |DQ| = 8.
        cfg.adaptive.maxline_min = 2;
        cfg.adaptive.maxline_max = cfg.wl.dq_size - 2;
        break;
    }
    return cfg;
}

namespace {

/** Full-precision double rendering so equal keys mean equal bits. */
std::string
keyNum(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
dumpCacheParams(std::ostream &os, const char *prefix,
                const cache::CacheParams &p)
{
    os << prefix << ".size_bytes=" << p.size_bytes << '\n'
       << prefix << ".assoc=" << p.assoc << '\n'
       << prefix << ".line_bytes=" << p.line_bytes << '\n'
       << prefix << ".repl=" << cache::replPolicyName(p.repl) << '\n'
       << prefix << ".hit_latency=" << p.hit_latency << '\n'
       << prefix << ".write_hit_latency=" << p.write_hit_latency
       << '\n'
       << prefix << ".miss_lookup_latency=" << p.miss_lookup_latency
       << '\n'
       << prefix << ".access_energy_read="
       << keyNum(p.access_energy_read) << '\n'
       << prefix << ".access_energy_write="
       << keyNum(p.access_energy_write) << '\n'
       << prefix << ".line_fill_energy=" << keyNum(p.line_fill_energy)
       << '\n'
       << prefix << ".line_read_energy=" << keyNum(p.line_read_energy)
       << '\n'
       << prefix << ".leakage_watts=" << keyNum(p.leakage_watts)
       << '\n'
       << prefix << ".lru_update_energy="
       << keyNum(p.lru_update_energy) << '\n';
}

} // anonymous namespace

void
dumpConfigKey(std::ostream &os, const SystemConfig &cfg)
{
    os << "design=" << designKindName(cfg.design) << '\n'
       << "step_mode=" << stepModeName(cfg.step_mode) << '\n';
    dumpCacheParams(os, "dcache", cfg.dcache);
    dumpCacheParams(os, "icache", cfg.icache);

    os << "nvsram.backup_full=" << cfg.nvsram.backup_full << '\n'
       << "nvsram.backup_line_energy="
       << keyNum(cfg.nvsram.backup_line_energy) << '\n'
       << "nvsram.restore_line_energy="
       << keyNum(cfg.nvsram.restore_line_energy) << '\n'
       << "nvsram.backup_line_latency="
       << cfg.nvsram.backup_line_latency << '\n'
       << "nvsram.restore_line_latency="
       << cfg.nvsram.restore_line_latency << '\n';

    os << "nvsram_practical.migrate_line_energy="
       << keyNum(cfg.nvsram_practical.migrate_line_energy) << '\n'
       << "nvsram_practical.migrate_line_latency="
       << cfg.nvsram_practical.migrate_line_latency << '\n';

    os << "replay.persist_queue_depth="
       << cfg.replay.persist_queue_depth << '\n'
       << "replay.region_events=" << cfg.replay.region_events << '\n'
       << "replay.commit_marker_addr="
       << cfg.replay.commit_marker_addr << '\n';

    os << "wt_buffer.entries=" << cfg.wt_buffer.entries << '\n'
       << "wt_buffer.cam_search_latency="
       << cfg.wt_buffer.cam_search_latency << '\n'
       << "wt_buffer.cam_search_energy="
       << keyNum(cfg.wt_buffer.cam_search_energy) << '\n'
       << "wt_buffer.buffer_leakage_watts="
       << keyNum(cfg.wt_buffer.buffer_leakage_watts) << '\n';

    os << "wl.dq_size=" << cfg.wl.dq_size << '\n'
       << "wl.maxline=" << cfg.wl.maxline << '\n'
       << "wl.waterline_gap=" << cfg.wl.waterline_gap << '\n'
       << "wl.dq_repl=" << cache::replPolicyName(cfg.wl.dq_repl)
       << '\n'
       << "wl.dq_access_energy=" << keyNum(cfg.wl.dq_access_energy)
       << '\n'
       << "wl.dq_leakage_watts=" << keyNum(cfg.wl.dq_leakage_watts)
       << '\n'
       << "wl.dq_lru_search_energy="
       << keyNum(cfg.wl.dq_lru_search_energy) << '\n'
       << "wl.eager_evict_cleanup=" << cfg.wl.eager_evict_cleanup
       << '\n'
       << "wl.dq_cam_search_energy="
       << keyNum(cfg.wl.dq_cam_search_energy) << '\n';

    os << "adaptive.enabled=" << cfg.adaptive.enabled << '\n'
       << "adaptive.delta=" << keyNum(cfg.adaptive.delta) << '\n'
       << "adaptive.maxline_min=" << cfg.adaptive.maxline_min << '\n'
       << "adaptive.maxline_max=" << cfg.adaptive.maxline_max << '\n'
       << "adaptive.timer_resolution_s="
       << keyNum(cfg.adaptive.timer_resolution_s) << '\n'
       << "wl_dynamic=" << cfg.wl_dynamic << '\n';

    os << "nvm.size_bytes=" << cfg.nvm.size_bytes << '\n'
       << "nvm.banks=" << cfg.nvm.banks << '\n'
       << "nvm.t_rcd=" << cfg.nvm.t_rcd << '\n'
       << "nvm.t_cl=" << cfg.nvm.t_cl << '\n'
       << "nvm.t_burst=" << cfg.nvm.t_burst << '\n'
       << "nvm.t_wr=" << cfg.nvm.t_wr << '\n'
       << "nvm.t_wtr=" << cfg.nvm.t_wtr << '\n'
       << "nvm.read_energy_per_byte="
       << keyNum(cfg.nvm.read_energy_per_byte) << '\n'
       << "nvm.write_energy_per_byte="
       << keyNum(cfg.nvm.write_energy_per_byte) << '\n'
       << "nvm.activate_energy=" << keyNum(cfg.nvm.activate_energy)
       << '\n'
       << "nvm.model=" << mem::nvmModelName(cfg.nvm.model) << '\n'
       << "nvm.queue_depth=" << cfg.nvm.queue_depth << '\n'
       << "nvm.row_bytes=" << cfg.nvm.row_bytes << '\n'
       << "nvm.write_verify_retries=" << cfg.nvm.write_verify_retries
       << '\n'
       << "nvm.track_wear=" << cfg.nvm.track_wear << '\n'
       << "nvm.wear_line_bytes=" << cfg.nvm.wear_line_bytes << '\n'
       << "nvm.endurance_writes=" << cfg.nvm.endurance_writes << '\n'
       << "nvm.wear_scheme="
       << mem::nvmWearSchemeName(cfg.nvm.wear_scheme) << '\n'
       << "nvm.rotate_period_writes=" << cfg.nvm.rotate_period_writes
       << '\n'
       << "nvm.hybrid_lines=" << cfg.nvm.hybrid_lines << '\n'
       << "nvm.hybrid_promote_writes=" << cfg.nvm.hybrid_promote_writes
       << '\n'
       << "nvm.hybrid_access_latency=" << cfg.nvm.hybrid_access_latency
       << '\n'
       << "nvm.hybrid_read_energy_per_byte="
       << keyNum(cfg.nvm.hybrid_read_energy_per_byte) << '\n'
       << "nvm.hybrid_write_energy_per_byte="
       << keyNum(cfg.nvm.hybrid_write_energy_per_byte) << '\n';

    os << "log.region_lines=" << cfg.log.region_lines << '\n'
       << "log.segment_bytes=" << cfg.log.segment_bytes << '\n'
       << "log.compaction_watermark="
       << keyNum(cfg.log.compaction_watermark) << '\n';

    os << "core.compute_energy_per_insn="
       << keyNum(cfg.core.compute_energy_per_insn) << '\n'
       << "core.leakage_watts=" << keyNum(cfg.core.leakage_watts)
       << '\n';

    const PlatformParams &pf = cfg.platform;
    os << "platform.capacitance_f=" << keyNum(pf.capacitance_f) << '\n'
       << "platform.vmin=" << keyNum(pf.vmin) << '\n'
       << "platform.vmax=" << keyNum(pf.vmax) << '\n'
       << "platform.von=" << keyNum(pf.von) << '\n'
       << "platform.vbackup=" << keyNum(pf.vbackup) << '\n'
       << "platform.harvest_efficiency="
       << keyNum(pf.harvest_efficiency) << '\n'
       << "platform.wl_vbackup_base=" << keyNum(pf.wl_vbackup_base)
       << '\n'
       << "platform.wl_vbackup_step=" << keyNum(pf.wl_vbackup_step)
       << '\n'
       << "platform.wl_von_base=" << keyNum(pf.wl_von_base) << '\n'
       << "platform.wl_von_step=" << keyNum(pf.wl_von_step) << '\n'
       << "platform.wl_threshold_anchor=" << pf.wl_threshold_anchor
       << '\n'
       << "platform.nvff_energy_per_byte="
       << keyNum(pf.nvff_energy_per_byte) << '\n'
       << "platform.nvff_restore_energy_per_byte="
       << keyNum(pf.nvff_restore_energy_per_byte) << '\n'
       << "platform.reboot_latency_cycles="
       << pf.reboot_latency_cycles << '\n';

    os << "validate_consistency=" << cfg.validate_consistency << '\n'
       << "inject_checkpoint_skip=" << cfg.inject_checkpoint_skip
       << '\n'
       << "inject_register_skip=" << cfg.inject_register_skip << '\n'
       << "check_load_values=" << cfg.check_load_values << '\n'
       << "max_outages=" << cfg.max_outages << '\n'
       << "max_interval_rollups=" << cfg.max_interval_rollups << '\n';

    os << "forced_outage_cycles=";
    for (std::size_t i = 0; i < cfg.forced_outage_cycles.size(); ++i)
        os << (i ? "," : "") << cfg.forced_outage_cycles[i];
    os << '\n';
}

} // namespace nvp
} // namespace wlcache
