#include "nvp/system_config.hh"

#include "sim/logging.hh"

namespace wlcache {
namespace nvp {

const char *
designKindName(DesignKind kind)
{
    switch (kind) {
      case DesignKind::NoCache:   return "NVP-NoCache";
      case DesignKind::VCacheWT:  return "VCache-WT";
      case DesignKind::NVCacheWB: return "NVCache-WB";
      case DesignKind::NvsramWB:  return "NVSRAM-WB";
      case DesignKind::NvsramFull: return "NVSRAM-full";
      case DesignKind::NvsramPractical: return "NVSRAM-practical";
      case DesignKind::Replay:    return "ReplayCache";
      case DesignKind::WtBuffered: return "WT+Buffer";
      case DesignKind::WL:        return "WL-Cache";
    }
    panic("unknown DesignKind %d", static_cast<int>(kind));
}

SystemConfig
SystemConfig::forDesign(DesignKind kind)
{
    SystemConfig cfg;
    cfg.design = kind;
    cfg.dcache = cache::sramCacheParams();
    cfg.icache = cache::sramCacheParams();
    // The paper's FIFO I-side replacement matters little; keep LRU
    // defaults on both and let experiments override.

    switch (kind) {
      case DesignKind::NoCache:
        cfg.platform.von = 3.3;
        cfg.platform.vbackup = 2.9;
        break;
      case DesignKind::VCacheWT:
        cfg.platform.von = 3.3;
        cfg.platform.vbackup = 2.9;
        break;
      case DesignKind::NVCacheWB:
        cfg.dcache = cache::nvCacheParams();
        cfg.icache = cache::nvCacheParams();
        cfg.platform.von = 3.3;
        cfg.platform.vbackup = 2.9;
        break;
      case DesignKind::NvsramWB:
        // Table 2: NVSRAM checkpoints at 3.1 V and restores at 3.5 V
        // (the full-cache backup needs the largest margins).
        cfg.platform.von = 3.5;
        cfg.platform.vbackup = 3.1;
        break;
      case DesignKind::NvsramFull:
        cfg.nvsram.backup_full = true;
        cfg.platform.von = 3.5;
        cfg.platform.vbackup = 3.1;
        break;
      case DesignKind::NvsramPractical:
        // Table 1: medium hardware cost and a medium energy buffer —
        // only the SRAM half needs migration headroom.
        cfg.platform.von = 3.4;
        cfg.platform.vbackup = 3.0;
        break;
      case DesignKind::Replay:
        cfg.platform.von = 3.3;
        cfg.platform.vbackup = 2.9;
        break;
      case DesignKind::WtBuffered:
        // §3.3 alternative: needs a bigger margin than plain WT to
        // drain the buffer failure-atomically.
        cfg.platform.von = 3.3;
        cfg.platform.vbackup = 2.95;
        break;
      case DesignKind::WL:
        // Table 2: WL 2.95~3.1 / 3.3~3.5, tracked per maxline via
        // the wl_* threshold schedule.
        cfg.platform.von = 3.3;
        cfg.platform.vbackup = 2.95;
        cfg.adaptive.enabled = true;
        // Paper §6.6: observed maxline range 2..6 with |DQ| = 8.
        cfg.adaptive.maxline_min = 2;
        cfg.adaptive.maxline_max = cfg.wl.dq_size - 2;
        break;
    }
    return cfg;
}

} // namespace nvp
} // namespace wlcache
