#include "nvp/run_json.hh"

#include <cinttypes>
#include <cstdio>

namespace wlcache {
namespace nvp {

namespace {

/** Minimal JSON string escaping (names here are ASCII already). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

std::string
num(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // anonymous namespace

void
writeRunResultJson(std::ostream &os, const RunResult &r)
{
    os << "{\n";
    os << "  \"workload\": \"" << jsonEscape(r.workload) << "\",\n";
    os << "  \"design\": \"" << designKindName(r.design) << "\",\n";
    os << "  \"completed\": " << (r.completed ? "true" : "false")
       << ",\n";
    os << "  \"on_cycles\": " << r.on_cycles << ",\n";
    os << "  \"off_seconds\": " << num(r.off_seconds) << ",\n";
    os << "  \"total_seconds\": " << num(r.total_seconds) << ",\n";
    os << "  \"instructions\": " << r.instructions << ",\n";
    os << "  \"trace_events\": " << r.trace_events << ",\n";
    os << "  \"replayed_events\": " << r.replayed_events << ",\n";
    os << "  \"outages\": " << r.outages << ",\n";
    os << "  \"reserve_violations\": " << r.reserve_violations
       << ",\n";
    os << "  \"nvm_writes\": " << r.nvm_writes << ",\n";
    os << "  \"nvm_reads\": " << r.nvm_reads << ",\n";
    os << "  \"nvm_bytes_written\": " << r.nvm_bytes_written << ",\n";
    os << "  \"dcache_load_hit_rate\": " << num(r.dcache_load_hit_rate)
       << ",\n";
    os << "  \"dcache_store_hit_rate\": "
       << num(r.dcache_store_hit_rate) << ",\n";
    os << "  \"store_stall_cycles\": " << r.store_stall_cycles
       << ",\n";
    os << "  \"wl\": {\n";
    os << "    \"reconfigurations\": " << r.reconfigurations << ",\n";
    os << "    \"maxline_min_seen\": " << r.maxline_min_seen << ",\n";
    os << "    \"maxline_max_seen\": " << r.maxline_max_seen << ",\n";
    os << "    \"prediction_accuracy\": "
       << num(r.prediction_accuracy) << ",\n";
    os << "    \"avg_dirty_at_ckpt\": " << num(r.avg_dirty_at_ckpt)
       << ",\n";
    os << "    \"writebacks_per_on_period\": "
       << num(r.writebacks_per_on_period) << ",\n";
    os << "    \"dyn_maxline_raises\": " << r.dyn_maxline_raises
       << "\n  },\n";
    os << "  \"oracle\": {\n";
    os << "    \"consistency_checks\": " << r.consistency_checks
       << ",\n";
    os << "    \"consistency_violations\": "
       << r.consistency_violations << ",\n";
    os << "    \"load_value_mismatches\": " << r.load_value_mismatches
       << ",\n";
    os << "    \"final_state_correct\": "
       << (r.final_state_correct ? "true" : "false") << "\n  },\n";
    os << "  \"energy_j\": {\n";
    for (std::size_t c = 0; c < energy::EnergyMeter::kNumCategories;
         ++c) {
        const auto cat = static_cast<energy::EnergyCategory>(c);
        os << "    \"" << energy::energyCategoryName(cat)
           << "\": " << num(r.meter.get(cat));
        os << (c + 1 < energy::EnergyMeter::kNumCategories ? ",\n"
                                                           : ",\n");
    }
    os << "    \"total\": " << num(r.meter.total()) << "\n  }\n";
    os << "}\n";
}

} // namespace nvp
} // namespace wlcache
