#include "nvp/run_json.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/json.hh"

namespace wlcache {
namespace nvp {

namespace {

/** Minimal JSON string escaping (names here are ASCII already). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

std::string
num(double v)
{
    // JSON has no Inf/NaN literal: "%.17g" would print "inf" and the
    // strict reader would reject the record forever after (a poisoned
    // cache entry). Clamp non-finite values to 0 — every producer is
    // expected to have guarded its ratios already, this is the last
    // line of defence.
    if (!std::isfinite(v))
        v = 0.0;
    // 17 significant digits: enough for exact double round-trips
    // through the result cache.
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // anonymous namespace

void
writeRunResultJson(std::ostream &os, const RunResult &r)
{
    os << "{\n";
    os << "  \"record_version\": " << kRunRecordVersion << ",\n";
    os << "  \"workload\": \"" << jsonEscape(r.workload) << "\",\n";
    os << "  \"design\": \"" << designKindName(r.design) << "\",\n";
    os << "  \"completed\": " << (r.completed ? "true" : "false")
       << ",\n";
    os << "  \"on_cycles\": " << r.on_cycles << ",\n";
    os << "  \"off_seconds\": " << num(r.off_seconds) << ",\n";
    os << "  \"total_seconds\": " << num(r.total_seconds) << ",\n";
    os << "  \"instructions\": " << r.instructions << ",\n";
    os << "  \"trace_events\": " << r.trace_events << ",\n";
    os << "  \"replayed_events\": " << r.replayed_events << ",\n";
    os << "  \"outages\": " << r.outages << ",\n";
    os << "  \"reserve_violations\": " << r.reserve_violations
       << ",\n";
    os << "  \"nvm_writes\": " << r.nvm_writes << ",\n";
    os << "  \"nvm_reads\": " << r.nvm_reads << ",\n";
    os << "  \"nvm_bytes_written\": " << r.nvm_bytes_written << ",\n";
    os << "  \"nvm_device\": {\n";
    os << "    \"bank_conflicts\": " << r.nvm_bank_conflicts << ",\n";
    os << "    \"queue_stall_cycles\": " << r.nvm_queue_stall_cycles
       << ",\n";
    os << "    \"turnaround_stall_cycles\": "
       << r.nvm_turnaround_stall_cycles << ",\n";
    os << "    \"wear_max\": " << r.nvm_wear_max << ",\n";
    os << "    \"wear_lines_touched\": " << r.nvm_wear_lines_touched
       << ",\n";
    os << "    \"lifetime_headroom\": " << r.nvm_lifetime_headroom
       << ",\n";
    os << "    \"write_p99_latency\": "
       << num(r.nvm_write_p99_latency) << ",\n";
    os << "    \"row_hits\": " << r.nvm_row_hits << ",\n";
    os << "    \"row_misses\": " << r.nvm_row_misses << "\n  },\n";
    os << "  \"nvm_log\": {\n";
    os << "    \"appended_records\": " << r.log_appended_records
       << ",\n";
    os << "    \"appended_bytes\": " << r.log_appended_bytes << ",\n";
    os << "    \"replays\": " << r.log_replays << ",\n";
    os << "    \"replayed_records\": " << r.log_replayed_records
       << ",\n";
    os << "    \"replayed_bytes\": " << r.log_replayed_bytes << ",\n";
    os << "    \"compactions\": " << r.log_compactions << ",\n";
    os << "    \"compacted_lines\": " << r.log_compacted_lines
       << ",\n";
    os << "    \"compacted_bytes\": " << r.log_compacted_bytes
       << ",\n";
    os << "    \"live_lines\": " << r.log_live_lines << "\n  },\n";
    os << "  \"dcache_load_hit_rate\": " << num(r.dcache_load_hit_rate)
       << ",\n";
    os << "  \"dcache_store_hit_rate\": "
       << num(r.dcache_store_hit_rate) << ",\n";
    os << "  \"store_stall_cycles\": " << r.store_stall_cycles
       << ",\n";
    os << "  \"wl\": {\n";
    os << "    \"reconfigurations\": " << r.reconfigurations << ",\n";
    os << "    \"maxline_min_seen\": " << r.maxline_min_seen << ",\n";
    os << "    \"maxline_max_seen\": " << r.maxline_max_seen << ",\n";
    os << "    \"prediction_accuracy\": "
       << num(r.prediction_accuracy) << ",\n";
    os << "    \"avg_dirty_at_ckpt\": " << num(r.avg_dirty_at_ckpt)
       << ",\n";
    os << "    \"writebacks_per_on_period\": "
       << num(r.writebacks_per_on_period) << ",\n";
    os << "    \"dyn_maxline_raises\": " << r.dyn_maxline_raises
       << "\n  },\n";
    os << "  \"oracle\": {\n";
    os << "    \"consistency_checks\": " << r.consistency_checks
       << ",\n";
    os << "    \"consistency_violations\": "
       << r.consistency_violations << ",\n";
    os << "    \"load_value_mismatches\": " << r.load_value_mismatches
       << ",\n";
    os << "    \"final_state_correct\": "
       << (r.final_state_correct ? "true" : "false") << "\n  },\n";
    os << "  \"verify\": {\n";
    os << "    \"forced_outages\": " << r.forced_outages << ",\n";
    os << "    \"register_restore_mismatches\": "
       << r.register_restore_mismatches << ",\n";
    os << "    \"divergence\": " << (r.divergence ? "true" : "false")
       << ",\n";
    os << "    \"has_first_divergence\": "
       << (r.has_first_divergence ? "true" : "false") << ",\n";
    os << "    \"first_divergence_kind\": \""
       << jsonEscape(r.first_divergence_kind) << "\",\n";
    os << "    \"first_divergence_addr\": " << r.first_divergence_addr
       << ",\n";
    os << "    \"first_divergence_cycle\": "
       << r.first_divergence_cycle << ",\n";
    os << "    \"first_divergence_outage\": "
       << r.first_divergence_outage << ",\n";
    os << "    \"final_state_digest\": \""
       << jsonEscape(r.final_state_digest) << "\"\n  },\n";
    // Embedded verbatim: stats_json is always a compact JSON object
    // (StatGroup::dumpJson or "{}"), so splicing it in keeps the
    // record well-formed and the reader round-trips it byte-exactly.
    os << "  \"stats\": "
       << (r.stats_json.empty() ? "{}" : r.stats_json) << ",\n";
    os << "  \"intervals_dropped\": " << r.intervals_dropped << ",\n";
    os << "  \"intervals\": [";
    for (std::size_t i = 0; i < r.intervals.size(); ++i) {
        const telemetry::IntervalRollup &iv = r.intervals[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"index\":" << iv.index
           << ",\"start_cycle\":" << iv.start_cycle
           << ",\"end_cycle\":" << iv.end_cycle
           << ",\"instructions\":" << iv.instructions
           << ",\"nvm_writes\":" << iv.nvm_writes
           << ",\"cleans\":" << iv.cleans
           << ",\"dirty_high_water\":" << iv.dirty_high_water
           << ",\"checkpoint_j\":" << num(iv.checkpoint_j)
           << ",\"harvested_j\":" << num(iv.harvested_j) << '}';
    }
    os << (r.intervals.empty() ? "],\n" : "\n  ],\n");
    os << "  \"energy_j\": {\n";
    for (std::size_t c = 0; c < energy::EnergyMeter::kNumCategories;
         ++c) {
        const auto cat = static_cast<energy::EnergyCategory>(c);
        os << "    \"" << energy::energyCategoryName(cat)
           << "\": " << num(r.meter.get(cat));
        os << (c + 1 < energy::EnergyMeter::kNumCategories ? ",\n"
                                                           : ",\n");
    }
    os << "    \"total\": " << num(r.meter.total()) << "\n  }\n";
    os << "}\n";
}

namespace {

/** Field-extraction helpers: false (with a message) on any mismatch. */
struct Reader
{
    const util::JsonValue &root;
    std::string *err;

    bool
    fail(const std::string &what) const
    {
        if (err)
            *err = what;
        return false;
    }

    const util::JsonValue *
    want(const util::JsonValue &obj, const std::string &key,
         util::JsonValue::Kind kind) const
    {
        const util::JsonValue *v = obj.get(key);
        if (!v || v->kind() != kind)
            return nullptr;
        return v;
    }

    bool
    getU64(const util::JsonValue &obj, const std::string &key,
           std::uint64_t &out) const
    {
        const auto *v =
            want(obj, key, util::JsonValue::Kind::Number);
        if (!v)
            return fail("missing number '" + key + "'");
        out = v->asU64();
        return true;
    }

    bool
    getDouble(const util::JsonValue &obj, const std::string &key,
              double &out) const
    {
        const auto *v =
            want(obj, key, util::JsonValue::Kind::Number);
        if (!v)
            return fail("missing number '" + key + "'");
        out = v->asDouble();
        return true;
    }

    bool
    getBool(const util::JsonValue &obj, const std::string &key,
            bool &out) const
    {
        const auto *v = want(obj, key, util::JsonValue::Kind::Bool);
        if (!v)
            return fail("missing bool '" + key + "'");
        out = v->asBool();
        return true;
    }

    template <typename T>
    bool
    getUnsigned(const util::JsonValue &obj, const std::string &key,
                T &out) const
    {
        std::uint64_t v = 0;
        if (!getU64(obj, key, v))
            return false;
        out = static_cast<T>(v);
        return true;
    }
};

} // anonymous namespace

bool
readRunResultJson(std::istream &is, RunResult &out, std::string *err)
{
    std::ostringstream buf;
    buf << is.rdbuf();

    util::JsonValue root;
    if (!util::parseJson(buf.str(), root, err))
        return false;
    if (!root.isObject()) {
        if (err)
            *err = "record is not a JSON object";
        return false;
    }

    Reader rd{ root, err };
    RunResult r;

    // Version gate first: a record written by a different binary
    // generation is a cache miss, not a parse attempt.
    std::uint64_t version = 0;
    if (!rd.getU64(root, "record_version", version))
        return false;
    if (version != kRunRecordVersion) {
        return rd.fail("record_version " + std::to_string(version) +
                       " != expected " +
                       std::to_string(kRunRecordVersion));
    }

    const util::JsonValue *wv =
        rd.want(root, "workload", util::JsonValue::Kind::String);
    if (!wv)
        return rd.fail("missing string 'workload'");
    r.workload = wv->asString();

    const util::JsonValue *dv =
        rd.want(root, "design", util::JsonValue::Kind::String);
    if (!dv)
        return rd.fail("missing string 'design'");
    if (!designKindFromName(dv->asString(), r.design)) {
        return rd.fail("unknown design '" + dv->asString() +
                       "' (valid: " + designKindNameList() + ")");
    }

    if (!rd.getBool(root, "completed", r.completed) ||
        !rd.getU64(root, "on_cycles", r.on_cycles) ||
        !rd.getDouble(root, "off_seconds", r.off_seconds) ||
        !rd.getDouble(root, "total_seconds", r.total_seconds) ||
        !rd.getU64(root, "instructions", r.instructions) ||
        !rd.getU64(root, "trace_events", r.trace_events) ||
        !rd.getU64(root, "replayed_events", r.replayed_events) ||
        !rd.getU64(root, "outages", r.outages) ||
        !rd.getU64(root, "reserve_violations",
                   r.reserve_violations) ||
        !rd.getU64(root, "nvm_writes", r.nvm_writes) ||
        !rd.getU64(root, "nvm_reads", r.nvm_reads) ||
        !rd.getU64(root, "nvm_bytes_written", r.nvm_bytes_written) ||
        !rd.getDouble(root, "dcache_load_hit_rate",
                      r.dcache_load_hit_rate) ||
        !rd.getDouble(root, "dcache_store_hit_rate",
                      r.dcache_store_hit_rate) ||
        !rd.getU64(root, "store_stall_cycles", r.store_stall_cycles))
        return false;

    const util::JsonValue *dev =
        rd.want(root, "nvm_device", util::JsonValue::Kind::Object);
    if (!dev)
        return rd.fail("missing object 'nvm_device'");
    if (!rd.getU64(*dev, "bank_conflicts", r.nvm_bank_conflicts) ||
        !rd.getU64(*dev, "queue_stall_cycles",
                   r.nvm_queue_stall_cycles) ||
        !rd.getU64(*dev, "turnaround_stall_cycles",
                   r.nvm_turnaround_stall_cycles) ||
        !rd.getU64(*dev, "wear_max", r.nvm_wear_max) ||
        !rd.getU64(*dev, "wear_lines_touched",
                   r.nvm_wear_lines_touched) ||
        !rd.getU64(*dev, "lifetime_headroom",
                   r.nvm_lifetime_headroom) ||
        !rd.getDouble(*dev, "write_p99_latency",
                      r.nvm_write_p99_latency) ||
        !rd.getU64(*dev, "row_hits", r.nvm_row_hits) ||
        !rd.getU64(*dev, "row_misses", r.nvm_row_misses))
        return false;

    const util::JsonValue *nlog =
        rd.want(root, "nvm_log", util::JsonValue::Kind::Object);
    if (!nlog)
        return rd.fail("missing object 'nvm_log'");
    if (!rd.getU64(*nlog, "appended_records",
                   r.log_appended_records) ||
        !rd.getU64(*nlog, "appended_bytes", r.log_appended_bytes) ||
        !rd.getU64(*nlog, "replays", r.log_replays) ||
        !rd.getU64(*nlog, "replayed_records",
                   r.log_replayed_records) ||
        !rd.getU64(*nlog, "replayed_bytes", r.log_replayed_bytes) ||
        !rd.getU64(*nlog, "compactions", r.log_compactions) ||
        !rd.getU64(*nlog, "compacted_lines", r.log_compacted_lines) ||
        !rd.getU64(*nlog, "compacted_bytes", r.log_compacted_bytes) ||
        !rd.getU64(*nlog, "live_lines", r.log_live_lines))
        return false;

    const util::JsonValue *wl =
        rd.want(root, "wl", util::JsonValue::Kind::Object);
    if (!wl)
        return rd.fail("missing object 'wl'");
    if (!rd.getUnsigned(*wl, "reconfigurations",
                        r.reconfigurations) ||
        !rd.getUnsigned(*wl, "maxline_min_seen",
                        r.maxline_min_seen) ||
        !rd.getUnsigned(*wl, "maxline_max_seen",
                        r.maxline_max_seen) ||
        !rd.getDouble(*wl, "prediction_accuracy",
                      r.prediction_accuracy) ||
        !rd.getDouble(*wl, "avg_dirty_at_ckpt",
                      r.avg_dirty_at_ckpt) ||
        !rd.getDouble(*wl, "writebacks_per_on_period",
                      r.writebacks_per_on_period) ||
        !rd.getU64(*wl, "dyn_maxline_raises", r.dyn_maxline_raises))
        return false;

    const util::JsonValue *oracle =
        rd.want(root, "oracle", util::JsonValue::Kind::Object);
    if (!oracle)
        return rd.fail("missing object 'oracle'");
    if (!rd.getU64(*oracle, "consistency_checks",
                   r.consistency_checks) ||
        !rd.getU64(*oracle, "consistency_violations",
                   r.consistency_violations) ||
        !rd.getU64(*oracle, "load_value_mismatches",
                   r.load_value_mismatches) ||
        !rd.getBool(*oracle, "final_state_correct",
                    r.final_state_correct))
        return false;

    const util::JsonValue *verify =
        rd.want(root, "verify", util::JsonValue::Kind::Object);
    if (!verify)
        return rd.fail("missing object 'verify'");
    const util::JsonValue *kind = rd.want(
        *verify, "first_divergence_kind",
        util::JsonValue::Kind::String);
    if (!kind)
        return rd.fail("missing string 'first_divergence_kind'");
    r.first_divergence_kind = kind->asString();
    const util::JsonValue *digest = rd.want(
        *verify, "final_state_digest", util::JsonValue::Kind::String);
    if (!digest)
        return rd.fail("missing string 'final_state_digest'");
    r.final_state_digest = digest->asString();
    if (!rd.getU64(*verify, "forced_outages", r.forced_outages) ||
        !rd.getU64(*verify, "register_restore_mismatches",
                   r.register_restore_mismatches) ||
        !rd.getBool(*verify, "divergence", r.divergence) ||
        !rd.getBool(*verify, "has_first_divergence",
                    r.has_first_divergence) ||
        !rd.getU64(*verify, "first_divergence_addr",
                   r.first_divergence_addr) ||
        !rd.getU64(*verify, "first_divergence_cycle",
                   r.first_divergence_cycle) ||
        !rd.getU64(*verify, "first_divergence_outage",
                   r.first_divergence_outage))
        return false;

    const util::JsonValue *stats =
        rd.want(root, "stats", util::JsonValue::Kind::Object);
    if (!stats)
        return rd.fail("missing object 'stats'");
    {
        std::ostringstream compact;
        util::writeJsonCompact(compact, *stats);
        r.stats_json = compact.str();
    }

    if (!rd.getU64(root, "intervals_dropped", r.intervals_dropped))
        return false;
    const util::JsonValue *ivs =
        rd.want(root, "intervals", util::JsonValue::Kind::Array);
    if (!ivs)
        return rd.fail("missing array 'intervals'");
    for (const util::JsonValue &e : ivs->items()) {
        if (!e.isObject())
            return rd.fail("'intervals' element is not an object");
        telemetry::IntervalRollup iv;
        if (!rd.getU64(e, "index", iv.index) ||
            !rd.getU64(e, "start_cycle", iv.start_cycle) ||
            !rd.getU64(e, "end_cycle", iv.end_cycle) ||
            !rd.getU64(e, "instructions", iv.instructions) ||
            !rd.getU64(e, "nvm_writes", iv.nvm_writes) ||
            !rd.getU64(e, "cleans", iv.cleans) ||
            !rd.getUnsigned(e, "dirty_high_water",
                            iv.dirty_high_water) ||
            !rd.getDouble(e, "checkpoint_j", iv.checkpoint_j) ||
            !rd.getDouble(e, "harvested_j", iv.harvested_j))
            return false;
        r.intervals.push_back(iv);
    }

    const util::JsonValue *energy =
        rd.want(root, "energy_j", util::JsonValue::Kind::Object);
    if (!energy)
        return rd.fail("missing object 'energy_j'");
    for (std::size_t c = 0; c < energy::EnergyMeter::kNumCategories;
         ++c) {
        const auto cat = static_cast<energy::EnergyCategory>(c);
        double joules = 0.0;
        if (!rd.getDouble(*energy, energy::energyCategoryName(cat),
                          joules))
            return false;
        r.meter.add(cat, joules);
    }

    out = r;
    return true;
}

} // namespace nvp
} // namespace wlcache
