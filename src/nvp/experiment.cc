#include "nvp/experiment.hh"

#include "sim/logging.hh"

namespace wlcache {
namespace nvp {

SystemConfig
resolveConfig(const ExperimentSpec &spec)
{
    SystemConfig cfg = SystemConfig::forDesign(spec.design);
    if (spec.tweak)
        spec.tweak(cfg);
    return cfg;
}

RunResult
runExperiment(const ExperimentSpec &spec)
{
    return runExperimentEx(spec, RunOptions{});
}

RunResult
runExperimentEx(const ExperimentSpec &spec, const RunOptions &opts)
{
    const SystemConfig cfg = resolveConfig(spec);

    const workloads::BuiltTrace &trace =
        workloads::getTrace(spec.workload, spec.scale,
                            spec.workload_seed);

    energy::TraceGenConfig tg;
    tg.seed = spec.power_seed;
    const energy::PowerTrace power =
        energy::makeTrace(spec.no_failure ? energy::TraceKind::Constant
                                          : spec.power,
                          tg);

    SystemSim sim(cfg, trace, power, spec.no_failure);
    return sim.run(opts);
}

double
speedupVs(const RunResult &x, const RunResult &baseline)
{
    wlc_assert(x.total_seconds > 0.0);
    return baseline.total_seconds / x.total_seconds;
}

} // namespace nvp
} // namespace wlcache
