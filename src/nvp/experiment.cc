#include "nvp/experiment.hh"

#include "sim/logging.hh"

namespace wlcache {
namespace nvp {

SystemConfig
resolveConfig(const ExperimentSpec &spec)
{
    SystemConfig cfg = SystemConfig::forDesign(spec.design);
    if (spec.tweak)
        spec.tweak(cfg);
    return cfg;
}

RunResult
runExperiment(const ExperimentSpec &spec)
{
    return runExperimentEx(spec, RunOptions{});
}

RunResult
runExperimentEx(const ExperimentSpec &spec, const RunOptions &opts)
{
    const SystemConfig cfg = resolveConfig(spec);

    const workloads::BuiltTrace &trace =
        workloads::getTrace(spec.workload, spec.scale,
                            spec.workload_seed);

    energy::TraceGenConfig tg;
    tg.seed = spec.power_seed;
    energy::PowerTrace power =
        energy::makeTrace(spec.no_failure ? energy::TraceKind::Constant
                                          : spec.power,
                          tg);
    // Fleet runs: same environment envelope, node-local gain. Skipped
    // under no_failure (infinite power has no jitter to model).
    if (spec.power_jitter > 0.0 && !spec.no_failure)
        power = energy::deriveNodeTrace(power, spec.power_node,
                                        spec.power_jitter);

    SystemSim sim(cfg, trace, power, spec.no_failure);
    return sim.run(opts);
}

double
speedupVs(const RunResult &x, const RunResult &baseline)
{
    wlc_assert(x.total_seconds > 0.0);
    return baseline.total_seconds / x.total_seconds;
}

} // namespace nvp
} // namespace wlcache
