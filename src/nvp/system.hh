/**
 * @file
 * The NVP whole-system simulator: boots the platform, replays a
 * workload trace through the core and the configured cache design,
 * integrates harvested and consumed energy against the capacitor,
 * fires JIT checkpoints when the stored energy falls to the Vbackup
 * level, recharges through power-off periods, restores at Von, and
 * runs the adaptive WL-Cache runtime at every reboot. Optionally
 * verifies crash consistency at every recovery point and at program
 * completion.
 */

#ifndef WLCACHE_NVP_SYSTEM_HH
#define WLCACHE_NVP_SYSTEM_HH

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>

#include "cache/cache_iface.hh"
#include "cache/icache.hh"
#include "core/adaptive_runtime.hh"
#include "core/wl_cache.hh"
#include "cpu/inorder_core.hh"
#include "energy/capacitor.hh"
#include "energy/energy_meter.hh"
#include "energy/harvester.hh"
#include "mem/nvm_memory.hh"
#include "mem/persist_checker.hh"
#include "nvp/nvff.hh"
#include "nvp/snapshot.hh"
#include "nvp/system_config.hh"
#include "telemetry/rollup.hh"
#include "workloads/workloads.hh"

namespace wlcache {

namespace core { class WlLogCache; }

namespace nvp {

/** Everything a run reports (feeds every figure in the paper). */
struct RunResult
{
    std::string workload;
    DesignKind design = DesignKind::WL;
    bool completed = false;

    // --- Time ---
    std::uint64_t on_cycles = 0;     //!< Cycles while powered.
    double off_seconds = 0.0;        //!< Recharge time.
    double total_seconds = 0.0;      //!< On + off wall-clock.

    // --- Progress ---
    std::uint64_t instructions = 0;
    std::uint64_t trace_events = 0;
    std::uint64_t replayed_events = 0;  //!< Re-executed (ReplayCache).

    // --- Power failures ---
    std::uint64_t outages = 0;
    std::uint64_t reserve_violations = 0;

    // --- Energy (joules, by category) ---
    energy::EnergyMeter meter;

    // --- Memory traffic ---
    std::uint64_t nvm_writes = 0;
    std::uint64_t nvm_bytes_written = 0;
    std::uint64_t nvm_reads = 0;

    // --- NVM device model (mem/device/) ---
    /** Accesses gated by pending bank work. */
    std::uint64_t nvm_bank_conflicts = 0;
    /** Cycles stalled on a full bank queue (back-pressure). */
    std::uint64_t nvm_queue_stall_cycles = 0;
    /** Cycles reads waited out write-to-read turnaround (tWTR). */
    std::uint64_t nvm_turnaround_stall_cycles = 0;
    /** Highest per-line write count (0 unless nvm.track_wear). */
    std::uint64_t nvm_wear_max = 0;
    /** Distinct wear lines written (0 unless nvm.track_wear). */
    std::uint64_t nvm_wear_lines_touched = 0;
    /** Write budget left on the most-worn line (min-line headroom). */
    std::uint64_t nvm_lifetime_headroom = 0;
    /** p99 write latency in cycles from the log2 histogram. */
    double nvm_write_p99_latency = 0.0;
    /** Row-buffer hits (banked model; 0 under the legacy model). */
    std::uint64_t nvm_row_hits = 0;
    /** Row-buffer misses (activations) under the banked model. */
    std::uint64_t nvm_row_misses = 0;

    // --- NVM journal (mem/log/, WL-Log only; all 0 otherwise) ---
    std::uint64_t log_appended_records = 0;
    std::uint64_t log_appended_bytes = 0;
    std::uint64_t log_replays = 0;          //!< Boot replay scans.
    std::uint64_t log_replayed_records = 0;
    std::uint64_t log_replayed_bytes = 0;
    std::uint64_t log_compactions = 0;      //!< Segments reclaimed.
    std::uint64_t log_compacted_lines = 0;
    std::uint64_t log_compacted_bytes = 0;
    /** Lines still journal-resident at end of run. */
    std::uint64_t log_live_lines = 0;

    // --- Cache behaviour ---
    double dcache_load_hit_rate = 0.0;
    double dcache_store_hit_rate = 0.0;
    std::uint64_t store_stall_cycles = 0;

    // --- WL-Cache adaptive statistics (paper §6.6) ---
    unsigned reconfigurations = 0;
    unsigned maxline_min_seen = 0;
    unsigned maxline_max_seen = 0;
    double prediction_accuracy = 1.0;
    double avg_dirty_at_ckpt = 0.0;
    double writebacks_per_on_period = 0.0;
    std::uint64_t dyn_maxline_raises = 0;

    // --- Consistency oracle ---
    std::uint64_t consistency_checks = 0;
    std::uint64_t consistency_violations = 0;
    std::uint64_t load_value_mismatches = 0;
    bool final_state_correct = false;

    // --- Verification campaigns (src/verify/) ---
    /** Forced-outage schedule points that actually fired. */
    std::uint64_t forced_outages = 0;
    /** Registers whose post-boot value differed from the snapshot. */
    std::uint64_t register_restore_mismatches = 0;
    /** Any oracle (NVM diff, load value, register, final image) fired. */
    bool divergence = false;
    bool has_first_divergence = false;
    /** Oracle that saw the first divergence: nvm/load/register/final. */
    std::string first_divergence_kind;
    /** Byte address (or register index for kind=register) of it. */
    std::uint64_t first_divergence_addr = 0;
    std::uint64_t first_divergence_cycle = 0;
    /** Outage count when the first divergence was observed. */
    std::uint64_t first_divergence_outage = 0;
    /**
     * FNV-1a-128 digest of the persistent image region (NVM with the
     * design's persistent overlay applied) at end of run. Two runs
     * ending in the same persistent state produce equal digests, so a
     * campaign can diff faulted runs against the golden run cheaply.
     */
    std::string final_state_digest;

    // --- Telemetry (src/telemetry/) ---
    /**
     * Compact-JSON dump of every component StatGroup (scalars plus
     * distribution buckets), as produced by stats::StatGroup::dumpJson.
     * Always a valid JSON object; "{}" until a run fills it.
     */
    std::string stats_json = "{}";
    /**
     * Per-power-interval rollups, one per completed power-on interval
     * (including the final, gracefully-completed one), capped at
     * SystemConfig::max_interval_rollups.
     */
    std::vector<telemetry::IntervalRollup> intervals;
    /** Intervals not stored because the rollup cap was hit. */
    std::uint64_t intervals_dropped = 0;
};

/** Optional run-loop controls: snapshot capture, resume, budgets. */
struct RunOptions
{
    /**
     * Resume from this snapshot instead of booting cold (null runs
     * cold). The snapshot's compat_key must match this system's,
     * unless resume_best_effort is set.
     */
    const SystemSnapshot *resume = nullptr;

    /**
     * Treat an incompatible resume snapshot as absent (cold start)
     * instead of a fatal error. A resume is purely an accelerator, so
     * falling back is always observationally safe; daemon workers use
     * this when re-offering drain checkpoints that may have been
     * written by an older binary.
     */
    bool resume_best_effort = false;

    /**
     * Stop once this many trace events have been consumed since run
     * start (0 = run to completion). The budget is an absolute event
     * index, so resumed runs count their fast-forwarded prefix.
     */
    std::uint64_t max_events = 0;

    /** Receives the cut state when max_events stops the run early. */
    SystemSnapshot *cut = nullptr;

    /**
     * Cooperative early-cut request (may be null). Checked at every
     * event boundary; once it reads true the run stops exactly as if
     * max_events had been reached there, capturing *cut when set.
     * Signal handlers can flip it — this is how a draining wlcached
     * worker checkpoints an in-flight job mid-run.
     */
    const std::atomic<bool> *cut_request = nullptr;

    /**
     * Capture a snapshot at the first event boundary at or past every
     * multiple of this many cycles (0 = never).
     */
    Cycle snapshot_interval = 0;

    /** Receives each interval snapshot (unset discards them). */
    std::function<void(SystemSnapshot &&)> snapshot_sink;
};

/** One simulated system instance bound to a workload and a trace. */
class SystemSim
{
  public:
    /**
     * @param cfg Full system configuration.
     * @param trace Recorded workload execution to replay.
     * @param power Ambient power waveform.
     * @param infinite_power No-failure mode (Figure 4).
     */
    SystemSim(const SystemConfig &cfg,
              const workloads::BuiltTrace &trace,
              const energy::PowerTrace &power,
              bool infinite_power = false);

    ~SystemSim();

    /** Run the workload to completion (or until max_outages). */
    RunResult run();

    /** Run with snapshot/resume/budget controls. */
    RunResult run(const RunOptions &opts);

    /**
     * Capture the complete deterministic run state. Only meaningful
     * at an event-loop boundary (between executed trace events);
     * resuming from the result is observationally identical to cold
     * execution of the same prefix.
     */
    SystemSnapshot takeSnapshot() const;

    /**
     * Restore a state captured by takeSnapshot() on a system built
     * from a resume-compatible configuration and the same trace.
     * Panics on a compat-key or format mismatch.
     */
    void restoreSnapshot(const SystemSnapshot &snap);

    /** Resume-compatibility key of this configuration + trace. */
    const std::string &snapshotKey() const { return snapshot_key_; }

    /** Access the data cache (tests). */
    cache::DataCache &dcache() { return *dcache_; }

    /** Access the core (tests: register-file comparison). */
    const cpu::InOrderCore &core() const { return *core_; }

    /** Access the WL cache when the design is WL-family (else null). */
    core::WLCache *wlCache() { return wl_; }

    /** Access the WL-Log cache when the design is WLLog (else null). */
    core::WlLogCache *wlLogCache() { return wllog_; }

    /** The backing NVM (tests). */
    mem::NvmMemory &nvm() { return *nvm_; }

    /** NVFF register/threshold backup bank (tests). */
    const NvffStore &nvff() const { return *nvff_; }

    /** Dump every component's statistics in gem5 style. */
    void dumpStats(std::ostream &os) const;

  private:
    void buildCaches();
    double reserveNeededJ() const;
    double wlVbackup(unsigned maxline) const;
    double wlVon(unsigned maxline) const;
    void recomputeThresholds();
    void drawConsumedEnergy();
    void accountPassage(Cycle from, Cycle to);
    void powerFail();
    void bootAndRestore();
    void checkConsistency();
    bool finalCheck();
    void recordDivergence(const char *kind, std::uint64_t addr);
    void computeFinalDigest();
    void attachTimeline();
    void beginInterval();
    void endInterval(double checkpoint_j);
    void collectStatsJson();

    const SystemConfig cfg_;
    const workloads::BuiltTrace &trace_;
    std::string snapshot_key_;

    energy::EnergyMeter meter_;
    std::unique_ptr<mem::NvmMemory> nvm_;
    std::unique_ptr<cache::DataCache> dcache_;
    std::unique_ptr<cache::InstrCache> icache_;
    std::unique_ptr<cpu::InOrderCore> core_;
    core::WLCache *wl_ = nullptr;          //!< Non-owning view.
    core::WlLogCache *wllog_ = nullptr;    //!< Non-owning (WLLog only).
    cache::ReplayCacheModel *replay_ = nullptr;
    std::unique_ptr<core::AdaptiveRuntime> runtime_;
    std::unique_ptr<NvffStore> nvff_;
    energy::Capacitor cap_;
    energy::Harvester harvester_;
    mem::PersistChecker checker_;

    RunResult res_;
    Cycle now_ = 0;
    Cycle boot_cycle_ = 0;
    /** meter_.totalAj() at the last drawConsumedEnergy(). */
    energy::Attojoules last_meter_aj_ = 0;
    double backup_energy_level_ = 0.0;  //!< Stored-energy Vbackup level.
    /** Quantized Vbackup level driving the outage comparator. */
    energy::Attojoules backup_level_aj_ = 0;
    double vbackup_now_ = 0.0;          //!< Active Vbackup threshold.
    double von_now_ = 0.0;              //!< Active restore voltage.
    double leak_watts_ = 0.0;
    /** Quantized per-cycle leakage (both step modes integrate this). */
    energy::Attojoules leak_aj_per_cycle_ = 0;
    bool environment_dead_ = false;
    bool warned_reserve_ = false;

    // Telemetry: interval-rollup baselines captured at each boot.
    telemetry::TimelineBuffer *tl_ = nullptr;  //!< == cfg_.timeline.
    std::uint64_t interval_index_ = 0;
    Cycle interval_start_cycle_ = 0;
    std::uint64_t interval_instret_base_ = 0;
    std::uint64_t interval_nvm_writes_base_ = 0;
    std::uint64_t interval_cleans_base_ = 0;
    double interval_harvest_base_ = 0.0;

    // Forced-outage schedule and register-differential state.
    std::size_t forced_idx_ = 0;       //!< Next forced point to fire.
    std::array<std::uint32_t, cpu::RegisterFile::kNumRegs>
        last_ckpt_regs_{};             //!< Regs at last power failure.
    bool has_ckpt_regs_ = false;

    // ReplayCache region rollback state.
    std::size_t idx_ = 0;
    std::size_t region_start_idx_ = 0;
    std::unique_ptr<cpu::ICacheStream> region_stream_snapshot_;
    std::unordered_set<Addr> region_dirty_bytes_;
};

} // namespace nvp
} // namespace wlcache

#endif // WLCACHE_NVP_SYSTEM_HH
