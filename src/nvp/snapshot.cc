#include "nvp/snapshot.hh"

#include <cstring>

#include "sim/snapshot.hh"

namespace wlcache {
namespace nvp {

namespace {

/** Store-blob magic: "WLSN" little-endian. */
constexpr std::uint32_t kBlobMagic = 0x4e534c57u;

} // namespace

const SystemSnapshot *
SnapshotSet::bestBefore(Cycle c) const
{
    const SystemSnapshot *best = nullptr;
    for (const SystemSnapshot &s : snaps) {
        if (s.cycle >= c)
            break;
        best = &s;
    }
    return best;
}

std::vector<std::uint8_t>
encodeSnapshot(const SystemSnapshot &s)
{
    SnapshotWriter w;
    w.u32(kBlobMagic);
    w.u32(SystemSnapshot::kFormatVersion);
    w.str(s.compat_key);
    w.u64(s.cycle);
    w.u64(s.event_index);
    w.vecU8(s.state);
    return w.take();
}

bool
decodeSnapshot(const std::vector<std::uint8_t> &blob, SystemSnapshot &out)
{
    // Hand-rolled cursor: a corrupt store entry must read as a miss,
    // not trip SnapshotReader's panic-on-underflow contract.
    std::size_t pos = 0;
    auto avail = [&](std::size_t n) { return blob.size() - pos >= n; };
    auto rd_u32 = [&](std::uint32_t &v) {
        if (!avail(4))
            return false;
        v = 0;
        for (unsigned i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(blob[pos++]) << (8 * i);
        return true;
    };
    auto rd_u64 = [&](std::uint64_t &v) {
        if (!avail(8))
            return false;
        v = 0;
        for (unsigned i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(blob[pos++]) << (8 * i);
        return true;
    };

    std::uint32_t magic = 0, version = 0;
    if (!rd_u32(magic) || magic != kBlobMagic)
        return false;
    if (!rd_u32(version) || version != SystemSnapshot::kFormatVersion)
        return false;

    std::uint64_t key_len = 0;
    if (!rd_u64(key_len) || !avail(key_len))
        return false;
    SystemSnapshot s;
    s.compat_key.assign(reinterpret_cast<const char *>(blob.data() + pos),
                        static_cast<std::size_t>(key_len));
    pos += static_cast<std::size_t>(key_len);

    if (!rd_u64(s.cycle) || !rd_u64(s.event_index))
        return false;
    std::uint64_t state_len = 0;
    if (!rd_u64(state_len) || !avail(state_len))
        return false;
    s.state.assign(blob.begin() + static_cast<std::ptrdiff_t>(pos),
                   blob.begin() +
                       static_cast<std::ptrdiff_t>(pos + state_len));
    pos += static_cast<std::size_t>(state_len);
    if (pos != blob.size() || s.state.empty())
        return false;

    out = std::move(s);
    return true;
}

} // namespace nvp
} // namespace wlcache
