/**
 * @file
 * Machine-readable run records: serialize a RunResult as JSON so
 * external tooling (plotters, regression dashboards) can consume
 * simulation results without scraping tables, and parse one back so
 * the runner's result cache can skip finished simulations.
 */

#ifndef WLCACHE_NVP_RUN_JSON_HH
#define WLCACHE_NVP_RUN_JSON_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

#include "nvp/system.hh"

namespace wlcache {
namespace nvp {

/**
 * Format version of the run record. Bump whenever the RunResult
 * schema (or the meaning of an existing field) changes: the strict
 * reader rejects records carrying any other version, so a result
 * cache written by an old binary is invalidated rather than silently
 * reused with missing/reinterpreted fields.
 *
 * History: 1 = PR-1 runner cache; 2 = verification-campaign fields
 * (forced outages, divergence record, final-state digest); 3 =
 * telemetry fields (embedded stats tree, per-power-interval rollups);
 * 4 = banked-device fields; 5 = row-buffer counters and the
 * "nvm_log" journal block (WL-Log write path).
 */
inline constexpr std::uint64_t kRunRecordVersion = 5;

/**
 * Write @p r as a single JSON object (pretty-printed, stable key
 * order). The energy breakdown nests under "energy_j" by category.
 * Doubles are written with 17 significant digits so a parsed record
 * reproduces the original values bit for bit.
 */
void writeRunResultJson(std::ostream &os, const RunResult &r);

/**
 * Parse a writeRunResultJson() record. Strict: every field must be
 * present with the right type, so a truncated or corrupted cache
 * entry is rejected rather than half-applied.
 *
 * @param is Stream positioned at the record.
 * @param out Receives the result; untouched on failure.
 * @param err Optional one-line diagnostic on failure.
 * @return true when @p out holds a complete record.
 */
bool readRunResultJson(std::istream &is, RunResult &out,
                       std::string *err = nullptr);

} // namespace nvp
} // namespace wlcache

#endif // WLCACHE_NVP_RUN_JSON_HH
