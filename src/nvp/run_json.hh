/**
 * @file
 * Machine-readable run records: serialize a RunResult as JSON so
 * external tooling (plotters, regression dashboards) can consume
 * simulation results without scraping tables.
 */

#ifndef WLCACHE_NVP_RUN_JSON_HH
#define WLCACHE_NVP_RUN_JSON_HH

#include <ostream>

#include "nvp/system.hh"

namespace wlcache {
namespace nvp {

/**
 * Write @p r as a single JSON object (pretty-printed, stable key
 * order). The energy breakdown nests under "energy_j" by category.
 */
void writeRunResultJson(std::ostream &os, const RunResult &r);

} // namespace nvp
} // namespace wlcache

#endif // WLCACHE_NVP_RUN_JSON_HH
