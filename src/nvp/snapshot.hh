/**
 * @file
 * Deterministic whole-system snapshots. A SystemSnapshot captures the
 * complete mutable state of a SystemSim mid-run — core, caches,
 * capacitor, harvester phase, NVFF bank, RNGs, statistics, and a
 * copy-on-write NVM delta journal — such that resuming from it is
 * observationally identical to having executed the prefix cold: same
 * RunResult, same final-image digest, same post-resume timeline.
 *
 * Fault-injection campaigns use interval snapshots of the golden run
 * to fast-forward each injection point past its (identical) prefix;
 * the explorer's successive-halving extends triage rungs instead of
 * re-simulating them; the runner stores snapshots content-addressed
 * next to its result cache.
 */

#ifndef WLCACHE_NVP_SNAPSHOT_HH
#define WLCACHE_NVP_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace wlcache {
namespace nvp {

/** One captured system state, taken at an event-loop boundary. */
struct SystemSnapshot
{
    /**
     * Bump when the component serialization layout changes.
     * 2 = integer-attojoule energy state (meter/capacitor/harvester
     * sections became u64, harvester cursor moved to the cycle grid,
     * SYS2 carries the quantized backup level).
     * 4 = NVM row-buffer and log-journal counters in the RES section;
     * WL-Log designs append an NLOG journal section.
     */
    static constexpr std::uint32_t kFormatVersion = 4;

    /**
     * Resume-compatibility key: hash of every configuration and trace
     * property the captured state depends on (the resolved
     * SystemConfig with the forced-outage schedule and fault-injection
     * flags neutralized, plus the trace identity). restoreSnapshot()
     * refuses a snapshot whose key disagrees with the restoring
     * system's own.
     */
    std::string compat_key;

    /** Simulation cycle at capture (event-loop top). */
    Cycle cycle = 0;

    /** Trace events consumed at capture. */
    std::uint64_t event_index = 0;

    /** Sectioned component byte stream (sim/snapshot.hh framing). */
    std::vector<std::uint8_t> state;

    bool valid() const { return !state.empty(); }
};

/**
 * The interval snapshots of one golden run, ascending by cycle.
 * bestBefore() answers "which snapshot lets me fast-forward closest
 * to cycle c without overshooting it".
 */
struct SnapshotSet
{
    Cycle interval = 0;
    std::vector<SystemSnapshot> snaps;

    /**
     * Latest snapshot captured strictly before @p c (a snapshot AT
     * the target cycle is too late: the forced-outage comparison for
     * that cycle has already been passed at capture time).
     * @return null when no snapshot precedes @p c.
     */
    const SystemSnapshot *bestBefore(Cycle c) const;
};

/**
 * Encode a snapshot as a self-describing binary blob (magic +
 * format version + fields) for the on-disk snapshot store.
 */
std::vector<std::uint8_t> encodeSnapshot(const SystemSnapshot &s);

/**
 * Decode a blob produced by encodeSnapshot().
 * @return false (leaving @p out untouched) on any corruption: bad
 * magic, unknown version, or truncation. Never panics — a damaged
 * store entry is a cache miss, not a fatal error.
 */
bool decodeSnapshot(const std::vector<std::uint8_t> &blob,
                    SystemSnapshot &out);

} // namespace nvp
} // namespace wlcache

#endif // WLCACHE_NVP_SNAPSHOT_HH
