/**
 * @file
 * Multi-objective Pareto machinery over plain objective vectors
 * (minimization throughout). Deterministic by construction: the
 * frontier comes back sorted by objective vector with point ids
 * breaking exact ties, so two runs over the same results render
 * byte-identical reports.
 */

#ifndef WLCACHE_EXPLORE_PARETO_HH
#define WLCACHE_EXPLORE_PARETO_HH

#include <cstddef>
#include <string>
#include <vector>

namespace wlcache {
namespace explore {

/**
 * True when @p a dominates @p b: no worse in every objective and
 * strictly better in at least one (vectors must be the same length).
 */
bool dominates(const std::vector<double> &a,
               const std::vector<double> &b);

/**
 * Indices of the non-dominated points of @p objectives. Points with
 * exactly equal vectors are all kept (they are genuinely equivalent
 * designs). The result is ordered by objective vector
 * (lexicographically ascending), with @p ids as the final
 * tie-breaker — a deterministic order independent of input order.
 *
 * @param objectives One minimization vector per point.
 * @param ids One stable identifier per point (tie-breaking).
 */
std::vector<std::size_t>
paretoFrontier(const std::vector<std::vector<double>> &objectives,
               const std::vector<std::string> &ids);

/**
 * Non-dominated sorting rank per point: rank 0 is the frontier,
 * rank 1 the frontier once rank 0 is removed, and so on. The
 * successive-halving promoter keeps whole ranks while they fit.
 */
std::vector<std::size_t>
paretoRanks(const std::vector<std::vector<double>> &objectives);

} // namespace explore
} // namespace wlcache

#endif // WLCACHE_EXPLORE_PARETO_HH
