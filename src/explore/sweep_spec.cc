#include "explore/sweep_spec.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "mem/device/tech_profile.hh"
#include "sim/logging.hh"
#include "util/json.hh"
#include "util/strings.hh"
#include "workloads/workloads.hh"

namespace wlcache {
namespace explore {

std::string
ParamValue::display() const
{
    switch (kind) {
      case Kind::Number:
      case Kind::String:
        return text;
      case Kind::Bool:
        return b ? "true" : "false";
    }
    panic("unknown ParamValue kind");
}

ParamValue
numValue(double v)
{
    ParamValue out;
    out.kind = ParamValue::Kind::Number;
    out.num = v;
    char buf[32];
    if (v == std::floor(v) && std::fabs(v) < 1.0e15)
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%g", v);
    out.text = buf;
    return out;
}

ParamValue
strValue(std::string s)
{
    ParamValue out;
    out.kind = ParamValue::Kind::String;
    out.text = std::move(s);
    return out;
}

ParamValue
boolValue(bool b)
{
    ParamValue out;
    out.kind = ParamValue::Kind::Bool;
    out.b = b;
    return out;
}

const char *
searchModeName(SearchMode m)
{
    switch (m) {
      case SearchMode::Exhaustive: return "exhaustive";
      case SearchMode::Halving:    return "halving";
    }
    panic("unknown SearchMode %d", static_cast<int>(m));
}

namespace {

bool
parseDesignShort(const std::string &name, nvp::DesignKind &out)
{
    const std::string n = util::toLower(name);
    if (n == "nocache")
        out = nvp::DesignKind::NoCache;
    else if (n == "wt" || n == "vcache-wt")
        out = nvp::DesignKind::VCacheWT;
    else if (n == "nvcache" || n == "nvc")
        out = nvp::DesignKind::NVCacheWB;
    else if (n == "nvsram")
        out = nvp::DesignKind::NvsramWB;
    else if (n == "nvsram-full")
        out = nvp::DesignKind::NvsramFull;
    else if (n == "nvsram-practical" || n == "nvsram-prac")
        out = nvp::DesignKind::NvsramPractical;
    else if (n == "replay")
        out = nvp::DesignKind::Replay;
    else if (n == "wtbuf" || n == "wt-buffer")
        out = nvp::DesignKind::WtBuffered;
    else if (n == "wl")
        out = nvp::DesignKind::WL;
    else if (n == "wllog" || n == "wl-log")
        out = nvp::DesignKind::WLLog;
    else
        return false;
    return true;
}

/** Every parseDesignShort() primary name, for error messages. */
const char *kDesignShortNames =
    "nocache|wt|wtbuf|nvcache|nvsram|nvsram-full|nvsram-practical|"
    "replay|wl|wllog";

/** Every parseTraceShort() primary name, for error messages. */
const char *kTraceShortNames =
    "trace1|trace2|trace3|solar|thermal|none";

bool
parseTraceShort(const std::string &name, energy::TraceKind &out,
                bool &no_failure)
{
    const std::string n = util::toLower(name);
    no_failure = false;
    if (n == "none" || n == "infinite") {
        no_failure = true;
        out = energy::TraceKind::Constant;
    } else if (n == "trace1") {
        out = energy::TraceKind::RfHome;
    } else if (n == "trace2") {
        out = energy::TraceKind::RfOffice;
    } else if (n == "trace3") {
        out = energy::TraceKind::RfMementos;
    } else if (n == "solar") {
        out = energy::TraceKind::Solar;
    } else if (n == "thermal") {
        out = energy::TraceKind::Thermal;
    } else {
        return false;
    }
    return true;
}

bool
parseReplShort(const std::string &name, cache::ReplPolicy &out)
{
    const std::string n = util::toLower(name);
    if (n == "lru")
        out = cache::ReplPolicy::LRU;
    else if (n == "fifo")
        out = cache::ReplPolicy::FIFO;
    else
        return false;
    return true;
}

/**
 * One registered sweep parameter: where it applies (experiment spec
 * vs resolved SystemConfig), the value type it accepts, and extra
 * semantic validation beyond the type.
 */
struct ParamDef
{
    const char *name;
    const char *help;
    ParamValue::Kind type;
    /** Numbers must be integral (unsigned fields). */
    bool integral = false;
    /** Minimum accepted numeric value. */
    double min_num = 0.0;
    void (*apply_spec)(nvp::ExperimentSpec &, const ParamValue &)
        = nullptr;
    void (*apply_cfg)(nvp::SystemConfig &, const ParamValue &)
        = nullptr;
    /** Extra check; fills @p why on rejection. Optional. */
    bool (*check)(const ParamValue &, std::string &why) = nullptr;
};

const std::vector<ParamDef> &
paramDefs()
{
    using PV = ParamValue;
    using Spec = nvp::ExperimentSpec;
    using Cfg = nvp::SystemConfig;
    static const std::vector<ParamDef> defs = {
        { "design",
          "cache design: nocache|wt|wtbuf|nvcache|nvsram|nvsram-full|"
          "nvsram-practical|replay|wl|wllog",
          PV::Kind::String, false, 0.0,
          [](Spec &s, const PV &v) {
              const bool ok = parseDesignShort(v.text, s.design);
              wlc_assert(ok, "unvalidated design '%s'", v.text.c_str());
          },
          nullptr,
          [](const PV &v, std::string &why) {
              nvp::DesignKind k;
              if (parseDesignShort(v.text, k))
                  return true;
              why = "unknown design '" + v.text + "' (valid: " +
                    kDesignShortNames + ")";
              return false;
          } },
        { "workload", "benchmark kernel name (e.g. sha, qsort, FFT)",
          PV::Kind::String, false, 0.0,
          [](Spec &s, const PV &v) { s.workload = v.text; },
          nullptr,
          [](const PV &v, std::string &why) {
              if (workloads::findWorkload(v.text))
                  return true;
              why = "unknown workload '" + v.text + "'";
              return false;
          } },
        { "power",
          "ambient environment: trace1|trace2|trace3|solar|thermal|"
          "none (infinite power)",
          PV::Kind::String, false, 0.0,
          [](Spec &s, const PV &v) {
              const bool ok =
                  parseTraceShort(v.text, s.power, s.no_failure);
              wlc_assert(ok, "unvalidated power '%s'", v.text.c_str());
          },
          nullptr,
          [](const PV &v, std::string &why) {
              energy::TraceKind k;
              bool nf;
              if (parseTraceShort(v.text, k, nf))
                  return true;
              why = "unknown power trace '" + v.text + "' (valid: " +
                    kTraceShortNames + ")";
              return false;
          } },
        { "scale", "workload input scale factor (>= 1)",
          PV::Kind::Number, true, 1.0,
          [](Spec &s, const PV &v) {
              s.scale = static_cast<unsigned>(v.num);
          },
          nullptr, nullptr },
        { "workload_seed", "workload input seed",
          PV::Kind::Number, true, 0.0,
          [](Spec &s, const PV &v) {
              s.workload_seed = static_cast<std::uint64_t>(v.num);
          },
          nullptr, nullptr },
        { "power_seed", "power trace seed",
          PV::Kind::Number, true, 0.0,
          [](Spec &s, const PV &v) {
              s.power_seed = static_cast<std::uint64_t>(v.num);
          },
          nullptr, nullptr },
        { "power_node",
          "fleet node id: derives a node-local power trace when "
          "power_jitter > 0",
          PV::Kind::Number, true, 0.0,
          [](Spec &s, const PV &v) {
              s.power_node = static_cast<std::uint64_t>(v.num);
          },
          nullptr, nullptr },
        { "power_jitter",
          "per-node power gain spread (0 disables trace derivation)",
          PV::Kind::Number, false, 0.0,
          [](Spec &s, const PV &v) { s.power_jitter = v.num; },
          nullptr,
          [](const PV &v, std::string &why) {
              if (v.num <= 2.0)
                  return true;
              why = "power_jitter must be in [0, 2]";
              return false;
          } },
        { "dcache.size_bytes", "L1 D-cache size in bytes",
          PV::Kind::Number, true, 1.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.dcache.size_bytes = static_cast<std::size_t>(v.num);
          },
          nullptr },
        { "dcache.assoc", "L1 D-cache associativity",
          PV::Kind::Number, true, 1.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.dcache.assoc = static_cast<unsigned>(v.num);
          },
          nullptr },
        { "dcache.line_bytes", "L1 D-cache line size in bytes",
          PV::Kind::Number, true, 1.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.dcache.line_bytes = static_cast<unsigned>(v.num);
          },
          nullptr },
        { "dcache.repl", "L1 D-cache replacement policy: lru|fifo",
          PV::Kind::String, false, 0.0, nullptr,
          [](Cfg &c, const PV &v) {
              const bool ok = parseReplShort(v.text, c.dcache.repl);
              wlc_assert(ok, "unvalidated policy '%s'", v.text.c_str());
          },
          [](const PV &v, std::string &why) {
              cache::ReplPolicy p;
              if (parseReplShort(v.text, p))
                  return true;
              why = "unknown replacement policy '" + v.text +
                    "' (lru|fifo)";
              return false;
          } },
        { "icache.size_bytes", "L1 I-cache size in bytes",
          PV::Kind::Number, true, 1.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.icache.size_bytes = static_cast<std::size_t>(v.num);
          },
          nullptr },
        { "wl.maxline", "WL-Cache dirty-line bound (maxline)",
          PV::Kind::Number, true, 1.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.wl.maxline = static_cast<unsigned>(v.num);
          },
          nullptr },
        { "wl.waterline_gap",
          "WL-Cache waterline gap (waterline = maxline - gap)",
          PV::Kind::Number, true, 0.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.wl.waterline_gap = static_cast<unsigned>(v.num);
          },
          nullptr },
        { "wl.dq_size", "WL-Cache DirtyQueue slots",
          PV::Kind::Number, true, 1.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.wl.dq_size = static_cast<unsigned>(v.num);
          },
          nullptr },
        { "wl.dq_repl", "DirtyQueue replacement policy: lru|fifo",
          PV::Kind::String, false, 0.0, nullptr,
          [](Cfg &c, const PV &v) {
              const bool ok = parseReplShort(v.text, c.wl.dq_repl);
              wlc_assert(ok, "unvalidated policy '%s'", v.text.c_str());
          },
          [](const PV &v, std::string &why) {
              cache::ReplPolicy p;
              if (parseReplShort(v.text, p))
                  return true;
              why = "unknown replacement policy '" + v.text +
                    "' (lru|fifo)";
              return false;
          } },
        { "adaptive.enabled", "boot-time adaptive maxline management",
          PV::Kind::Bool, false, 0.0, nullptr,
          [](Cfg &c, const PV &v) { c.adaptive.enabled = v.b; },
          nullptr },
        { "adaptive.maxline_min", "adaptive maxline lower bound",
          PV::Kind::Number, true, 1.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.adaptive.maxline_min = static_cast<unsigned>(v.num);
          },
          nullptr },
        { "adaptive.maxline_max", "adaptive maxline upper bound",
          PV::Kind::Number, true, 1.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.adaptive.maxline_max = static_cast<unsigned>(v.num);
          },
          nullptr },
        { "wl_dynamic", "WL-Cache opportunistic dynamic adaptation",
          PV::Kind::Bool, false, 0.0, nullptr,
          [](Cfg &c, const PV &v) { c.wl_dynamic = v.b; },
          nullptr },
        { "platform.capacitance_f", "storage capacitor in farads",
          PV::Kind::Number, false, 1.0e-12, nullptr,
          [](Cfg &c, const PV &v) {
              c.platform.capacitance_f = v.num;
          },
          nullptr },
        { "platform.vbackup", "JIT-checkpoint voltage threshold",
          PV::Kind::Number, false, 0.0, nullptr,
          [](Cfg &c, const PV &v) { c.platform.vbackup = v.num; },
          nullptr },
        { "platform.von", "restore (boot) voltage", PV::Kind::Number,
          false, 0.0, nullptr,
          [](Cfg &c, const PV &v) { c.platform.von = v.num; },
          nullptr },
        { "max_outages", "give up after this many power failures",
          PV::Kind::Number, true, 1.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.max_outages = static_cast<std::uint64_t>(v.num);
          },
          nullptr },
        { "nvm.tech",
          "NVM technology profile: reram|stt-ram|fram|flash "
          "(sets timing, energy, endurance, verify retries)",
          PV::Kind::String, false, 0.0, nullptr,
          [](Cfg &c, const PV &v) {
              const mem::NvmTechProfile *p =
                  mem::findTechProfile(v.text);
              wlc_assert(p != nullptr, "unvalidated tech '%s'",
                         v.text.c_str());
              mem::applyTechProfile(c.nvm, *p);
          },
          [](const PV &v, std::string &why) {
              if (mem::findTechProfile(v.text))
                  return true;
              why = "unknown NVM technology '" + v.text +
                    "' (reram|stt-ram|fram|flash)";
              return false;
          } },
        { "nvm.model", "NVM timing model: legacy|banked",
          PV::Kind::String, false, 0.0, nullptr,
          [](Cfg &c, const PV &v) {
              const bool ok =
                  mem::nvmModelFromName(v.text, c.nvm.model);
              wlc_assert(ok, "unvalidated model '%s'", v.text.c_str());
          },
          [](const PV &v, std::string &why) {
              mem::NvmModel m;
              if (mem::nvmModelFromName(v.text, m))
                  return true;
              why = "unknown NVM model '" + v.text +
                    "' (legacy|banked)";
              return false;
          } },
        { "nvm.banks", "NVM bank count (beat-interleaved)",
          PV::Kind::Number, true, 1.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.nvm.banks = static_cast<unsigned>(v.num);
          },
          nullptr },
        { "nvm.queue_depth",
          "per-bank request queue depth (banked model)",
          PV::Kind::Number, true, 1.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.nvm.queue_depth = static_cast<unsigned>(v.num);
          },
          nullptr },
        { "nvm.row_bytes", "NVM row-buffer size in bytes",
          PV::Kind::Number, true, 1.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.nvm.row_bytes = static_cast<unsigned>(v.num);
          },
          nullptr },
        { "nvm.track_wear", "track per-line NVM write counts",
          PV::Kind::Bool, false, 0.0, nullptr,
          [](Cfg &c, const PV &v) { c.nvm.track_wear = v.b; },
          nullptr },
        { "nvm.endurance_writes",
          "per-line write-cycle budget (lifetime headroom baseline)",
          PV::Kind::Number, true, 1.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.nvm.endurance_writes =
                  static_cast<std::uint64_t>(v.num);
          },
          nullptr },
        { "nvm.wear_scheme",
          "wear-leveling address rotation: none|rotate",
          PV::Kind::String, false, 0.0, nullptr,
          [](Cfg &c, const PV &v) {
              const bool ok =
                  mem::nvmWearSchemeFromName(v.text,
                                             c.nvm.wear_scheme);
              wlc_assert(ok, "unvalidated scheme '%s'",
                         v.text.c_str());
          },
          [](const PV &v, std::string &why) {
              mem::NvmWearScheme s;
              if (mem::nvmWearSchemeFromName(v.text, s))
                  return true;
              why = "unknown wear scheme '" + v.text +
                    "' (none|rotate)";
              return false;
          } },
        { "nvm.rotate_period_writes",
          "writes between wear-rotation steps",
          PV::Kind::Number, true, 1.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.nvm.rotate_period_writes =
                  static_cast<std::uint64_t>(v.num);
          },
          nullptr },
        { "nvm.hybrid_lines",
          "STT-RAM hybrid fast-region slots (0 disables)",
          PV::Kind::Number, true, 0.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.nvm.hybrid_lines = static_cast<unsigned>(v.num);
          },
          nullptr },
        { "nvm.hybrid_promote_writes",
          "writes to a line before hybrid promotion",
          PV::Kind::Number, true, 1.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.nvm.hybrid_promote_writes =
                  static_cast<unsigned>(v.num);
          },
          nullptr },
        { "log.region_lines",
          "WL-Log journal region size in record slots",
          PV::Kind::Number, true, 8.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.log.region_lines = static_cast<unsigned>(v.num);
          },
          nullptr },
        { "log.segment_bytes",
          "WL-Log compaction-segment size in bytes",
          PV::Kind::Number, true, 1.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.log.segment_bytes = static_cast<unsigned>(v.num);
          },
          nullptr },
        { "log.compaction_watermark",
          "mapped-line fraction that triggers WL-Log compaction",
          PV::Kind::Number, false, 0.0, nullptr,
          [](Cfg &c, const PV &v) {
              c.log.compaction_watermark = v.num;
          },
          [](const PV &v, std::string &why) {
              if (v.num > 0.0 && v.num < 1.0)
                  return true;
              why = "compaction_watermark must be in (0, 1)";
              return false;
          } },
    };
    return defs;
}

const ParamDef *
findParam(const std::string &name)
{
    for (const auto &d : paramDefs())
        if (name == d.name)
            return &d;
    return nullptr;
}

const char *
kindName(ParamValue::Kind k)
{
    switch (k) {
      case ParamValue::Kind::Number: return "a number";
      case ParamValue::Kind::String: return "a string";
      case ParamValue::Kind::Bool:   return "a boolean";
    }
    return "?";
}

/**
 * Validate @p v against @p def. @p path names the JSON location for
 * the diagnostic.
 */
bool
checkValue(const ParamDef &def, const ParamValue &v,
           const std::string &path, std::string *err)
{
    auto fail = [&](const std::string &why) {
        if (err)
            *err = path + ": " + why;
        return false;
    };
    if (v.kind != def.type)
        return fail(std::string("parameter '") + def.name + "' wants " +
                    kindName(def.type) + ", got " + kindName(v.kind));
    if (v.kind == ParamValue::Kind::Number) {
        if (def.integral && v.num != std::floor(v.num))
            return fail(std::string("parameter '") + def.name +
                        "' wants an integer, got " + v.text);
        if (v.num < def.min_num)
            return fail(std::string("parameter '") + def.name +
                        "' wants a value >= " +
                        numValue(def.min_num).text + ", got " + v.text);
    }
    std::string why;
    if (def.check && !def.check(v, why))
        return fail(why);
    return true;
}

bool
scalarFromJson(const util::JsonValue &jv, ParamValue &out,
               const std::string &path, std::string *err)
{
    switch (jv.kind()) {
      case util::JsonValue::Kind::Number:
        out.kind = ParamValue::Kind::Number;
        out.num = jv.asDouble();
        out.text = jv.numberToken();
        return true;
      case util::JsonValue::Kind::String:
        out.kind = ParamValue::Kind::String;
        out.text = jv.asString();
        return true;
      case util::JsonValue::Kind::Bool:
        out.kind = ParamValue::Kind::Bool;
        out.b = jv.asBool();
        return true;
      default:
        if (err)
            *err = path + ": expected a scalar "
                          "(number, string, or boolean)";
        return false;
    }
}

/** Parse one {param: value, ...} object into ordered bindings. */
bool
parseBindings(const util::JsonValue &obj,
              std::vector<ParamBinding> &out, const std::string &path,
              std::string *err)
{
    if (!obj.isObject()) {
        if (err)
            *err = path + ": expected an object of parameter values";
        return false;
    }
    for (const auto &[key, jv] : obj.members()) {
        const std::string vpath = path + "." + key;
        const ParamDef *def = findParam(key);
        if (!def) {
            if (err)
                *err = vpath + ": unknown parameter '" + key + "'";
            return false;
        }
        for (const auto &[prev, pv] : out) {
            (void)pv;
            if (prev == key) {
                if (err)
                    *err = vpath + ": duplicate parameter '" + key +
                           "'";
                return false;
            }
        }
        ParamValue v;
        if (!scalarFromJson(jv, v, vpath, err))
            return false;
        if (!checkValue(*def, v, vpath, err))
            return false;
        out.emplace_back(key, v);
    }
    return true;
}

bool
hasBinding(const std::vector<ParamBinding> &bindings,
           const std::string &name)
{
    for (const auto &[k, v] : bindings) {
        (void)v;
        if (k == name)
            return true;
    }
    return false;
}

} // anonymous namespace

bool
parseSweepSpec(const std::string &json_text, SweepSpec &out,
               std::string *err)
{
    util::JsonValue root;
    std::string jerr;
    if (!util::parseJson(json_text, root, &jerr)) {
        if (err)
            *err = "$: not valid JSON: " + jerr;
        return false;
    }
    if (!root.isObject()) {
        if (err)
            *err = "$: sweep spec must be a JSON object";
        return false;
    }

    SweepSpec spec;
    for (const auto &[key, jv] : root.members()) {
        const std::string path = "$." + key;
        if (key == "name") {
            if (!jv.isString()) {
                if (err)
                    *err = path + ": expected a string";
                return false;
            }
            spec.name = jv.asString();
        } else if (key == "base") {
            if (!parseBindings(jv, spec.base, path, err))
                return false;
        } else if (key == "axes") {
            if (!jv.isArray()) {
                if (err)
                    *err = path + ": expected an array of axes";
                return false;
            }
            for (std::size_t i = 0; i < jv.items().size(); ++i) {
                const auto &aj = jv.items()[i];
                const std::string apath =
                    path + "[" + std::to_string(i) + "]";
                if (!aj.isObject()) {
                    if (err)
                        *err = apath + ": expected an axis object "
                                       "{param, values}";
                    return false;
                }
                Axis axis;
                const ParamDef *def = nullptr;
                for (const auto &[akey, av] : aj.members()) {
                    if (akey == "param") {
                        if (!av.isString()) {
                            if (err)
                                *err = apath + ".param: expected a "
                                               "string";
                            return false;
                        }
                        axis.param = av.asString();
                        def = findParam(axis.param);
                        if (!def) {
                            if (err)
                                *err = apath +
                                       ".param: unknown parameter '" +
                                       axis.param + "'";
                            return false;
                        }
                    } else if (akey == "values") {
                        if (!av.isArray() || av.items().empty()) {
                            if (err)
                                *err = apath + ".values: expected a "
                                               "non-empty array";
                            return false;
                        }
                        if (axis.param.empty()) {
                            if (err)
                                *err = apath + ": 'param' must come "
                                               "before 'values'";
                            return false;
                        }
                        for (std::size_t k = 0; k < av.items().size();
                             ++k) {
                            const std::string vpath =
                                apath + ".values[" +
                                std::to_string(k) + "]";
                            ParamValue v;
                            if (!scalarFromJson(av.items()[k], v,
                                                vpath, err))
                                return false;
                            if (!checkValue(*def, v, vpath, err))
                                return false;
                            axis.values.push_back(std::move(v));
                        }
                    } else {
                        if (err)
                            *err = apath + "." + akey +
                                   ": unknown axis key";
                        return false;
                    }
                }
                if (axis.param.empty() || axis.values.empty()) {
                    if (err)
                        *err = apath +
                               ": axis needs 'param' and 'values'";
                    return false;
                }
                if (hasBinding(spec.base, axis.param)) {
                    if (err)
                        *err = apath + ".param: '" + axis.param +
                               "' already bound in $.base";
                    return false;
                }
                for (const auto &other : spec.axes) {
                    if (other.param == axis.param) {
                        if (err)
                            *err = apath + ".param: duplicate axis "
                                           "over '" +
                                   axis.param + "'";
                        return false;
                    }
                }
                spec.axes.push_back(std::move(axis));
            }
        } else if (key == "points") {
            if (!jv.isArray()) {
                if (err)
                    *err = path + ": expected an array of point "
                                  "objects";
                return false;
            }
            for (std::size_t i = 0; i < jv.items().size(); ++i) {
                std::vector<ParamBinding> bindings;
                if (!parseBindings(jv.items()[i], bindings,
                                   path + "[" + std::to_string(i) +
                                       "]",
                                   err))
                    return false;
                spec.points.push_back(std::move(bindings));
            }
        } else if (key == "derived") {
            if (!jv.isArray()) {
                if (err)
                    *err = path + ": expected an array of derived "
                                  "parameters";
                return false;
            }
            for (std::size_t i = 0; i < jv.items().size(); ++i) {
                const auto &dj = jv.items()[i];
                const std::string dpath =
                    path + "[" + std::to_string(i) + "]";
                if (!dj.isObject()) {
                    if (err)
                        *err = dpath + ": expected an object "
                                       "{param, source, mul?, add?}";
                    return false;
                }
                DerivedParam d;
                for (const auto &[dkey, dv] : dj.members()) {
                    if (dkey == "param" || dkey == "source") {
                        if (!dv.isString()) {
                            if (err)
                                *err = dpath + "." + dkey +
                                       ": expected a string";
                            return false;
                        }
                        if (!findParam(dv.asString())) {
                            if (err)
                                *err = dpath + "." + dkey +
                                       ": unknown parameter '" +
                                       dv.asString() + "'";
                            return false;
                        }
                        (dkey == "param" ? d.param : d.source) =
                            dv.asString();
                    } else if (dkey == "mul" || dkey == "add") {
                        if (!dv.isNumber()) {
                            if (err)
                                *err = dpath + "." + dkey +
                                       ": expected a number";
                            return false;
                        }
                        (dkey == "mul" ? d.mul : d.add) =
                            dv.asDouble();
                    } else {
                        if (err)
                            *err = dpath + "." + dkey +
                                   ": unknown derived key";
                        return false;
                    }
                }
                if (d.param.empty() || d.source.empty()) {
                    if (err)
                        *err = dpath + ": derived parameter needs "
                                       "'param' and 'source'";
                    return false;
                }
                spec.derived.push_back(std::move(d));
            }
        } else if (key == "objectives") {
            if (!jv.isArray()) {
                if (err)
                    *err = path + ": expected an array of objective "
                                  "names";
                return false;
            }
            for (std::size_t i = 0; i < jv.items().size(); ++i) {
                if (!jv.items()[i].isString()) {
                    if (err)
                        *err = path + "[" + std::to_string(i) +
                               "]: expected a string";
                    return false;
                }
                spec.objectives.push_back(jv.items()[i].asString());
            }
        } else if (key == "search") {
            if (!jv.isObject()) {
                if (err)
                    *err = path + ": expected an object "
                                  "{mode, eta?, min_scale?, "
                                  "snapshot_extend?}";
                return false;
            }
            for (const auto &[skey, sv] : jv.members()) {
                if (skey == "mode") {
                    if (!sv.isString() ||
                        (sv.asString() != "exhaustive" &&
                         sv.asString() != "halving")) {
                        if (err)
                            *err = path + ".mode: expected "
                                          "\"exhaustive\" or "
                                          "\"halving\"";
                        return false;
                    }
                    spec.mode = sv.asString() == "halving"
                                    ? SearchMode::Halving
                                    : SearchMode::Exhaustive;
                } else if (skey == "eta" || skey == "min_scale") {
                    const double lo = skey == "eta" ? 2.0 : 1.0;
                    if (!sv.isNumber() ||
                        sv.asDouble() != std::floor(sv.asDouble()) ||
                        sv.asDouble() < lo) {
                        if (err)
                            *err = path + "." + skey +
                                   ": expected an integer >= " +
                                   numValue(lo).text;
                        return false;
                    }
                    (skey == "eta" ? spec.eta : spec.min_scale) =
                        static_cast<unsigned>(sv.asDouble());
                } else if (skey == "snapshot_extend") {
                    if (!sv.isBool()) {
                        if (err)
                            *err = path + ".snapshot_extend: "
                                          "expected a boolean";
                        return false;
                    }
                    spec.snapshot_extend = sv.asBool();
                } else {
                    if (err)
                        *err = path + "." + skey +
                               ": unknown search key";
                    return false;
                }
            }
        } else {
            if (err)
                *err = path + ": unknown sweep-spec key";
            return false;
        }
    }

    // Cross-checks the per-key loops above cannot do.
    for (std::size_t i = 0; i < spec.derived.size(); ++i) {
        const auto &d = spec.derived[i];
        const std::string dpath = "$.derived[" + std::to_string(i) +
                                  "]";
        const ParamDef *target = findParam(d.param);
        if (target->type != ParamValue::Kind::Number &&
            (d.mul != 1.0 || d.add != 0.0)) {
            if (err)
                *err = dpath + ": mul/add need a numeric target, "
                               "but '" +
                       d.param + "' is not a number";
            return false;
        }
        if (hasBinding(spec.base, d.param)) {
            if (err)
                *err = dpath + ".param: '" + d.param +
                       "' already bound in $.base";
            return false;
        }
        for (const auto &axis : spec.axes) {
            if (axis.param == d.param) {
                if (err)
                    *err = dpath + ".param: '" + d.param +
                           "' already swept by an axis";
                return false;
            }
        }
        for (std::size_t j = 0; j < i; ++j) {
            if (spec.derived[j].param == d.param) {
                if (err)
                    *err = dpath + ".param: duplicate derived "
                                   "parameter '" +
                           d.param + "'";
                return false;
            }
        }
        bool source_in_axes = false;
        for (const auto &axis : spec.axes)
            source_in_axes |= axis.param == d.source;
        if (!source_in_axes && !hasBinding(spec.base, d.source)) {
            if (err)
                *err = dpath + ".source: '" + d.source +
                       "' is neither a base parameter nor an axis";
            return false;
        }
        for (std::size_t p = 0; p < spec.points.size(); ++p) {
            if (hasBinding(spec.points[p], d.param)) {
                if (err)
                    *err = "$.points[" + std::to_string(p) + "]." +
                           d.param + ": derived parameter cannot be "
                                     "bound explicitly";
                return false;
            }
            if (!hasBinding(spec.base, d.source) &&
                !hasBinding(spec.points[p], d.source)) {
                if (err)
                    *err = "$.points[" + std::to_string(p) +
                           "]: derived source '" + d.source +
                           "' is not bound for this point";
                return false;
            }
        }
    }

    out = std::move(spec);
    return true;
}

namespace {

const ParamValue *
findValue(const std::vector<ParamBinding> &bindings,
          const std::string &name)
{
    // Latest binding wins (explicit points may override base).
    for (auto it = bindings.rbegin(); it != bindings.rend(); ++it)
        if (it->first == name)
            return &it->second;
    return nullptr;
}

/** Finish one point: derived params, id, and the runnable spec. */
bool
finishPoint(const SweepSpec &spec,
            std::vector<ParamBinding> bindings,
            std::size_t id_begin, DesignPoint &out, std::string *err)
{
    for (const auto &d : spec.derived) {
        const ParamValue *src = findValue(bindings, d.source);
        if (!src) {
            if (err)
                *err = "derived parameter '" + d.param +
                       "': source '" + d.source + "' is unbound";
            return false;
        }
        ParamValue v = src->kind == ParamValue::Kind::Number
                           ? numValue(src->num * d.mul + d.add)
                           : *src;
        std::string why;
        const ParamDef *def = findParam(d.param);
        if (!checkValue(*def, v, "derived '" + d.param + "'", err))
            return false;
        (void)why;
        bindings.emplace_back(d.param, std::move(v));
    }

    // Id from the point-specific bindings (base is shared).
    std::string id;
    for (std::size_t i = id_begin; i < bindings.size(); ++i) {
        if (!id.empty())
            id += ';';
        id += bindings[i].first + "=" + bindings[i].second.display();
    }
    if (id.empty())
        id = "base";

    // Build the experiment: spec-level params applied directly,
    // config-level params through the tweak hook (resolved after the
    // design preset, so the content-addressed key sees their effect).
    nvp::ExperimentSpec es;
    std::vector<ParamBinding> cfg_bindings;
    for (const auto &[name, value] : bindings) {
        const ParamDef *def = findParam(name);
        wlc_assert(def != nullptr, "unvalidated parameter '%s'",
                   name.c_str());
        if (def->apply_spec)
            def->apply_spec(es, value);
        else
            cfg_bindings.emplace_back(name, value);
    }
    if (!cfg_bindings.empty()) {
        es.tweak = [cfg_bindings](nvp::SystemConfig &cfg) {
            for (const auto &[name, value] : cfg_bindings)
                findParam(name)->apply_cfg(cfg, value);
        };
    }

    out.id = std::move(id);
    out.params = std::move(bindings);
    out.spec = std::move(es);
    return true;
}

} // anonymous namespace

bool
expandPoints(const SweepSpec &spec, std::vector<DesignPoint> &out,
             std::string *err)
{
    std::vector<DesignPoint> points;

    // Cartesian product, first axis slowest.
    std::size_t total = spec.axes.empty() && spec.points.empty() ? 1
                                                                 : 0;
    if (!spec.axes.empty()) {
        total = 1;
        for (const auto &axis : spec.axes)
            total *= axis.values.size();
    }
    std::vector<std::size_t> idx(spec.axes.size(), 0);
    for (std::size_t n = 0; n < total; ++n) {
        std::vector<ParamBinding> bindings = spec.base;
        const std::size_t id_begin = bindings.size();
        for (std::size_t a = 0; a < spec.axes.size(); ++a)
            bindings.emplace_back(spec.axes[a].param,
                                  spec.axes[a].values[idx[a]]);
        DesignPoint p;
        if (!finishPoint(spec, std::move(bindings), id_begin, p, err))
            return false;
        points.push_back(std::move(p));
        for (std::size_t a = spec.axes.size(); a-- > 0;) {
            if (++idx[a] < spec.axes[a].values.size())
                break;
            idx[a] = 0;
        }
    }

    // Explicit points, appended after the product.
    for (const auto &extra : spec.points) {
        std::vector<ParamBinding> bindings = spec.base;
        const std::size_t id_begin = bindings.size();
        for (const auto &b : extra)
            bindings.push_back(b);
        DesignPoint p;
        if (!finishPoint(spec, std::move(bindings), id_begin, p, err))
            return false;
        points.push_back(std::move(p));
    }

    out = std::move(points);
    return true;
}

std::vector<std::pair<std::string, std::string>>
listParams()
{
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto &d : paramDefs())
        out.emplace_back(d.name, d.help);
    return out;
}

bool
isKnownParam(const std::string &name)
{
    return findParam(name) != nullptr;
}

} // namespace explore
} // namespace wlcache
