#include "explore/explorer.hh"

#include <algorithm>
#include <memory>
#include <numeric>

#include "explore/objectives.hh"
#include "explore/pareto.hh"
#include "nvp/snapshot.hh"
#include "runner/runner.hh"
#include "runner/spec_key.hh"
#include "sim/logging.hh"
#include "workloads/workloads.hh"

namespace wlcache {
namespace explore {

namespace {

/** Evaluate @p points at @p scale through the runner. Each point may
    carry a resume snapshot (snapshot_extend's final rung) — a pure
    accelerator that never changes results or cache keys. */
std::vector<nvp::RunResult>
runPoints(const ExploreConfig &cfg,
          const std::vector<const DesignPoint *> &points,
          unsigned scale, ExploreReport &report, bool full_scale,
          const std::vector<std::shared_ptr<nvp::SystemSnapshot>>
              *resumes = nullptr)
{
    runner::JobSet set;
    for (std::size_t k = 0; k < points.size(); ++k) {
        const DesignPoint *p = points[k];
        nvp::ExperimentSpec spec = p->spec;
        spec.scale = scale;
        const std::size_t j =
            set.add(std::move(spec), p->id + "@x" +
                                         std::to_string(scale));
        if (resumes && (*resumes)[k] && (*resumes)[k]->valid())
            set.setResume(j, (*resumes)[k]);
    }
    runner::RunnerConfig rc;
    rc.jobs = cfg.jobs;
    rc.cache_dir = cfg.cache_dir;
    rc.snapshot_dir = cfg.snapshot_dir;
    rc.progress = cfg.progress;
    rc.progress_out = cfg.progress_out;
    rc.executor = cfg.executor;
    runner::Runner runner(rc);
    auto results = runner.runAll(set);
    const auto &stats = runner.stats();
    report.cache_hits += stats.cache_hits;
    report.executed += stats.executed;
    (full_scale ? report.full_runs : report.triage_runs) +=
        stats.total;
    return results;
}

/**
 * One snapshot_extend triage rung: every entrant runs the
 * *full-scale* trace truncated at an event budget proportional to
 * @p scale, resuming from its previous rung's cut snapshot and
 * cutting a new one at the budget. @p cuts is parallel to
 * @p entrants: consumed as resume points, overwritten with the new
 * cuts. @p max_budget reports the rung's largest budget.
 */
std::vector<nvp::RunResult>
runExtendRung(const ExploreConfig &cfg,
              const std::vector<const DesignPoint *> &entrants,
              unsigned scale, unsigned full_scale,
              std::vector<std::shared_ptr<nvp::SystemSnapshot>> &cuts,
              std::uint64_t &max_budget, ExploreReport &report)
{
    runner::JobSet set;
    std::vector<std::shared_ptr<nvp::SystemSnapshot>> next(
        entrants.size());
    max_budget = 0;
    for (std::size_t k = 0; k < entrants.size(); ++k) {
        nvp::ExperimentSpec spec = entrants[k]->spec;
        const std::uint64_t total =
            workloads::getTrace(spec.workload, spec.scale,
                                spec.workload_seed)
                .events.size();
        std::uint64_t budget = total * scale / full_scale;
        if (budget == 0)
            budget = 1;
        max_budget = std::max(max_budget, budget);
        next[k] = std::make_shared<nvp::SystemSnapshot>();
        const std::size_t j =
            set.add(std::move(spec), entrants[k]->id + "@e" +
                                         std::to_string(budget));
        set.setBudget(j, budget, cuts[k], next[k]);
    }
    runner::RunnerConfig rc;
    rc.jobs = cfg.jobs;
    rc.cache_dir = cfg.cache_dir;
    rc.snapshot_dir = cfg.snapshot_dir;
    rc.progress = cfg.progress;
    rc.progress_out = cfg.progress_out;
    rc.executor = cfg.executor;
    runner::Runner runner(rc);
    auto results = runner.runAll(set);
    const auto &stats = runner.stats();
    report.cache_hits += stats.cache_hits;
    report.executed += stats.executed;
    report.triage_runs += stats.total;
    cuts = std::move(next);
    return results;
}

/** Objective vectors for @p points at the scale they just ran. */
std::vector<std::vector<double>>
evalAll(const std::vector<std::string> &names,
        const std::vector<const DesignPoint *> &points,
        const std::vector<nvp::RunResult> &results, unsigned scale)
{
    std::vector<std::vector<double>> out;
    out.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        nvp::ExperimentSpec spec = points[i]->spec;
        spec.scale = scale;
        out.push_back(evalObjectives(names, results[i],
                                     nvp::resolveConfig(spec), spec));
    }
    return out;
}

} // anonymous namespace

bool
runExploration(const ExploreConfig &cfg, ExploreReport &out,
               std::string *err)
{
    auto fail = [&](const std::string &what) {
        if (err)
            *err = what;
        return false;
    };

    // Resolve objectives: config overrides sweep, default otherwise.
    std::vector<std::string> objectives =
        !cfg.objectives.empty() ? cfg.objectives
        : !cfg.sweep.objectives.empty()
            ? cfg.sweep.objectives
            : std::vector<std::string>{ "time", "nvm_writes" };
    for (const auto &name : objectives)
        if (!findObjective(name))
            return fail("unknown objective '" + name + "' (valid: " +
                        objectiveNameList() + ")");

    std::vector<DesignPoint> points;
    if (!expandPoints(cfg.sweep, points, err))
        return false;
    if (points.empty())
        return fail("sweep expands to zero points");

    // The full scale every point shares. Halving owns the scale
    // dimension, so a swept/per-point scale is rejected up front.
    const unsigned full_scale = points.front().spec.scale;
    if (cfg.sweep.mode == SearchMode::Halving) {
        for (const auto &p : points)
            if (p.spec.scale != full_scale)
                return fail("halving cannot sweep 'scale' (it owns "
                            "the scale dimension; bind scale in "
                            "$.base)");
    }

    ExploreReport report;
    report.name = cfg.sweep.name;
    report.mode = cfg.sweep.mode;
    report.objective_names = objectives;
    report.expanded_points = points.size();
    report.full_scale = full_scale;

    // Survivors, as indices into `points`, kept in expansion order.
    std::vector<std::size_t> alive(points.size());
    std::iota(alive.begin(), alive.end(), 0);

    std::vector<nvp::RunResult> final_results;
    std::vector<std::vector<double>> final_objs;

    // snapshot_extend: per-point cut snapshots, carried rung to rung
    // (indexed like `points`; null until the point's first rung).
    const bool extend = cfg.sweep.mode == SearchMode::Halving &&
                        cfg.sweep.snapshot_extend;
    std::vector<std::shared_ptr<nvp::SystemSnapshot>> cuts(
        extend ? points.size() : 0);

    if (cfg.sweep.mode == SearchMode::Halving &&
        cfg.sweep.min_scale < full_scale && points.size() > 1) {
        // Triage rungs: min_scale, x eta, ... strictly below full.
        for (unsigned scale = cfg.sweep.min_scale;
             scale < full_scale && alive.size() > 1;
             scale *= cfg.sweep.eta) {
            std::vector<const DesignPoint *> entrants;
            for (const std::size_t i : alive)
                entrants.push_back(&points[i]);
            std::vector<nvp::RunResult> results;
            std::vector<std::vector<double>> objs;
            std::uint64_t budget = 0;
            if (extend) {
                std::vector<std::shared_ptr<nvp::SystemSnapshot>>
                    rung_cuts;
                rung_cuts.reserve(alive.size());
                for (const std::size_t i : alive)
                    rung_cuts.push_back(cuts[i]);
                results = runExtendRung(cfg, entrants, scale,
                                        full_scale, rung_cuts,
                                        budget, report);
                for (std::size_t k = 0; k < alive.size(); ++k)
                    cuts[alive[k]] = rung_cuts[k];
                // Budgeted rungs run the full-scale trace, so the
                // objectives resolve at full scale.
                objs = evalAll(objectives, entrants, results,
                               full_scale);
            } else {
                results =
                    runPoints(cfg, entrants, scale, report, false);
                objs = evalAll(objectives, entrants, results, scale);
            }

            // Promote ceil(n/eta) by non-dominated rank, then
            // objective vector, then id — whole Pareto fronts
            // survive while they fit the quota.
            const auto ranks = paretoRanks(objs);
            std::vector<std::size_t> order(alive.size());
            std::iota(order.begin(), order.end(), 0);
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          if (ranks[a] != ranks[b])
                              return ranks[a] < ranks[b];
                          if (objs[a] != objs[b])
                              return objs[a] < objs[b];
                          return entrants[a]->id < entrants[b]->id;
                      });
            const std::size_t keep =
                (alive.size() + cfg.sweep.eta - 1) / cfg.sweep.eta;
            std::vector<std::size_t> promoted;
            for (std::size_t k = 0; k < keep; ++k)
                promoted.push_back(alive[order[k]]);
            std::sort(promoted.begin(), promoted.end());

            report.rungs.push_back(
                { scale, alive.size(), promoted.size(), budget });
            alive = std::move(promoted);
        }
    }

    // Final rung: survivors at full scale. Under snapshot_extend the
    // survivors fast-forward from their last cut; the cache key stays
    // the plain full-run key, so the result is interchangeable with a
    // cold full-scale run.
    {
        std::vector<const DesignPoint *> entrants;
        for (const std::size_t i : alive)
            entrants.push_back(&points[i]);
        std::vector<std::shared_ptr<nvp::SystemSnapshot>> resumes;
        if (extend) {
            resumes.reserve(alive.size());
            for (const std::size_t i : alive)
                resumes.push_back(cuts[i]);
        }
        final_results =
            runPoints(cfg, entrants, full_scale, report, true,
                      extend ? &resumes : nullptr);
        final_objs =
            evalAll(objectives, entrants, final_results, full_scale);
        if (cfg.sweep.mode == SearchMode::Halving)
            report.rungs.push_back(
                { full_scale, alive.size(), alive.size() });
    }

    std::vector<std::string> ids;
    for (std::size_t k = 0; k < alive.size(); ++k) {
        PointOutcome o;
        o.point = points[alive[k]];
        o.point.spec.scale = full_scale;
        o.result = final_results[k];
        o.objectives = final_objs[k];
        o.run_key = runner::specKey(o.point.spec);
        ids.push_back(o.point.id);
        report.outcomes.push_back(std::move(o));
    }

    report.frontier = paretoFrontier(final_objs, ids);
    for (const std::size_t i : report.frontier)
        report.outcomes[i].on_frontier = true;

    out = std::move(report);
    return true;
}

} // namespace explore
} // namespace wlcache
