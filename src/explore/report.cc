#include "explore/report.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "sim/csv.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace wlcache {
namespace explore {

namespace {

/** Deterministic short-form double ("%.9g"). */
std::string
fmtObjective(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** Union of bound parameter names, first-appearance order. */
std::vector<std::string>
paramColumns(const ExploreReport &report)
{
    std::vector<std::string> cols;
    for (const auto &o : report.outcomes)
        for (const auto &[name, value] : o.point.params) {
            (void)value;
            if (std::find(cols.begin(), cols.end(), name) ==
                cols.end())
                cols.push_back(name);
        }
    return cols;
}

/** Last binding of @p name, or null. */
const ParamValue *
findBinding(const DesignPoint &p, const std::string &name)
{
    for (auto it = p.params.rbegin(); it != p.params.rend(); ++it)
        if (it->first == name)
            return &it->second;
    return nullptr;
}

} // anonymous namespace

void
writeCsv(std::ostream &os, const ExploreReport &report)
{
    CsvWriter csv(os);
    const auto cols = paramColumns(report);

    std::vector<std::string> header{ "id" };
    for (const auto &c : cols)
        header.push_back(c);
    for (const auto &name : report.objective_names)
        header.push_back(name);
    header.push_back("frontier");
    header.push_back("completed");
    header.push_back("run_key");
    csv.row(header);

    for (const auto &o : report.outcomes) {
        std::vector<std::string> row{ o.point.id };
        for (const auto &c : cols) {
            const ParamValue *v = findBinding(o.point, c);
            row.push_back(v ? v->display() : "-");
        }
        for (const double obj : o.objectives)
            row.push_back(fmtObjective(obj));
        row.push_back(o.on_frontier ? "1" : "0");
        row.push_back(o.result.completed ? "1" : "0");
        row.push_back(o.run_key);
        csv.row(row);
    }
}

void
writeFrontierMarkdown(std::ostream &os, const ExploreReport &report,
                      const std::string &cache_dir)
{
    os << "# Exploration frontier: " << report.name << "\n\n";
    os << "- search: " << searchModeName(report.mode) << ", "
       << report.expanded_points << " points expanded, "
       << report.outcomes.size()
       << " evaluated at full scale (x" << report.full_scale
       << ")\n";
    if (!report.rungs.empty()) {
        os << "- rungs:";
        for (const auto &r : report.rungs)
            os << " x" << r.scale << ":" << r.entrants << "->"
               << r.promoted;
        os << "\n";
    }
    os << "- objectives (all minimized):";
    for (const auto &name : report.objective_names)
        os << " " << name;
    os << "\n- frontier: " << report.frontier.size() << " point"
       << (report.frontier.size() == 1 ? "" : "s") << "\n\n";

    os << "| # | point |";
    for (const auto &name : report.objective_names)
        os << " " << name << " |";
    os << " run record |\n";
    os << "|---|-------|";
    for (std::size_t i = 0; i < report.objective_names.size(); ++i)
        os << "---|";
    os << "---|\n";

    std::size_t n = 0;
    for (const std::size_t idx : report.frontier) {
        const PointOutcome &o = report.outcomes[idx];
        os << "| " << ++n << " | `" << o.point.id << "` |";
        for (const double obj : o.objectives)
            os << " " << fmtObjective(obj) << " |";
        os << " `";
        if (!cache_dir.empty())
            os << cache_dir << "/";
        os << o.run_key << (cache_dir.empty() ? "" : ".json")
           << "` |\n";
    }

    os << "\nEach run record is the content-addressed run JSON in "
          "the result cache; it carries the point's full structured "
          "stats tree and per-power-interval rollups. Re-running the "
          "same spec with the same `--cache-dir` serves every point "
          "from the cache, and `wlcache_sim --timeline` on a "
          "frontier point's parameters captures its event "
          "timeline.\n";
}

void
writeSummaryText(std::ostream &os, const ExploreReport &report)
{
    os << "=== " << report.name << ": " << report.expanded_points
       << " points, " << report.outcomes.size()
       << " at full scale, " << report.frontier.size()
       << " on the frontier (" << searchModeName(report.mode)
       << ") ===\n";
    util::TextTable t;
    std::vector<std::string> header{ "#", "point" };
    for (const auto &name : report.objective_names)
        header.push_back(name);
    t.header(header);
    std::size_t n = 0;
    for (const std::size_t idx : report.frontier) {
        const PointOutcome &o = report.outcomes[idx];
        std::vector<std::string> row{ std::to_string(++n),
                                      o.point.id };
        for (const double v : o.objectives) {
            char buf[40];
            std::snprintf(buf, sizeof(buf), "%.9g", v);
            row.push_back(buf);
        }
        t.row(row);
    }
    t.print(os);
    if (!report.rungs.empty()) {
        os << "rungs:";
        for (const auto &r : report.rungs)
            os << " x" << r.scale << ":" << r.entrants << "->"
               << r.promoted;
        os << "\n";
    }
    os << "runs: " << report.full_runs << " full-scale + "
       << report.triage_runs << " triage, " << report.cache_hits
       << " cached, " << report.executed << " executed\n";
}

} // namespace explore
} // namespace wlcache
