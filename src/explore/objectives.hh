/**
 * @file
 * Objective registry for design-space exploration: named scalar
 * figures of merit extracted from a finished run (and its resolved
 * configuration), each with an optimization direction. The Pareto
 * machinery minimizes internally; maximizing objectives are negated
 * at extraction so callers never branch on direction.
 */

#ifndef WLCACHE_EXPLORE_OBJECTIVES_HH
#define WLCACHE_EXPLORE_OBJECTIVES_HH

#include <string>
#include <vector>

#include "nvp/experiment.hh"
#include "nvp/system.hh"

namespace wlcache {
namespace explore {

/** One named figure of merit. */
struct ObjectiveDef
{
    const char *name;
    const char *help;
    /**
     * Extract the raw value. @p spec identifies the workload (for
     * progress extrapolation of runs that did not finish); @p cfg is
     * the resolved configuration the run executed with.
     */
    double (*eval)(const nvp::RunResult &r,
                   const nvp::SystemConfig &cfg,
                   const nvp::ExperimentSpec &spec);
};

/** Every registered objective. */
const std::vector<ObjectiveDef> &allObjectives();

/** Lookup by name; null when unknown. */
const ObjectiveDef *findObjective(const std::string &name);

/**
 * Comma-separated list of every registered objective name, for
 * "unknown objective" error messages.
 */
std::string objectiveNameList();

/**
 * Evaluate @p names for one run, in order. Every registered
 * objective minimizes, so smaller is better across the board.
 * Asserts each name is registered (validate with findObjective
 * first at the API boundary).
 */
std::vector<double> evalObjectives(
    const std::vector<std::string> &names, const nvp::RunResult &r,
    const nvp::SystemConfig &cfg, const nvp::ExperimentSpec &spec);

/**
 * The JIT-checkpoint energy reserve a configuration sets aside
 * between Vbackup and Vmin (joules). For WL-Cache this follows the
 * maxline-indexed threshold schedule of §5.5; for every other design
 * it is the static platform Vbackup. The quantity WL-Cache's maxline
 * bound trades against write-back efficiency — the paper's central
 * axis.
 */
double checkpointReserveJ(const nvp::SystemConfig &cfg);

/**
 * First-order silicon cost of a configuration (mm^2 at 90 nm from
 * CACTI-lite): D- and I-cache arrays plus, for WL-Cache, the
 * DirtyQueue.
 */
double hardwareAreaMm2(const nvp::SystemConfig &cfg);

} // namespace explore
} // namespace wlcache

#endif // WLCACHE_EXPLORE_OBJECTIVES_HH
