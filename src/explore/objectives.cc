#include "explore/objectives.hh"

#include "hwcost/cacti_lite.hh"
#include "sim/logging.hh"
#include "workloads/workloads.hh"

namespace wlcache {
namespace explore {

namespace {

/**
 * Execution time with the fig-10b convention for runs that did not
 * finish: extrapolate by instruction progress so a design that
 * thrashes still lands on a comparable (and suitably terrible)
 * number instead of vanishing from the trade-off space.
 */
double
adjustedTimeS(const nvp::RunResult &r, const nvp::ExperimentSpec &spec)
{
    if (r.completed)
        return r.total_seconds;
    const auto &trace = workloads::getTrace(spec.workload, spec.scale,
                                            spec.workload_seed);
    const double progress = static_cast<double>(r.instructions) /
                            static_cast<double>(
                                trace.totalInstructions());
    return progress > 1.0e-6 ? r.total_seconds / progress : 1.0e6;
}

} // anonymous namespace

double
checkpointReserveJ(const nvp::SystemConfig &cfg)
{
    const auto &p = cfg.platform;
    double vbackup = p.vbackup;
    if (nvp::isWlFamily(cfg.design)) {
        // Mirror SystemSim::wlVbackup at the configured maxline.
        const unsigned ml = cfg.wl.maxline;
        vbackup = p.wl_vbackup_base +
                  p.wl_vbackup_step *
                      static_cast<double>(ml > p.wl_threshold_anchor
                                              ? ml -
                                                    p.wl_threshold_anchor
                                              : 0);
        if (vbackup > p.vmax)
            vbackup = p.vmax;
    }
    if (vbackup < p.vmin)
        return 0.0;
    return 0.5 * p.capacitance_f *
           (vbackup * vbackup - p.vmin * p.vmin);
}

double
hardwareAreaMm2(const nvp::SystemConfig &cfg)
{
    const hwcost::CactiLite model;
    double area = 0.0;
    if (cfg.design != nvp::DesignKind::NoCache) {
        area += model
                    .cacheArray(cfg.dcache.size_bytes,
                                cfg.dcache.line_bytes,
                                cfg.dcache.assoc)
                    .area_mm2;
        area += model
                    .cacheArray(cfg.icache.size_bytes,
                                cfg.icache.line_bytes,
                                cfg.icache.assoc)
                    .area_mm2;
    }
    if (nvp::isWlFamily(cfg.design))
        area += model.dirtyQueue(cfg.wl.dq_size).area_mm2;
    return area;
}

const std::vector<ObjectiveDef> &
allObjectives()
{
    using R = nvp::RunResult;
    using C = nvp::SystemConfig;
    using S = nvp::ExperimentSpec;
    static const std::vector<ObjectiveDef> defs = {
        { "time",
          "execution time in seconds (DNF runs extrapolated by "
          "instruction progress)",
          [](const R &r, const C &, const S &s) {
              return adjustedTimeS(r, s);
          } },
        { "energy", "total consumed energy in joules",
          [](const R &r, const C &, const S &) {
              return r.meter.total();
          } },
        { "nvm_writes", "NVM write operations",
          [](const R &r, const C &, const S &) {
              return static_cast<double>(r.nvm_writes);
          } },
        { "nvm_bytes", "bytes written to NVM",
          [](const R &r, const C &, const S &) {
              return static_cast<double>(r.nvm_bytes_written);
          } },
        { "outages", "power failures endured",
          [](const R &r, const C &, const S &) {
              return static_cast<double>(r.outages);
          } },
        { "ckpt_reserve",
          "JIT-checkpoint energy reserve in joules "
          "(capacitor energy set aside between Vbackup and Vmin)",
          [](const R &, const C &cfg, const S &) {
              return checkpointReserveJ(cfg);
          } },
        { "hw_area",
          "first-order silicon area in mm^2 (CACTI-lite: caches plus "
          "the WL DirtyQueue)",
          [](const R &, const C &cfg, const S &) {
              return hardwareAreaMm2(cfg);
          } },
        { "nvm_lifetime",
          "negated min-line write headroom (endurance budget minus "
          "the most-worn line's count; maximizing, so negated here; "
          "requires nvm.track_wear)",
          [](const R &r, const C &, const S &) {
              return -static_cast<double>(r.nvm_lifetime_headroom);
          } },
        { "nvm_wear_max",
          "highest per-line NVM write count "
          "(requires nvm.track_wear)",
          [](const R &r, const C &, const S &) {
              return static_cast<double>(r.nvm_wear_max);
          } },
        { "nvm_write_p99_latency",
          "99th-percentile NVM write latency in cycles (log2 "
          "histogram upper bound)",
          [](const R &r, const C &, const S &) {
              return r.nvm_write_p99_latency;
          } },
    };
    return defs;
}

const ObjectiveDef *
findObjective(const std::string &name)
{
    for (const auto &d : allObjectives())
        if (name == d.name)
            return &d;
    return nullptr;
}

std::string
objectiveNameList()
{
    std::string list;
    for (const auto &d : allObjectives()) {
        if (!list.empty())
            list += ", ";
        list += d.name;
    }
    return list;
}

std::vector<double>
evalObjectives(const std::vector<std::string> &names,
               const nvp::RunResult &r, const nvp::SystemConfig &cfg,
               const nvp::ExperimentSpec &spec)
{
    std::vector<double> out;
    out.reserve(names.size());
    for (const auto &name : names) {
        const ObjectiveDef *def = findObjective(name);
        wlc_assert(def != nullptr, "unknown objective '%s'",
                   name.c_str());
        out.push_back(def->eval(r, cfg, spec));
    }
    return out;
}

} // namespace explore
} // namespace wlcache
