/**
 * @file
 * Exploration report writers: a machine-readable CSV of every
 * full-scale-evaluated point and a human-readable Markdown frontier
 * report with per-point pointers to the run-record artifacts (the
 * content-addressed run JSONs carrying each point's structured stats
 * and interval rollups). Both writers are deterministic — no
 * timestamps, no wall-clock, no cache economics — so two runs of the
 * same spec produce byte-identical files whether served cold or from
 * the result cache.
 */

#ifndef WLCACHE_EXPLORE_REPORT_HH
#define WLCACHE_EXPLORE_REPORT_HH

#include <iosfwd>
#include <string>

#include "explore/explorer.hh"

namespace wlcache {
namespace explore {

/**
 * Write every outcome as CSV: point id, one column per swept
 * parameter (union across points; '-' where a point does not bind
 * one), the objective values, the frontier flag, completion, and the
 * content-addressed run key.
 */
void writeCsv(std::ostream &os, const ExploreReport &report);

/**
 * Write the Markdown frontier report. @p cache_dir (the exploration's
 * result-cache directory, may be empty) turns each frontier point's
 * run key into a path to its run-record JSON artifact.
 */
void writeFrontierMarkdown(std::ostream &os,
                           const ExploreReport &report,
                           const std::string &cache_dir);

/**
 * Write the human-readable frontier summary (the one-shot CLI's
 * stdout block: header, frontier table, rung schedule, run
 * economics). Shared by wlcache_explore and the wlcached sweep
 * handler so a served exploration renders byte-identically to a
 * local one.
 */
void writeSummaryText(std::ostream &os, const ExploreReport &report);

} // namespace explore
} // namespace wlcache

#endif // WLCACHE_EXPLORE_REPORT_HH
