/**
 * @file
 * Declarative design-space sweep specifications. A SweepSpec names a
 * region of the (design x configuration x workload x environment)
 * space as a JSON document — base parameters shared by every point,
 * cartesian-product axes, explicit extra points, and derived
 * constraints (linear functions of another parameter, e.g. keeping
 * the I-cache size locked to the D-cache size across a size sweep).
 * expandPoints() turns the spec into concrete ExperimentSpecs ready
 * for the runner; every parameter goes through a central registry so
 * a sweep axis, a base entry, and a derived target all validate the
 * same way and produce the same content-addressed cache keys.
 */

#ifndef WLCACHE_EXPLORE_SWEEP_SPEC_HH
#define WLCACHE_EXPLORE_SWEEP_SPEC_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nvp/experiment.hh"

namespace wlcache {
namespace explore {

/** One sweep-parameter value: a number, a string, or a boolean. */
struct ParamValue
{
    enum class Kind
    {
        Number,
        String,
        Bool,
    };

    Kind kind = Kind::Number;
    double num = 0.0;     //!< Numeric payload (Kind::Number).
    std::string text;     //!< String payload, or the number's token.
    bool b = false;       //!< Boolean payload (Kind::Bool).

    /** Render for point ids / CSV (number token text verbatim). */
    std::string display() const;
};

/** Numeric value; the token is formatted deterministically. */
ParamValue numValue(double v);
/** String value (design/workload/policy names). */
ParamValue strValue(std::string s);
/** Boolean value. */
ParamValue boolValue(bool b);

/** A named parameter binding. */
using ParamBinding = std::pair<std::string, ParamValue>;

/** One cartesian-product dimension. */
struct Axis
{
    std::string param;
    std::vector<ParamValue> values;
};

/**
 * A parameter computed from another parameter of the same point:
 * value = source * mul + add for numeric sources; a verbatim copy
 * for string/bool sources (mul/add must stay at identity).
 */
struct DerivedParam
{
    std::string param;
    std::string source;
    double mul = 1.0;
    double add = 0.0;
};

/** How the exploration searches the expanded space. */
enum class SearchMode
{
    Exhaustive,  //!< Evaluate every point at full scale.
    Halving,     //!< Successive halving: triage short, promote.
};

const char *searchModeName(SearchMode m);

/** A full declarative sweep. */
struct SweepSpec
{
    std::string name = "sweep";

    /** Parameters shared by every point (applied first). */
    std::vector<ParamBinding> base;
    /** Cartesian axes; the first axis varies slowest. */
    std::vector<Axis> axes;
    /** Explicit extra points (bindings on top of base). */
    std::vector<std::vector<ParamBinding>> points;
    /** Derived constraints, applied after base/axis/point bindings. */
    std::vector<DerivedParam> derived;

    /** Objective names (see objectives.hh); may be empty. */
    std::vector<std::string> objectives;

    // --- "search" block ---
    SearchMode mode = SearchMode::Exhaustive;
    /** Halving promotion factor (keep ceil(n/eta) per rung). */
    unsigned eta = 2;
    /** Workload scale of the cheapest triage rung. */
    unsigned min_scale = 1;
    /**
     * Halving rungs as event budgets instead of reduced scales: every
     * rung runs the full-scale trace truncated at a proportional
     * event budget, each run cuts a snapshot at its budget, and a
     * promoted point *extends* its snapshot on the next rung instead
     * of re-simulating from cycle 0. The final rung resumes from the
     * last cut and produces the exact full-scale result (resume is
     * observationally identical to cold execution).
     */
    bool snapshot_extend = false;
};

/** One fully-resolved point of the expanded space. */
struct DesignPoint
{
    /**
     * Stable identifier: the point's axis/explicit/derived bindings
     * as "param=value" joined with ';' (base parameters are shared
     * by construction and omitted). Used for labels, reports, and
     * deterministic tie-breaking.
     */
    std::string id;
    /** Every binding in application order (base first). */
    std::vector<ParamBinding> params;
    /** Ready-to-run experiment (tweak hook applies config bindings). */
    nvp::ExperimentSpec spec;
};

/**
 * Parse a JSON sweep-spec document. Strict: unknown keys, unknown
 * parameter names, type mismatches, and malformed structure are all
 * rejected with a diagnostic naming the offending JSON path (e.g.
 * "$.axes[1].values[0]: parameter 'wl.maxline' wants a number").
 *
 * @return true on success; false leaves @p out untouched and fills
 *         @p err (when given) with the one-line diagnostic.
 */
bool parseSweepSpec(const std::string &json_text, SweepSpec &out,
                    std::string *err = nullptr);

/**
 * Expand @p spec into concrete points: the cartesian product of the
 * axes (first axis slowest) followed by the explicit points, each
 * with base bindings applied first and derived parameters last.
 * An empty axes list with no explicit points yields the single base
 * point.
 *
 * @return true on success; false fills @p err (a derived source
 *         missing from a point is the only post-parse failure).
 */
bool expandPoints(const SweepSpec &spec,
                  std::vector<DesignPoint> &out,
                  std::string *err = nullptr);

/**
 * Names of every parameter the registry knows, with a short help
 * string each — the `--list-params` output.
 */
std::vector<std::pair<std::string, std::string>> listParams();

/** True when @p name is a registered sweep parameter. */
bool isKnownParam(const std::string &name);

} // namespace explore
} // namespace wlcache

#endif // WLCACHE_EXPLORE_SWEEP_SPEC_HH
