/**
 * @file
 * The exploration engine: expand a SweepSpec into concrete design
 * points, evaluate them through the parallel runner (every run lands
 * in the content-addressed result cache, so explorations are
 * resumable and warm re-runs execute nothing), and extract the
 * Pareto frontier over the chosen objectives. Two search modes:
 * exhaustive evaluation of every point at full scale, and budgeted
 * successive halving that triages the whole space on short-scale
 * runs and promotes only the most promising configurations (by
 * non-dominated rank) to the full-scale rung.
 */

#ifndef WLCACHE_EXPLORE_EXPLORER_HH
#define WLCACHE_EXPLORE_EXPLORER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <iosfwd>

#include "explore/sweep_spec.hh"
#include "nvp/system.hh"
#include "runner/runner.hh"

namespace wlcache {
namespace explore {

/** Everything one exploration needs beyond the sweep itself. */
struct ExploreConfig
{
    SweepSpec sweep;

    /**
     * Objective names (see objectives.hh). Overrides the sweep's own
     * list when non-empty; the engine falls back to the sweep's, and
     * then to {"time", "nvm_writes"}.
     */
    std::vector<std::string> objectives;

    unsigned jobs = 0;          //!< Worker threads (0 = default).
    std::string cache_dir;      //!< Result cache; empty disables.
    /**
     * Snapshot-store directory for snapshot_extend halving: rung cut
     * snapshots persist here (keyed like the result cache) so a warm
     * re-exploration can still extend cached rungs. Empty keeps cuts
     * in memory for this exploration only.
     */
    std::string snapshot_dir;
    bool progress = false;      //!< Per-job progress lines.
    /** Progress sink; null falls back to std::cerr. */
    std::ostream *progress_out = nullptr;
    /**
     * Remote execution hook passed through to every runner batch
     * (cache-miss jobs go to the wlcached fleet instead of local
     * threads). Null executes locally.
     */
    runner::RemoteExecutor executor;
};

/** One fully-evaluated point (at full scale). */
struct PointOutcome
{
    DesignPoint point;
    nvp::RunResult result;
    /** Objective values, in report objective order (all minimize). */
    std::vector<double> objectives;
    /**
     * Content-addressed key of the full-scale run — the name of the
     * run-record JSON in the result cache, which carries the full
     * stats tree and per-interval rollups for this point.
     */
    std::string run_key;
    bool on_frontier = false;
};

/** One successive-halving rung. */
struct RungStats
{
    unsigned scale = 1;          //!< Workload scale of this rung.
    std::size_t entrants = 0;    //!< Points evaluated.
    std::size_t promoted = 0;    //!< Points advanced to the next rung.
    /**
     * Largest per-point event budget of a snapshot_extend rung (the
     * full-scale trace truncated proportionally); 0 on scale-based
     * rungs and the final full rung.
     */
    std::uint64_t budget_events = 0;
};

/** Everything an exploration learned. */
struct ExploreReport
{
    std::string name;
    SearchMode mode = SearchMode::Exhaustive;
    std::vector<std::string> objective_names;

    /**
     * Full-scale-evaluated points in expansion order (every point
     * for exhaustive search; the final-rung survivors for halving).
     */
    std::vector<PointOutcome> outcomes;
    /**
     * Frontier as indices into @c outcomes, ordered by objective
     * vector with point ids breaking ties (deterministic).
     */
    std::vector<std::size_t> frontier;

    std::size_t expanded_points = 0;  //!< Points in the sweep.
    unsigned full_scale = 1;          //!< Scale of the final rung.

    // --- Run economics (all rungs) ---
    std::size_t full_runs = 0;    //!< Jobs at full scale.
    std::size_t triage_runs = 0;  //!< Jobs at reduced scale.
    std::size_t cache_hits = 0;   //!< Served from the result cache.
    std::size_t executed = 0;     //!< Actual simulator executions.

    std::vector<RungStats> rungs; //!< Halving schedule (empty when
                                  //!< exhaustive).
};

/**
 * Run one exploration.
 * @return true on success; false fills @p err (bad objective name,
 *         halving over a swept "scale" parameter, expansion failure).
 */
bool runExploration(const ExploreConfig &cfg, ExploreReport &out,
                    std::string *err = nullptr);

} // namespace explore
} // namespace wlcache

#endif // WLCACHE_EXPLORE_EXPLORER_HH
