#include "explore/pareto.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace wlcache {
namespace explore {

bool
dominates(const std::vector<double> &a, const std::vector<double> &b)
{
    wlc_assert(a.size() == b.size(),
               "objective vectors differ in length (%zu vs %zu)",
               a.size(), b.size());
    bool strictly = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] > b[i])
            return false;
        if (a[i] < b[i])
            strictly = true;
    }
    return strictly;
}

std::vector<std::size_t>
paretoFrontier(const std::vector<std::vector<double>> &objectives,
               const std::vector<std::string> &ids)
{
    wlc_assert(objectives.size() == ids.size());
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < objectives.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < objectives.size() && !dominated;
             ++j)
            dominated = j != i &&
                        dominates(objectives[j], objectives[i]);
        if (!dominated)
            frontier.push_back(i);
    }
    std::sort(frontier.begin(), frontier.end(),
              [&](std::size_t a, std::size_t b) {
                  if (objectives[a] != objectives[b])
                      return objectives[a] < objectives[b];
                  return ids[a] < ids[b];
              });
    return frontier;
}

std::vector<std::size_t>
paretoRanks(const std::vector<std::vector<double>> &objectives)
{
    const std::size_t n = objectives.size();
    std::vector<std::size_t> rank(n, 0);
    std::vector<bool> assigned(n, false);
    std::size_t remaining = n;
    for (std::size_t level = 0; remaining > 0; ++level) {
        std::vector<std::size_t> front;
        for (std::size_t i = 0; i < n; ++i) {
            if (assigned[i])
                continue;
            bool dominated = false;
            for (std::size_t j = 0; j < n && !dominated; ++j)
                dominated = !assigned[j] && j != i &&
                            dominates(objectives[j], objectives[i]);
            if (!dominated)
                front.push_back(i);
        }
        wlc_assert(!front.empty(), "empty Pareto front level");
        for (const std::size_t i : front) {
            rank[i] = level;
            assigned[i] = true;
        }
        remaining -= front.size();
    }
    return rank;
}

} // namespace explore
} // namespace wlcache
