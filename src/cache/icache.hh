/**
 * @file
 * L1 instruction cache model. Instructions are read-only, so the
 * design space collapses to: where fetches are served from (SRAM,
 * NV array, or straight from NVM) and whether the contents survive a
 * power failure (non-volatile array or NVSRAM-style warm restore).
 * Fetches arrive as runs of sequential instructions, so the model
 * performs one tag lookup per line touched rather than per
 * instruction.
 */

#ifndef WLCACHE_CACHE_ICACHE_HH
#define WLCACHE_CACHE_ICACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache_params.hh"
#include "cache/tag_array.hh"
#include "energy/energy_meter.hh"
#include "mem/nvm_memory.hh"
#include "sim/stats.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace telemetry { class TimelineBuffer; }

namespace cache {

/** How the instruction path behaves across power failures. */
enum class ICacheKind
{
    None,        //!< No I-cache: stream lines from NVM (NVP baseline).
    Volatile,    //!< SRAM, cold after every outage.
    NonVolatile, //!< NV array, survives outages, slow/hot.
    WarmRestore, //!< NVSRAM-style: volatile at runtime, warm at boot.
};

/** Instruction fetch engine with an optional tag array behind it. */
class InstrCache
{
  public:
    /**
     * @param params Geometry/latency/energy (ignored for Kind::None).
     * @param kind Power-failure behaviour.
     * @param nvm Backing memory for line fills.
     * @param meter Energy meter (may be null).
     * @param restore_line_energy Per-line warm-restore energy.
     * @param restore_line_latency Per-line warm-restore cycles.
     */
    InstrCache(const CacheParams &params, ICacheKind kind,
               mem::NvmMemory &nvm, energy::EnergyMeter *meter,
               double restore_line_energy = 2.0e-9,
               Cycle restore_line_latency = 2);

    /**
     * Fetch @p count sequential 4-byte instructions starting at
     * @p pc, issued at cycle @p now.
     * @return cycle when the last instruction has been fetched.
     */
    Cycle fetchRun(Addr pc, unsigned count, Cycle now);

    /** Power failure: volatile contents disappear (kind dependent). */
    void powerLoss();

    /** Boot: warm restore when the kind supports it. */
    Cycle powerRestore(Cycle now);

    /** Leakage while powered on, watts. */
    double leakageWatts() const;

    ICacheKind kind() const { return kind_; }
    stats::StatGroup &statGroup() { return stat_group_; }

    /** Attach a telemetry timeline (null detaches); observational. */
    void setTimeline(telemetry::TimelineBuffer *tl) { tl_ = tl; }

    std::uint64_t fetches() const
    {
        return static_cast<std::uint64_t>(stat_fetches_.value());
    }
    std::uint64_t lineMisses() const
    {
        return static_cast<std::uint64_t>(stat_misses_.value());
    }

    /** Serialize tags (when present), warm image, and statistics. */
    void saveState(SnapshotWriter &w) const;

    /** Restore a state saved with saveState(). */
    void restoreState(SnapshotReader &r);

  private:
    struct SavedLine
    {
        Addr addr;
        std::vector<std::uint8_t> data;
    };

    Cycle fetchLineChunk(Addr line_addr, unsigned insns, Cycle now);

    CacheParams params_;
    ICacheKind kind_;
    mem::NvmMemory &nvm_;
    energy::EnergyMeter *meter_;

    /**
     * Per-chunk energy costs quantized once at construction instead
     * of per fetchLineChunk() call. read_energy_aj_[n] is the cost of
     * an n-instruction chunk (n <= line_bytes/4); the table holds
     * exactly toAttojoules(access_energy_read * n), so metering from
     * it is bit-identical to quantizing the double product each call.
     */
    std::vector<energy::Attojoules> read_energy_aj_;
    energy::Attojoules lru_update_aj_ = 0;
    energy::Attojoules line_fill_aj_ = 0;
    telemetry::TimelineBuffer *tl_ = nullptr;
    std::unique_ptr<TagArray> tags_;
    double restore_line_energy_;
    Cycle restore_line_latency_;
    std::vector<SavedLine> warm_image_;

    stats::StatGroup stat_group_;
    stats::Scalar &stat_fetches_;
    stats::Scalar &stat_hits_;
    stats::Scalar &stat_misses_;
};

} // namespace cache
} // namespace wlcache

#endif // WLCACHE_CACHE_ICACHE_HH
