/**
 * @file
 * Set-associative tag/data array shared by every cache design. Holds
 * functional line data (so crash-consistency checks can inspect real
 * bytes), valid/dirty state, and LRU or FIFO victim selection.
 */

#ifndef WLCACHE_CACHE_TAG_ARRAY_HH
#define WLCACHE_CACHE_TAG_ARRAY_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cache/cache_params.hh"
#include "sim/types.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace cache {

/** Index of a line inside a TagArray. */
struct LineRef
{
    std::uint32_t set;
    std::uint32_t way;

    bool operator==(const LineRef &o) const
    {
        return set == o.set && way == o.way;
    }
};

/**
 * The tag+data store. Replacement bookkeeping is sequence-number
 * based: LRU tracks the last-touch sequence, FIFO the install
 * sequence; the victim is the valid line with the smallest relevant
 * sequence number (invalid ways win immediately).
 *
 * Metadata is laid out structure-of-arrays: one parallel vector per
 * field, indexed by set * assoc + way. A lookup touches only the
 * valid bytes and the addresses of one set (at most `assoc` entries
 * of each, contiguous, typically one cache line apiece), and a victim
 * scan reads only the sequence vector the policy cares about, instead
 * of striding over 26-byte Line records and dragging the unused
 * fields through the host cache.
 */
class TagArray
{
  public:
    explicit TagArray(const CacheParams &params);

    // --- Geometry ---------------------------------------------------------
    unsigned numSets() const { return num_sets_; }
    unsigned assoc() const { return assoc_; }
    unsigned numLines() const { return num_sets_ * assoc_; }
    unsigned lineBytes() const { return line_bytes_; }

    /** Align @p addr down to its line base address. */
    Addr lineAddrOf(Addr addr) const { return addr & ~line_mask_; }

    /** Byte offset of @p addr inside its line. */
    unsigned lineOffset(Addr addr) const
    {
        return static_cast<unsigned>(addr & line_mask_);
    }

    // --- Lookup / replacement ----------------------------------------------

    /** Find the line holding @p addr; no replacement-state update. */
    std::optional<LineRef> lookup(Addr addr) const;

    /** Record an access for LRU bookkeeping. */
    void touch(LineRef ref);

    /**
     * Choose a victim way in the set of @p addr. Prefers an invalid
     * way; otherwise applies the configured replacement policy.
     */
    LineRef victim(Addr addr) const;

    /** Install a line image; the line becomes valid and clean. */
    void install(LineRef ref, Addr line_addr, const std::uint8_t *image);

    // --- Line state ---------------------------------------------------------
    bool valid(LineRef ref) const { return valid_[index(ref)] != 0; }
    bool dirty(LineRef ref) const { return dirty_[index(ref)] != 0; }
    Addr lineAddr(LineRef ref) const { return addrs_[index(ref)]; }

    /** Set/clear the dirty bit, maintaining the dirty-line counter. */
    void setDirty(LineRef ref, bool dirty);

    /** Invalidate a line (clears dirty too). */
    void invalidate(LineRef ref);

    /** Invalidate every line (volatile array losing power). */
    void invalidateAll();

    /** Mutable access to the line's data bytes. */
    std::uint8_t *data(LineRef ref);
    const std::uint8_t *data(LineRef ref) const;

    /** Number of currently dirty lines (O(1)). */
    unsigned dirtyCount() const { return dirty_count_; }

    /** Peak dirtyCount() since the last resetDirtyHighWater(). */
    unsigned dirtyHighWater() const { return dirty_high_water_; }

    /** Restart high-water tracking (e.g.\ at each power-on boot). */
    void resetDirtyHighWater() { dirty_high_water_ = dirty_count_; }

    // --- Functional helpers -------------------------------------------------

    /**
     * Functional probe: if the line containing @p addr is valid, copy
     * @p bytes from it into @p out and return true.
     */
    bool probe(Addr addr, unsigned bytes, void *out) const;

    /** Invoke @p fn for every valid line. */
    void forEachValidLine(
        const std::function<void(LineRef, Addr, bool dirty)> &fn) const;

    /**
     * Serialize tags, data bytes, replacement sequences, and dirty
     * accounting. Geometry is not stored: restore requires an array
     * built from the same CacheParams.
     */
    void saveState(SnapshotWriter &w) const;

    /** Restore a state saved with saveState(). */
    void restoreState(SnapshotReader &r);

  private:
    /** Flat metadata index of a line: set * assoc + way. */
    std::size_t index(LineRef ref) const;
    std::uint32_t setIndex(Addr addr) const;

    unsigned num_sets_;
    unsigned assoc_;
    unsigned line_bytes_;
    Addr line_mask_;
    std::uint32_t set_mask_;
    ReplPolicy repl_;

    // Per-line metadata, structure-of-arrays (all sized numLines(),
    // indexed by index()). valid_/dirty_ use uint8_t rather than
    // vector<bool> so a set's flags are plain contiguous bytes.
    std::vector<Addr> addrs_;                  //!< Line base address.
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint8_t> dirty_;
    std::vector<std::uint64_t> touch_seq_;     //!< LRU recency stamp.
    std::vector<std::uint64_t> install_seq_;   //!< FIFO install stamp.

    /**
     * Per-set most-recently-used way, a pure lookup accelerator:
     * lookup() probes it before scanning the set. Always validated
     * against the tag before use, so it can never change what
     * lookup() returns — stale hints (after invalidate/restore) just
     * fall back to the scan. Deliberately not serialized.
     */
    mutable std::vector<std::uint32_t> mru_way_;

    std::vector<std::uint8_t> bytes_;
    std::uint64_t seq_ = 0;
    unsigned dirty_count_ = 0;
    unsigned dirty_high_water_ = 0;
};

} // namespace cache
} // namespace wlcache

#endif // WLCACHE_CACHE_TAG_ARRAY_HH
