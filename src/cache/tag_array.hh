/**
 * @file
 * Set-associative tag/data array shared by every cache design. Holds
 * functional line data (so crash-consistency checks can inspect real
 * bytes), valid/dirty state, and LRU or FIFO victim selection.
 */

#ifndef WLCACHE_CACHE_TAG_ARRAY_HH
#define WLCACHE_CACHE_TAG_ARRAY_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cache/cache_params.hh"
#include "sim/types.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace cache {

/** Index of a line inside a TagArray. */
struct LineRef
{
    std::uint32_t set;
    std::uint32_t way;

    bool operator==(const LineRef &o) const
    {
        return set == o.set && way == o.way;
    }
};

/**
 * The tag+data store. Replacement bookkeeping is sequence-number
 * based: LRU tracks the last-touch sequence, FIFO the install
 * sequence; the victim is the valid line with the smallest relevant
 * sequence number (invalid ways win immediately).
 */
class TagArray
{
  public:
    explicit TagArray(const CacheParams &params);

    // --- Geometry ---------------------------------------------------------
    unsigned numSets() const { return num_sets_; }
    unsigned assoc() const { return assoc_; }
    unsigned numLines() const { return num_sets_ * assoc_; }
    unsigned lineBytes() const { return line_bytes_; }

    /** Align @p addr down to its line base address. */
    Addr lineAddrOf(Addr addr) const { return addr & ~line_mask_; }

    /** Byte offset of @p addr inside its line. */
    unsigned lineOffset(Addr addr) const
    {
        return static_cast<unsigned>(addr & line_mask_);
    }

    // --- Lookup / replacement ----------------------------------------------

    /** Find the line holding @p addr; no replacement-state update. */
    std::optional<LineRef> lookup(Addr addr) const;

    /** Record an access for LRU bookkeeping. */
    void touch(LineRef ref);

    /**
     * Choose a victim way in the set of @p addr. Prefers an invalid
     * way; otherwise applies the configured replacement policy.
     */
    LineRef victim(Addr addr) const;

    /** Install a line image; the line becomes valid and clean. */
    void install(LineRef ref, Addr line_addr, const std::uint8_t *image);

    // --- Line state ---------------------------------------------------------
    bool valid(LineRef ref) const { return line(ref).valid; }
    bool dirty(LineRef ref) const { return line(ref).dirty; }
    Addr lineAddr(LineRef ref) const { return line(ref).addr; }

    /** Set/clear the dirty bit, maintaining the dirty-line counter. */
    void setDirty(LineRef ref, bool dirty);

    /** Invalidate a line (clears dirty too). */
    void invalidate(LineRef ref);

    /** Invalidate every line (volatile array losing power). */
    void invalidateAll();

    /** Mutable access to the line's data bytes. */
    std::uint8_t *data(LineRef ref);
    const std::uint8_t *data(LineRef ref) const;

    /** Number of currently dirty lines (O(1)). */
    unsigned dirtyCount() const { return dirty_count_; }

    /** Peak dirtyCount() since the last resetDirtyHighWater(). */
    unsigned dirtyHighWater() const { return dirty_high_water_; }

    /** Restart high-water tracking (e.g.\ at each power-on boot). */
    void resetDirtyHighWater() { dirty_high_water_ = dirty_count_; }

    // --- Functional helpers -------------------------------------------------

    /**
     * Functional probe: if the line containing @p addr is valid, copy
     * @p bytes from it into @p out and return true.
     */
    bool probe(Addr addr, unsigned bytes, void *out) const;

    /** Invoke @p fn for every valid line. */
    void forEachValidLine(
        const std::function<void(LineRef, Addr, bool dirty)> &fn) const;

    /**
     * Serialize tags, data bytes, replacement sequences, and dirty
     * accounting. Geometry is not stored: restore requires an array
     * built from the same CacheParams.
     */
    void saveState(SnapshotWriter &w) const;

    /** Restore a state saved with saveState(). */
    void restoreState(SnapshotReader &r);

  private:
    struct Line
    {
        Addr addr = 0;           //!< Line base address.
        bool valid = false;
        bool dirty = false;
        std::uint64_t touch_seq = 0;
        std::uint64_t install_seq = 0;
    };

    Line &line(LineRef ref);
    const Line &line(LineRef ref) const;
    std::uint32_t setIndex(Addr addr) const;

    unsigned num_sets_;
    unsigned assoc_;
    unsigned line_bytes_;
    Addr line_mask_;
    std::uint32_t set_mask_;
    ReplPolicy repl_;

    std::vector<Line> lines_;
    std::vector<std::uint8_t> bytes_;
    std::uint64_t seq_ = 0;
    unsigned dirty_count_ = 0;
    unsigned dirty_high_water_ = 0;
};

} // namespace cache
} // namespace wlcache

#endif // WLCACHE_CACHE_TAG_ARRAY_HH
