#include "cache/cache_iface.hh"

// Interface out-of-line anchor (vtable) lives here.

namespace wlcache {
namespace cache {
} // namespace cache
} // namespace wlcache
