#include "cache/cache_iface.hh"

// Interface out-of-line anchor (vtable) lives here.

#include "sim/snapshot.hh"

namespace wlcache {
namespace cache {

void
DataCache::saveState(SnapshotWriter &w) const
{
    w.section("DC  ");
    stat_group_.saveState(w);
}

void
DataCache::restoreState(SnapshotReader &r)
{
    r.section("DC  ");
    stat_group_.restoreState(r);
}

} // namespace cache
} // namespace wlcache
