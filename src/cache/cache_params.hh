/**
 * @file
 * Geometry, timing, and energy parameters for the cache models, with
 * presets for the SRAM and non-volatile (ReRAM-class) technologies
 * from the paper's Table 2: 8 KB, 2-way, 64 B lines; SRAM hit/miss
 * 0.3/0.1 ns; NV cache hit/miss 1.6/1.5 ns.
 */

#ifndef WLCACHE_CACHE_CACHE_PARAMS_HH
#define WLCACHE_CACHE_CACHE_PARAMS_HH

#include <cstddef>
#include <string>

#include "sim/types.hh"

namespace wlcache {
namespace cache {

/** Cache (and DirtyQueue) replacement policy. */
enum class ReplPolicy
{
    LRU,
    FIFO,
};

/** Human-readable policy name. */
const char *replPolicyName(ReplPolicy p);

/**
 * Inverse of replPolicyName(): parse "LRU"/"FIFO".
 * @return true and set @p out on a match; false on an unknown name.
 */
bool replPolicyFromName(const std::string &name, ReplPolicy &out);

/** Parameters shared by every cache design. */
struct CacheParams
{
    // --- Geometry (paper defaults) ---
    std::size_t size_bytes = 8192;
    unsigned assoc = 2;
    unsigned line_bytes = 64;
    ReplPolicy repl = ReplPolicy::LRU;

    // --- Timing (cycles at 1 GHz; sub-ns values round up to 1) ---
    Cycle hit_latency = 1;        //!< SRAM read hit, 0.3 ns.
    Cycle write_hit_latency = 1;  //!< SRAM write hit (same array).
    Cycle miss_lookup_latency = 1; //!< Tag probe on a miss, 0.1 ns.

    // --- Energy (joules) ---
    double access_energy_read = 10.0e-12;   //!< Per word-sized access.
    double access_energy_write = 12.0e-12;
    double line_fill_energy = 60.0e-12;     //!< Write a full line image.
    double line_read_energy = 50.0e-12;     //!< Read a full line image.
    double leakage_watts = 0.05e-3;

    /**
     * Extra per-access bookkeeping energy charged when @c repl is LRU
     * (tracking the LRU/MRU chain on every access). The paper's §6.5
     * identifies exactly this cost as the reason FIFO outperforms LRU
     * under frequent outages.
     */
    double lru_update_energy = 3.0e-12;

    unsigned numLines() const
    {
        return static_cast<unsigned>(size_bytes / line_bytes);
    }
    unsigned numSets() const { return numLines() / assoc; }

    /** Validate geometry (power-of-two sets/lines); fatal() on error. */
    void validate() const;
};

/** SRAM technology preset (VCache-WT, NVSRAM runtime array, WL-Cache). */
CacheParams sramCacheParams();

/** Non-volatile (ReRAM-class) preset for NVCache-WB. */
CacheParams nvCacheParams();

} // namespace cache
} // namespace wlcache

#endif // WLCACHE_CACHE_CACHE_PARAMS_HH
