/**
 * @file
 * Shared machinery for tag-array-backed data caches: miss handling,
 * line fill, victim eviction, and energy charging. Concrete designs
 * (write-through, NV write-back, NVSRAM, ReplayCache, WL-Cache)
 * specialize the policy hooks.
 */

#ifndef WLCACHE_CACHE_BASE_TAG_CACHE_HH
#define WLCACHE_CACHE_BASE_TAG_CACHE_HH

#include "cache/cache_iface.hh"
#include "cache/tag_array.hh"
#include "energy/energy_meter.hh"
#include "mem/nvm_memory.hh"

namespace wlcache {
namespace cache {

/** Base class for designs built around a TagArray. */
class BaseTagCache : public DataCache
{
  public:
    BaseTagCache(const std::string &name, const CacheParams &params,
                 mem::NvmMemory &nvm, energy::EnergyMeter *meter);

    const CacheParams &params() const { return params_; }
    const TagArray &tags() const { return tags_; }

    double leakageWatts() const override
    {
        return params_.leakage_watts;
    }

    unsigned dirtyHighWater() const override
    {
        return tags_.dirtyHighWater();
    }

    void resetDirtyHighWater() override
    {
        tags_.resetDirtyHighWater();
    }

    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

  protected:
    /** Charge cache-array read energy for a word-sized access. */
    void chargeArrayRead();
    /** Charge cache-array write energy for a word-sized access. */
    void chargeArrayWrite();
    /** Charge the LRU bookkeeping cost when the policy is LRU. */
    void chargeReplUpdate();
    /** Charge a full-line array fill. */
    void chargeLineFill();
    /** Charge a full-line array read (write-back sourcing). */
    void chargeLineRead();

    /**
     * Miss path: pick a victim in @p addr's set, write it back to NVM
     * if dirty (synchronously), fill the line from NVM, install.
     * @return (installed line, cycle when the fill data arrived).
     */
    std::pair<LineRef, Cycle> fillLine(Addr addr, Cycle now);

    /**
     * Hook invoked when a dirty victim is evicted, *before* the
     * write-back completes. Default does nothing extra.
     */
    virtual void onDirtyEviction(Addr line_addr) { (void)line_addr; }

    /** Write a full line image to NVM; returns ack cycle. */
    Cycle writeBackLine(LineRef ref, Cycle now);

    /**
     * Persist one line image. The default writes @p line_addr in
     * place; log-structured designs redirect it into a journal
     * append. Every dirty-line persist (write-back, async clean,
     * checkpoint flush) funnels through here. @return ack cycle.
     */
    virtual Cycle persistLine(Addr line_addr, const std::uint8_t *data,
                              unsigned bytes, Cycle now)
    {
        return nvm_.writeLine(line_addr, data, bytes, now).ready;
    }

    /**
     * Fetch the newest persisted image of @p line_addr. The default
     * reads the home address; log-structured designs serve mapped
     * lines from the journal instead. @return data-ready cycle.
     */
    virtual Cycle readLineImage(Addr line_addr, std::uint8_t *out,
                                unsigned bytes, Cycle now)
    {
        return nvm_.read(line_addr, bytes, now, out).ready;
    }

    /** Copy @p bytes of @p value into the line at @p addr. */
    void writeLineData(LineRef ref, Addr addr, unsigned bytes,
                       std::uint64_t value);

    /** Read @p bytes from the line at @p addr (little-endian). */
    std::uint64_t readLineData(LineRef ref, Addr addr,
                               unsigned bytes) const;

    CacheParams params_;
    TagArray tags_;
    mem::NvmMemory &nvm_;
    energy::EnergyMeter *meter_;
};

} // namespace cache
} // namespace wlcache

#endif // WLCACHE_CACHE_BASE_TAG_CACHE_HH
