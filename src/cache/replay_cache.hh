/**
 * @file
 * Model of ReplayCache (Zeng et al., MICRO 2021) as used by the
 * paper's comparison: a volatile SRAM cache whose stores are
 * persisted to NVM asynchronously at word granularity, with
 * region-level persistence guarantees. A store does not wait for its
 * NVM write (ILP across the region); at a region boundary the persist
 * queue drains before the region commits. On power failure only the
 * registers are checkpointed; execution resumes from the last
 * committed region boundary and re-executes the interrupted region
 * (the compiler guarantees regions are re-executable).
 *
 * We model regions as fixed-length windows of trace events; the NVP
 * system asks the cache for boundaries and performs the rollback.
 */

#ifndef WLCACHE_CACHE_REPLAY_CACHE_HH
#define WLCACHE_CACHE_REPLAY_CACHE_HH

#include <deque>

#include "cache/base_tag_cache.hh"

namespace wlcache {
namespace cache {

/** ReplayCache model parameters. */
struct ReplayParams
{
    /** Max outstanding asynchronous word persists. */
    unsigned persist_queue_depth = 8;
    /** Trace events per compiler-formed region. */
    unsigned region_events = 16;
    /** NVM address of the persistent region-commit marker. */
    Addr commit_marker_addr = 0x80;
};

/**
 * Volatile cache with asynchronous region-level store persistence.
 * Lines are never dirty: the persist queue is the source of
 * persistence, so evictions are silent.
 */
class ReplayCacheModel : public BaseTagCache
{
  public:
    ReplayCacheModel(const CacheParams &params, const ReplayParams &rp,
                     mem::NvmMemory &nvm, energy::EnergyMeter *meter);

    CacheAccessResult access(MemOp op, Addr addr, unsigned bytes,
                             std::uint64_t value, std::uint64_t *load_out,
                             Cycle now) override;

    void tick(Cycle now) override;

    /**
     * Region commit: wait until every outstanding persist completed.
     * The NVP system calls this every ReplayParams::region_events
     * events and records the resume point.
     */
    Cycle regionBoundary(Cycle now);

    /** Registers only; in-flight persists are simply lost. */
    Cycle checkpoint(Cycle now) override { return now; }

    void powerLoss() override;
    Cycle drainAndFlush(Cycle now) override;
    double checkpointEnergyBound() const override { return 0.0; }
    const char *designName() const override { return "ReplayCache"; }

    const ReplayParams &replayParams() const { return replay_; }

    /** Outstanding persists (testing). */
    std::size_t persistQueueDepth() const { return inflight_.size(); }

    /** Persists coalesced into an in-flight word (testing). */
    std::uint64_t coalescedPersists() const { return coalesced_; }

    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

  private:
    /** One outstanding word persist. */
    struct Persist
    {
        Addr word_addr;
        Cycle ready;
    };

    ReplayParams replay_;
    /** Outstanding persists, oldest first. */
    std::deque<Persist> inflight_;
    std::uint64_t coalesced_ = 0;
    std::uint32_t region_counter_ = 0;
    Cycle pending_drain_ = 0;  //!< Drain deadline of the previous region.
};

} // namespace cache
} // namespace wlcache

#endif // WLCACHE_CACHE_REPLAY_CACHE_HH
