#include "cache/nvsram_practical_cache.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "telemetry/timeline.hh"

namespace wlcache {
namespace cache {

namespace {

/** Way-split helper: half the ways, half the bytes, same sets. */
CacheParams
halfWays(const CacheParams &p)
{
    CacheParams h = p;
    wlc_assert(p.assoc >= 2 && p.assoc % 2 == 0,
               "NVSRAM(practical) needs an even associativity");
    h.assoc = p.assoc / 2;
    h.size_bytes = p.size_bytes / 2;
    return h;
}

/** NV-way parameters: NV technology numbers on the SRAM geometry. */
CacheParams
nvWayParams(const CacheParams &nv_tech, const CacheParams &geom)
{
    CacheParams p = nv_tech;
    p.size_bytes = geom.size_bytes;
    p.assoc = geom.assoc;
    p.line_bytes = geom.line_bytes;
    p.repl = geom.repl;
    return p;
}

} // anonymous namespace

NvsramPracticalCache::NvsramPracticalCache(
    const CacheParams &params, const CacheParams &nv_tech,
    const NvsramPracticalParams &prac, mem::NvmMemory &nvm,
    energy::EnergyMeter *meter)
    : DataCache("nvsram_practical"), sram_params_(halfWays(params)),
      nv_params_(nvWayParams(nv_tech, sram_params_)), prac_(prac),
      sram_(sram_params_), nv_(nv_params_), nvm_(nvm), meter_(meter),
      stat_migrations_(stat_group_.addScalar(
          "migrations", "SRAM->NV way line migrations")),
      stat_nv_hits_(
          stat_group_.addScalar("nv_hits", "hits served by NV ways")),
      stat_nv_writebacks_(stat_group_.addScalar(
          "nv_writebacks", "background NV-way write-backs to NVM"))
{
}

Cycle
NvsramPracticalCache::writeBackLine(TagArray &tags, LineRef ref,
                                    Cycle now)
{
    const auto res = nvm_.writeLine(tags.lineAddr(ref), tags.data(ref),
                                    tags.lineBytes(), now);
    ++stats_.writebacks;
    return res.ready;
}

void
NvsramPracticalCache::tick(Cycle now)
{
    while (!inflight_.empty() && inflight_.front().second <= now)
        inflight_.pop_front();
}

void
NvsramPracticalCache::maintain(Addr set_addr, Cycle now)
{
    // Keep enough free NV room for JIT checkpointing: a set's NV way
    // only needs to be clean while its SRAM way holds dirty data
    // that would have to migrate there at a power failure. Writing
    // back any earlier would degenerate into line-granular
    // write-through; writing back any later would break the JIT
    // guarantee. This is the "additional traffic to NVM main memory"
    // §2.3.3 charges the practical design for.
    const std::uint32_t set =
        static_cast<std::uint32_t>((set_addr / nv_.lineBytes()) %
                                   nv_.numSets());
    bool sram_dirty = false;
    for (std::uint32_t way = 0; way < sram_.assoc(); ++way) {
        const LineRef ref{ set, way };
        if (sram_.valid(ref) && sram_.dirty(ref))
            sram_dirty = true;
    }
    if (!sram_dirty)
        return;
    for (std::uint32_t way = 0; way < nv_.assoc(); ++way) {
        const LineRef ref{ set, way };
        if (nv_.valid(ref) && nv_.dirty(ref)) {
            const Cycle ready = writeBackLine(nv_, ref, now);
            nv_.setDirty(ref, false);
            ++stat_nv_writebacks_;
            inflight_.emplace_back(nv_.lineAddr(ref), ready);
        }
    }
}

bool
NvsramPracticalCache::migrate(LineRef sram_ref, Cycle now,
                              bool charge_checkpoint)
{
    const Addr laddr = sram_.lineAddr(sram_ref);
    LineRef nv_ref = nv_.victim(laddr);
    if (nv_.valid(nv_ref)) {
        if (nv_.dirty(nv_ref)) {
            // Should be rare thanks to maintain(); push it out.
            writeBackLine(nv_, nv_ref, now);
            nv_.setDirty(nv_ref, false);
            ++stat_nv_writebacks_;
        }
        nv_.invalidate(nv_ref);
    }
    nv_.install(nv_ref, laddr, sram_.data(sram_ref));
    nv_.setDirty(nv_ref, true);  // still stale w.r.t. main NVM
    if (meter_)
        meter_->add(charge_checkpoint
                        ? energy::EnergyCategory::Checkpoint
                        : energy::EnergyCategory::CacheWrite,
                    prac_.migrate_line_energy);
    ++stat_migrations_;
    sram_.setDirty(sram_ref, false);
    sram_.invalidate(sram_ref);
    return true;
}

CacheAccessResult
NvsramPracticalCache::access(MemOp op, Addr addr, unsigned bytes,
                             std::uint64_t value,
                             std::uint64_t *load_out, Cycle now)
{
    tick(now);
    const unsigned off =
        static_cast<unsigned>(addr & (sram_.lineBytes() - 1));
    wlc_assert(off + bytes <= sram_.lineBytes());

    auto copy_out = [&](TagArray &tags, LineRef ref) {
        if (load_out) {
            std::uint64_t v = 0;
            std::memcpy(&v, tags.data(ref) + off, bytes);
            *load_out = v;
        }
    };
    auto write_in = [&](TagArray &tags, LineRef ref) {
        std::memcpy(tags.data(ref) + off, &value, bytes);
    };

    const auto sram_ref = sram_.lookup(addr);
    const auto nv_ref = sram_ref ? std::nullopt : nv_.lookup(addr);

    if (op == MemOp::Load) {
        ++stats_.loads;
        if (sram_ref) {
            ++stats_.load_hits;
            sram_.touch(*sram_ref);
            if (meter_)
                meter_->add(energy::EnergyCategory::CacheRead,
                            sram_params_.access_energy_read);
            copy_out(sram_, *sram_ref);
            return { now + sram_params_.hit_latency, true };
        }
        if (nv_ref) {
            // Data lives in the NV way: slower and hotter (§2.3.3).
            ++stats_.load_hits;
            ++stat_nv_hits_;
            nv_.touch(*nv_ref);
            if (meter_)
                meter_->add(energy::EnergyCategory::CacheRead,
                            nv_params_.access_energy_read);
            copy_out(nv_, *nv_ref);
            return { now + nv_params_.hit_latency, true };
        }
        // Miss: fill the SRAM way; a dirty SRAM victim migrates.
        LineRef victim = sram_.victim(addr);
        Cycle t = now + sram_params_.miss_lookup_latency;
        if (sram_.valid(victim)) {
            ++stats_.evictions;
            if (sram_.dirty(victim)) {
                ++stats_.dirty_evictions;
                migrate(victim, t, false);
            } else {
                sram_.invalidate(victim);
            }
        }
        std::uint8_t buf[256];
        const auto res =
            nvm_.read(sram_.lineAddrOf(addr), sram_.lineBytes(), t, buf);
        sram_.install(victim, sram_.lineAddrOf(addr), buf);
        ++stats_.fills;
        if (meter_)
            meter_->add(energy::EnergyCategory::CacheWrite,
                        sram_params_.line_fill_energy);
        copy_out(sram_, victim);
        return { res.ready + sram_params_.hit_latency, false };
    }

    ++stats_.stores;
    if (sram_ref) {
        ++stats_.store_hits;
        sram_.touch(*sram_ref);
        write_in(sram_, *sram_ref);
        sram_.setDirty(*sram_ref, true);
        if (meter_)
            meter_->add(energy::EnergyCategory::CacheWrite,
                        sram_params_.access_energy_write);
        maintain(addr, now);
        return { now + sram_params_.write_hit_latency, true };
    }
    if (nv_ref) {
        ++stats_.store_hits;
        ++stat_nv_hits_;
        nv_.touch(*nv_ref);
        write_in(nv_, *nv_ref);
        nv_.setDirty(*nv_ref, true);
        if (meter_)
            meter_->add(energy::EnergyCategory::CacheWrite,
                        nv_params_.access_energy_write);
        maintain(addr, now);
        return { now + nv_params_.write_hit_latency, true };
    }
    // Store miss: write-allocate into the SRAM way.
    LineRef victim = sram_.victim(addr);
    Cycle t = now + sram_params_.miss_lookup_latency;
    if (sram_.valid(victim)) {
        ++stats_.evictions;
        if (sram_.dirty(victim)) {
            ++stats_.dirty_evictions;
            migrate(victim, t, false);
        } else {
            sram_.invalidate(victim);
        }
    }
    std::uint8_t buf[256];
    const auto res =
        nvm_.read(sram_.lineAddrOf(addr), sram_.lineBytes(), t, buf);
    sram_.install(victim, sram_.lineAddrOf(addr), buf);
    ++stats_.fills;
    write_in(sram_, victim);
    sram_.setDirty(victim, true);
    if (meter_)
        meter_->add(energy::EnergyCategory::CacheWrite,
                    sram_params_.line_fill_energy +
                        sram_params_.access_energy_write);
    maintain(addr, now);
    return { res.ready + sram_params_.write_hit_latency, false };
}

Cycle
NvsramPracticalCache::checkpoint(Cycle now)
{
    Cycle t = now;
    unsigned moved = 0;
    sram_.forEachValidLine([&](LineRef ref, Addr, bool dirty) {
        if (dirty) {
            migrate(ref, t, true);
            t += prac_.migrate_line_latency;
            ++moved;
        }
    });
    stats_.checkpoint_lines += moved;
    WLC_TIMELINE(tl_, Checkpoint, now, "nvsram_prac", moved, t - now);
    return t;
}

void
NvsramPracticalCache::powerLoss()
{
    sram_.invalidateAll();
    inflight_.clear();
}

Cycle
NvsramPracticalCache::drainAndFlush(Cycle now)
{
    Cycle t = now;
    sram_.forEachValidLine([&](LineRef ref, Addr, bool dirty) {
        if (dirty) {
            t = writeBackLine(sram_, ref, t);
            sram_.setDirty(ref, false);
        }
    });
    nv_.forEachValidLine([&](LineRef ref, Addr, bool dirty) {
        if (dirty) {
            t = writeBackLine(nv_, ref, t);
            nv_.setDirty(ref, false);
        }
    });
    return t;
}

double
NvsramPracticalCache::checkpointEnergyBound() const
{
    // Worst case: every SRAM line dirty, every target NV way dirty
    // too (write-back + migration each).
    return static_cast<double>(sram_.numLines()) *
        (prac_.migrate_line_energy +
         nvm_.params().writeEnergy(sram_.lineBytes()));
}

void
NvsramPracticalCache::collectPersistentOverlay(
    std::unordered_map<Addr, std::uint8_t> &overlay) const
{
    nv_.forEachValidLine([&](LineRef ref, Addr laddr, bool dirty) {
        if (!dirty)
            return;
        const std::uint8_t *bytes = nv_.data(ref);
        for (unsigned i = 0; i < nv_.lineBytes(); ++i)
            overlay[laddr + i] = bytes[i];
    });
}

double
NvsramPracticalCache::leakageWatts() const
{
    return sram_params_.leakage_watts + nv_params_.leakage_watts;
}

void
NvsramPracticalCache::saveState(SnapshotWriter &w) const
{
    DataCache::saveState(w);
    w.section("NVSP");
    sram_.saveState(w);
    nv_.saveState(w);
    w.u64(inflight_.size());
    for (const auto &[addr, ready] : inflight_) {
        w.u64(addr);
        w.u64(ready);
    }
}

void
NvsramPracticalCache::restoreState(SnapshotReader &r)
{
    DataCache::restoreState(r);
    r.section("NVSP");
    sram_.restoreState(r);
    nv_.restoreState(r);
    inflight_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr addr = r.u64();
        const Cycle ready = r.u64();
        inflight_.emplace_back(addr, ready);
    }
}

} // namespace cache
} // namespace wlcache
