#include "cache/wt_buffered_cache.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace wlcache {
namespace cache {

WtBufferedCache::WtBufferedCache(const CacheParams &params,
                                 const WtBufferParams &wb,
                                 mem::NvmMemory &nvm,
                                 energy::EnergyMeter *meter)
    : BaseTagCache("wt_buffered", params, nvm, meter), wb_(wb)
{
    wlc_assert(wb_.entries > 0);
}

void
WtBufferedCache::chargeCamSearch()
{
    if (meter_)
        meter_->add(energy::EnergyCategory::CacheRead,
                    wb_.cam_search_energy);
}

void
WtBufferedCache::drainCompleted(Cycle now)
{
    while (!buffer_.empty() && buffer_.front().ready <= now)
        buffer_.pop_front();
}

int
WtBufferedCache::findBuffered(Addr word_addr)
{
    for (std::size_t i = 0; i < buffer_.size(); ++i)
        if (buffer_[i].word_addr == word_addr)
            return static_cast<int>(i);
    return -1;
}

cache::CacheAccessResult
WtBufferedCache::access(MemOp op, Addr addr, unsigned bytes,
                        std::uint64_t value, std::uint64_t *load_out,
                        Cycle now)
{
    drainCompleted(now);
    auto ref = tags_.lookup(addr);
    const Addr word = addr & ~static_cast<Addr>(7);

    if (op == MemOp::Load) {
        ++stats_.loads;
        // §3.3's critical-path cost: every access must search the
        // buffer before memory can be consulted, lengthening misses.
        chargeCamSearch();
        const Cycle t = now + wb_.cam_search_latency;
        if (ref) {
            ++stats_.load_hits;
            tags_.touch(*ref);
            chargeArrayRead();
            chargeReplUpdate();
            if (load_out)
                *load_out = readLineData(*ref, addr, bytes);
            return { t + params_.hit_latency, true };
        }
        const auto [line, ready] =
            fillLine(addr, t + params_.miss_lookup_latency);
        chargeArrayRead();
        chargeReplUpdate();
        if (load_out)
            *load_out = readLineData(line, addr, bytes);
        return { ready + params_.hit_latency, false };
    }

    // Store: update the cached copy on a hit (no-write-allocate, as
    // the underlying design is still write-through)...
    ++stats_.stores;
    chargeCamSearch();
    Cycle t = now + wb_.cam_search_latency;
    bool hit = false;
    if (ref) {
        hit = true;
        ++stats_.store_hits;
        tags_.touch(*ref);
        writeLineData(*ref, addr, bytes, value);
        chargeArrayWrite();
        chargeReplUpdate();
    }

    // ...but the NVM write goes through the buffer asynchronously.
    const int existing = findBuffered(word);
    if (existing >= 0 &&
        buffer_[static_cast<std::size_t>(existing)].ready > t) {
        // Write combining within the buffer.
        nvm_.poke(addr, bytes, &value);
        ++coalesced_;
        return { t + params_.write_hit_latency, hit };
    }

    if (buffer_.size() >= wb_.entries) {
        const Cycle wait_until = buffer_.front().ready;
        if (wait_until > t) {
            stats_.stall_cycles += wait_until - t;
            t = wait_until;
        }
        drainCompleted(t);
    }
    const auto res = nvm_.write(addr, bytes, &value, t);
    buffer_.push_back({ word, res.ready });
    return { t + params_.write_hit_latency, hit };
}

Cycle
WtBufferedCache::checkpoint(Cycle now)
{
    // Failure-atomic drain of the buffer (§3.3: "the large buffer
    // requires a significant amount of energy to be secured"). The
    // writes were already issued; wait for the last to land.
    Cycle t = now;
    if (!buffer_.empty())
        t = std::max(t, buffer_.back().ready);
    stats_.checkpoint_lines += static_cast<double>(buffer_.size());
    buffer_.clear();
    return t;
}

void
WtBufferedCache::powerLoss()
{
    tags_.invalidateAll();
    buffer_.clear();
}

Cycle
WtBufferedCache::drainAndFlush(Cycle now)
{
    return checkpoint(now);
}

double
WtBufferedCache::checkpointEnergyBound() const
{
    // Worst case: a full buffer of outstanding word writes must be
    // guaranteed to complete after the voltage monitor fires.
    return static_cast<double>(wb_.entries) *
        nvm_.params().writeEnergy(8);
}

double
WtBufferedCache::leakageWatts() const
{
    return params_.leakage_watts + wb_.buffer_leakage_watts;
}

void
WtBufferedCache::saveState(SnapshotWriter &w) const
{
    BaseTagCache::saveState(w);
    w.section("WTBF");
    w.u64(buffer_.size());
    for (const Pending &p : buffer_) {
        w.u64(p.word_addr);
        w.u64(p.ready);
    }
    w.u64(coalesced_);
}

void
WtBufferedCache::restoreState(SnapshotReader &r)
{
    BaseTagCache::restoreState(r);
    r.section("WTBF");
    buffer_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        Pending p;
        p.word_addr = r.u64();
        p.ready = r.u64();
        buffer_.push_back(p);
    }
    coalesced_ = r.u64();
}

} // namespace cache
} // namespace wlcache
