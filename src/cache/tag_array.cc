#include "cache/tag_array.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "util/stat_math.hh"

namespace wlcache {
namespace cache {

TagArray::TagArray(const CacheParams &params)
{
    params.validate();
    num_sets_ = params.numSets();
    assoc_ = params.assoc;
    line_bytes_ = params.line_bytes;
    line_mask_ = static_cast<Addr>(line_bytes_) - 1;
    set_mask_ = num_sets_ - 1;
    repl_ = params.repl;
    const std::size_t n = static_cast<std::size_t>(num_sets_) * assoc_;
    addrs_.resize(n, 0);
    valid_.resize(n, 0);
    dirty_.resize(n, 0);
    touch_seq_.resize(n, 0);
    install_seq_.resize(n, 0);
    bytes_.resize(n * line_bytes_, 0);
    mru_way_.resize(num_sets_, 0);
}

std::size_t
TagArray::index(LineRef ref) const
{
    wlc_assert(ref.set < num_sets_ && ref.way < assoc_);
    return static_cast<std::size_t>(ref.set) * assoc_ + ref.way;
}

std::uint32_t
TagArray::setIndex(Addr addr) const
{
    return static_cast<std::uint32_t>(
        (addr / line_bytes_) & set_mask_);
}

std::optional<LineRef>
TagArray::lookup(Addr addr) const
{
    const Addr laddr = lineAddrOf(addr);
    const std::uint32_t set = setIndex(addr);
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    // MRU-way hint: fetch loops re-touch the same line, so this hits
    // far more often than the scan. The hint is fully validated, so
    // the function's result is identical with or without it.
    const std::uint32_t hint = mru_way_[set];
    if (hint < assoc_ && valid_[base + hint] &&
        addrs_[base + hint] == laddr)
        return LineRef{ set, hint };
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        if (valid_[base + way] && addrs_[base + way] == laddr)
            return LineRef{ set, way };
    }
    return std::nullopt;
}

void
TagArray::touch(LineRef ref)
{
    touch_seq_[index(ref)] = ++seq_;
    mru_way_[ref.set] = ref.way;
}

LineRef
TagArray::victim(Addr addr) const
{
    const std::uint32_t set = setIndex(addr);
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    // Prefer an invalid way.
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        if (!valid_[base + way])
            return { set, way };
    }
    // Otherwise the oldest by policy-relevant sequence number.
    const std::uint64_t *seqs =
        repl_ == ReplPolicy::LRU ? touch_seq_.data() : install_seq_.data();
    LineRef best{ set, 0 };
    std::uint64_t best_seq = UINT64_MAX;
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        const std::uint64_t s = seqs[base + way];
        if (s < best_seq) {
            best_seq = s;
            best = { set, way };
        }
    }
    return best;
}

void
TagArray::install(LineRef ref, Addr line_addr, const std::uint8_t *image)
{
    wlc_assert(lineAddrOf(line_addr) == line_addr,
               "install address not line aligned");
    wlc_assert(setIndex(line_addr) == ref.set,
               "install into the wrong set");
    const std::size_t i = index(ref);
    if (valid_[i] && dirty_[i]) {
        // Callers must write back or drop dirty victims first.
        panic("installing over a dirty line 0x%llx",
              static_cast<unsigned long long>(addrs_[i]));
    }
    addrs_[i] = line_addr;
    valid_[i] = 1;
    dirty_[i] = 0;
    touch_seq_[i] = ++seq_;
    install_seq_[i] = seq_;
    mru_way_[ref.set] = ref.way;
    std::uint8_t *dst = data(ref);
    if (image)
        std::memcpy(dst, image, line_bytes_);
    else
        std::memset(dst, 0, line_bytes_);
}

void
TagArray::setDirty(LineRef ref, bool dirty)
{
    const std::size_t i = index(ref);
    wlc_assert(valid_[i], "setDirty on invalid line");
    if ((dirty_[i] != 0) == dirty)
        return;
    dirty_[i] = dirty ? 1 : 0;
    if (dirty) {
        ++dirty_count_;
        if (dirty_count_ > dirty_high_water_)
            dirty_high_water_ = dirty_count_;
    } else {
        wlc_assert(dirty_count_ > 0);
        --dirty_count_;
    }
}

void
TagArray::invalidate(LineRef ref)
{
    const std::size_t i = index(ref);
    if (valid_[i] && dirty_[i]) {
        wlc_assert(dirty_count_ > 0);
        --dirty_count_;
    }
    valid_[i] = 0;
    dirty_[i] = 0;
}

void
TagArray::invalidateAll()
{
    std::fill(valid_.begin(), valid_.end(), 0);
    std::fill(dirty_.begin(), dirty_.end(), 0);
    dirty_count_ = 0;
}

std::uint8_t *
TagArray::data(LineRef ref)
{
    return bytes_.data() + index(ref) * line_bytes_;
}

const std::uint8_t *
TagArray::data(LineRef ref) const
{
    return const_cast<TagArray *>(this)->data(ref);
}

bool
TagArray::probe(Addr addr, unsigned bytes, void *out) const
{
    wlc_assert(out != nullptr);
    const auto ref = lookup(addr);
    if (!ref)
        return false;
    const unsigned off = lineOffset(addr);
    wlc_assert(off + bytes <= line_bytes_,
               "probe crosses a line boundary");
    std::memcpy(out, data(*ref) + off, bytes);
    return true;
}

void
TagArray::forEachValidLine(
    const std::function<void(LineRef, Addr, bool)> &fn) const
{
    for (std::uint32_t set = 0; set < num_sets_; ++set) {
        for (std::uint32_t way = 0; way < assoc_; ++way) {
            const LineRef ref{ set, way };
            const std::size_t i = index(ref);
            if (valid_[i])
                fn(ref, addrs_[i], dirty_[i] != 0);
        }
    }
}

void
TagArray::saveState(SnapshotWriter &w) const
{
    // Serialized line-by-line (not vector-by-vector) so the "TAGS"
    // byte stream is identical to the pre-SoA layout.
    w.section("TAGS");
    const std::size_t n = addrs_.size();
    w.u64(n);
    for (std::size_t i = 0; i < n; ++i) {
        w.u64(addrs_[i]);
        w.b(valid_[i] != 0);
        w.b(dirty_[i] != 0);
        w.u64(touch_seq_[i]);
        w.u64(install_seq_[i]);
    }
    w.vecU8(bytes_);
    w.u64(seq_);
    w.u32(dirty_count_);
    w.u32(dirty_high_water_);
}

void
TagArray::restoreState(SnapshotReader &r)
{
    r.section("TAGS");
    const std::uint64_t n = r.u64();
    wlc_assert(n == addrs_.size(),
               "tag-array snapshot geometry mismatch");
    for (std::size_t i = 0; i < n; ++i) {
        addrs_[i] = r.u64();
        valid_[i] = r.b() ? 1 : 0;
        dirty_[i] = r.b() ? 1 : 0;
        touch_seq_[i] = r.u64();
        install_seq_[i] = r.u64();
    }
    const auto bytes = r.vecU8();
    wlc_assert(bytes.size() == bytes_.size());
    bytes_ = bytes;
    seq_ = r.u64();
    dirty_count_ = r.u32();
    dirty_high_water_ = r.u32();
}

} // namespace cache
} // namespace wlcache
