#include "cache/tag_array.hh"

#include <cstring>

#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "util/stat_math.hh"

namespace wlcache {
namespace cache {

TagArray::TagArray(const CacheParams &params)
{
    params.validate();
    num_sets_ = params.numSets();
    assoc_ = params.assoc;
    line_bytes_ = params.line_bytes;
    line_mask_ = static_cast<Addr>(line_bytes_) - 1;
    set_mask_ = num_sets_ - 1;
    repl_ = params.repl;
    lines_.resize(static_cast<std::size_t>(num_sets_) * assoc_);
    bytes_.resize(lines_.size() * line_bytes_, 0);
}

TagArray::Line &
TagArray::line(LineRef ref)
{
    wlc_assert(ref.set < num_sets_ && ref.way < assoc_);
    return lines_[static_cast<std::size_t>(ref.set) * assoc_ + ref.way];
}

const TagArray::Line &
TagArray::line(LineRef ref) const
{
    wlc_assert(ref.set < num_sets_ && ref.way < assoc_);
    return lines_[static_cast<std::size_t>(ref.set) * assoc_ + ref.way];
}

std::uint32_t
TagArray::setIndex(Addr addr) const
{
    return static_cast<std::uint32_t>(
        (addr / line_bytes_) & set_mask_);
}

std::optional<LineRef>
TagArray::lookup(Addr addr) const
{
    const Addr laddr = lineAddrOf(addr);
    const std::uint32_t set = setIndex(addr);
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        const LineRef ref{ set, way };
        const Line &l = line(ref);
        if (l.valid && l.addr == laddr)
            return ref;
    }
    return std::nullopt;
}

void
TagArray::touch(LineRef ref)
{
    line(ref).touch_seq = ++seq_;
}

LineRef
TagArray::victim(Addr addr) const
{
    const std::uint32_t set = setIndex(addr);
    // Prefer an invalid way.
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        if (!line({ set, way }).valid)
            return { set, way };
    }
    // Otherwise the oldest by policy-relevant sequence number.
    LineRef best{ set, 0 };
    std::uint64_t best_seq = UINT64_MAX;
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        const Line &l = line({ set, way });
        const std::uint64_t s =
            repl_ == ReplPolicy::LRU ? l.touch_seq : l.install_seq;
        if (s < best_seq) {
            best_seq = s;
            best = { set, way };
        }
    }
    return best;
}

void
TagArray::install(LineRef ref, Addr line_addr, const std::uint8_t *image)
{
    wlc_assert(lineAddrOf(line_addr) == line_addr,
               "install address not line aligned");
    wlc_assert(setIndex(line_addr) == ref.set,
               "install into the wrong set");
    Line &l = line(ref);
    if (l.valid && l.dirty) {
        // Callers must write back or drop dirty victims first.
        panic("installing over a dirty line 0x%llx",
              static_cast<unsigned long long>(l.addr));
    }
    l.addr = line_addr;
    l.valid = true;
    l.dirty = false;
    l.touch_seq = ++seq_;
    l.install_seq = seq_;
    std::uint8_t *dst = data(ref);
    if (image)
        std::memcpy(dst, image, line_bytes_);
    else
        std::memset(dst, 0, line_bytes_);
}

void
TagArray::setDirty(LineRef ref, bool dirty)
{
    Line &l = line(ref);
    wlc_assert(l.valid, "setDirty on invalid line");
    if (l.dirty == dirty)
        return;
    l.dirty = dirty;
    if (dirty) {
        ++dirty_count_;
        if (dirty_count_ > dirty_high_water_)
            dirty_high_water_ = dirty_count_;
    } else {
        wlc_assert(dirty_count_ > 0);
        --dirty_count_;
    }
}

void
TagArray::invalidate(LineRef ref)
{
    Line &l = line(ref);
    if (l.valid && l.dirty) {
        wlc_assert(dirty_count_ > 0);
        --dirty_count_;
    }
    l.valid = false;
    l.dirty = false;
}

void
TagArray::invalidateAll()
{
    for (auto &l : lines_) {
        l.valid = false;
        l.dirty = false;
    }
    dirty_count_ = 0;
}

std::uint8_t *
TagArray::data(LineRef ref)
{
    wlc_assert(ref.set < num_sets_ && ref.way < assoc_);
    const std::size_t idx =
        (static_cast<std::size_t>(ref.set) * assoc_ + ref.way) *
        line_bytes_;
    return bytes_.data() + idx;
}

const std::uint8_t *
TagArray::data(LineRef ref) const
{
    return const_cast<TagArray *>(this)->data(ref);
}

bool
TagArray::probe(Addr addr, unsigned bytes, void *out) const
{
    wlc_assert(out != nullptr);
    const auto ref = lookup(addr);
    if (!ref)
        return false;
    const unsigned off = lineOffset(addr);
    wlc_assert(off + bytes <= line_bytes_,
               "probe crosses a line boundary");
    std::memcpy(out, data(*ref) + off, bytes);
    return true;
}

void
TagArray::forEachValidLine(
    const std::function<void(LineRef, Addr, bool)> &fn) const
{
    for (std::uint32_t set = 0; set < num_sets_; ++set) {
        for (std::uint32_t way = 0; way < assoc_; ++way) {
            const LineRef ref{ set, way };
            const Line &l = line(ref);
            if (l.valid)
                fn(ref, l.addr, l.dirty);
        }
    }
}

void
TagArray::saveState(SnapshotWriter &w) const
{
    w.section("TAGS");
    w.u64(lines_.size());
    for (const Line &l : lines_) {
        w.u64(l.addr);
        w.b(l.valid);
        w.b(l.dirty);
        w.u64(l.touch_seq);
        w.u64(l.install_seq);
    }
    w.vecU8(bytes_);
    w.u64(seq_);
    w.u32(dirty_count_);
    w.u32(dirty_high_water_);
}

void
TagArray::restoreState(SnapshotReader &r)
{
    r.section("TAGS");
    const std::uint64_t n = r.u64();
    wlc_assert(n == lines_.size(),
               "tag-array snapshot geometry mismatch");
    for (Line &l : lines_) {
        l.addr = r.u64();
        l.valid = r.b();
        l.dirty = r.b();
        l.touch_seq = r.u64();
        l.install_seq = r.u64();
    }
    const auto bytes = r.vecU8();
    wlc_assert(bytes.size() == bytes_.size());
    bytes_ = bytes;
    seq_ = r.u64();
    dirty_count_ = r.u32();
    dirty_high_water_ = r.u32();
}

} // namespace cache
} // namespace wlcache
