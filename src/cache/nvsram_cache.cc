#include "cache/nvsram_cache.hh"

#include <cstring>

#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "telemetry/timeline.hh"

namespace wlcache {
namespace cache {

NvsramCacheWB::NvsramCacheWB(const CacheParams &params,
                             const NvsramParams &nvp, mem::NvmMemory &nvm,
                             energy::EnergyMeter *meter)
    : BaseTagCache("nvsram_wb", params, nvm, meter), nvsram_(nvp)
{
}

CacheAccessResult
NvsramCacheWB::access(MemOp op, Addr addr, unsigned bytes,
                      std::uint64_t value, std::uint64_t *load_out,
                      Cycle now)
{
    auto ref = tags_.lookup(addr);

    if (op == MemOp::Load) {
        ++stats_.loads;
        if (ref) {
            ++stats_.load_hits;
            tags_.touch(*ref);
            chargeArrayRead();
            chargeReplUpdate();
            if (load_out)
                *load_out = readLineData(*ref, addr, bytes);
            return { now + params_.hit_latency, true };
        }
        const auto [line, ready] =
            fillLine(addr, now + params_.miss_lookup_latency);
        chargeArrayRead();
        chargeReplUpdate();
        if (load_out)
            *load_out = readLineData(line, addr, bytes);
        return { ready + params_.hit_latency, false };
    }

    ++stats_.stores;
    if (ref) {
        ++stats_.store_hits;
        tags_.touch(*ref);
        writeLineData(*ref, addr, bytes, value);
        tags_.setDirty(*ref, true);
        chargeArrayWrite();
        chargeReplUpdate();
        return { now + params_.write_hit_latency, true };
    }
    const auto [line, ready] =
        fillLine(addr, now + params_.miss_lookup_latency);
    writeLineData(line, addr, bytes, value);
    tags_.setDirty(line, true);
    chargeArrayWrite();
    chargeReplUpdate();
    return { ready + params_.write_hit_latency, false };
}

Cycle
NvsramCacheWB::checkpoint(Cycle now)
{
    backup_.clear();
    Cycle t = now;
    unsigned dirty_lines = 0;
    tags_.forEachValidLine([&](LineRef ref, Addr laddr, bool dirty) {
        BackupLine bl;
        bl.addr = laddr;
        bl.dirty = dirty;
        bl.data.assign(tags_.data(ref),
                       tags_.data(ref) + tags_.lineBytes());
        backup_.push_back(std::move(bl));
        if (dirty || nvsram_.backup_full) {
            if (dirty)
                ++dirty_lines;
            t += nvsram_.backup_line_latency;
            if (meter_)
                meter_->add(energy::EnergyCategory::Checkpoint,
                            nvsram_.backup_line_energy);
        }
    });
    stats_.checkpoint_lines += dirty_lines;
    has_backup_ = true;
    WLC_TIMELINE(tl_, Checkpoint, now, "nvsram_wb", dirty_lines,
                 t - now);
    return t;
}

void
NvsramCacheWB::powerLoss()
{
    tags_.invalidateAll();
}

Cycle
NvsramCacheWB::powerRestore(Cycle now)
{
    if (!has_backup_)
        return now;
    Cycle t = now;
    for (const auto &bl : backup_) {
        auto victim = tags_.victim(bl.addr);
        // The runtime array is empty at boot, so installs never hit
        // a dirty victim.
        tags_.install(victim, bl.addr, bl.data.data());
        if (bl.dirty)
            tags_.setDirty(victim, true);
        t += nvsram_.restore_line_latency;
        if (meter_)
            meter_->add(energy::EnergyCategory::Restore,
                        nvsram_.restore_line_energy);
    }
    WLC_TIMELINE(tl_, Restore, now, "nvsram_wb", backup_.size(),
                 t - now);
    return t;
}

Cycle
NvsramCacheWB::drainAndFlush(Cycle now)
{
    Cycle t = now;
    tags_.forEachValidLine([&](LineRef ref, Addr, bool dirty) {
        if (dirty) {
            t = writeBackLine(ref, t);
            tags_.setDirty(ref, false);
        }
    });
    has_backup_ = false;
    backup_.clear();
    return t;
}

double
NvsramCacheWB::checkpointEnergyBound() const
{
    return static_cast<double>(tags_.numLines()) *
        nvsram_.backup_line_energy;
}

bool
NvsramCacheWB::probePersistent(Addr addr, unsigned bytes,
                               void *out) const
{
    if (!has_backup_)
        return false;
    const Addr laddr = tags_.lineAddrOf(addr);
    for (const auto &bl : backup_) {
        if (bl.addr == laddr && bl.dirty) {
            const unsigned off = tags_.lineOffset(addr);
            wlc_assert(off + bytes <= tags_.lineBytes());
            std::memcpy(out, bl.data.data() + off, bytes);
            return true;
        }
    }
    return false;
}

void
NvsramCacheWB::collectPersistentOverlay(
    std::unordered_map<Addr, std::uint8_t> &overlay) const
{
    if (!has_backup_)
        return;
    for (const auto &bl : backup_) {
        if (!bl.dirty)
            continue;
        for (unsigned i = 0; i < tags_.lineBytes(); ++i)
            overlay[bl.addr + i] = bl.data[i];
    }
}

void
NvsramCacheWB::saveState(SnapshotWriter &w) const
{
    BaseTagCache::saveState(w);
    w.section("NVSR");
    w.b(has_backup_);
    w.u64(backup_.size());
    for (const auto &bl : backup_) {
        w.u64(bl.addr);
        w.b(bl.dirty);
        w.vecU8(bl.data);
    }
}

void
NvsramCacheWB::restoreState(SnapshotReader &r)
{
    BaseTagCache::restoreState(r);
    r.section("NVSR");
    has_backup_ = r.b();
    backup_.clear();
    const std::uint64_t n = r.u64();
    backup_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        BackupLine bl;
        bl.addr = r.u64();
        bl.dirty = r.b();
        bl.data = r.vecU8();
        backup_.push_back(std::move(bl));
    }
}

} // namespace cache
} // namespace wlcache
