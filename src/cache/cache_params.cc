#include "cache/cache_params.hh"

#include "sim/logging.hh"
#include "util/stat_math.hh"

namespace wlcache {
namespace cache {

const char *
replPolicyName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::LRU:  return "LRU";
      case ReplPolicy::FIFO: return "FIFO";
    }
    panic("unknown ReplPolicy %d", static_cast<int>(p));
}

bool
replPolicyFromName(const std::string &name, ReplPolicy &out)
{
    if (name == "LRU")
        out = ReplPolicy::LRU;
    else if (name == "FIFO")
        out = ReplPolicy::FIFO;
    else
        return false;
    return true;
}

void
CacheParams::validate() const
{
    if (line_bytes == 0 || !util::isPowerOfTwo(line_bytes))
        fatal("cache line size must be a power of two (got %u)",
              line_bytes);
    if (size_bytes == 0 || size_bytes % line_bytes != 0)
        fatal("cache size must be a multiple of the line size");
    if (assoc == 0 || numLines() % assoc != 0)
        fatal("cache associativity must divide the line count");
    if (!util::isPowerOfTwo(numSets()))
        fatal("number of cache sets must be a power of two (got %u)",
              numSets());
}

CacheParams
sramCacheParams()
{
    return CacheParams{};
}

CacheParams
nvCacheParams()
{
    CacheParams p;
    // Table 2: NVRAM cache hit/miss 1.6 ns / 1.5 ns for reads; the
    // resistive cell write pulse is an order of magnitude slower.
    p.hit_latency = 3;
    p.write_hit_latency = 12;
    p.miss_lookup_latency = 3;
    // ReRAM-class arrays: writes are substantially more expensive
    // than SRAM, reads moderately so; leakage is what the paper's
    // §6.2 compares the DirtyQueue against.
    p.access_energy_read = 80.0e-12;
    p.access_energy_write = 160.0e-12;
    p.line_fill_energy = 800.0e-12;
    p.line_read_energy = 400.0e-12;
    p.leakage_watts = 1.1e-3;
    p.lru_update_energy = 3.0e-12;
    return p;
}

} // namespace cache
} // namespace wlcache
