/**
 * @file
 * Volatile write-through SRAM cache (paper Figure 1(b), "VCache-WT").
 * Stores synchronously update NVM (and the cached copy when present,
 * no-write-allocate); loads enjoy SRAM hits. Crash consistency is by
 * construction — NVM is always up to date — so the JIT checkpoint
 * needs no cache energy at all. The cost: every store pays the NVM
 * write latency, as the paper notes the synchronous requirement
 * forbids store-buffer optimization.
 */

#ifndef WLCACHE_CACHE_VCACHE_WT_HH
#define WLCACHE_CACHE_VCACHE_WT_HH

#include "cache/base_tag_cache.hh"

namespace wlcache {
namespace cache {

/** Write-through, no-write-allocate, volatile SRAM data cache. */
class VCacheWT : public BaseTagCache
{
  public:
    VCacheWT(const CacheParams &params, mem::NvmMemory &nvm,
             energy::EnergyMeter *meter);

    CacheAccessResult access(MemOp op, Addr addr, unsigned bytes,
                             std::uint64_t value, std::uint64_t *load_out,
                             Cycle now) override;

    Cycle checkpoint(Cycle now) override { return now; }
    void powerLoss() override { tags_.invalidateAll(); }
    Cycle drainAndFlush(Cycle now) override { return now; }
    double checkpointEnergyBound() const override { return 0.0; }
    const char *designName() const override { return "VCache-WT"; }
};

} // namespace cache
} // namespace wlcache

#endif // WLCACHE_CACHE_VCACHE_WT_HH
