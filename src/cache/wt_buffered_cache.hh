/**
 * @file
 * The paper's §3.3 *alternative* design: a write-through cache with a
 * large CAM-searched write-back buffer, which "can also behave like
 * WL-Cache" but loses on three counts the paper enumerates — CAM
 * hardware cost, the energy reserved to drain the buffer
 * failure-atomically, and a lengthened memory critical path (the
 * buffer must be consulted before NVM on every access). Implemented
 * so those claims can be measured rather than asserted (see
 * bench_ablations and the hwcost comparison).
 */

#ifndef WLCACHE_CACHE_WT_BUFFERED_CACHE_HH
#define WLCACHE_CACHE_WT_BUFFERED_CACHE_HH

#include <deque>

#include "cache/base_tag_cache.hh"

namespace wlcache {
namespace cache {

/** Write-back-buffer parameters for the §3.3 alternative. */
struct WtBufferParams
{
    /** Buffer entries (word granular). */
    unsigned entries = 16;
    /** CAM search cost on *every* access (the critical-path tax). */
    Cycle cam_search_latency = 1;
    double cam_search_energy = 95.0e-12;
    /** Leakage of the CAM buffer (see hwcost model). */
    double buffer_leakage_watts = 1.3e-3;
};

/** Write-through cache + coalescing write-back buffer (§3.3). */
class WtBufferedCache : public BaseTagCache
{
  public:
    WtBufferedCache(const CacheParams &params, const WtBufferParams &wb,
                    mem::NvmMemory &nvm, energy::EnergyMeter *meter);

    CacheAccessResult access(MemOp op, Addr addr, unsigned bytes,
                             std::uint64_t value, std::uint64_t *load_out,
                             Cycle now) override;

    Cycle checkpoint(Cycle now) override;
    void powerLoss() override;
    Cycle drainAndFlush(Cycle now) override;
    double checkpointEnergyBound() const override;
    double leakageWatts() const override;
    const char *designName() const override { return "WT+Buffer"; }

    const WtBufferParams &bufferParams() const { return wb_; }
    std::size_t bufferDepth() const { return buffer_.size(); }
    std::uint64_t coalescedWrites() const { return coalesced_; }

    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

  private:
    struct Pending
    {
        Addr word_addr;
        Cycle ready;
    };

    void chargeCamSearch();
    void drainCompleted(Cycle now);
    int findBuffered(Addr word_addr);

    WtBufferParams wb_;
    std::deque<Pending> buffer_;
    std::uint64_t coalesced_ = 0;
};

} // namespace cache
} // namespace wlcache

#endif // WLCACHE_CACHE_WT_BUFFERED_CACHE_HH
