#include "cache/no_cache.hh"

namespace wlcache {
namespace cache {

NoCache::NoCache(mem::NvmMemory &nvm, energy::EnergyMeter *meter)
    : DataCache("nocache"), nvm_(nvm), meter_(meter)
{
    (void)meter_;
}

CacheAccessResult
NoCache::access(MemOp op, Addr addr, unsigned bytes, std::uint64_t value,
                std::uint64_t *load_out, Cycle now)
{
    if (op == MemOp::Load) {
        ++stats_.loads;
        std::uint64_t v = 0;
        const auto res = nvm_.read(addr, bytes, now, &v);
        if (load_out)
            *load_out = v;
        return { res.ready, false };
    }
    ++stats_.stores;
    const auto res = nvm_.write(addr, bytes, &value, now);
    return { res.ready, false };
}

} // namespace cache
} // namespace wlcache
