/**
 * @file
 * Fully non-volatile write-back cache (paper Figure 1(c),
 * "NVCache-WB"). The array itself is ReRAM-class: contents survive
 * power failure, so no JIT checkpoint energy is needed for the cache,
 * but every access pays NV latency and energy, and leakage/runtime
 * power is the highest of all designs — which is why the paper finds
 * it the slowest cached configuration.
 */

#ifndef WLCACHE_CACHE_NV_CACHE_HH
#define WLCACHE_CACHE_NV_CACHE_HH

#include "cache/base_tag_cache.hh"

namespace wlcache {
namespace cache {

/** Write-back, write-allocate, non-volatile data cache. */
class NVCacheWB : public BaseTagCache
{
  public:
    NVCacheWB(const CacheParams &params, mem::NvmMemory &nvm,
              energy::EnergyMeter *meter);

    CacheAccessResult access(MemOp op, Addr addr, unsigned bytes,
                             std::uint64_t value, std::uint64_t *load_out,
                             Cycle now) override;

    /** Nothing to do: the array is persistent. */
    Cycle checkpoint(Cycle now) override { return now; }

    /** Contents survive an outage. */
    void powerLoss() override {}

    Cycle drainAndFlush(Cycle now) override;

    double checkpointEnergyBound() const override { return 0.0; }

    /** The NV array is part of the persistent state. */
    bool probePersistent(Addr addr, unsigned bytes,
                         void *out) const override
    {
        return tags_.probe(addr, bytes, out);
    }

    /** Dirty NV lines shadow their NVM home locations. */
    void collectPersistentOverlay(
        std::unordered_map<Addr, std::uint8_t> &overlay) const override;

    const char *designName() const override { return "NVCache-WB"; }
};

} // namespace cache
} // namespace wlcache

#endif // WLCACHE_CACHE_NV_CACHE_HH
