/**
 * @file
 * NVSRAM cache, "ideal" variant (paper §2.3.3, Figure 1(d)): a
 * volatile write-back SRAM cache coupled with a same-size on-chip NVM
 * counterpart. At a JIT checkpoint it magically persists exactly the
 * dirty lines into the counterpart; at reboot it restores the whole
 * image, resuming with a warm cache. Because in the worst case every
 * line may be dirty, the system must reserve enough capacitor energy
 * to back up the entire cache — the design's key weakness under
 * frequent outages and the baseline the paper normalizes against.
 */

#ifndef WLCACHE_CACHE_NVSRAM_CACHE_HH
#define WLCACHE_CACHE_NVSRAM_CACHE_HH

#include <cstdint>
#include <vector>

#include "cache/base_tag_cache.hh"

namespace wlcache {
namespace cache {

/** On-chip backup-path parameters for the NVSRAM counterpart. */
struct NvsramParams
{
    /**
     * NVSRAM(full) (paper §2.3.3 [41]): checkpoint the *entire*
     * SRAM array instead of only the dirty lines. The default false
     * models NVSRAM(ideal) [16], the stronger baseline the paper
     * compares against.
     */
    bool backup_full = false;
    /** Energy to back one line up into the on-chip NVM counterpart. */
    double backup_line_energy = 6.0e-9;
    /** Energy to restore one line at boot. */
    double restore_line_energy = 2.0e-9;
    /** Cycles per line during backup (wide on-chip transfer). */
    Cycle backup_line_latency = 2;
    /** Cycles per line during restore. */
    Cycle restore_line_latency = 2;
};

/** Volatile SRAM write-back cache with an ideal NVM backup image. */
class NvsramCacheWB : public BaseTagCache
{
  public:
    NvsramCacheWB(const CacheParams &params, const NvsramParams &nvp,
                  mem::NvmMemory &nvm, energy::EnergyMeter *meter);

    CacheAccessResult access(MemOp op, Addr addr, unsigned bytes,
                             std::uint64_t value, std::uint64_t *load_out,
                             Cycle now) override;

    /**
     * JIT checkpoint: persist the dirty lines into the on-chip
     * counterpart and snapshot the image (the "ideal" design copies
     * dirty lines only — clean data is already safe in NVM and the
     * tag image is mirrored for free).
     */
    Cycle checkpoint(Cycle now) override;

    void powerLoss() override;
    Cycle powerRestore(Cycle now) override;
    Cycle drainAndFlush(Cycle now) override;

    /** Worst case: every line dirty. */
    double checkpointEnergyBound() const override;

    bool probePersistent(Addr addr, unsigned bytes,
                         void *out) const override;

    /** Backed-up dirty lines shadow their NVM home locations. */
    void collectPersistentOverlay(
        std::unordered_map<Addr, std::uint8_t> &overlay) const override;

    const char *designName() const override { return "NVSRAM-WB"; }

    const NvsramParams &nvsramParams() const { return nvsram_; }

    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

  private:
    /** One backed-up line in the counterpart image. */
    struct BackupLine
    {
        Addr addr;
        bool dirty;
        std::vector<std::uint8_t> data;
    };

    NvsramParams nvsram_;
    std::vector<BackupLine> backup_;
    bool has_backup_ = false;
};

} // namespace cache
} // namespace wlcache

#endif // WLCACHE_CACHE_NVSRAM_CACHE_HH
