/**
 * @file
 * Common interface all data-cache designs implement, plus the shared
 * statistics block. The NVP system drives a design through exactly
 * this interface: timed accesses during execution, a JIT checkpoint
 * when the voltage monitor fires, power-loss/restore transitions, and
 * a final drain at program completion.
 */

#ifndef WLCACHE_CACHE_CACHE_IFACE_HH
#define WLCACHE_CACHE_CACHE_IFACE_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "cache/cache_params.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace telemetry { class TimelineBuffer; }

namespace cache {

/** Outcome of a timed cache access. */
struct CacheAccessResult
{
    Cycle ready;  //!< Cycle at which the core may proceed.
    bool hit;     //!< Tag hit (for statistics / tests).
};

/** Statistics every design reports. */
struct CacheStats
{
    explicit CacheStats(stats::StatGroup &g)
        : loads(g.addScalar("loads", "load accesses")),
          stores(g.addScalar("stores", "store accesses")),
          load_hits(g.addScalar("load_hits", "load hits")),
          store_hits(g.addScalar("store_hits", "store hits")),
          fills(g.addScalar("fills", "lines filled from NVM")),
          evictions(g.addScalar("evictions", "lines evicted")),
          dirty_evictions(
              g.addScalar("dirty_evictions", "dirty lines evicted")),
          writebacks(
              g.addScalar("writebacks", "line write-backs to NVM")),
          stall_cycles(
              g.addScalar("stall_cycles", "cycles stalled on stores")),
          checkpoint_lines(g.addScalar("checkpoint_lines",
                                       "lines persisted by JIT ckpt"))
    {}

    stats::Scalar &loads;
    stats::Scalar &stores;
    stats::Scalar &load_hits;
    stats::Scalar &store_hits;
    stats::Scalar &fills;
    stats::Scalar &evictions;
    stats::Scalar &dirty_evictions;
    stats::Scalar &writebacks;
    stats::Scalar &stall_cycles;
    stats::Scalar &checkpoint_lines;
};

/**
 * Abstract data cache. Implementations: NoCache (NVP baseline),
 * VCacheWT, NVCacheWB, NvsramCacheWB (ideal), ReplayCacheModel, and
 * the paper's contribution core::WLCache.
 */
class DataCache
{
  public:
    explicit DataCache(const std::string &name)
        : stat_group_(name), stats_(stat_group_)
    {}
    virtual ~DataCache() = default;

    DataCache(const DataCache &) = delete;
    DataCache &operator=(const DataCache &) = delete;

    /**
     * Timed access issued by the core at cycle @p now.
     *
     * @param op Load or Store.
     * @param addr Byte address (must not cross a line boundary).
     * @param bytes Access width (1/2/4/8).
     * @param value Store data (ignored for loads).
     * @param load_out When non-null on a load, receives the data.
     * @param now Issue cycle.
     */
    virtual CacheAccessResult access(MemOp op, Addr addr, unsigned bytes,
                                     std::uint64_t value,
                                     std::uint64_t *load_out,
                                     Cycle now) = 0;

    /** Complete any asynchronous machinery up to cycle @p now. */
    virtual void tick(Cycle now) { (void)now; }

    /**
     * JIT checkpoint: persist whatever the design needs before the
     * supply collapses. @return completion cycle.
     */
    virtual Cycle checkpoint(Cycle now) = 0;

    /** Volatile state disappears (called after checkpoint()). */
    virtual void powerLoss() = 0;

    /**
     * Boot-time restoration (e.g.\ NVSRAM warm restore).
     * @return completion cycle.
     */
    virtual Cycle powerRestore(Cycle now) { return now; }

    /**
     * Graceful program completion: flush all dirty state to NVM.
     * @return completion cycle.
     */
    virtual Cycle drainAndFlush(Cycle now) = 0;

    /**
     * Worst-case energy (joules) a JIT checkpoint of this design can
     * consume. The NVP system reserves this much capacitor energy
     * above Vmin when deriving Vbackup.
     */
    virtual double checkpointEnergyBound() const = 0;

    /**
     * Functional probe of the *persistent* view this design
     * contributes beyond NVM main memory (NV arrays, NVSRAM backup
     * images). Volatile designs return false after powerLoss().
     */
    virtual bool probePersistent(Addr addr, unsigned bytes,
                                 void *out) const
    {
        (void)addr; (void)bytes; (void)out;
        return false;
    }

    /**
     * Collect the design's persistent bytes that *override* NVM main
     * memory (dirty NV-array lines, NVSRAM backup images) into
     * @p overlay. Designs whose persistence lives entirely in NVM
     * after a checkpoint contribute nothing.
     */
    virtual void collectPersistentOverlay(
        std::unordered_map<Addr, std::uint8_t> &overlay) const
    {
        (void)overlay;
    }

    /** Leakage power of the cache arrays while powered on, watts. */
    virtual double leakageWatts() const = 0;

    /** Human-readable design name. */
    virtual const char *designName() const = 0;

    stats::StatGroup &statGroup() { return stat_group_; }
    const CacheStats &stats() const { return stats_; }
    CacheStats &stats() { return stats_; }

    /**
     * Attach a telemetry timeline (null detaches). Observational
     * only: recording must never change timing or energy.
     */
    void setTimeline(telemetry::TimelineBuffer *tl) { tl_ = tl; }
    telemetry::TimelineBuffer *timeline() const { return tl_; }

    /**
     * Peak concurrently-dirty line count since the last
     * resetDirtyHighWater(); designs without a dirty-line notion
     * report 0.
     */
    virtual unsigned dirtyHighWater() const { return 0; }
    virtual void resetDirtyHighWater() {}

    /** Total asynchronous cleanings issued (WL designs; else 0). */
    virtual std::uint64_t cleaningsIssued() const { return 0; }

    /**
     * Serialize the design's complete mutable state (tags, data,
     * dirty bits, backup images, in-flight queues, statistics) for a
     * deterministic simulation snapshot. The base implementation
     * covers the shared statistics block; overrides must call it
     * first and then append their own state.
     */
    virtual void saveState(SnapshotWriter &w) const;

    /** Restore a state saved with saveState(). */
    virtual void restoreState(SnapshotReader &r);

  protected:
    stats::StatGroup stat_group_;
    CacheStats stats_;
    telemetry::TimelineBuffer *tl_ = nullptr;
};

} // namespace cache
} // namespace wlcache

#endif // WLCACHE_CACHE_CACHE_IFACE_HH
