#include "cache/replay_cache.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace wlcache {
namespace cache {

ReplayCacheModel::ReplayCacheModel(const CacheParams &params,
                                   const ReplayParams &rp,
                                   mem::NvmMemory &nvm,
                                   energy::EnergyMeter *meter)
    : BaseTagCache("replay_cache", params, nvm, meter), replay_(rp)
{
    wlc_assert(replay_.persist_queue_depth > 0);
    wlc_assert(replay_.region_events > 0);
}

void
ReplayCacheModel::tick(Cycle now)
{
    while (!inflight_.empty() && inflight_.front().ready <= now)
        inflight_.pop_front();
}

CacheAccessResult
ReplayCacheModel::access(MemOp op, Addr addr, unsigned bytes,
                         std::uint64_t value, std::uint64_t *load_out,
                         Cycle now)
{
    tick(now);
    auto ref = tags_.lookup(addr);

    if (op == MemOp::Load) {
        ++stats_.loads;
        if (ref) {
            ++stats_.load_hits;
            tags_.touch(*ref);
            chargeArrayRead();
            chargeReplUpdate();
            if (load_out)
                *load_out = readLineData(*ref, addr, bytes);
            return { now + params_.hit_latency, true };
        }
        const auto [line, ready] =
            fillLine(addr, now + params_.miss_lookup_latency);
        chargeArrayRead();
        chargeReplUpdate();
        if (load_out)
            *load_out = readLineData(line, addr, bytes);
        return { ready + params_.hit_latency, false };
    }

    // Store: update the cache (write-allocate so later loads hit) and
    // enqueue an asynchronous word persist to NVM.
    ++stats_.stores;
    Cycle t = now;
    bool hit = false;
    if (ref) {
        hit = true;
        ++stats_.store_hits;
        tags_.touch(*ref);
        writeLineData(*ref, addr, bytes, value);
    } else {
        const auto [line, ready] =
            fillLine(addr, now + params_.miss_lookup_latency);
        writeLineData(line, addr, bytes, value);
        t = ready;
    }
    chargeArrayWrite();
    chargeReplUpdate();

    // Write combining: a store whose word is already waiting in the
    // persist queue merges into that entry instead of issuing a new
    // NVM write (the queue is a coalescing store buffer).
    const Addr word = addr & ~static_cast<Addr>(7);
    for (const Persist &p : inflight_) {
        if (p.word_addr == word) {
            nvm_.poke(addr, bytes, &value);
            ++coalesced_;
            return { t + params_.write_hit_latency, hit };
        }
    }

    // Back-pressure: if the persist queue is full, the store stalls
    // until the oldest persist drains.
    if (inflight_.size() >= replay_.persist_queue_depth) {
        const Cycle wait_until = inflight_.front().ready;
        if (wait_until > t) {
            stats_.stall_cycles += wait_until - t;
            t = wait_until;
        }
        tick(t);
    }

    // Issue the asynchronous persist; the core does not wait for it.
    const auto res = nvm_.write(addr, bytes, &value, t);
    inflight_.push_back({ word, res.ready });
    return { t + params_.write_hit_latency, hit };
}

Cycle
ReplayCacheModel::regionBoundary(Cycle now)
{
    // Two-phase region commit: region N's persists may drain while
    // region N+1 executes; the boundary only waits if the region
    // *before last* has still not fully drained (one region of
    // latency-hiding slack, as ReplayCache's region pipelining
    // provides).
    Cycle t = now;
    if (pending_drain_ > t) {
        stats_.stall_cycles += pending_drain_ - t;
        t = pending_drain_;
    }
    pending_drain_ = inflight_.empty() ? t : inflight_.back().ready;
    // The commit record (double-buffered region id) is written
    // asynchronously; it lands behind the region's last persist.
    ++region_counter_;
    const Addr slot = replay_.commit_marker_addr +
        4 * (region_counter_ & 1);
    nvm_.write(slot, 4, &region_counter_, pending_drain_);
    return t;
}

void
ReplayCacheModel::powerLoss()
{
    tags_.invalidateAll();
    // Whatever was in flight functionally reached NVM already (same
    // values the replayed region will rewrite); the queue state is
    // volatile and disappears.
    inflight_.clear();
    pending_drain_ = 0;
}

Cycle
ReplayCacheModel::drainAndFlush(Cycle now)
{
    // All stores were persisted through the queue; just drain it.
    return regionBoundary(now);
}

void
ReplayCacheModel::saveState(SnapshotWriter &w) const
{
    BaseTagCache::saveState(w);
    w.section("RPLY");
    w.u64(inflight_.size());
    for (const Persist &p : inflight_) {
        w.u64(p.word_addr);
        w.u64(p.ready);
    }
    w.u64(coalesced_);
    w.u32(region_counter_);
    w.u64(pending_drain_);
}

void
ReplayCacheModel::restoreState(SnapshotReader &r)
{
    BaseTagCache::restoreState(r);
    r.section("RPLY");
    inflight_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        Persist p;
        p.word_addr = r.u64();
        p.ready = r.u64();
        inflight_.push_back(p);
    }
    coalesced_ = r.u64();
    region_counter_ = r.u32();
    pending_drain_ = r.u64();
}

} // namespace cache
} // namespace wlcache
