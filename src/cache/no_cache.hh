/**
 * @file
 * The cache-less NVP baseline (Figure 1(a)): every load and store
 * goes straight to NVM main memory. Crash consistency is free — there
 * is no volatile memory state — which is exactly why prior energy
 * harvesting systems shipped without a cache, and why they are slow.
 */

#ifndef WLCACHE_CACHE_NO_CACHE_HH
#define WLCACHE_CACHE_NO_CACHE_HH

#include "cache/cache_iface.hh"
#include "energy/energy_meter.hh"
#include "mem/nvm_memory.hh"

namespace wlcache {
namespace cache {

/** Direct-to-NVM "design" used as the NVP-without-cache baseline. */
class NoCache : public DataCache
{
  public:
    NoCache(mem::NvmMemory &nvm, energy::EnergyMeter *meter);

    CacheAccessResult access(MemOp op, Addr addr, unsigned bytes,
                             std::uint64_t value, std::uint64_t *load_out,
                             Cycle now) override;

    Cycle checkpoint(Cycle now) override { return now; }
    void powerLoss() override {}
    Cycle drainAndFlush(Cycle now) override { return now; }
    double checkpointEnergyBound() const override { return 0.0; }
    double leakageWatts() const override { return 0.0; }
    const char *designName() const override { return "NVP-NoCache"; }

  private:
    mem::NvmMemory &nvm_;
    energy::EnergyMeter *meter_;
};

} // namespace cache
} // namespace wlcache

#endif // WLCACHE_CACHE_NO_CACHE_HH
