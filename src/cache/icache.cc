#include "cache/icache.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "telemetry/timeline.hh"

namespace wlcache {
namespace cache {

InstrCache::InstrCache(const CacheParams &params, ICacheKind kind,
                       mem::NvmMemory &nvm, energy::EnergyMeter *meter,
                       double restore_line_energy,
                       Cycle restore_line_latency)
    : params_(params), kind_(kind), nvm_(nvm), meter_(meter),
      restore_line_energy_(restore_line_energy),
      restore_line_latency_(restore_line_latency),
      stat_group_("icache"),
      stat_fetches_(
          stat_group_.addScalar("fetches", "instructions fetched")),
      stat_hits_(stat_group_.addScalar("line_hits", "line-chunk hits")),
      stat_misses_(stat_group_.addScalar("line_misses", "line fills"))
{
    if (kind_ != ICacheKind::None) {
        tags_ = std::make_unique<TagArray>(params_);
        const unsigned max_insns = params_.line_bytes / 4;
        read_energy_aj_.reserve(max_insns + 1);
        for (unsigned n = 0; n <= max_insns; ++n)
            read_energy_aj_.push_back(energy::toAttojoules(
                params_.access_energy_read * static_cast<double>(n)));
        lru_update_aj_ =
            energy::toAttojoules(params_.lru_update_energy);
        line_fill_aj_ = energy::toAttojoules(params_.line_fill_energy);
    }
}

Cycle
InstrCache::fetchLineChunk(Addr line_addr, unsigned insns, Cycle now)
{
    stat_fetches_ += insns;

    if (kind_ == ICacheKind::None) {
        // Stream the line from NVM, then issue at one per cycle.
        const auto res =
            nvm_.read(line_addr, params_.line_bytes, now, nullptr);
        return res.ready + insns;
    }

    auto ref = tags_->lookup(line_addr);
    Cycle t = now;
    if (ref) {
        ++stat_hits_;
        tags_->touch(*ref);
    } else {
        ++stat_misses_;
        LineRef victim = tags_->victim(line_addr);
        if (tags_->valid(victim))
            tags_->invalidate(victim);
        const auto res = nvm_.read(line_addr, params_.line_bytes,
                                   now + params_.miss_lookup_latency,
                                   nullptr);
        tags_->install(victim, line_addr, nullptr);
        if (meter_)
            meter_->addAj(energy::EnergyCategory::CacheWrite,
                          line_fill_aj_);
        t = res.ready;
    }
    if (meter_) {
        meter_->addAj(energy::EnergyCategory::CacheRead,
                      read_energy_aj_[insns]);
        if (params_.repl == ReplPolicy::LRU)
            meter_->addAj(energy::EnergyCategory::CacheRead,
                          lru_update_aj_);
    }
    // Issue rate: hit_latency cycles per instruction (pipelined SRAM
    // fetch sustains 1/cycle; NV arrays sustain one every 2 cycles).
    return t + static_cast<Cycle>(insns) * params_.hit_latency;
}

Cycle
InstrCache::fetchRun(Addr pc, unsigned count, Cycle now)
{
    wlc_assert(count > 0);
    Cycle t = now;
    Addr addr = pc;
    unsigned left = count;
    const unsigned line_bytes =
        kind_ == ICacheKind::None ? 64u : params_.line_bytes;
    while (left > 0) {
        const Addr line_addr = addr & ~static_cast<Addr>(line_bytes - 1);
        const unsigned off = static_cast<unsigned>(addr - line_addr);
        const unsigned fit = (line_bytes - off) / 4;
        const unsigned n = std::min(left, fit == 0 ? 1u : fit);
        t = fetchLineChunk(line_addr, n, t);
        addr += static_cast<Addr>(n) * 4;
        left -= n;
    }
    return t;
}

void
InstrCache::powerLoss()
{
    switch (kind_) {
      case ICacheKind::None:
      case ICacheKind::NonVolatile:
        break;
      case ICacheKind::Volatile:
        tags_->invalidateAll();
        break;
      case ICacheKind::WarmRestore:
        // Snapshot the (clean) image into the NV counterpart; the
        // ideal NVSRAM design pays nothing for clean lines.
        warm_image_.clear();
        tags_->forEachValidLine([this](LineRef ref, Addr laddr, bool) {
            SavedLine sl;
            sl.addr = laddr;
            sl.data.assign(tags_->data(ref),
                           tags_->data(ref) + tags_->lineBytes());
            warm_image_.push_back(std::move(sl));
        });
        tags_->invalidateAll();
        break;
    }
}

Cycle
InstrCache::powerRestore(Cycle now)
{
    if (kind_ != ICacheKind::WarmRestore || warm_image_.empty())
        return now;
    Cycle t = now;
    for (const auto &sl : warm_image_) {
        LineRef victim = tags_->victim(sl.addr);
        if (tags_->valid(victim))
            tags_->invalidate(victim);
        tags_->install(victim, sl.addr, sl.data.data());
        t += restore_line_latency_;
        if (meter_)
            meter_->add(energy::EnergyCategory::Restore,
                        restore_line_energy_);
    }
    WLC_TIMELINE(tl_, Restore, now, "icache", warm_image_.size(),
                 t - now);
    warm_image_.clear();
    return t;
}

double
InstrCache::leakageWatts() const
{
    return kind_ == ICacheKind::None ? 0.0 : params_.leakage_watts;
}

void
InstrCache::saveState(SnapshotWriter &w) const
{
    w.section("IC  ");
    w.b(tags_ != nullptr);
    if (tags_)
        tags_->saveState(w);
    w.u64(warm_image_.size());
    for (const SavedLine &sl : warm_image_) {
        w.u64(sl.addr);
        w.vecU8(sl.data);
    }
    stat_group_.saveState(w);
}

void
InstrCache::restoreState(SnapshotReader &r)
{
    r.section("IC  ");
    const bool has_tags = r.b();
    wlc_assert(has_tags == (tags_ != nullptr),
               "icache snapshot kind mismatch");
    if (tags_)
        tags_->restoreState(r);
    warm_image_.clear();
    const std::uint64_t n = r.u64();
    warm_image_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        SavedLine sl;
        sl.addr = r.u64();
        sl.data = r.vecU8();
        warm_image_.push_back(std::move(sl));
    }
    stat_group_.restoreState(r);
}

} // namespace cache
} // namespace wlcache
