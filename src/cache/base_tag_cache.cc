#include "cache/base_tag_cache.hh"

#include <cstring>

#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "telemetry/timeline.hh"

namespace wlcache {
namespace cache {

BaseTagCache::BaseTagCache(const std::string &name,
                           const CacheParams &params, mem::NvmMemory &nvm,
                           energy::EnergyMeter *meter)
    : DataCache(name), params_(params), tags_(params), nvm_(nvm),
      meter_(meter)
{
}

void
BaseTagCache::chargeArrayRead()
{
    if (meter_)
        meter_->add(energy::EnergyCategory::CacheRead,
                    params_.access_energy_read);
}

void
BaseTagCache::chargeArrayWrite()
{
    if (meter_)
        meter_->add(energy::EnergyCategory::CacheWrite,
                    params_.access_energy_write);
}

void
BaseTagCache::chargeReplUpdate()
{
    if (meter_ && params_.repl == ReplPolicy::LRU)
        meter_->add(energy::EnergyCategory::CacheWrite,
                    params_.lru_update_energy);
}

void
BaseTagCache::chargeLineFill()
{
    if (meter_)
        meter_->add(energy::EnergyCategory::CacheWrite,
                    params_.line_fill_energy);
}

void
BaseTagCache::chargeLineRead()
{
    if (meter_)
        meter_->add(energy::EnergyCategory::CacheRead,
                    params_.line_read_energy);
}

std::pair<LineRef, Cycle>
BaseTagCache::fillLine(Addr addr, Cycle now)
{
    const Addr laddr = tags_.lineAddrOf(addr);
    LineRef victim = tags_.victim(addr);
    Cycle t = now;
    if (tags_.valid(victim)) {
        ++stats_.evictions;
        WLC_TIMELINE(tl_, Eviction, now, designName(),
                     tags_.lineAddr(victim),
                     tags_.dirty(victim) ? 1 : 0);
        if (tags_.dirty(victim)) {
            ++stats_.dirty_evictions;
            onDirtyEviction(tags_.lineAddr(victim));
            t = writeBackLine(victim, t);
            tags_.setDirty(victim, false);
        }
        tags_.invalidate(victim);
    }
    // Fetch the newest persisted line image (home NVM, or the
    // journal for log-structured designs).
    std::uint8_t buf[256];
    wlc_assert(tags_.lineBytes() <= sizeof(buf));
    t = readLineImage(laddr, buf, tags_.lineBytes(), t);
    tags_.install(victim, laddr, buf);
    chargeLineFill();
    ++stats_.fills;
    return { victim, t };
}

Cycle
BaseTagCache::writeBackLine(LineRef ref, Cycle now)
{
    wlc_assert(tags_.valid(ref));
    chargeLineRead();
    const Cycle ready = persistLine(tags_.lineAddr(ref), tags_.data(ref),
                                    tags_.lineBytes(), now);
    ++stats_.writebacks;
    return ready;
}

void
BaseTagCache::writeLineData(LineRef ref, Addr addr, unsigned bytes,
                            std::uint64_t value)
{
    const unsigned off = tags_.lineOffset(addr);
    wlc_assert(off + bytes <= tags_.lineBytes(),
               "store crosses a cache line boundary");
    std::memcpy(tags_.data(ref) + off, &value, bytes);
}

std::uint64_t
BaseTagCache::readLineData(LineRef ref, Addr addr, unsigned bytes) const
{
    const unsigned off = tags_.lineOffset(addr);
    wlc_assert(off + bytes <= tags_.lineBytes(),
               "load crosses a cache line boundary");
    std::uint64_t v = 0;
    std::memcpy(&v, tags_.data(ref) + off, bytes);
    return v;
}

void
BaseTagCache::saveState(SnapshotWriter &w) const
{
    DataCache::saveState(w);
    tags_.saveState(w);
}

void
BaseTagCache::restoreState(SnapshotReader &r)
{
    DataCache::restoreState(r);
    tags_.restoreState(r);
}

} // namespace cache
} // namespace wlcache
