#include "cache/vcache_wt.hh"

namespace wlcache {
namespace cache {

VCacheWT::VCacheWT(const CacheParams &params, mem::NvmMemory &nvm,
                   energy::EnergyMeter *meter)
    : BaseTagCache("vcache_wt", params, nvm, meter)
{
}

CacheAccessResult
VCacheWT::access(MemOp op, Addr addr, unsigned bytes, std::uint64_t value,
                 std::uint64_t *load_out, Cycle now)
{
    auto ref = tags_.lookup(addr);

    if (op == MemOp::Load) {
        ++stats_.loads;
        if (ref) {
            ++stats_.load_hits;
            tags_.touch(*ref);
            chargeArrayRead();
            chargeReplUpdate();
            if (load_out)
                *load_out = readLineData(*ref, addr, bytes);
            return { now + params_.hit_latency, true };
        }
        // Miss: fill and read from the installed line.
        const auto [line, ready] =
            fillLine(addr, now + params_.miss_lookup_latency);
        chargeArrayRead();
        chargeReplUpdate();
        if (load_out)
            *load_out = readLineData(line, addr, bytes);
        return { ready + params_.hit_latency, false };
    }

    // Store: synchronous NVM update; cache updated only on a hit
    // (no-write-allocate keeps the design simple, as a classic WT).
    ++stats_.stores;
    bool hit = false;
    if (ref) {
        hit = true;
        ++stats_.store_hits;
        tags_.touch(*ref);
        writeLineData(*ref, addr, bytes, value);
        chargeArrayWrite();
        chargeReplUpdate();
        // WT lines are never dirty: NVM gets the same data below.
    }
    const auto res = nvm_.write(addr, bytes, &value, now);
    return { res.ready, hit };
}

} // namespace cache
} // namespace wlcache
