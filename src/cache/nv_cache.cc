#include "cache/nv_cache.hh"

namespace wlcache {
namespace cache {

NVCacheWB::NVCacheWB(const CacheParams &params, mem::NvmMemory &nvm,
                     energy::EnergyMeter *meter)
    : BaseTagCache("nvcache_wb", params, nvm, meter)
{
}

CacheAccessResult
NVCacheWB::access(MemOp op, Addr addr, unsigned bytes, std::uint64_t value,
                  std::uint64_t *load_out, Cycle now)
{
    auto ref = tags_.lookup(addr);

    if (op == MemOp::Load) {
        ++stats_.loads;
        if (ref) {
            ++stats_.load_hits;
            tags_.touch(*ref);
            chargeArrayRead();
            chargeReplUpdate();
            if (load_out)
                *load_out = readLineData(*ref, addr, bytes);
            return { now + params_.hit_latency, true };
        }
        const auto [line, ready] =
            fillLine(addr, now + params_.miss_lookup_latency);
        chargeArrayRead();
        chargeReplUpdate();
        if (load_out)
            *load_out = readLineData(line, addr, bytes);
        return { ready + params_.hit_latency, false };
    }

    // Store: write-allocate write-back.
    ++stats_.stores;
    if (ref) {
        ++stats_.store_hits;
        tags_.touch(*ref);
        writeLineData(*ref, addr, bytes, value);
        tags_.setDirty(*ref, true);
        chargeArrayWrite();
        chargeReplUpdate();
        return { now + params_.write_hit_latency, true };
    }
    const auto [line, ready] =
        fillLine(addr, now + params_.miss_lookup_latency);
    writeLineData(line, addr, bytes, value);
    tags_.setDirty(line, true);
    chargeArrayWrite();
    chargeReplUpdate();
    return { ready + params_.write_hit_latency, false };
}

void
NVCacheWB::collectPersistentOverlay(
    std::unordered_map<Addr, std::uint8_t> &overlay) const
{
    tags_.forEachValidLine([&](cache::LineRef ref, Addr laddr,
                               bool dirty) {
        if (!dirty)
            return;
        const std::uint8_t *bytes = tags_.data(ref);
        for (unsigned i = 0; i < tags_.lineBytes(); ++i)
            overlay[laddr + i] = bytes[i];
    });
}

Cycle
NVCacheWB::drainAndFlush(Cycle now)
{
    Cycle t = now;
    tags_.forEachValidLine([&](LineRef ref, Addr, bool dirty) {
        if (dirty) {
            t = writeBackLine(ref, t);
            tags_.setDirty(ref, false);
        }
    });
    return t;
}

} // namespace cache
} // namespace wlcache
