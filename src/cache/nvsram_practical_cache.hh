/**
 * @file
 * NVSRAM(practical) (paper §2.3.3 [72, 73]): instead of a full
 * shadow array, each set pairs SRAM ways with NV ways. Fills land in
 * the SRAM ways; at run time dirty SRAM lines opportunistically
 * migrate into a clean NV way of the same set, and dirty NV lines
 * are written back to NVM main memory in the background so a free NV
 * way is always available for JIT checkpointing. At a power failure
 * the remaining dirty SRAM lines move into their set's NV way. The
 * costs the paper calls out — extra NVM write traffic from keeping
 * NV ways clean, and slow/hot NV hits when data lives in an NV way —
 * fall out of the model.
 *
 * Geometry here: the configured cache is split way-wise, half SRAM
 * and half NV (a 2-way cache becomes 1 SRAM + 1 NV way per set).
 */

#ifndef WLCACHE_CACHE_NVSRAM_PRACTICAL_CACHE_HH
#define WLCACHE_CACHE_NVSRAM_PRACTICAL_CACHE_HH

#include <deque>

#include "cache/cache_iface.hh"
#include "cache/tag_array.hh"
#include "energy/energy_meter.hh"
#include "mem/nvm_memory.hh"

namespace wlcache {
namespace cache {

/** Parameters specific to the hybrid (practical) NVSRAM. */
struct NvsramPracticalParams
{
    /** Energy to migrate one line SRAM -> NV way. */
    double migrate_line_energy = 6.0e-9;
    /** Cycles for an SRAM -> NV way migration. */
    Cycle migrate_line_latency = 12;
};

/** Way-partitioned SRAM+NV hybrid cache. */
class NvsramPracticalCache : public DataCache
{
  public:
    /**
     * @param params Overall geometry (split way-wise in half) and
     *        SRAM technology numbers.
     * @param nv_tech NV-way technology (latency/energy) parameters.
     * @param prac Migration-path parameters.
     */
    NvsramPracticalCache(const CacheParams &params,
                         const CacheParams &nv_tech,
                         const NvsramPracticalParams &prac,
                         mem::NvmMemory &nvm,
                         energy::EnergyMeter *meter);

    CacheAccessResult access(MemOp op, Addr addr, unsigned bytes,
                             std::uint64_t value, std::uint64_t *load_out,
                             Cycle now) override;

    void tick(Cycle now) override;

    /** Move remaining dirty SRAM lines into their set's NV way. */
    Cycle checkpoint(Cycle now) override;

    /** SRAM ways are lost; NV ways survive. */
    void powerLoss() override;

    Cycle drainAndFlush(Cycle now) override;

    /** Worst case: every SRAM way dirty and migrated. */
    double checkpointEnergyBound() const override;

    void collectPersistentOverlay(
        std::unordered_map<Addr, std::uint8_t> &overlay) const override;

    double leakageWatts() const override;
    const char *designName() const override
    {
        return "NVSRAM-practical";
    }

    const TagArray &sramTags() const { return sram_; }
    const TagArray &nvTags() const { return nv_; }

    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

  private:
    /** Write a full line image from @p tags to NVM main memory. */
    Cycle writeBackLine(TagArray &tags, LineRef ref, Cycle now);

    /**
     * Background maintenance: keep NV ways clean by writing dirty NV
     * lines back to NVM (the "additional traffic" of §2.3.3), and
     * migrate dirty SRAM lines into clean NV ways.
     */
    void maintain(Addr set_addr, Cycle now);

    /** Migrate one dirty SRAM line into its set's NV way. */
    bool migrate(LineRef sram_ref, Cycle now, bool charge_checkpoint);

    CacheParams sram_params_;
    CacheParams nv_params_;
    NvsramPracticalParams prac_;
    TagArray sram_;
    TagArray nv_;
    mem::NvmMemory &nvm_;
    energy::EnergyMeter *meter_;

    /** Outstanding background NV write-backs (ACK cycles). */
    std::deque<std::pair<Addr, Cycle>> inflight_;

    stats::Scalar &stat_migrations_;
    stats::Scalar &stat_nv_hits_;
    stats::Scalar &stat_nv_writebacks_;
};

} // namespace cache
} // namespace wlcache

#endif // WLCACHE_CACHE_NVSRAM_PRACTICAL_CACHE_HH
