#include "cpu/icache_stream.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace wlcache {
namespace cpu {

ICacheStream::ICacheStream(const ICacheStreamParams &params)
    : params_(params), rng_(params.seed ^ 0x1c0defeedull)
{
    wlc_assert(params_.body_min_insns >= 1);
    wlc_assert(params_.body_max_insns >= params_.body_min_insns);
    wlc_assert(params_.code_bytes >= 4 * params_.body_max_insns);
    newRegion();
}

void
ICacheStream::newRegion()
{
    const Addr code_end = params_.code_base + params_.code_bytes;
    Addr start;
    if (rng_.nextBool(params_.call_probability) || body_start_ == 0) {
        // Far jump: a call into another function in the footprint.
        const std::uint64_t slots =
            (params_.code_bytes / 4) - params_.body_max_insns;
        start = params_.code_base + 4 * rng_.nextBelow(slots);
    } else {
        // Fall through past the loop we just finished.
        start = body_start_ + 4 * static_cast<Addr>(body_len_);
        if (start + 4 * params_.body_max_insns >= code_end)
            start = params_.code_base;
    }
    body_start_ = start;
    body_len_ = static_cast<unsigned>(rng_.nextRange(
        params_.body_min_insns, params_.body_max_insns));
    const double iters = rng_.nextExponential(params_.mean_iterations);
    iters_left_ = std::max(1u, static_cast<unsigned>(iters));
    pos_ = 0;
}

FetchRun
ICacheStream::take(unsigned max_insns)
{
    wlc_assert(max_insns >= 1);
    const unsigned n = std::min(max_insns, body_len_ - pos_);
    const FetchRun run{ body_start_ + 4 * static_cast<Addr>(pos_), n };
    pos_ += n;
    if (pos_ >= body_len_) {
        pos_ = 0;
        if (--iters_left_ == 0)
            newRegion();
    }
    return run;
}

void
ICacheStream::saveState(SnapshotWriter &w) const
{
    w.section("STRM");
    rng_.saveState(w);
    w.u64(body_start_);
    w.u32(body_len_);
    w.u32(pos_);
    w.u32(iters_left_);
}

void
ICacheStream::restoreState(SnapshotReader &r)
{
    r.section("STRM");
    rng_.restoreState(r);
    body_start_ = r.u64();
    body_len_ = r.u32();
    pos_ = r.u32();
    iters_left_ = r.u32();
}

} // namespace cpu
} // namespace wlcache
