/**
 * @file
 * Single-issue in-order core model (paper Table 2: 1 GHz, 1 core).
 * Executes recorded workload events: each event carries a compute gap
 * (non-memory instructions) followed by one data reference. Fetches
 * flow through the L1 I-cache; data references through the configured
 * data-cache design. Compute instructions retire one per cycle once
 * fetched; loads are blocking (in-order, no speculation), so the data
 * access latency is fully exposed — except where a design (WL-Cache,
 * ReplayCache) explicitly overlaps asynchronous persists with
 * subsequent instructions.
 */

#ifndef WLCACHE_CPU_INORDER_CORE_HH
#define WLCACHE_CPU_INORDER_CORE_HH

#include <cstdint>

#include "cache/cache_iface.hh"
#include "cache/icache.hh"
#include "cpu/icache_stream.hh"
#include "cpu/register_file.hh"
#include "energy/energy_meter.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace telemetry { class TimelineBuffer; }

namespace cpu {

/** Core timing/energy parameters. */
struct CoreParams
{
    /** Dynamic energy per retired instruction (decode+ALU+regfile). */
    double compute_energy_per_insn = 18.0e-12;
    /** Core logic leakage while powered, watts. */
    double leakage_watts = 0.2e-3;
};

/** The in-order core. */
class InOrderCore
{
  public:
    InOrderCore(const CoreParams &params, cache::InstrCache &icache,
                cache::DataCache &dcache, const ICacheStream &stream,
                energy::EnergyMeter *meter);

    /**
     * Execute one trace event at cycle @p now: fetch and retire the
     * compute gap plus the memory instruction, then perform the data
     * access.
     * @param load_out Receives load data when non-null.
     * @return cycle when the event has fully retired.
     */
    Cycle executeEvent(const MemAccess &ev, Cycle now,
                       std::uint64_t *load_out = nullptr);

    /** Instructions retired so far. */
    std::uint64_t instructionsRetired() const { return instret_; }

    RegisterFile &regs() { return regs_; }
    const RegisterFile &regs() const { return regs_; }
    const CoreParams &params() const { return params_; }

    /** Snapshot the fetch stream (ReplayCache region rollback). */
    ICacheStream streamSnapshot() const { return stream_; }

    /** Rewind the fetch stream to a snapshot. */
    void restoreStream(const ICacheStream &s) { stream_ = s; }

    stats::StatGroup &statGroup() { return stat_group_; }

    /** Attach a telemetry timeline (null detaches); observational. */
    void setTimeline(telemetry::TimelineBuffer *tl) { tl_ = tl; }

    /** Instructions between CoreProgress timeline markers. */
    static constexpr std::uint64_t kProgressStride = 1u << 16;

    /** Serialize stream, registers, retire count, and statistics. */
    void saveState(SnapshotWriter &w) const;

    /** Restore a state saved with saveState(). */
    void restoreState(SnapshotReader &r);

  private:
    CoreParams params_;
    cache::InstrCache &icache_;
    cache::DataCache &dcache_;
    ICacheStream stream_;
    energy::EnergyMeter *meter_;
    telemetry::TimelineBuffer *tl_ = nullptr;
    std::uint64_t next_progress_ = kProgressStride;
    RegisterFile regs_;
    std::uint64_t instret_ = 0;

    stats::StatGroup stat_group_;
    stats::Scalar &stat_insns_;
    stats::Scalar &stat_mem_insns_;
    stats::Scalar &stat_cycles_;
};

} // namespace cpu
} // namespace wlcache

#endif // WLCACHE_CPU_INORDER_CORE_HH
