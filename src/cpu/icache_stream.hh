/**
 * @file
 * Synthetic instruction-address stream. Workload traces record data
 * references plus a compute gap; this generator produces the program
 * counter walk for those gaps using a parametric loop-nest model
 * (sequential bodies, repeated iterations, occasional far calls), so
 * the L1 I-cache sees realistic spatial/temporal locality per
 * application (see DESIGN.md §2 for why this substitution is sound).
 *
 * The stream is deterministic and copyable: a copy is exactly the
 * checkpointed PC state, which is how ReplayCache's region rollback
 * rewinds instruction fetch.
 */

#ifndef WLCACHE_CPU_ICACHE_STREAM_HH
#define WLCACHE_CPU_ICACHE_STREAM_HH

#include <cstdint>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace cpu {

/** Loop-model parameters, seeded per application. */
struct ICacheStreamParams
{
    Addr code_base = 0x0040'0000;      //!< Start of the text segment.
    unsigned code_bytes = 12u << 10;   //!< Code footprint.
    unsigned body_min_insns = 4;       //!< Shortest loop body.
    unsigned body_max_insns = 64;      //!< Longest loop body.
    double mean_iterations = 24.0;     //!< Mean loop trip count.
    double call_probability = 0.12;    //!< Far-jump chance per region.
    std::uint64_t seed = 1;
};

/** A contiguous run of sequential instruction fetches. */
struct FetchRun
{
    Addr pc;
    unsigned count;
};

/** Deterministic synthetic PC walk. */
class ICacheStream
{
  public:
    explicit ICacheStream(const ICacheStreamParams &params);

    /**
     * Produce the next run of at most @p max_insns sequential
     * fetches. Always returns at least one instruction.
     */
    FetchRun take(unsigned max_insns);

    const ICacheStreamParams &params() const { return params_; }

    /** Serialize the PC-walk cursor and its RNG. */
    void saveState(SnapshotWriter &w) const;

    /** Restore a state saved with saveState(). */
    void restoreState(SnapshotReader &r);

  private:
    void newRegion();

    ICacheStreamParams params_;
    Rng rng_;
    Addr body_start_ = 0;
    unsigned body_len_ = 0;    //!< Instructions in the current body.
    unsigned pos_ = 0;         //!< Instruction index within the body.
    unsigned iters_left_ = 0;
};

} // namespace cpu
} // namespace wlcache

#endif // WLCACHE_CPU_ICACHE_STREAM_HH
