/**
 * @file
 * Architectural register file. The simulator replays recorded traces,
 * so register *values* are symbolic; what matters for the NVP model
 * is the register state's size (JIT checkpoint energy into NVFFs) and
 * that a snapshot/restore pair round-trips exactly.
 */

#ifndef WLCACHE_CPU_REGISTER_FILE_HH
#define WLCACHE_CPU_REGISTER_FILE_HH

#include <array>
#include <cstdint>

#include "sim/logging.hh"

namespace wlcache {
namespace cpu {

/** 16 x 32-bit general-purpose registers (ARM-class MCU core). */
class RegisterFile
{
  public:
    static constexpr unsigned kNumRegs = 16;

    std::uint32_t
    read(unsigned idx) const
    {
        wlc_assert(idx < kNumRegs);
        return regs_[idx];
    }

    void
    write(unsigned idx, std::uint32_t value)
    {
        wlc_assert(idx < kNumRegs);
        regs_[idx] = value;
    }

    /** Bytes a JIT checkpoint must persist. */
    static constexpr unsigned sizeBytes() { return kNumRegs * 4; }

    /** Snapshot for NVFF backup. */
    std::array<std::uint32_t, kNumRegs> snapshot() const
    {
        return regs_;
    }

    /** Restore from an NVFF backup image. */
    void
    restore(const std::array<std::uint32_t, kNumRegs> &image)
    {
        regs_ = image;
    }

  private:
    std::array<std::uint32_t, kNumRegs> regs_{};
};

} // namespace cpu
} // namespace wlcache

#endif // WLCACHE_CPU_REGISTER_FILE_HH
