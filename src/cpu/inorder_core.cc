#include "cpu/inorder_core.hh"

#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "telemetry/timeline.hh"

namespace wlcache {
namespace cpu {

InOrderCore::InOrderCore(const CoreParams &params,
                         cache::InstrCache &icache,
                         cache::DataCache &dcache,
                         const ICacheStream &stream,
                         energy::EnergyMeter *meter)
    : params_(params), icache_(icache), dcache_(dcache), stream_(stream),
      meter_(meter), stat_group_("core"),
      stat_insns_(
          stat_group_.addScalar("instructions", "instructions retired")),
      stat_mem_insns_(
          stat_group_.addScalar("mem_instructions", "memory ops issued")),
      stat_cycles_(
          stat_group_.addScalar("busy_cycles", "cycles executing events"))
{
}

Cycle
InOrderCore::executeEvent(const MemAccess &ev, Cycle now,
                          std::uint64_t *load_out)
{
    const unsigned insns = ev.computeGap + 1;
    Cycle t = now;

    // Fetch the gap instructions plus the memory instruction itself.
    unsigned left = insns;
    while (left > 0) {
        const FetchRun run = stream_.take(left);
        t = icache_.fetchRun(run.pc, run.count, t);
        left -= run.count;
    }

    if (meter_)
        meter_->add(energy::EnergyCategory::Compute,
                    params_.compute_energy_per_insn *
                        static_cast<double>(insns));
    instret_ += insns;
    stat_insns_ += static_cast<double>(insns);
    ++stat_mem_insns_;
    if (tl_ && instret_ >= next_progress_) {
        tl_->record(telemetry::EventType::CoreProgress, t, "core",
                    instret_);
        next_progress_ = instret_ + kProgressStride;
    }

    // Data access; in-order commit waits for the cache's answer.
    const auto res = dcache_.access(ev.op, ev.addr, ev.size, ev.value,
                                    load_out, t);

    // Trace replay carries no real dataflow, but the register file
    // still needs deterministic, execution-dependent content so a
    // JIT checkpoint/restore fault of the NVFF bank is observable:
    // fold every access (using the cache's answer for loads, so a
    // wrong load value also perturbs register state) into a register
    // chosen by the address.
    const std::uint64_t folded =
        (ev.op == MemOp::Load && load_out) ? *load_out : ev.value;
    const unsigned reg = static_cast<unsigned>(ev.addr >> 2) %
        RegisterFile::kNumRegs;
    regs_.write(reg, regs_.read(reg) * 0x9e3779b1u +
                         static_cast<std::uint32_t>(folded ^ ev.addr));

    stat_cycles_ += static_cast<double>(res.ready - now);
    return res.ready;
}

void
InOrderCore::saveState(SnapshotWriter &w) const
{
    w.section("CORE");
    stream_.saveState(w);
    w.u64(next_progress_);
    const auto snap = regs_.snapshot();
    for (const std::uint32_t v : snap)
        w.u32(v);
    w.u64(instret_);
    stat_group_.saveState(w);
}

void
InOrderCore::restoreState(SnapshotReader &r)
{
    r.section("CORE");
    stream_.restoreState(r);
    next_progress_ = r.u64();
    std::array<std::uint32_t, RegisterFile::kNumRegs> snap;
    for (auto &v : snap)
        v = r.u32();
    regs_.restore(snap);
    instret_ = r.u64();
    stat_group_.restoreState(r);
}

} // namespace cpu
} // namespace wlcache
