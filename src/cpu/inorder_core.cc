#include "cpu/inorder_core.hh"

#include "sim/logging.hh"

namespace wlcache {
namespace cpu {

InOrderCore::InOrderCore(const CoreParams &params,
                         cache::InstrCache &icache,
                         cache::DataCache &dcache,
                         const ICacheStream &stream,
                         energy::EnergyMeter *meter)
    : params_(params), icache_(icache), dcache_(dcache), stream_(stream),
      meter_(meter), stat_group_("core"),
      stat_insns_(
          stat_group_.addScalar("instructions", "instructions retired")),
      stat_mem_insns_(
          stat_group_.addScalar("mem_instructions", "memory ops issued")),
      stat_cycles_(
          stat_group_.addScalar("busy_cycles", "cycles executing events"))
{
}

Cycle
InOrderCore::executeEvent(const MemAccess &ev, Cycle now,
                          std::uint64_t *load_out)
{
    const unsigned insns = ev.computeGap + 1;
    Cycle t = now;

    // Fetch the gap instructions plus the memory instruction itself.
    unsigned left = insns;
    while (left > 0) {
        const FetchRun run = stream_.take(left);
        t = icache_.fetchRun(run.pc, run.count, t);
        left -= run.count;
    }

    if (meter_)
        meter_->add(energy::EnergyCategory::Compute,
                    params_.compute_energy_per_insn *
                        static_cast<double>(insns));
    instret_ += insns;
    stat_insns_ += static_cast<double>(insns);
    ++stat_mem_insns_;

    // Data access; in-order commit waits for the cache's answer.
    const auto res = dcache_.access(ev.op, ev.addr, ev.size, ev.value,
                                    load_out, t);
    stat_cycles_ += static_cast<double>(res.ready - now);
    return res.ready;
}

} // namespace cpu
} // namespace wlcache
