/**
 * @file
 * Ambient-power traces. The paper evaluates with two RF traces
 * recorded at a home and an office (NVPsim's Trace 1 / Trace 2), a
 * third RF trace from Mementos, and solar/thermal traces. Those
 * recordings are not redistributable, so this module synthesizes
 * deterministic traces whose *stability ordering* and burst character
 * match the paper's description (see DESIGN.md §2): thermal and solar
 * are strong and stable; RF traces are weak and bursty, with Trace 2
 * less stable than Trace 1 and the Mementos trace (tr.3) the most
 * unstable of all.
 */

#ifndef WLCACHE_ENERGY_POWER_TRACE_HH
#define WLCACHE_ENERGY_POWER_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace wlcache {
namespace energy {

/** The ambient-energy environments evaluated in the paper. */
enum class TraceKind
{
    RfHome,     //!< Paper "Trace 1": RF at home, relatively stable.
    RfOffice,   //!< Paper "Trace 2": RF at office, less stable.
    RfMementos, //!< Paper "tr.3": RFID-scale, highly unstable.
    Solar,      //!< Strong, slowly varying.
    Thermal,    //!< Strong, nearly constant.
    Constant,   //!< Fixed power level (testing / no-failure runs).
};

/** Human-readable name for a trace kind ("trace1", "solar", ...). */
const char *traceKindName(TraceKind kind);

/**
 * Inverse of traceKindName(): parse "trace1".."trace3", "solar",
 * "thermal", "constant".
 * @return true and set @p out on a match; false on an unknown name.
 */
bool traceKindFromName(const std::string &name, TraceKind &out);

/**
 * Comma-separated list of every valid trace-kind name, for error
 * messages ("trace1, trace2, trace3, solar, thermal, constant").
 */
std::string traceKindNameList();

/**
 * A piecewise-constant ambient power waveform. Sampled at a fixed
 * period; reads past the end wrap around, so a finite recording models
 * an arbitrarily long environment.
 */
class PowerTrace
{
  public:
    /** Empty trace (powerAt() returns 0). */
    PowerTrace() = default;

    /**
     * @param sample_period_s Seconds covered by each sample.
     * @param samples_w Power in watts for each period.
     */
    PowerTrace(double sample_period_s, std::vector<double> samples_w);

    /** Ambient power in watts at absolute time @p t_s (wraps). */
    double powerAt(double t_s) const;

    /** Duration of one pass over the recording, seconds. */
    double duration() const;

    double samplePeriod() const { return sample_period_s_; }
    std::size_t numSamples() const { return samples_w_.size(); }
    const std::vector<double> &samples() const { return samples_w_; }

    /** Mean power over the whole recording, watts. */
    double meanPower() const;

    /** Coefficient of variation (stddev/mean) — instability measure. */
    double variationCoefficient() const;

    /** Serialize as "period_s\nW0\nW1\n..." text. */
    void save(std::ostream &os) const;

    /** Parse the save() format; throws via fatal() on bad input. */
    static PowerTrace load(std::istream &is);

  private:
    double sample_period_s_ = 1.0e-3;
    std::vector<double> samples_w_;
};

/** Tunable parameters for the synthetic trace generators. */
struct TraceGenConfig
{
    std::uint64_t seed = 1;
    double duration_s = 2.0;          //!< Length of one recording pass.
    double sample_period_s = 20.0e-6; //!< 20 us granularity.
};

/**
 * Synthesize a power trace of the given kind.
 *
 * @param kind Which environment to model.
 * @param cfg Generator seed/length parameters.
 * @param constant_w Power level used when @p kind is Constant.
 */
PowerTrace makeTrace(TraceKind kind, const TraceGenConfig &cfg = {},
                     double constant_w = 5.0e-3);

/**
 * Derive a per-node trace from a shared environment envelope.
 *
 * Fleet scenarios model N sensors in one ambient environment: every
 * node sees the same burst/idle structure (the base trace), modulated
 * by a slowly varying multiplicative gain that is unique to the node —
 * antenna orientation, shadowing, and placement differ per device but
 * drift slowly relative to the 20 us sample grid. The gain is an AR(1)
 * process seeded purely by @p node_id, so derivation is deterministic
 * (same inputs ⇒ identical samples, bit for bit) and different node
 * ids decorrelate. The base trace is never mutated; each call returns
 * an independent PowerTrace so no cursor/phase state can leak between
 * nodes sharing one base.
 *
 * @param base Shared environment trace (returned unchanged when
 *             @p jitter <= 0).
 * @param node_id Fleet node index; sole seed of the jitter stream.
 * @param jitter Relative gain amplitude (stddev of the stationary
 *               AR(1) gain). 0 disables derivation.
 */
PowerTrace deriveNodeTrace(const PowerTrace &base,
                           std::uint64_t node_id, double jitter);

} // namespace energy
} // namespace wlcache

#endif // WLCACHE_ENERGY_POWER_TRACE_HH
