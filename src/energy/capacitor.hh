/**
 * @file
 * Energy-buffer capacitor model. Stored energy follows E = C*V^2/2;
 * the system operates between Vmin (brown-out) and Vmax (fully
 * charged). All conversions between voltage and energy live here so
 * the JIT-checkpointing threshold math (Vbackup) is in one place.
 *
 * The stored level is an integer attojoule count (see attojoule.hh):
 * deposits and draws are exact integer adds, so batching a span of
 * cycles into one operation reaches the same level as applying it
 * cycle-by-cycle — the invariant the skip-ahead loop depends on. The
 * joule-typed API is a thin wrapper that quantizes on the way in and
 * renders on the way out.
 */

#ifndef WLCACHE_ENERGY_CAPACITOR_HH
#define WLCACHE_ENERGY_CAPACITOR_HH

#include "energy/attojoule.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace energy {

/**
 * Ideal capacitor with clamped voltage range [0, Vmax]. The paper's
 * default is 1 uF with Vmin 2.8 V and Vmax 3.5 V (Table 2).
 */
class Capacitor
{
  public:
    /**
     * @param capacitance_f Capacitance in farads.
     * @param vmin_v Minimum operating voltage (brown-out level).
     * @param vmax_v Fully-charged voltage.
     */
    Capacitor(double capacitance_f, double vmin_v, double vmax_v);

    double capacitance() const { return capacitance_f_; }
    double vmin() const { return vmin_v_; }
    double vmax() const { return vmax_v_; }

    /** Current terminal voltage, volts. */
    double voltage() const;

    /** Set the terminal voltage directly (clamped to [0, Vmax]). */
    void setVoltage(double v);

    /** Total stored energy, joules (relative to 0 V). */
    double storedEnergy() const { return toJoules(energy_aj_); }

    /** Total stored energy, attojoules (exact). */
    Attojoules storedAj() const { return energy_aj_; }

    /** Quantized stored energy for voltage @p v (clamped to range). */
    Attojoules energyAjForVoltage(double v) const;

    /** Stored energy at the Vmax rail, attojoules. */
    Attojoules railAj() const { return rail_aj_; }

    /** Energy available above the brown-out level, joules. */
    double energyAboveVmin() const;

    /** Energy stored above the given voltage level, joules. */
    double energyAboveVoltage(double v) const;

    /**
     * Add harvested energy; the level clamps at Vmax (excess ambient
     * energy is discarded, as in a real regulator).
     * @return attojoules actually absorbed — exactly the change in
     * storedAj().
     */
    Attojoules addAj(Attojoules aj);

    /**
     * Draw energy; the level clamps at 0 when the demand exceeds the
     * store.
     * @return attojoules actually drawn — exactly the change in
     * storedAj().
     */
    Attojoules drawAj(Attojoules aj);

    /**
     * Joule-typed addAj(): the deposit is quantized to whole aJ.
     * @return energy actually absorbed — always exactly the change in
     * storedEnergy(), so integrating the return value cannot drift
     * from the buffer level even when the deposit saturates at the
     * rail (the level snaps to the Vmax energy rather than
     * accumulating one rounded add per step).
     */
    double addEnergy(double joules);

    /**
     * Joule-typed drawAj() (possibly dipping below Vmin — the caller
     * decides what a brown-out means).
     * @return energy actually drawn — exactly the change in
     * storedEnergy(), which is less than @p joules when the draw
     * bottoms out at the 0 V rail.
     */
    double drawEnergy(double joules);

    /** True when voltage() < vmin(). */
    bool brownedOut() const;

    /** Energy between two voltage levels for this capacitance. */
    double energyBetween(double v_lo, double v_hi) const;

    /**
     * Voltage the capacitor must hold so that @p joules of energy is
     * available before falling to @p v_floor. Clamped to Vmax.
     */
    double voltageForEnergyAbove(double v_floor, double joules) const;

    /** Serialize the stored-energy level. */
    void saveState(SnapshotWriter &w) const;

    /** Restore a state saved with saveState(). */
    void restoreState(SnapshotReader &r);

  private:
    double energyForVoltage(double v) const;

    double capacitance_f_;
    double vmin_v_;
    double vmax_v_;
    Attojoules rail_aj_;   //!< Stored energy at Vmax, the add clamp.
    Attojoules energy_aj_;
};

} // namespace energy
} // namespace wlcache

#endif // WLCACHE_ENERGY_CAPACITOR_HH
