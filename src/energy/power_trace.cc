#include "energy/power_trace.hh"

#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace wlcache {
namespace energy {

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::RfHome:     return "trace1";
      case TraceKind::RfOffice:   return "trace2";
      case TraceKind::RfMementos: return "trace3";
      case TraceKind::Solar:      return "solar";
      case TraceKind::Thermal:    return "thermal";
      case TraceKind::Constant:   return "constant";
    }
    panic("unknown TraceKind %d", static_cast<int>(kind));
}

namespace {

constexpr TraceKind kAllTraceKinds[] = {
    TraceKind::RfHome, TraceKind::RfOffice, TraceKind::RfMementos,
    TraceKind::Solar,  TraceKind::Thermal,  TraceKind::Constant,
};

} // anonymous namespace

bool
traceKindFromName(const std::string &name, TraceKind &out)
{
    for (const TraceKind k : kAllTraceKinds) {
        if (name == traceKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

std::string
traceKindNameList()
{
    std::string list;
    for (const TraceKind k : kAllTraceKinds) {
        if (!list.empty())
            list += ", ";
        list += traceKindName(k);
    }
    return list;
}

PowerTrace::PowerTrace(double sample_period_s,
                       std::vector<double> samples_w)
    : sample_period_s_(sample_period_s), samples_w_(std::move(samples_w))
{
    wlc_assert(sample_period_s_ > 0.0);
    wlc_assert(!samples_w_.empty());
}

double
PowerTrace::powerAt(double t_s) const
{
    if (samples_w_.empty())
        return 0.0;
    const double dur = duration();
    double t = std::fmod(t_s, dur);
    if (t < 0.0)
        t += dur;
    auto idx = static_cast<std::size_t>(t / sample_period_s_);
    if (idx >= samples_w_.size())
        idx = samples_w_.size() - 1;
    return samples_w_[idx];
}

double
PowerTrace::duration() const
{
    return sample_period_s_ * static_cast<double>(samples_w_.size());
}

double
PowerTrace::meanPower() const
{
    if (samples_w_.empty())
        return 0.0;
    double sum = 0.0;
    for (double w : samples_w_)
        sum += w;
    return sum / static_cast<double>(samples_w_.size());
}

double
PowerTrace::variationCoefficient() const
{
    const double m = meanPower();
    if (m <= 0.0 || samples_w_.size() < 2)
        return 0.0;
    double sq = 0.0;
    for (double w : samples_w_)
        sq += (w - m) * (w - m);
    const double sd =
        std::sqrt(sq / static_cast<double>(samples_w_.size() - 1));
    return sd / m;
}

namespace {

/**
 * Shortest-exact double rendering for save(): %.17g survives a
 * strtod round trip bit-for-bit, so save → load → save is
 * byte-identical (the default 6-significant-digit stream precision
 * silently truncated derived traces).
 */
inline void
writeExactDouble(std::ostream &os, double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf << '\n';
}

} // anonymous namespace

void
PowerTrace::save(std::ostream &os) const
{
    writeExactDouble(os, sample_period_s_);
    for (double w : samples_w_)
        writeExactDouble(os, w);
}

PowerTrace
PowerTrace::load(std::istream &is)
{
    double period = 0.0;
    if (!(is >> period) || period <= 0.0)
        fatal("PowerTrace::load: bad sample period");
    std::vector<double> samples;
    double w;
    while (is >> w)
        samples.push_back(w);
    if (samples.empty())
        fatal("PowerTrace::load: no samples");
    return PowerTrace(period, std::move(samples));
}

namespace {

/**
 * Two-state (burst/idle) semi-Markov RF model. Burst and idle
 * durations are exponentially distributed; burst power wanders with
 * bounded Gaussian steps. The three RF environments differ in mean
 * power, duty cycle, and variability.
 */
struct RfParams
{
    double burst_power_w;   //!< Mean power while a source is active.
    double idle_power_w;    //!< Residual power between bursts.
    double burst_mean_s;    //!< Mean burst duration.
    double idle_mean_s;     //!< Mean idle duration.
    double jitter;          //!< Relative power jitter inside a burst.
};

PowerTrace
makeRfTrace(const RfParams &p, const TraceGenConfig &cfg)
{
    Rng rng(cfg.seed);
    const auto n =
        static_cast<std::size_t>(cfg.duration_s / cfg.sample_period_s);
    std::vector<double> samples;
    samples.reserve(n);

    bool in_burst = rng.nextBool(
        p.burst_mean_s / (p.burst_mean_s + p.idle_mean_s));
    double state_left =
        rng.nextExponential(in_burst ? p.burst_mean_s : p.idle_mean_s);
    double level = p.burst_power_w;

    while (samples.size() < n) {
        if (state_left <= 0.0) {
            in_burst = !in_burst;
            state_left = rng.nextExponential(
                in_burst ? p.burst_mean_s : p.idle_mean_s);
            if (in_burst) {
                level = p.burst_power_w *
                    (1.0 + p.jitter * rng.nextGaussian());
                if (level < 0.2 * p.burst_power_w)
                    level = 0.2 * p.burst_power_w;
            }
        }
        double w = in_burst ? level : p.idle_power_w;
        // Small per-sample flutter so samples are not perfectly flat.
        w *= 1.0 + 0.05 * p.jitter * rng.nextGaussian();
        samples.push_back(w > 0.0 ? w : 0.0);
        state_left -= cfg.sample_period_s;
    }
    return PowerTrace(cfg.sample_period_s, std::move(samples));
}

PowerTrace
makeSolarTrace(const TraceGenConfig &cfg)
{
    Rng rng(cfg.seed ^ 0x50a1a2ull);
    const auto n =
        static_cast<std::size_t>(cfg.duration_s / cfg.sample_period_s);
    std::vector<double> samples;
    samples.reserve(n);
    // Strong base level with slow irradiance drift and occasional
    // cloud dips.
    const double base_w = 46.0e-3;
    double cloud_left = 0.0;
    double cloud_factor = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) * cfg.sample_period_s;
        const double drift =
            1.0 + 0.12 * std::sin(2.0 * M_PI * t / 2.7) +
            0.05 * std::sin(2.0 * M_PI * t / 0.61);
        if (cloud_left <= 0.0 && rng.nextBool(2e-4)) {
            cloud_left = rng.nextDouble(0.02, 0.08);
            cloud_factor = rng.nextDouble(0.45, 0.75);
        }
        double factor = 1.0;
        if (cloud_left > 0.0) {
            factor = cloud_factor;
            cloud_left -= cfg.sample_period_s;
        }
        samples.push_back(base_w * drift * factor);
    }
    return PowerTrace(cfg.sample_period_s, std::move(samples));
}

PowerTrace
makeThermalTrace(const TraceGenConfig &cfg)
{
    Rng rng(cfg.seed ^ 0x7e41ull);
    const auto n =
        static_cast<std::size_t>(cfg.duration_s / cfg.sample_period_s);
    std::vector<double> samples;
    samples.reserve(n);
    // Thermal gradients change very slowly: near-constant output.
    const double base_w = 44.0e-3;
    double level = base_w;
    for (std::size_t i = 0; i < n; ++i) {
        level += 0.03e-3 * rng.nextGaussian();
        if (level < 0.9 * base_w)
            level = 0.9 * base_w;
        if (level > 1.1 * base_w)
            level = 1.1 * base_w;
        samples.push_back(level);
    }
    return PowerTrace(cfg.sample_period_s, std::move(samples));
}

} // anonymous namespace

PowerTrace
makeTrace(TraceKind kind, const TraceGenConfig &cfg, double constant_w)
{
    switch (kind) {
      case TraceKind::RfHome:
        // Paper Trace 1: comparatively stable home RF environment.
        return makeRfTrace({ 24.0e-3, 2.8e-3, 3000.0e-6, 600.0e-6,
                             0.25 },
                           cfg);
      case TraceKind::RfOffice:
        // Paper Trace 2: office RF, shorter bursts, more idle time.
        return makeRfTrace({ 24.0e-3, 2.5e-3, 1700.0e-6, 800.0e-6,
                             0.45 },
                           cfg);
      case TraceKind::RfMementos:
        // Paper tr.3: RFID-scale source, very low duty cycle.
        return makeRfTrace({ 20.0e-3, 1.8e-3, 600.0e-6, 1300.0e-6,
                             0.60 },
                           cfg);
      case TraceKind::Solar:
        return makeSolarTrace(cfg);
      case TraceKind::Thermal:
        return makeThermalTrace(cfg);
      case TraceKind::Constant: {
        const auto n = static_cast<std::size_t>(
            cfg.duration_s / cfg.sample_period_s);
        return PowerTrace(cfg.sample_period_s,
                          std::vector<double>(n ? n : 1, constant_w));
      }
    }
    panic("unknown TraceKind %d", static_cast<int>(kind));
}

PowerTrace
deriveNodeTrace(const PowerTrace &base, std::uint64_t node_id,
                double jitter)
{
    if (jitter <= 0.0 || base.numSamples() == 0)
        return base;
    // Seed purely from the node id, mixed through the golden-ratio
    // multiplier so consecutive ids land far apart in seed space (the
    // Rng's SplitMix init then scrambles further).
    Rng rng(0xf1ee7000dull ^
            (node_id * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull));
    // Stationary AR(1) gain: var(g) = jitter^2 regardless of rho, so
    // `jitter` reads directly as the relative power spread. rho is
    // chosen so the gain decorrelates over ~1 ms (50 samples at the
    // 20 us grid) — slow against bursts, fast against the recording.
    const double rho = 0.98;
    const double sigma = jitter * std::sqrt(1.0 - rho * rho);
    double g = jitter * rng.nextGaussian();
    std::vector<double> samples;
    samples.reserve(base.numSamples());
    for (const double w : base.samples()) {
        double f = 1.0 + g;
        if (f < 0.05)
            f = 0.05; // keep power strictly positive
        samples.push_back(w * f);
        g = rho * g + sigma * rng.nextGaussian();
    }
    return PowerTrace(base.samplePeriod(), std::move(samples));
}

} // namespace energy
} // namespace wlcache
