#include "energy/harvester.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace wlcache {
namespace energy {

namespace {

/** Ceiling division for the crossing-cycle solver. */
inline std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return a / b + (a % b != 0 ? 1 : 0);
}

} // namespace

Harvester::Harvester(PowerTrace trace, double efficiency, bool infinite)
    : trace_(std::move(trace)), efficiency_(efficiency),
      infinite_(infinite)
{
    wlc_assert(efficiency_ > 0.0 && efficiency_ <= 1.0);
    // Snap the sample period to the cycle grid once; every later
    // boundary is then an exact integer, so the skip-ahead and
    // per-cycle walks see identical sample edges.
    period_cycles_ = static_cast<Cycle>(
        std::llround(trace_.samplePeriod() * kCoreFreqHz));
    wlc_assert(period_cycles_ >= 1);
    rate_aj_.reserve(trace_.numSamples());
    for (const double watts : trace_.samples()) {
        rate_aj_.push_back(
            toAttojoules(watts * efficiency_ * kSecondsPerCycle));
    }
}

double
Harvester::currentPower() const
{
    if (trace_.numSamples() == 0)
        return 0.0;
    return trace_.samples()[sample_idx_];
}

Attojoules
Harvester::currentRateAj() const
{
    if (rate_aj_.empty())
        return 0;
    return rate_aj_[sample_idx_];
}

void
Harvester::stepSample()
{
    pos_in_sample_cycles_ = 0;
    if (trace_.numSamples() == 0)
        return;
    sample_idx_ = (sample_idx_ + 1) % trace_.numSamples();
}

Attojoules
Harvester::topUp(Capacitor &cap)
{
    const Attojoules before = cap.storedAj();
    cap.setVoltage(cap.vmax());
    const Attojoules deposited = cap.storedAj() - before;
    total_harvested_aj_ += deposited;
    return deposited;
}

Attojoules
Harvester::advanceWithinSample(Cycle cycles, Capacitor &cap)
{
    wlc_assert(cycles <= period_cycles_ - pos_in_sample_cycles_);
    const Attojoules deposited =
        cap.addAj(scaleAttojoules(currentRateAj(), cycles));
    total_harvested_aj_ += deposited;
    now_cycles_ += cycles;
    pos_in_sample_cycles_ += cycles;
    // The cursor steps *when* the boundary is reached (rebasing the
    // phase to exactly 0), so a call that ends on a boundary leaves
    // currentPower() reading the next sample rather than the stale
    // one until the next advance.
    if (pos_in_sample_cycles_ == period_cycles_)
        stepSample();
    return deposited;
}

Attojoules
Harvester::advanceCycles(Cycle cycles, Capacitor &cap)
{
    if (infinite_) {
        now_cycles_ += cycles;
        return topUp(cap);
    }
    // Per sample segment the deposit is min(n * rate, room), which
    // equals n clamped single-cycle adds (integer water-filling), so
    // this closed form is exactly the per-cycle reference.
    Attojoules deposited = 0;
    while (cycles > 0) {
        const Cycle left = period_cycles_ - pos_in_sample_cycles_;
        const Cycle take = std::min(cycles, left);
        deposited += advanceWithinSample(take, cap);
        cycles -= take;
    }
    return deposited;
}

double
Harvester::advance(double dt_s, Capacitor &cap)
{
    wlc_assert(dt_s >= 0.0);
    const Cycle cycles =
        static_cast<Cycle>(std::llround(dt_s * kCoreFreqHz));
    return toJoules(advanceCycles(cycles, cap));
}

double
Harvester::chargeUntil(Capacitor &cap, double v_target,
                       double max_wait_s, StepMode mode)
{
    wlc_assert(v_target <= cap.vmax() + 1e-12);
    if (infinite_) {
        topUp(cap);
        return 0.0;
    }

    // Work in quantized energy: the target goes through the same
    // quantizer as the add-side rail clamp, so "charge to Vmax" is an
    // exact integer compare rather than a voltage round-trip that can
    // miss by one ulp forever.
    const Attojoules target_aj = cap.energyAjForVoltage(v_target);
    const Cycle start = now_cycles_;
    const Cycle max_wait_cycles = static_cast<Cycle>(
        std::llround(max_wait_s * kCoreFreqHz));
    // A full trace pass that deposits nothing can never reach the
    // target: give up immediately instead of stepping zero-power
    // samples until max_wait_s (an all-outage trace would otherwise
    // take ~5e8 iterations to "time out").
    const Cycle pass_len_cycles =
        period_cycles_ *
        static_cast<Cycle>(
            std::max<std::size_t>(1, trace_.numSamples()));
    Cycle pass_start = now_cycles_;
    Attojoules pass_start_aj = cap.storedAj();

    while (cap.storedAj() < target_aj) {
        if (now_cycles_ - start > max_wait_cycles)
            break;  // dead environment
        if (now_cycles_ - pass_start >= pass_len_cycles) {
            if (cap.storedAj() <= pass_start_aj)
                break;  // zero-gain pass: dead
            pass_start = now_cycles_;
            pass_start_aj = cap.storedAj();
        }
        const Cycle left = period_cycles_ - pos_in_sample_cycles_;
        const Attojoules rate = currentRateAj();
        if (rate == 0) {
            now_cycles_ += left;
            stepSample();
            continue;
        }
        const Attojoules needed = target_aj - cap.storedAj();
        const Cycle want = ceilDiv(needed, rate);
        if (want >= left) {
            // The target is not crossed inside this sample: both
            // modes batch the whole segment (exact by the
            // water-filling argument — a recharge spanning seconds
            // must not cost a billion iterations even in Percycle).
            advanceWithinSample(left, cap);
            continue;
        }
        if (mode == StepMode::SkipAhead) {
            // Closed-form crossing: ceil(needed / rate) cycles.
            advanceWithinSample(want, cap);
        } else {
            // Reference: scan the crossing sample cycle-by-cycle.
            // tests/energy_solver_test.cc asserts this lands on the
            // same cycle as the solver above.
            while (cap.storedAj() < target_aj)
                advanceWithinSample(1, cap);
        }
    }
    return cyclesToSeconds(now_cycles_ - start);
}

void
Harvester::reset()
{
    now_cycles_ = 0;
    total_harvested_aj_ = 0;
    sample_idx_ = 0;
    pos_in_sample_cycles_ = 0;
}

void
Harvester::saveState(SnapshotWriter &w) const
{
    w.section("HARV");
    w.u64(now_cycles_);
    w.u64(total_harvested_aj_);
    w.u64(sample_idx_);
    w.u64(pos_in_sample_cycles_);
}

void
Harvester::restoreState(SnapshotReader &r)
{
    r.section("HARV");
    now_cycles_ = r.u64();
    total_harvested_aj_ = r.u64();
    sample_idx_ = r.u64();
    pos_in_sample_cycles_ = r.u64();
}

} // namespace energy
} // namespace wlcache
