#include "energy/harvester.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace wlcache {
namespace energy {

Harvester::Harvester(PowerTrace trace, double efficiency, bool infinite)
    : trace_(std::move(trace)), efficiency_(efficiency),
      infinite_(infinite)
{
    wlc_assert(efficiency_ > 0.0 && efficiency_ <= 1.0);
}

double
Harvester::currentPower() const
{
    if (trace_.numSamples() == 0)
        return 0.0;
    return trace_.samples()[sample_idx_];
}

void
Harvester::stepSample()
{
    pos_in_sample_ = 0.0;
    if (trace_.numSamples() == 0)
        return;
    sample_idx_ = (sample_idx_ + 1) % trace_.numSamples();
}

double
Harvester::advance(double dt_s, Capacitor &cap)
{
    wlc_assert(dt_s >= 0.0);
    if (infinite_) {
        now_s_ += dt_s;
        const double before = cap.storedEnergy();
        cap.setVoltage(cap.vmax());
        total_harvested_j_ += cap.storedEnergy() - before;
        return cap.storedEnergy() - before;
    }

    const double period = trace_.samplePeriod();
    double deposited = 0.0;
    double remaining = dt_s;
    // Invariant: pos_in_sample_ < period. Sample boundaries rebase
    // the phase to exactly 0 (stepSample) instead of accumulating
    // `pos += step` residue, so millions of sub-steps cannot drift
    // the cursor against the trace; and the cursor steps *when* the
    // boundary is reached, so a call that ends exactly on a boundary
    // leaves currentPower() reading the next sample rather than the
    // stale one until the next advance().
    while (remaining > 0.0) {
        const double left = period - pos_in_sample_;
        if (remaining >= left) {
            deposited +=
                cap.addEnergy(currentPower() * efficiency_ * left);
            now_s_ += left;
            remaining -= left;
            stepSample();
        } else {
            deposited +=
                cap.addEnergy(currentPower() * efficiency_ * remaining);
            pos_in_sample_ += remaining;
            now_s_ += remaining;
            remaining = 0.0;
        }
    }
    total_harvested_j_ += deposited;
    return deposited;
}

double
Harvester::chargeUntil(Capacitor &cap, double v_target, double max_wait_s)
{
    wlc_assert(v_target <= cap.vmax() + 1e-12);
    if (infinite_) {
        const double before = cap.storedEnergy();
        cap.setVoltage(cap.vmax());
        total_harvested_j_ += cap.storedEnergy() - before;
        return 0.0;
    }

    const double period = trace_.samplePeriod();
    const double start = now_s_;
    // Work in the energy domain: comparing voltages after the sqrt
    // round-trip can miss the target by one ulp forever when the
    // target equals Vmax (the add-side clamp uses energy).
    const double target_e = cap.energyBetween(0.0, v_target);
    // A full trace pass that deposits nothing can never reach the
    // target: give up immediately instead of stepping zero-power
    // samples one at a time until max_wait_s (an all-outage trace
    // would otherwise take ~5e8 iterations to "time out").
    const double pass_len_s =
        period * static_cast<double>(
                     std::max<std::size_t>(1, trace_.numSamples()));
    double pass_start_s = now_s_;
    double pass_start_e = cap.storedEnergy();
    while (cap.storedEnergy() < target_e * (1.0 - 1e-12)) {
        if (now_s_ - start > max_wait_s)
            return now_s_ - start;  // dead environment
        if (now_s_ - pass_start_s >= pass_len_s) {
            if (cap.storedEnergy() <= pass_start_e)
                return now_s_ - start;  // zero-gain pass: dead
            pass_start_s = now_s_;
            pass_start_e = cap.storedEnergy();
        }
        // Same exact-phase stepping as advance(): boundaries rebase
        // to 0 via stepSample() and the cursor moves as soon as a
        // sample is exhausted.
        const double left = period - pos_in_sample_;
        const double p = currentPower() * efficiency_;
        if (p <= 0.0) {
            now_s_ += left;
            stepSample();
            continue;
        }
        const double needed = target_e - cap.storedEnergy();
        const double dt = needed / p;
        if (dt >= left) {
            total_harvested_j_ += cap.addEnergy(p * left);
            now_s_ += left;
            stepSample();
        } else {
            total_harvested_j_ += cap.addEnergy(p * dt);
            pos_in_sample_ += dt;
            now_s_ += dt;
        }
    }
    return now_s_ - start;
}

void
Harvester::reset()
{
    now_s_ = 0.0;
    total_harvested_j_ = 0.0;
    sample_idx_ = 0;
    pos_in_sample_ = 0.0;
}

void
Harvester::saveState(SnapshotWriter &w) const
{
    w.section("HARV");
    w.f64(now_s_);
    w.f64(total_harvested_j_);
    w.u64(sample_idx_);
    w.f64(pos_in_sample_);
}

void
Harvester::restoreState(SnapshotReader &r)
{
    r.section("HARV");
    now_s_ = r.f64();
    total_harvested_j_ = r.f64();
    sample_idx_ = r.u64();
    pos_in_sample_ = r.f64();
}

} // namespace energy
} // namespace wlcache
