/**
 * @file
 * Exact integer energy arithmetic. Every energy quantity the run loop
 * integrates (meter accumulators, the capacitor level, harvester
 * deposit rates) is quantized to whole attojoules (1 aJ = 1e-18 J)
 * and accumulated in uint64_t. Integer addition is associative, so
 * integrating a compute gap cycle-by-cycle and integrating it in one
 * closed-form step produce bit-identical state — the invariant the
 * `step_mode = {percycle, skip_ahead}` differential harness rests on
 * (DESIGN.md §15). Doubles would break this: N tiny adds and one
 * N-scaled add round differently.
 *
 * Range: 2^64 aJ ≈ 18.4 J, far above anything an energy-harvesting
 * node moves per run (whole runs consume millijoules; the default
 * capacitor stores ~6 uJ). Conversions saturate defensively anyway.
 */

#ifndef WLCACHE_ENERGY_ATTOJOULE_HH
#define WLCACHE_ENERGY_ATTOJOULE_HH

#include <cmath>
#include <cstdint>

namespace wlcache {
namespace energy {

/** Whole attojoules (1e-18 J) in a uint64_t. */
using Attojoules = std::uint64_t;

/** Attojoules per joule (exactly representable as a double). */
constexpr double kAttojoulesPerJoule = 1.0e18;

/**
 * Saturation ceiling for toAttojoules(): the largest value that stays
 * comfortably inside llround()'s defined int64 range (~9.2e18). ~9 J.
 */
constexpr Attojoules kMaxAttojoules = 9'000'000'000'000'000'000ull;

/**
 * Quantize a non-negative joule amount to whole attojoules (round to
 * nearest). This is the single quantizer every component shares: two
 * call sites quantizing the same double always agree.
 */
inline Attojoules
toAttojoules(double joules)
{
    if (!(joules > 0.0))
        return 0;
    const double aj = joules * kAttojoulesPerJoule;
    if (aj >= static_cast<double>(kMaxAttojoules))
        return kMaxAttojoules;
    return static_cast<Attojoules>(std::llround(aj));
}

/**
 * Scale a per-cycle attojoule rate by a cycle count, saturating at
 * kMaxAttojoules instead of wrapping. A multi-second span at watt
 * scale can exceed 2^64 aJ; saturation keeps the result a valid
 * "more than the capacitor can hold" deposit in that case.
 */
inline Attojoules
scaleAttojoules(Attojoules rate, std::uint64_t cycles)
{
    if (rate != 0 && cycles > kMaxAttojoules / rate)
        return kMaxAttojoules;
    return rate * cycles;
}

/**
 * Convert attojoules back to joules. Division by the exactly
 * representable 1e18 yields the correctly rounded double of the exact
 * rational aj/1e18, so equal integer states always render as equal
 * doubles (reports, JSON records, thresholds).
 */
inline double
toJoules(Attojoules aj)
{
    return static_cast<double>(aj) / kAttojoulesPerJoule;
}

} // namespace energy
} // namespace wlcache

#endif // WLCACHE_ENERGY_ATTOJOULE_HH
