/**
 * @file
 * Energy bookkeeping by consumption category, matching the breakdown
 * the paper reports in Figure 13(b): cache read/write, memory
 * read/write, and compute, plus checkpoint/restore and leakage which
 * the paper folds into the totals.
 *
 * Accumulators are integer attojoules (see attojoule.hh): integer
 * addition is associative, so the skip-ahead loop can batch a gap's
 * leakage as one `cycles * rate` add and land on exactly the state
 * the per-cycle reference loop reaches one add at a time.
 */

#ifndef WLCACHE_ENERGY_ENERGY_METER_HH
#define WLCACHE_ENERGY_ENERGY_METER_HH

#include <array>
#include <cstddef>

#include "energy/attojoule.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace energy {

/** Consumption category for the Fig. 13(b) breakdown. */
enum class EnergyCategory : std::size_t
{
    Compute = 0,
    CacheRead,
    CacheWrite,
    MemRead,
    MemWrite,
    Checkpoint,
    Restore,
    Leakage,
    NumCategories,
};

/** Human-readable category name. */
const char *energyCategoryName(EnergyCategory cat);

/** Accumulates attojoules per category (joule API quantizes). */
class EnergyMeter
{
  public:
    static constexpr std::size_t kNumCategories =
        static_cast<std::size_t>(EnergyCategory::NumCategories);

    /** Add @p joules (quantized to whole aJ) to category @p cat. */
    void add(EnergyCategory cat, double joules);

    /** Add an exact attojoule amount to category @p cat. */
    void addAj(EnergyCategory cat, Attojoules aj);

    /** Consumption of a single category, joules. */
    double get(EnergyCategory cat) const;

    /** Consumption of a single category, attojoules (exact). */
    Attojoules getAj(EnergyCategory cat) const;

    /** Total across all categories, joules. */
    double total() const;

    /** Total across all categories, attojoules (exact). */
    Attojoules totalAj() const;

    /** Zero every category. */
    void reset();

    /** Serialize every category's accumulator. */
    void saveState(SnapshotWriter &w) const;

    /** Restore a state saved with saveState(). */
    void restoreState(SnapshotReader &r);

  private:
    std::array<Attojoules, kNumCategories> aj_{};
};

} // namespace energy
} // namespace wlcache

#endif // WLCACHE_ENERGY_ENERGY_METER_HH
