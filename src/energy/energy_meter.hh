/**
 * @file
 * Energy bookkeeping by consumption category, matching the breakdown
 * the paper reports in Figure 13(b): cache read/write, memory
 * read/write, and compute, plus checkpoint/restore and leakage which
 * the paper folds into the totals.
 */

#ifndef WLCACHE_ENERGY_ENERGY_METER_HH
#define WLCACHE_ENERGY_ENERGY_METER_HH

#include <array>
#include <cstddef>

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace energy {

/** Consumption category for the Fig. 13(b) breakdown. */
enum class EnergyCategory : std::size_t
{
    Compute = 0,
    CacheRead,
    CacheWrite,
    MemRead,
    MemWrite,
    Checkpoint,
    Restore,
    Leakage,
    NumCategories,
};

/** Human-readable category name. */
const char *energyCategoryName(EnergyCategory cat);

/** Accumulates joules per category. */
class EnergyMeter
{
  public:
    static constexpr std::size_t kNumCategories =
        static_cast<std::size_t>(EnergyCategory::NumCategories);

    /** Add @p joules to category @p cat. */
    void add(EnergyCategory cat, double joules);

    /** Consumption of a single category, joules. */
    double get(EnergyCategory cat) const;

    /** Total across all categories, joules. */
    double total() const;

    /** Zero every category. */
    void reset();

    /** Serialize every category's accumulator. */
    void saveState(SnapshotWriter &w) const;

    /** Restore a state saved with saveState(). */
    void restoreState(SnapshotReader &r);

  private:
    std::array<double, kNumCategories> joules_{};
};

} // namespace energy
} // namespace wlcache

#endif // WLCACHE_ENERGY_ENERGY_METER_HH
