/**
 * @file
 * Couples a PowerTrace to a Capacitor: integrates ambient power over
 * simulated time (on and off periods alike) and deposits the
 * harvested energy into the buffer.
 *
 * The harvester clock runs on the core cycle grid (1 cycle = 1 ns):
 * each trace sample is a whole number of cycles wide and deposits a
 * fixed integer attojoule rate per cycle. Integrating N cycles is
 * then exact integer math — `min(N * rate, room)` per sample segment
 * — so the closed-form skip-ahead path and the cycle-by-cycle
 * reference path produce bit-identical capacitor levels, crossing
 * cycles, and harvest totals (DESIGN.md §15).
 */

#ifndef WLCACHE_ENERGY_HARVESTER_HH
#define WLCACHE_ENERGY_HARVESTER_HH

#include <vector>

#include "energy/capacitor.hh"
#include "energy/power_trace.hh"
#include "sim/types.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace energy {

/**
 * Stateful harvester: tracks absolute simulated time in cycles and
 * walks the power trace incrementally so per-event harvesting is O(1)
 * amortized.
 */
class Harvester
{
  public:
    /**
     * @param trace Ambient power waveform (copied).
     * @param efficiency Conversion efficiency in (0, 1].
     * @param infinite When true, models a bench-supply: advance() tops
     *        the capacitor up to Vmax every call (no-failure runs).
     */
    Harvester(PowerTrace trace, double efficiency = 0.7,
              bool infinite = false);

    /**
     * Advance simulated time by @p cycles, harvesting into @p cap.
     * Walks whole sample segments closed-form; `advanceCycles(1)`
     * called N times reaches exactly the same state (integer adds).
     * @return attojoules deposited.
     */
    Attojoules advanceCycles(Cycle cycles, Capacitor &cap);

    /**
     * Seconds-typed advanceCycles() (rounds @p dt_s to whole cycles).
     * @return energy deposited, joules.
     */
    double advance(double dt_s, Capacitor &cap);

    /**
     * Advance time until @p cap reaches @p v_target or @p max_wait_s
     * elapses. Used for the power-off recharge phase. Both step modes
     * walk whole sample segments (a multi-second recharge must not
     * cost a billion iterations); inside the sample where the target
     * is crossed, SkipAhead solves the crossing cycle by division
     * while Percycle scans cycle-by-cycle. The two land on the same
     * cycle — the property tests in tests/energy_solver_test.cc pin
     * that down.
     * @return seconds spent charging.
     */
    double chargeUntil(Capacitor &cap, double v_target,
                       double max_wait_s = 1.0e4,
                       StepMode mode = StepMode::SkipAhead);

    /** Absolute simulated time, cycles. */
    Cycle nowCycles() const { return now_cycles_; }

    /** Absolute simulated wall-clock time, seconds. */
    double now() const { return cyclesToSeconds(now_cycles_); }

    /** Energy deposited into the capacitor since reset(), joules. */
    double totalHarvested() const
    {
        return toJoules(total_harvested_aj_);
    }

    /** Energy deposited since reset(), attojoules (exact). */
    Attojoules totalHarvestedAj() const { return total_harvested_aj_; }

    /** Reset the clock and trace position (new experiment). */
    void reset();

    bool infinite() const { return infinite_; }
    const PowerTrace &trace() const { return trace_; }

    /** Ambient power of the sample the cursor is in, watts. */
    double currentPower() const;

    /** Per-cycle deposit rate of the current sample, attojoules. */
    Attojoules currentRateAj() const;

    /** Cycles covered by one trace sample. */
    Cycle periodCycles() const { return period_cycles_; }

    /** Serialize clock, trace cursor, and harvest accumulator. */
    void saveState(SnapshotWriter &w) const;

    /** Restore a state saved with saveState(). */
    void restoreState(SnapshotReader &r);

  private:
    /** Move the cursor to the start of the next trace sample. */
    void stepSample();

    /**
     * Advance @p cycles (all within the current sample) in one step.
     * @return attojoules deposited.
     */
    Attojoules advanceWithinSample(Cycle cycles, Capacitor &cap);

    /** Top @p cap to Vmax (infinite-supply mode). */
    Attojoules topUp(Capacitor &cap);

    PowerTrace trace_;
    double efficiency_;
    bool infinite_;
    Cycle period_cycles_ = 1;
    std::vector<Attojoules> rate_aj_;  //!< Per-cycle deposit, by sample.
    Cycle now_cycles_ = 0;
    Attojoules total_harvested_aj_ = 0;
    std::size_t sample_idx_ = 0;
    Cycle pos_in_sample_cycles_ = 0;   //!< Invariant: < period_cycles_.
};

} // namespace energy
} // namespace wlcache

#endif // WLCACHE_ENERGY_HARVESTER_HH
