/**
 * @file
 * Couples a PowerTrace to a Capacitor: integrates ambient power over
 * simulated wall-clock time (on and off periods alike) and deposits
 * the harvested energy into the buffer.
 */

#ifndef WLCACHE_ENERGY_HARVESTER_HH
#define WLCACHE_ENERGY_HARVESTER_HH

#include "energy/capacitor.hh"
#include "energy/power_trace.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace energy {

/**
 * Stateful harvester: tracks absolute simulated time and walks the
 * power trace incrementally so per-event harvesting is O(1) amortized.
 */
class Harvester
{
  public:
    /**
     * @param trace Ambient power waveform (copied).
     * @param efficiency Conversion efficiency in (0, 1].
     * @param infinite When true, models a bench-supply: advance() tops
     *        the capacitor up to Vmax every call (no-failure runs).
     */
    Harvester(PowerTrace trace, double efficiency = 0.7,
              bool infinite = false);

    /**
     * Advance simulated time by @p dt_s, harvesting into @p cap.
     * @return energy deposited, joules.
     */
    double advance(double dt_s, Capacitor &cap);

    /**
     * Advance time until @p cap reaches @p v_target or @p max_wait_s
     * elapses. Used for the power-off recharge phase.
     * @return seconds spent charging.
     */
    double chargeUntil(Capacitor &cap, double v_target,
                       double max_wait_s = 1.0e4);

    /** Absolute simulated wall-clock time, seconds. */
    double now() const { return now_s_; }

    /** Energy deposited into the capacitor since reset(), joules. */
    double totalHarvested() const { return total_harvested_j_; }

    /** Reset the clock and trace position (new experiment). */
    void reset();

    bool infinite() const { return infinite_; }
    const PowerTrace &trace() const { return trace_; }

    /** Ambient power of the sample the cursor is in, watts. */
    double currentPower() const;

    /** Serialize clock, trace cursor, and harvest accumulator. */
    void saveState(SnapshotWriter &w) const;

    /** Restore a state saved with saveState(). */
    void restoreState(SnapshotReader &r);

  private:
    /** Move the cursor to the start of the next trace sample. */
    void stepSample();

    PowerTrace trace_;
    double efficiency_;
    bool infinite_;
    double now_s_ = 0.0;
    double total_harvested_j_ = 0.0;
    std::size_t sample_idx_ = 0;
    double pos_in_sample_ = 0.0;
};

} // namespace energy
} // namespace wlcache

#endif // WLCACHE_ENERGY_HARVESTER_HH
