#include "energy/energy_meter.hh"

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace wlcache {
namespace energy {

const char *
energyCategoryName(EnergyCategory cat)
{
    switch (cat) {
      case EnergyCategory::Compute:    return "compute";
      case EnergyCategory::CacheRead:  return "cache_read";
      case EnergyCategory::CacheWrite: return "cache_write";
      case EnergyCategory::MemRead:    return "mem_read";
      case EnergyCategory::MemWrite:   return "mem_write";
      case EnergyCategory::Checkpoint: return "checkpoint";
      case EnergyCategory::Restore:    return "restore";
      case EnergyCategory::Leakage:    return "leakage";
      case EnergyCategory::NumCategories: break;
    }
    panic("unknown EnergyCategory %d", static_cast<int>(cat));
}

void
EnergyMeter::add(EnergyCategory cat, double joules)
{
    wlc_assert(cat != EnergyCategory::NumCategories);
    wlc_assert(joules >= 0.0);
    addAj(cat, toAttojoules(joules));
}

void
EnergyMeter::addAj(EnergyCategory cat, Attojoules aj)
{
    wlc_assert(cat != EnergyCategory::NumCategories);
    aj_[static_cast<std::size_t>(cat)] += aj;
}

double
EnergyMeter::get(EnergyCategory cat) const
{
    return toJoules(getAj(cat));
}

Attojoules
EnergyMeter::getAj(EnergyCategory cat) const
{
    wlc_assert(cat != EnergyCategory::NumCategories);
    return aj_[static_cast<std::size_t>(cat)];
}

double
EnergyMeter::total() const
{
    return toJoules(totalAj());
}

Attojoules
EnergyMeter::totalAj() const
{
    Attojoules sum = 0;
    for (const Attojoules a : aj_)
        sum += a;
    return sum;
}

void
EnergyMeter::reset()
{
    aj_.fill(0);
}

void
EnergyMeter::saveState(SnapshotWriter &w) const
{
    w.section("METR");
    for (const Attojoules a : aj_)
        w.u64(a);
}

void
EnergyMeter::restoreState(SnapshotReader &r)
{
    r.section("METR");
    for (Attojoules &a : aj_)
        a = r.u64();
}

} // namespace energy
} // namespace wlcache
