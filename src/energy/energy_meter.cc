#include "energy/energy_meter.hh"

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace wlcache {
namespace energy {

const char *
energyCategoryName(EnergyCategory cat)
{
    switch (cat) {
      case EnergyCategory::Compute:    return "compute";
      case EnergyCategory::CacheRead:  return "cache_read";
      case EnergyCategory::CacheWrite: return "cache_write";
      case EnergyCategory::MemRead:    return "mem_read";
      case EnergyCategory::MemWrite:   return "mem_write";
      case EnergyCategory::Checkpoint: return "checkpoint";
      case EnergyCategory::Restore:    return "restore";
      case EnergyCategory::Leakage:    return "leakage";
      case EnergyCategory::NumCategories: break;
    }
    panic("unknown EnergyCategory %d", static_cast<int>(cat));
}

void
EnergyMeter::add(EnergyCategory cat, double joules)
{
    wlc_assert(cat != EnergyCategory::NumCategories);
    wlc_assert(joules >= 0.0);
    joules_[static_cast<std::size_t>(cat)] += joules;
}

double
EnergyMeter::get(EnergyCategory cat) const
{
    wlc_assert(cat != EnergyCategory::NumCategories);
    return joules_[static_cast<std::size_t>(cat)];
}

double
EnergyMeter::total() const
{
    double sum = 0.0;
    for (double j : joules_)
        sum += j;
    return sum;
}

void
EnergyMeter::reset()
{
    joules_.fill(0.0);
}

void
EnergyMeter::saveState(SnapshotWriter &w) const
{
    w.section("METR");
    for (const double j : joules_)
        w.f64(j);
}

void
EnergyMeter::restoreState(SnapshotReader &r)
{
    r.section("METR");
    for (double &j : joules_)
        j = r.f64();
}

} // namespace energy
} // namespace wlcache
