#include "energy/capacitor.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace wlcache {
namespace energy {

Capacitor::Capacitor(double capacitance_f, double vmin_v, double vmax_v)
    : capacitance_f_(capacitance_f), vmin_v_(vmin_v), vmax_v_(vmax_v)
{
    wlc_assert(capacitance_f_ > 0.0);
    wlc_assert(vmin_v_ >= 0.0 && vmax_v_ > vmin_v_);
    energy_j_ = energyForVoltage(vmin_v_);
}

double
Capacitor::energyForVoltage(double v) const
{
    return 0.5 * capacitance_f_ * v * v;
}

double
Capacitor::voltage() const
{
    return std::sqrt(2.0 * energy_j_ / capacitance_f_);
}

void
Capacitor::setVoltage(double v)
{
    v = std::clamp(v, 0.0, vmax_v_);
    energy_j_ = energyForVoltage(v);
}

double
Capacitor::energyAboveVmin() const
{
    return std::max(0.0, energy_j_ - energyForVoltage(vmin_v_));
}

double
Capacitor::energyAboveVoltage(double v) const
{
    return std::max(0.0, energy_j_ - energyForVoltage(v));
}

double
Capacitor::addEnergy(double joules)
{
    wlc_assert(joules >= 0.0);
    const double cap_e = energyForVoltage(vmax_v_);
    const double room = std::max(0.0, cap_e - energy_j_);
    const double absorbed = std::min(room, joules);
    energy_j_ += absorbed;
    return absorbed;
}

bool
Capacitor::drawEnergy(double joules)
{
    wlc_assert(joules >= 0.0);
    if (joules > energy_j_) {
        energy_j_ = 0.0;
        return false;
    }
    energy_j_ -= joules;
    return true;
}

bool
Capacitor::brownedOut() const
{
    return voltage() < vmin_v_;
}

double
Capacitor::energyBetween(double v_lo, double v_hi) const
{
    wlc_assert(v_hi >= v_lo);
    return energyForVoltage(v_hi) - energyForVoltage(v_lo);
}

double
Capacitor::voltageForEnergyAbove(double v_floor, double joules) const
{
    wlc_assert(joules >= 0.0);
    const double e = energyForVoltage(v_floor) + joules;
    const double v = std::sqrt(2.0 * e / capacitance_f_);
    return std::min(v, vmax_v_);
}

} // namespace energy
} // namespace wlcache
