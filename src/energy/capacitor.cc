#include "energy/capacitor.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace wlcache {
namespace energy {

Capacitor::Capacitor(double capacitance_f, double vmin_v, double vmax_v)
    : capacitance_f_(capacitance_f), vmin_v_(vmin_v), vmax_v_(vmax_v)
{
    wlc_assert(capacitance_f_ > 0.0);
    wlc_assert(vmin_v_ >= 0.0 && vmax_v_ > vmin_v_);
    rail_aj_ = toAttojoules(energyForVoltage(vmax_v_));
    energy_aj_ = toAttojoules(energyForVoltage(vmin_v_));
}

double
Capacitor::energyForVoltage(double v) const
{
    return 0.5 * capacitance_f_ * v * v;
}

Attojoules
Capacitor::energyAjForVoltage(double v) const
{
    v = std::clamp(v, 0.0, vmax_v_);
    // Quantizing Vmax here and in the constructor goes through the
    // same expression, so a target of "the rail" compares equal to
    // the add-side clamp — no one-ulp misses at the top.
    return std::min(rail_aj_, toAttojoules(energyForVoltage(v)));
}

double
Capacitor::voltage() const
{
    return std::sqrt(2.0 * storedEnergy() / capacitance_f_);
}

void
Capacitor::setVoltage(double v)
{
    energy_aj_ = energyAjForVoltage(v);
}

double
Capacitor::energyAboveVmin() const
{
    return std::max(0.0, storedEnergy() - energyForVoltage(vmin_v_));
}

double
Capacitor::energyAboveVoltage(double v) const
{
    return std::max(0.0, storedEnergy() - energyForVoltage(v));
}

Attojoules
Capacitor::addAj(Attojoules aj)
{
    if (aj >= rail_aj_ - std::min(rail_aj_, energy_aj_)) {
        const Attojoules absorbed =
            rail_aj_ - std::min(rail_aj_, energy_aj_);
        energy_aj_ = rail_aj_;  // Snap exactly to the rail.
        return absorbed;
    }
    energy_aj_ += aj;
    return aj;
}

Attojoules
Capacitor::drawAj(Attojoules aj)
{
    if (aj >= energy_aj_) {
        const Attojoules drawn = energy_aj_;
        energy_aj_ = 0;  // Bottomed out at the 0 V rail.
        return drawn;
    }
    energy_aj_ -= aj;
    return aj;
}

double
Capacitor::addEnergy(double joules)
{
    wlc_assert(joules >= 0.0);
    // The returned deposit must equal the actual change in
    // storedEnergy(): render before and after through the same
    // toJoules() and difference the doubles, so callers integrating
    // the return value track the buffer level exactly.
    const double before = storedEnergy();
    addAj(toAttojoules(joules));
    return storedEnergy() - before;
}

double
Capacitor::drawEnergy(double joules)
{
    wlc_assert(joules >= 0.0);
    const double before = storedEnergy();
    drawAj(toAttojoules(joules));
    return before - storedEnergy();
}

bool
Capacitor::brownedOut() const
{
    return voltage() < vmin_v_;
}

double
Capacitor::energyBetween(double v_lo, double v_hi) const
{
    wlc_assert(v_hi >= v_lo);
    return energyForVoltage(v_hi) - energyForVoltage(v_lo);
}

double
Capacitor::voltageForEnergyAbove(double v_floor, double joules) const
{
    wlc_assert(joules >= 0.0);
    const double e = energyForVoltage(v_floor) + joules;
    const double v = std::sqrt(2.0 * e / capacitance_f_);
    return std::min(v, vmax_v_);
}

void
Capacitor::saveState(SnapshotWriter &w) const
{
    w.section("CAP ");
    w.u64(energy_aj_);
}

void
Capacitor::restoreState(SnapshotReader &r)
{
    r.section("CAP ");
    energy_aj_ = r.u64();
}

} // namespace energy
} // namespace wlcache
