#include "energy/capacitor.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace wlcache {
namespace energy {

Capacitor::Capacitor(double capacitance_f, double vmin_v, double vmax_v)
    : capacitance_f_(capacitance_f), vmin_v_(vmin_v), vmax_v_(vmax_v)
{
    wlc_assert(capacitance_f_ > 0.0);
    wlc_assert(vmin_v_ >= 0.0 && vmax_v_ > vmin_v_);
    energy_j_ = energyForVoltage(vmin_v_);
}

double
Capacitor::energyForVoltage(double v) const
{
    return 0.5 * capacitance_f_ * v * v;
}

double
Capacitor::voltage() const
{
    return std::sqrt(2.0 * energy_j_ / capacitance_f_);
}

void
Capacitor::setVoltage(double v)
{
    v = std::clamp(v, 0.0, vmax_v_);
    energy_j_ = energyForVoltage(v);
}

double
Capacitor::energyAboveVmin() const
{
    return std::max(0.0, energy_j_ - energyForVoltage(vmin_v_));
}

double
Capacitor::energyAboveVoltage(double v) const
{
    return std::max(0.0, energy_j_ - energyForVoltage(v));
}

double
Capacitor::addEnergy(double joules)
{
    wlc_assert(joules >= 0.0);
    // The returned deposit must equal the actual change in energy_j_:
    // computing `absorbed` first and then adding it would let
    // fl(energy_j_ + absorbed) differ from energy_j_ + absorbed by one
    // rounding, so a harvester integrating the return values drifts
    // from the buffer level, and at the Vmax rail the level could sit
    // one ulp below cap_e forever while adds keep "absorbing" denormal
    // amounts.
    const double cap_e = energyForVoltage(vmax_v_);
    if (energy_j_ >= cap_e)
        return 0.0;
    const double before = energy_j_;
    if (joules >= cap_e - energy_j_) {
        energy_j_ = cap_e;  // Snap exactly to the rail.
        return cap_e - before;
    }
    energy_j_ += joules;
    return energy_j_ - before;
}

double
Capacitor::drawEnergy(double joules)
{
    wlc_assert(joules >= 0.0);
    const double before = energy_j_;
    if (joules >= energy_j_) {
        energy_j_ = 0.0;   // Bottomed out at the 0 V rail.
        return before;
    }
    energy_j_ -= joules;
    return before - energy_j_;
}

bool
Capacitor::brownedOut() const
{
    return voltage() < vmin_v_;
}

double
Capacitor::energyBetween(double v_lo, double v_hi) const
{
    wlc_assert(v_hi >= v_lo);
    return energyForVoltage(v_hi) - energyForVoltage(v_lo);
}

double
Capacitor::voltageForEnergyAbove(double v_floor, double joules) const
{
    wlc_assert(joules >= 0.0);
    const double e = energyForVoltage(v_floor) + joules;
    const double v = std::sqrt(2.0 * e / capacitance_f_);
    return std::min(v, vmax_v_);
}

void
Capacitor::saveState(SnapshotWriter &w) const
{
    w.section("CAP ");
    w.f64(energy_j_);
}

void
Capacitor::restoreState(SnapshotReader &r)
{
    r.section("CAP ");
    energy_j_ = r.f64();
}

} // namespace energy
} // namespace wlcache
