/**
 * @file
 * Sequential NVM journal for log-structured write paths (DESIGN.md
 * §17). A reserved region at the top of the NVM address space is
 * divided into fixed-size record slots grouped into segments; cache
 * write-backs append self-describing records (seqno + checksum +
 * line payload) at a cyclic cursor instead of writing their home
 * address in place. Sequential appends hit the banked device model's
 * row buffer where in-place cleans would miss, and spread wear over
 * the region instead of hammering hot lines.
 *
 * The line → slot mapping table is *volatile* — it is lost at every
 * power failure and reconstructed at boot by a timed replay scan of
 * every slot header (max-seqno-wins over all checksum-valid records).
 * The header checksum is the commit point: an append lays down the
 * payload and then the checksummed header in one slot write, so a
 * record whose header validates has its payload on media (the
 * in-order device model admits no other interleaving), and a torn or
 * corrupt header fails the checksum and the slot is skipped cleanly.
 * Correctness never depends on volatile state: seqnos strictly
 * increase and are never reused, and compaction migrates a line home
 * *before* its segment is reused. The functional scan used by the
 * boot replay is the same code the crash-consistency oracle uses to
 * build its persistent overlay, so fault-injection campaigns
 * genuinely exercise the recovery path.
 *
 * Slots are placed at a stride padded up to the channel stripe
 * (beat x banks), so consecutive appends land in the *same* bank and
 * walk its row buffer sequentially — the row-hit advantage over
 * in-place writes is structural, not incidental.
 */

#ifndef WLCACHE_MEM_LOG_NVM_JOURNAL_HH
#define WLCACHE_MEM_LOG_NVM_JOURNAL_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/nvm_memory.hh"
#include "sim/types.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace telemetry { class TimelineBuffer; }

namespace mem {

/** Journal geometry and compaction policy knobs. */
struct NvmLogParams
{
    /** Record slots in the journal region (region capacity). */
    unsigned region_lines = 256;
    /** Reclamation granule; slots_per_segment = this / slot stride. */
    unsigned segment_bytes = 1024;
    /**
     * Live-slot fraction that triggers background compaction on the
     * append path (in addition to the hard free-space reserve the
     * cache requests for its JIT checkpoint).
     */
    double compaction_watermark = 0.75;
};

/** Journal statistics (all monotonic; serialized bit-exactly). */
struct NvmJournalStats
{
    std::uint64_t appends = 0;          //!< Records appended.
    std::uint64_t append_bytes = 0;     //!< Header+payload bytes.
    std::uint64_t replays = 0;          //!< Boot replay scans.
    std::uint64_t replay_records = 0;   //!< Valid records applied.
    std::uint64_t replay_bytes = 0;     //!< Header bytes scanned.
    std::uint64_t compactions = 0;      //!< Segments reclaimed.
    std::uint64_t compacted_lines = 0;  //!< Live lines migrated home.
    std::uint64_t compacted_bytes = 0;  //!< Bytes written home.
};

/** One decoded, checksum-valid journal record (scan output). */
struct NvmLogRecord
{
    std::uint64_t seqno = 0;
    Addr line_addr = 0;
    unsigned slot = 0;
};

/**
 * The append allocator + mapping table + compactor over one NVM
 * journal region. All timed traffic goes through the owning
 * NvmMemory, so device timing, energy, and wear apply exactly as
 * they do to demand traffic.
 */
class NvmJournal
{
  public:
    /** Fixed per-record header: seqno, line_addr, len, checksum. */
    static constexpr unsigned kHeaderBytes = 24;

    /**
     * @param params Geometry/policy knobs (validated here).
     * @param line_bytes Payload size: one cache line.
     * @param nvm Backing memory; the region occupies its top bytes.
     */
    NvmJournal(const NvmLogParams &params, unsigned line_bytes,
               NvmMemory &nvm);

    // --- Geometry --------------------------------------------------------

    unsigned slotBytes() const { return kHeaderBytes + line_bytes_; }
    /**
     * Slot placement stride: slotBytes() padded up to the channel
     * stripe (beat x banks) so every slot starts in the same bank and
     * sequential appends walk that bank's row buffer. The pad bytes
     * are never written.
     */
    unsigned slotStride() const { return slot_stride_; }
    unsigned totalSlots() const { return params_.region_lines; }
    unsigned slotsPerSegment() const { return slots_per_segment_; }
    unsigned numSegments() const { return num_segments_; }
    /** First byte of the journal region (home space ends here). */
    Addr regionStart() const { return region_start_; }
    Addr regionEnd() const { return region_start_ + region_bytes_; }
    Addr slotAddr(unsigned slot) const
    {
        return region_start_ +
            static_cast<Addr>(slot) * slot_stride_;
    }

    // --- Append path -----------------------------------------------------

    /**
     * Guarantee @p reserve_slots appendable slots without further
     * compaction (the JIT checkpoint's worst case), compacting
     * segments ahead of the cursor as needed, and run the watermark
     * policy. @return possibly-advanced cycle.
     */
    Cycle ensureSpace(unsigned reserve_slots, Cycle now);

    /**
     * Append one record for @p line_addr (one line of @p data) at the
     * cursor. The caller must have guaranteed space (ensureSpace, or
     * the checkpoint reserve). @return NVM ack cycle.
     */
    Cycle append(Addr line_addr, const std::uint8_t *data, Cycle now);

    /** Contiguous dead slots ahead of the cursor (cyclic). */
    unsigned freeSlotsAhead() const;

    // --- Read path -------------------------------------------------------

    /** Journal slot currently mapped for @p line_addr, if any. */
    const unsigned *lookup(Addr line_addr) const
    {
        const auto it = mapping_.find(line_addr);
        return it == mapping_.end() ? nullptr : &it->second;
    }

    /**
     * Timed read of the payload of @p slot into @p out.
     * @return NVM data-ready cycle.
     */
    Cycle readPayload(unsigned slot, std::uint8_t *out,
                      Cycle now) const;

    /** Functional (untimed) payload peek of @p slot. */
    void peekPayload(unsigned slot, std::uint8_t *out) const;

    // --- Crash recovery --------------------------------------------------

    /** Volatile state is gone (mapping, cursor, live counts). */
    void onPowerLoss();

    /**
     * Boot replay: timed scan of every slot *header* (payloads stay
     * in NVM — the mapping only needs to know where they are),
     * checksum-validate each, rebuild the mapping (max seqno wins per
     * line), the next seqno, and the cursor. Runs before the NVFF
     * restore completes. @return cycle when the last read is ready.
     */
    Cycle bootReplay(Cycle now);

    /**
     * The functional core of bootReplay(): decode every checksum-
     * valid record in the region without timing or energy. Shared by
     * the boot path, the consistency oracle's overlay collection, and
     * probePersistent(), so what the oracle checks is exactly what a
     * post-outage boot would reconstruct.
     */
    std::vector<NvmLogRecord> scan() const;

    /**
     * Migrate every live line home and reclaim every segment (timed);
     * used at graceful completion so raw NVM equals the final image.
     * @return completion cycle.
     */
    Cycle compactAll(Cycle now);

    // --- Introspection ---------------------------------------------------

    const NvmJournalStats &stats() const { return stats_; }
    /** Lines whose newest persisted version lives in the journal. */
    std::size_t liveLines() const { return mapping_.size(); }
    std::uint64_t nextSeqno() const { return next_seqno_; }
    unsigned cursor() const { return cursor_; }

    void setTimeline(telemetry::TimelineBuffer *tl) { tl_ = tl; }

    /** Serialize cursor/seqno/mapping/stats ("NLOG" section). */
    void saveState(SnapshotWriter &w) const;
    void restoreState(SnapshotReader &r);

  private:
    /** slot_line_ sentinel: slot holds no live record. */
    static constexpr Addr kNoLine = ~static_cast<Addr>(0);

    unsigned segmentOf(unsigned slot) const
    {
        return slot / slots_per_segment_;
    }

    /** Record @p slot as the live location of @p line_addr. */
    void mapLine(Addr line_addr, unsigned slot);
    /** Drop the mapping entry for @p line_addr. */
    void unmapLine(Addr line_addr);

    /**
     * First live slot at or after the cursor in cyclic order, or -1
     * when nothing is live. Liveness is per-slot (not per-segment)
     * because a replay-reconstructed cursor can land in a segment
     * that still holds live wrap-around records ahead of it.
     */
    int firstLiveSlotAhead() const;

    /**
     * Reclaim one segment: timed journal payload reads + timed home
     * line writes for every live record (ascending slot order), then
     * every slot in the segment is free for reuse.
     * @return completion cycle.
     */
    Cycle compactSegment(unsigned seg, Cycle now);

    NvmLogParams params_;
    unsigned line_bytes_;
    NvmMemory &nvm_;
    telemetry::TimelineBuffer *tl_ = nullptr;

    Addr region_start_ = 0;
    std::size_t region_bytes_ = 0;
    unsigned slot_stride_ = 0;
    unsigned slots_per_segment_ = 0;
    unsigned num_segments_ = 0;

    /** line home address -> journal slot of its newest record. */
    std::unordered_map<Addr, unsigned> mapping_;
    /** Inverse view: per-slot live line address (kNoLine = dead). */
    std::vector<Addr> slot_line_;
    unsigned cursor_ = 0;          //!< Next slot to append into.
    std::uint64_t next_seqno_ = 1; //!< Strictly increasing, never reused.

    NvmJournalStats stats_;
};

} // namespace mem
} // namespace wlcache

#endif // WLCACHE_MEM_LOG_NVM_JOURNAL_HH
