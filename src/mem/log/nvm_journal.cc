#include "mem/log/nvm_journal.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "telemetry/timeline.hh"

namespace wlcache {
namespace mem {

namespace {

/** FNV-1a-32 over the record header fields. */
std::uint32_t
fnv1a32(const std::uint8_t *data, std::size_t n,
        std::uint32_t h = 0x811c9dc5u)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x01000193u;
    }
    return h;
}

void
putU64(std::uint8_t *p, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
putU32(std::uint8_t *p, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

} // anonymous namespace

NvmJournal::NvmJournal(const NvmLogParams &params, unsigned line_bytes,
                       NvmMemory &nvm)
    : params_(params), line_bytes_(line_bytes), nvm_(nvm)
{
    wlc_assert(line_bytes_ >= 4 && line_bytes_ <= 256,
               "journal payload must be one cache line");
    wlc_assert(params_.region_lines >= 8,
               "log.region_lines too small (need >= 8 slots)");
    wlc_assert(params_.segment_bytes >= slotBytes(),
               "log.segment_bytes %u below one record slot (%u B)",
               params_.segment_bytes, slotBytes());
    wlc_assert(params_.compaction_watermark > 0.0 &&
                   params_.compaction_watermark < 1.0,
               "log.compaction_watermark must be in (0, 1)");

    // Pad the slot stride to the channel stripe (beat x banks): every
    // slot then starts in the same bank, so sequential appends and
    // the boot header scan walk one bank's row buffer instead of
    // striding across all banks (where every access would re-open a
    // row). The pad bytes are never written.
    const unsigned stripe = kChannelBeatBytes * nvm_.params().banks;
    slot_stride_ = (slotBytes() + stripe - 1) / stripe * stripe;
    wlc_assert(params_.segment_bytes >= slot_stride_,
               "log.segment_bytes %u below one slot stride (%u B)",
               params_.segment_bytes, slot_stride_);

    slots_per_segment_ = params_.segment_bytes / slot_stride_;
    num_segments_ =
        (params_.region_lines + slots_per_segment_ - 1) /
        slots_per_segment_;
    wlc_assert(num_segments_ >= 2,
               "journal needs >= 2 segments (region_lines %u, "
               "%u slots/segment)",
               params_.region_lines, slots_per_segment_);
    // Round the region down to whole segments so reclamation is
    // uniform; the ring must keep a checkpoint's worth of appendable
    // slots even with one whole segment un-reclaimable.
    params_.region_lines = num_segments_ * slots_per_segment_;
    wlc_assert(params_.region_lines - slots_per_segment_ >= 8,
               "journal too small: one segment of slack leaves fewer "
               "than 8 appendable slots");

    region_bytes_ =
        static_cast<std::size_t>(params_.region_lines) * slot_stride_;
    wlc_assert(region_bytes_ < nvm_.sizeBytes() / 2,
               "journal region (%zu B) would cover half the NVM",
               region_bytes_);
    // Carve the region out of the top of the address space, aligned
    // down to a line so home-space line addresses never overlap it.
    region_start_ = (nvm_.sizeBytes() - region_bytes_) /
        line_bytes_ * line_bytes_;

    slot_line_.assign(params_.region_lines, kNoLine);
}

void
NvmJournal::mapLine(Addr line_addr, unsigned slot)
{
    const auto it = mapping_.find(line_addr);
    if (it != mapping_.end()) {
        slot_line_[it->second] = kNoLine;
        it->second = slot;
    } else {
        mapping_.emplace(line_addr, slot);
    }
    slot_line_[slot] = line_addr;
}

void
NvmJournal::unmapLine(Addr line_addr)
{
    const auto it = mapping_.find(line_addr);
    if (it == mapping_.end())
        return;
    slot_line_[it->second] = kNoLine;
    mapping_.erase(it);
}

unsigned
NvmJournal::freeSlotsAhead() const
{
    unsigned free = 0;
    for (; free < params_.region_lines; ++free) {
        const unsigned slot = (cursor_ + free) % params_.region_lines;
        if (slot_line_[slot] != kNoLine)
            break;
    }
    return free;
}

int
NvmJournal::firstLiveSlotAhead() const
{
    for (unsigned i = 0; i < params_.region_lines; ++i) {
        const unsigned slot = (cursor_ + i) % params_.region_lines;
        if (slot_line_[slot] != kNoLine)
            return static_cast<int>(slot);
    }
    return -1;
}

Cycle
NvmJournal::compactSegment(unsigned seg, Cycle now)
{
    // Ascending slot order via the inverse view: deterministic
    // regardless of the unordered mapping's iteration order, so cold
    // runs, snapshot resumes, and both step modes migrate (and hence
    // time) identically.
    Cycle t = now;
    std::uint8_t buf[256];
    unsigned migrated = 0;
    const unsigned lo = seg * slots_per_segment_;
    for (unsigned slot = lo; slot < lo + slots_per_segment_; ++slot) {
        const Addr line = slot_line_[slot];
        if (line == kNoLine)
            continue;
        // Migrate home *before* the slot can be reused: a crash at
        // any point leaves either the (still-valid) journal record or
        // the home copy carrying the bytes.
        t = readPayload(slot, buf, t);
        const auto res = nvm_.writeLine(line, buf, line_bytes_, t);
        t = res.ready;
        unmapLine(line);
        ++migrated;
        ++stats_.compacted_lines;
        stats_.compacted_bytes += line_bytes_;
    }
    ++stats_.compactions;
    WLC_TIMELINE(tl_, LogCompact, now, "nvm_log", seg, migrated);
    return t;
}

Cycle
NvmJournal::ensureSpace(unsigned reserve_slots, Cycle now)
{
    wlc_assert(reserve_slots + 1 <=
                   params_.region_lines - slots_per_segment_,
               "journal reserve %u unreachable with %u slots in %u-"
               "slot segments",
               reserve_slots, params_.region_lines,
               slots_per_segment_);
    Cycle t = now;
    // Hard guarantee: the JIT checkpoint must be able to append its
    // worst case without compacting (compaction's home writes are
    // not in the checkpoint energy bound). Compact the segment that
    // holds the blocking (oldest-ahead) live slot until enough
    // contiguous dead slots sit in front of the cursor.
    while (freeSlotsAhead() < reserve_slots + 1) {
        const int slot = firstLiveSlotAhead();
        wlc_assert(slot >= 0, "journal wedged: no reclaimable slot");
        t = compactSegment(segmentOf(static_cast<unsigned>(slot)), t);
    }
    // Soft watermark: bound the live set (mapping footprint, replay
    // cost) by migrating the oldest-ahead segment once the live
    // fraction crosses the knob.
    const double live_frac =
        static_cast<double>(mapping_.size()) /
        static_cast<double>(params_.region_lines);
    if (live_frac >= params_.compaction_watermark) {
        const int slot = firstLiveSlotAhead();
        if (slot >= 0)
            t = compactSegment(segmentOf(static_cast<unsigned>(slot)),
                               t);
    }
    return t;
}

Cycle
NvmJournal::append(Addr line_addr, const std::uint8_t *data, Cycle now)
{
    wlc_assert(line_addr % line_bytes_ == 0,
               "journal append of unaligned line 0x%llx",
               static_cast<unsigned long long>(line_addr));
    wlc_assert(line_addr + line_bytes_ <= region_start_,
               "journal append for a line inside the journal region "
               "(0x%llx; home space ends at 0x%llx)",
               static_cast<unsigned long long>(line_addr),
               static_cast<unsigned long long>(region_start_));

    // Payload first, checksummed header last: the header is the
    // commit point. The slot is laid down in one in-order device
    // write, so a crash leaves either no valid header (slot skipped
    // at replay) or a fully persisted record — never a validated
    // header over a torn payload.
    std::uint8_t rec[kHeaderBytes + 256];
    putU64(rec + 0, next_seqno_);
    putU64(rec + 8, line_addr);
    putU32(rec + 16, line_bytes_);
    putU32(rec + 20, fnv1a32(rec, 20));
    std::memcpy(rec + kHeaderBytes, data, line_bytes_);

    const auto res = nvm_.write(slotAddr(cursor_), slotBytes(), rec,
                                now);
    mapLine(line_addr, cursor_);
    WLC_TIMELINE(tl_, LogAppend, now, "nvm_log", line_addr, cursor_);
    ++stats_.appends;
    stats_.append_bytes += slotBytes();
    cursor_ = (cursor_ + 1) % params_.region_lines;
    ++next_seqno_;
    return res.ready;
}

Cycle
NvmJournal::readPayload(unsigned slot, std::uint8_t *out,
                        Cycle now) const
{
    wlc_assert(slot < params_.region_lines, "journal slot %u oob",
               slot);
    const auto res = nvm_.read(slotAddr(slot) + kHeaderBytes,
                               line_bytes_, now, out);
    return res.ready;
}

void
NvmJournal::peekPayload(unsigned slot, std::uint8_t *out) const
{
    wlc_assert(slot < params_.region_lines, "journal slot %u oob",
               slot);
    nvm_.peek(slotAddr(slot) + kHeaderBytes, line_bytes_, out);
}

std::vector<NvmLogRecord>
NvmJournal::scan() const
{
    std::vector<NvmLogRecord> out;
    std::uint8_t hdr[kHeaderBytes];
    for (unsigned slot = 0; slot < params_.region_lines; ++slot) {
        nvm_.peek(slotAddr(slot), kHeaderBytes, hdr);
        const std::uint64_t seqno = getU64(hdr + 0);
        const Addr line = getU64(hdr + 8);
        const std::uint32_t len = getU32(hdr + 16);
        const std::uint32_t csum = getU32(hdr + 20);
        if (seqno == 0 || len != line_bytes_)
            continue;  // Unwritten slot or foreign geometry.
        if (line % line_bytes_ != 0 ||
            line + line_bytes_ > region_start_)
            continue;  // Not a valid home line address.
        if (csum != fnv1a32(hdr, 20))
            continue;  // Torn or corrupt record: skip it cleanly.
        out.push_back(NvmLogRecord{ seqno, line, slot });
    }
    return out;
}

void
NvmJournal::onPowerLoss()
{
    mapping_.clear();
    std::fill(slot_line_.begin(), slot_line_.end(), kNoLine);
    cursor_ = 0;
}

Cycle
NvmJournal::bootReplay(Cycle now)
{
    // Timed pass: read every slot header through the device model —
    // honest recovery latency charged before execution resumes.
    // Payloads stay where they are; the rebuilt mapping serves them
    // on demand. Sequential same-bank headers ride the row buffer.
    Cycle t = now;
    std::uint8_t hdr[kHeaderBytes];
    for (unsigned slot = 0; slot < params_.region_lines; ++slot) {
        const auto res = nvm_.read(slotAddr(slot), kHeaderBytes, t,
                                   hdr);
        t = res.ready;
    }
    stats_.replay_bytes +=
        static_cast<std::uint64_t>(params_.region_lines) *
        kHeaderBytes;

    // Functional rebuild from the same bytes: newest record per line
    // wins; the cursor resumes after the globally newest record.
    mapping_.clear();
    std::fill(slot_line_.begin(), slot_line_.end(), kNoLine);
    std::unordered_map<Addr, std::uint64_t> best;
    std::uint64_t max_seqno = 0;
    unsigned max_slot = 0;
    const std::vector<NvmLogRecord> records = scan();
    for (const NvmLogRecord &r : records) {
        const auto it = best.find(r.line_addr);
        if (it == best.end() || r.seqno > it->second) {
            best[r.line_addr] = r.seqno;
            mapLine(r.line_addr, r.slot);
        }
        if (r.seqno > max_seqno) {
            max_seqno = r.seqno;
            max_slot = r.slot;
        }
    }
    cursor_ = max_seqno == 0
        ? 0 : (max_slot + 1) % params_.region_lines;
    next_seqno_ = std::max(next_seqno_, max_seqno + 1);
    ++stats_.replays;
    stats_.replay_records += records.size();
    WLC_TIMELINE(tl_, LogReplay, now, "nvm_log", records.size(),
                 mapping_.size());
    return t;
}

Cycle
NvmJournal::compactAll(Cycle now)
{
    Cycle t = now;
    // Cyclic order from the oldest-ahead slot keeps the migration
    // sequence identical whether the live set was built by execution
    // or by a replay scan.
    for (int slot = firstLiveSlotAhead(); slot >= 0;
         slot = firstLiveSlotAhead())
        t = compactSegment(segmentOf(static_cast<unsigned>(slot)), t);
    wlc_assert(mapping_.empty(), "journal live after compactAll");
    return t;
}

void
NvmJournal::saveState(SnapshotWriter &w) const
{
    w.section("NLOG");
    w.u32(cursor_);
    w.u64(next_seqno_);
    // Mapping sorted by line address: deterministic byte stream.
    std::vector<std::pair<Addr, unsigned>> entries(mapping_.begin(),
                                                   mapping_.end());
    std::sort(entries.begin(), entries.end());
    w.u64(entries.size());
    for (const auto &[line, slot] : entries) {
        w.u64(line);
        w.u32(slot);
    }
    w.u64(stats_.appends);
    w.u64(stats_.append_bytes);
    w.u64(stats_.replays);
    w.u64(stats_.replay_records);
    w.u64(stats_.replay_bytes);
    w.u64(stats_.compactions);
    w.u64(stats_.compacted_lines);
    w.u64(stats_.compacted_bytes);
}

void
NvmJournal::restoreState(SnapshotReader &r)
{
    r.section("NLOG");
    cursor_ = r.u32();
    next_seqno_ = r.u64();
    mapping_.clear();
    std::fill(slot_line_.begin(), slot_line_.end(), kNoLine);
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr line = r.u64();
        const unsigned slot = r.u32();
        mapLine(line, slot);
    }
    stats_.appends = r.u64();
    stats_.append_bytes = r.u64();
    stats_.replays = r.u64();
    stats_.replay_records = r.u64();
    stats_.replay_bytes = r.u64();
    stats_.compactions = r.u64();
    stats_.compacted_lines = r.u64();
    stats_.compacted_bytes = r.u64();
}

} // namespace mem
} // namespace wlcache
