/**
 * @file
 * Timing and energy parameters of the byte-addressable NVM (ReRAM)
 * main memory, following the paper's Table 2:
 *
 *   tCK/tBURST/tRCD/tCL/tWTR/tWR/tXAW = 0.94/7.5/18/15/7.5/150/30 ns
 *
 * At the 1 GHz core clock (1 cycle == 1 ns) a word read costs
 * tRCD + tCL + tBURST and a word write occupies the channel for tWR
 * after the data burst. Energy numbers are per byte, calibrated to
 * the FRAM/ReRAM class of devices the paper targets.
 *
 * The device *timing core* behind these numbers is pluggable
 * (mem/device/): the legacy single-cursor model reproduces the
 * original fixed-latency arbitration bit for bit, while the banked
 * queued model adds per-bank request queues with back-pressure,
 * write-to-read turnaround, and row-buffer activation accounting.
 * Endurance tracking, address-rotation wear leveling, and an STT-RAM
 * hybrid fast region layer on top of either model.
 */

#ifndef WLCACHE_MEM_NVM_PARAMS_HH
#define WLCACHE_MEM_NVM_PARAMS_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace wlcache {
namespace mem {

/**
 * Bytes per beat on the shared data channel. Bank interleave and
 * burst-count math both derive from this one constant: the channel
 * moves 8 bytes per t_burst window, so consecutive beats — not
 * consecutive 4-byte words — land in consecutive banks.
 */
inline constexpr unsigned kChannelBeatBytes = 8;

/** Which timing core arbitrates the device (mem/device/). */
enum class NvmModel : std::uint8_t
{
    SingleCursor,  //!< Legacy channel + per-bank busy cursors.
    BankedQueue,   //!< Per-bank queues, tWTR, row-buffer accounting.
};

/** Wear-leveling address remap scheme (timing/wear identity only). */
enum class NvmWearScheme : std::uint8_t
{
    None,    //!< Physical line == logical line.
    Rotate,  //!< Start-gap style rotation every rotate_period writes.
};

/** Stable short name ("legacy" / "banked"). */
const char *nvmModelName(NvmModel m);

/** Inverse of nvmModelName(); false on an unknown name. */
bool nvmModelFromName(const std::string &name, NvmModel &out);

/** Stable short name ("none" / "rotate"). */
const char *nvmWearSchemeName(NvmWearScheme s);

/** Inverse of nvmWearSchemeName(); false on an unknown name. */
bool nvmWearSchemeFromName(const std::string &name, NvmWearScheme &out);

/** NVM device timing/energy/geometry parameters. */
struct NvmParams
{
    /** Size of the simulated physical address space, bytes. */
    std::size_t size_bytes = 8u << 20;

    /**
     * Independent banks, beat-interleaved (tXAW in Table 2 implies a
     * multi-bank device). The shared channel carries data bursts;
     * write recovery (tWR) busies only the accessed bank.
     */
    unsigned banks = 16;

    // --- Timing (cycles; 1 cycle == 1 ns) ---
    Cycle t_rcd = 18;    //!< Row activate to column command.
    Cycle t_cl = 15;     //!< Column access latency.
    Cycle t_burst = 4;   //!< One 16-byte beat on the wide channel.
    Cycle t_wr = 150;    //!< Write recovery (bank busy tail).
    Cycle t_wtr = 8;     //!< Write-to-read turnaround.

    // --- Energy (joules) ---
    double read_energy_per_byte = 25.0e-12;
    double write_energy_per_byte = 55.0e-12;
    double activate_energy = 0.2e-9;  //!< Per row activation.

    // --- Device model selection (mem/device/) ---
    NvmModel model = NvmModel::SingleCursor;

    /**
     * Per-bank request-queue depth (banked model only): the bank
     * accepts this many outstanding requests before the issuer
     * stalls waiting for the oldest to complete.
     */
    unsigned queue_depth = 4;

    /** Row-buffer reach: accesses within one row skip activation. */
    unsigned row_bytes = 1024;

    /**
     * Write-verify program retries (flash-like technologies): every
     * write pays this many extra program pulses in latency and this
     * many extra per-byte write energies.
     */
    unsigned write_verify_retries = 0;

    // --- Endurance tracking ---
    bool track_wear = false;        //!< Count per-line writes.
    unsigned wear_line_bytes = 64;  //!< Wear-accounting granularity.
    /** Per-line write-cycle budget of the technology. */
    std::uint64_t endurance_writes = 100'000'000;

    // --- Wear-leveling rotation ---
    NvmWearScheme wear_scheme = NvmWearScheme::None;
    /** Main-array writes between rotation steps. */
    std::uint64_t rotate_period_writes = 4096;

    // --- STT-RAM hybrid fast region ---
    /**
     * Fully-associative STT-RAM fast-region line slots in front of
     * the main array (0 disables the hybrid policy). Hot lines are
     * promoted after hybrid_promote_writes writes and served at
     * hybrid_access_latency without wearing the main array.
     */
    unsigned hybrid_lines = 0;
    unsigned hybrid_promote_writes = 4;
    Cycle hybrid_access_latency = 12;
    double hybrid_read_energy_per_byte = 15.0e-12;
    double hybrid_write_energy_per_byte = 30.0e-12;

    /** Channel beats needed to move @p bytes. */
    Cycle
    beats(unsigned bytes) const
    {
        return (bytes + kChannelBeatBytes - 1) / kChannelBeatBytes;
    }

    /** Cycles until read data is available for an @p bytes access. */
    Cycle
    readLatency(unsigned bytes) const
    {
        return t_rcd + t_cl + beats(bytes) * t_burst;
    }

    /**
     * Cycles until a synchronous writer may proceed: the device
     * accepts the data after the column latency plus the burst; the
     * tWR recovery continues inside the bank afterwards.
     */
    Cycle
    writeAckLatency(unsigned bytes) const
    {
        return t_rcd + t_cl + beats(bytes) * t_burst;
    }

    /** Additional cycles the accessed bank stays busy after a write. */
    Cycle writeRecovery() const { return t_wr; }

    /** Bank index for an address (beat-interleaved). */
    unsigned
    bankOf(std::uint64_t addr) const
    {
        return static_cast<unsigned>((addr / kChannelBeatBytes) %
                                     banks);
    }

    /** Energy for reading @p bytes. */
    double
    readEnergy(unsigned bytes) const
    {
        return activate_energy + read_energy_per_byte * bytes;
    }

    /** Energy for writing @p bytes. */
    double
    writeEnergy(unsigned bytes) const
    {
        return activate_energy + write_energy_per_byte * bytes;
    }
};

} // namespace mem
} // namespace wlcache

#endif // WLCACHE_MEM_NVM_PARAMS_HH
