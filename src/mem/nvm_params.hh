/**
 * @file
 * Timing and energy parameters of the byte-addressable NVM (ReRAM)
 * main memory, following the paper's Table 2:
 *
 *   tCK/tBURST/tRCD/tCL/tWTR/tWR/tXAW = 0.94/7.5/18/15/7.5/150/30 ns
 *
 * At the 1 GHz core clock (1 cycle == 1 ns) a word read costs
 * tRCD + tCL + tBURST and a word write occupies the channel for tWR
 * after the data burst. Energy numbers are per byte, calibrated to
 * the FRAM/ReRAM class of devices the paper targets.
 */

#ifndef WLCACHE_MEM_NVM_PARAMS_HH
#define WLCACHE_MEM_NVM_PARAMS_HH

#include "sim/types.hh"

namespace wlcache {
namespace mem {

/** NVM device timing/energy/geometry parameters. */
struct NvmParams
{
    /** Size of the simulated physical address space, bytes. */
    std::size_t size_bytes = 8u << 20;

    /**
     * Independent banks, word-interleaved (tXAW in Table 2 implies a
     * multi-bank device). The shared channel carries data bursts;
     * write recovery (tWR) busies only the accessed bank.
     */
    unsigned banks = 16;

    // --- Timing (cycles; 1 cycle == 1 ns) ---
    Cycle t_rcd = 18;    //!< Row activate to column command.
    Cycle t_cl = 15;     //!< Column access latency.
    Cycle t_burst = 4;   //!< One 16-byte beat on the wide channel.
    Cycle t_wr = 150;    //!< Write recovery (bank busy tail).
    Cycle t_wtr = 8;     //!< Write-to-read turnaround.

    // --- Energy (joules) ---
    double read_energy_per_byte = 25.0e-12;
    double write_energy_per_byte = 55.0e-12;
    double activate_energy = 0.2e-9;  //!< Per row activation.

    /** Cycles until read data is available for an @p bytes access. */
    Cycle
    readLatency(unsigned bytes) const
    {
        const Cycle beats = (bytes + 7) / 8;
        return t_rcd + t_cl + beats * t_burst;
    }

    /**
     * Cycles until a synchronous writer may proceed: the device
     * accepts the data after the column latency plus the burst; the
     * tWR recovery continues inside the bank afterwards.
     */
    Cycle
    writeAckLatency(unsigned bytes) const
    {
        const Cycle beats = (bytes + 7) / 8;
        return t_rcd + t_cl + beats * t_burst;
    }

    /** Additional cycles the accessed bank stays busy after a write. */
    Cycle writeRecovery() const { return t_wr; }

    /** Bank index for an address (word-interleaved). */
    unsigned
    bankOf(std::uint64_t addr) const
    {
        return static_cast<unsigned>((addr >> 2) % banks);
    }

    /** Energy for reading @p bytes. */
    double
    readEnergy(unsigned bytes) const
    {
        return activate_energy + read_energy_per_byte * bytes;
    }

    /** Energy for writing @p bytes. */
    double
    writeEnergy(unsigned bytes) const
    {
        return activate_energy + write_energy_per_byte * bytes;
    }
};

} // namespace mem
} // namespace wlcache

#endif // WLCACHE_MEM_NVM_PARAMS_HH
