#include "mem/nvm_params.hh"

#include "sim/logging.hh"

namespace wlcache {
namespace mem {

const char *
nvmModelName(NvmModel m)
{
    switch (m) {
      case NvmModel::SingleCursor: return "legacy";
      case NvmModel::BankedQueue:  return "banked";
    }
    panic("unknown NvmModel %d", static_cast<int>(m));
}

bool
nvmModelFromName(const std::string &name, NvmModel &out)
{
    for (const NvmModel m :
         { NvmModel::SingleCursor, NvmModel::BankedQueue }) {
        if (name == nvmModelName(m)) {
            out = m;
            return true;
        }
    }
    return false;
}

const char *
nvmWearSchemeName(NvmWearScheme s)
{
    switch (s) {
      case NvmWearScheme::None:   return "none";
      case NvmWearScheme::Rotate: return "rotate";
    }
    panic("unknown NvmWearScheme %d", static_cast<int>(s));
}

bool
nvmWearSchemeFromName(const std::string &name, NvmWearScheme &out)
{
    for (const NvmWearScheme s :
         { NvmWearScheme::None, NvmWearScheme::Rotate }) {
        if (name == nvmWearSchemeName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

} // namespace mem
} // namespace wlcache
