/**
 * @file
 * Crash-consistency oracle. Tracks the architecturally-expected NVM
 * contents (every committed store applied in program order) so tests
 * can verify, at any recovery point or at program completion, that
 * the persistent state a cache design produced is consistent.
 */

#ifndef WLCACHE_MEM_PERSIST_CHECKER_HH
#define WLCACHE_MEM_PERSIST_CHECKER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace mem {

class NvmMemory;

/** A detected divergence between expected and actual NVM state. */
struct PersistMismatch
{
    Addr addr;
    std::uint8_t expected;
    std::uint8_t actual;
};

/**
 * Result of diffing the expected persistent image against the actual
 * state (NVM plus a design's persistent overlay). `mismatches` holds
 * the lowest-addressed divergences so the first entry is a stable,
 * deterministic "first divergence" regardless of hash-map order.
 */
struct StateDiff
{
    std::vector<PersistMismatch> mismatches; //!< Sorted by address.
    std::uint64_t total_mismatched_bytes = 0;

    bool consistent() const { return total_mismatched_bytes == 0; }
};

/**
 * Shadow image of expected persistent memory. Byte granular; only
 * bytes ever stored (or explicitly initialized) are tracked, so a
 * comparison touches exactly the workload's write footprint.
 */
class PersistChecker
{
  public:
    /** Record that the program stored @p value (little-endian). */
    void applyStore(Addr addr, unsigned bytes, std::uint64_t value);

    /** Record initial data (workload input images). */
    void applyInit(Addr addr, const std::uint8_t *data, unsigned bytes);

    /**
     * Compare every tracked byte against @p nvm.
     * @param max_mismatches Stop after this many differences.
     * @return list of mismatching bytes (empty means consistent).
     */
    std::vector<PersistMismatch>
    compare(const NvmMemory &nvm, std::size_t max_mismatches = 16) const;

    /**
     * Diff every tracked byte against the actual persistent state: a
     * design's persistent @p overlay where present, @p nvm otherwise.
     * @param skip When non-null, bytes for which it returns true are
     *        excluded (e.g.\ ReplayCache's in-flight region, which is
     *        rewritten on re-execution).
     * @param max_mismatches Lowest-addressed divergences to retain in
     *        the diff (the total count is always exact).
     */
    StateDiff diffState(
        const NvmMemory &nvm,
        const std::unordered_map<Addr, std::uint8_t> &overlay,
        const std::function<bool(Addr)> &skip = nullptr,
        std::size_t max_mismatches = 16) const;

    /** Visit every tracked byte with its expected value. */
    void forEach(
        const std::function<void(Addr, std::uint8_t)> &fn) const
    {
        for (const auto &[addr, expected] : shadow_)
            fn(addr, expected);
    }

    /** Number of distinct tracked bytes. */
    std::size_t footprintBytes() const { return shadow_.size(); }

    /** Expected value of a tracked byte; asserts if untracked. */
    std::uint8_t expectedByte(Addr addr) const;

    /** True if @p addr has ever been stored/initialized. */
    bool isTracked(Addr addr) const;

    /** Forget everything (new program run). */
    void reset();

    /** Render a short human-readable mismatch report. */
    static std::string describe(const std::vector<PersistMismatch> &ms);

    /** Serialize the shadow image (sorted for determinism). */
    void saveState(SnapshotWriter &w) const;

    /** Restore a state saved with saveState(). */
    void restoreState(SnapshotReader &r);

  private:
    std::unordered_map<Addr, std::uint8_t> shadow_;
};

} // namespace mem
} // namespace wlcache

#endif // WLCACHE_MEM_PERSIST_CHECKER_HH
