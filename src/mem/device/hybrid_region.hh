/**
 * @file
 * STT-RAM hybrid fast region: a small fully-associative set of line
 * slots in front of the main array, after the STT-RAM hybrid-L1
 * placement/migration policies for intermittent systems (Badri et
 * al.). Write-hot lines are promoted into the fast region once their
 * write count reaches a threshold; resident lines are served at
 * STT-RAM latency/energy and do not wear the main array. Eviction
 * (LRU over resident slots) writes the line back to the main array —
 * one full-line write of energy and wear.
 *
 * The region is a *placement policy overlay*: functional contents
 * stay in the main array's single byte image (STT-RAM is itself
 * non-volatile, so residency survives power failure), and migrations
 * are charged as background energy, not channel time.
 */

#ifndef WLCACHE_MEM_DEVICE_HYBRID_REGION_HH
#define WLCACHE_MEM_DEVICE_HYBRID_REGION_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace mem {

/** Fully-associative hot-line fast region with LRU eviction. */
class HybridRegion
{
  public:
    /**
     * @param slots Fast-region line slots (> 0).
     * @param promote_writes Writes a line needs to earn promotion.
     */
    HybridRegion(unsigned slots, unsigned promote_writes);

    /** What one write access did to the region. */
    struct WriteOutcome
    {
        bool fast = false;      //!< Served from the fast region.
        bool promoted = false;  //!< Line entered the region now.
        bool evicted = false;   //!< A victim was written back.
        std::uint64_t evicted_line = 0;
    };

    /**
     * Record a write to wear line @p line: bump its heat, promote it
     * when hot enough (possibly evicting the LRU resident), and
     * report how the access should be served.
     */
    WriteOutcome onWrite(std::uint64_t line);

    /**
     * Record a read of wear line @p line; true when resident (serve
     * at fast-region timing). Touches LRU state.
     */
    bool onRead(std::uint64_t line);

    /** Is @p line resident (no LRU side effect)? */
    bool resident(std::uint64_t line) const;

    unsigned residentCount() const;

    /** Forget residency and heat (construction state). */
    void reset();

    /** Deterministic serialization (heat map sorted by line). */
    void saveState(SnapshotWriter &w) const;
    void restoreState(SnapshotReader &r);

  private:
    static constexpr std::uint64_t kEmpty = ~0ull;

    struct Slot
    {
        std::uint64_t line = kEmpty;
        std::uint64_t last_use = 0;
    };

    Slot *findSlot(std::uint64_t line);

    unsigned promote_writes_;
    std::vector<Slot> slots_;
    /** Write-heat per non-resident line (evicted lines re-earn). */
    std::unordered_map<std::uint64_t, std::uint32_t> heat_;
    /** Deterministic LRU clock (bumped on every touch). */
    std::uint64_t tick_ = 0;
};

} // namespace mem
} // namespace wlcache

#endif // WLCACHE_MEM_DEVICE_HYBRID_REGION_HH
