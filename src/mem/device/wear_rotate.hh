/**
 * @file
 * Start-gap-style address-rotation wear leveling. The rotator remaps
 * a logical wear line to a physical one by a rotating offset that
 * advances every rotate_period main-array writes, spreading a hot
 * line's writes across the whole array over time.
 *
 * The remap applies to the access's *timing and wear identity* only —
 * which bank, row, and wear counter an access lands on. Functional
 * contents stay at the logical address: a real controller migrates
 * the line's data when the gap passes it, which is invisible to the
 * program, so the simulator keeps a single functional image and
 * charges the remap to the identity layer alone.
 */

#ifndef WLCACHE_MEM_DEVICE_WEAR_ROTATE_HH
#define WLCACHE_MEM_DEVICE_WEAR_ROTATE_HH

#include <cstdint>

#include "sim/types.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace mem {

/** Rotating logical-to-physical wear-line remap. */
class WearRotator
{
  public:
    /**
     * @param total_lines Wear lines in the array.
     * @param line_bytes Bytes per wear line.
     * @param period_writes Main-array writes between rotation steps.
     */
    WearRotator(std::uint64_t total_lines, unsigned line_bytes,
                std::uint64_t period_writes);

    /** Physical address for logical @p addr (offset within line kept). */
    Addr
    map(Addr addr) const
    {
        const std::uint64_t line = addr / line_bytes_;
        const std::uint64_t off = addr % line_bytes_;
        return mapLine(line) * line_bytes_ + off;
    }

    /** Physical wear line for logical line @p line. */
    std::uint64_t
    mapLine(std::uint64_t line) const
    {
        std::uint64_t p = line + offset_;
        if (p >= total_lines_)
            p -= total_lines_;
        return p;
    }

    /** Count one main-array write; advances the offset on period. */
    void onWrite();

    std::uint64_t offset() const { return offset_; }
    std::uint64_t rotations() const { return rotations_; }

    /** Forget all rotation state between runs. */
    void reset();

    void saveState(SnapshotWriter &w) const;
    void restoreState(SnapshotReader &r);

  private:
    std::uint64_t total_lines_;
    unsigned line_bytes_;
    std::uint64_t period_writes_;
    std::uint64_t offset_ = 0;
    std::uint64_t writes_since_rotate_ = 0;
    std::uint64_t rotations_ = 0;
};

} // namespace mem
} // namespace wlcache

#endif // WLCACHE_MEM_DEVICE_WEAR_ROTATE_HH
