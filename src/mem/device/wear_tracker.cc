#include "mem/device/wear_tracker.hh"

#include <limits>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace wlcache {
namespace mem {

WearTracker::WearTracker(std::uint64_t total_lines,
                         std::uint64_t endurance_writes)
    : total_lines_(total_lines), endurance_writes_(endurance_writes),
      shards_((total_lines + kLinesPerShard - 1) / kLinesPerShard)
{
    wlc_assert(total_lines_ > 0);
    wlc_assert(endurance_writes_ > 0);
}

void
WearTracker::recordLine(std::uint64_t line)
{
    wlc_assert(line < total_lines_, "wear line %llu out of range",
               static_cast<unsigned long long>(line));
    std::vector<std::uint32_t> &shard = shards_[line / kLinesPerShard];
    if (shard.empty())
        shard.assign(kLinesPerShard, 0);
    std::uint32_t &count = shard[line % kLinesPerShard];
    if (count == 0)
        ++lines_touched_;
    if (count < std::numeric_limits<std::uint32_t>::max())
        ++count;
    ++total_writes_;
    if (count > max_wear_)
        max_wear_ = count;
}

std::uint64_t
WearTracker::lineWear(std::uint64_t line) const
{
    wlc_assert(line < total_lines_);
    const std::vector<std::uint32_t> &shard =
        shards_[line / kLinesPerShard];
    return shard.empty() ? 0 : shard[line % kLinesPerShard];
}

void
WearTracker::reset()
{
    for (auto &shard : shards_)
        shard.clear();
    max_wear_ = 0;
    lines_touched_ = 0;
    total_writes_ = 0;
}

void
WearTracker::saveState(SnapshotWriter &w) const
{
    w.u64(total_lines_);
    w.u64(endurance_writes_);
    w.u64(max_wear_);
    w.u64(lines_touched_);
    w.u64(total_writes_);
    // Allocated shards only, in index order: the byte stream is a
    // deterministic function of the wear state.
    std::uint64_t allocated = 0;
    for (const auto &shard : shards_)
        if (!shard.empty())
            ++allocated;
    w.u64(allocated);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (shards_[i].empty())
            continue;
        w.u64(i);
        w.bytes(shards_[i].data(),
                shards_[i].size() * sizeof(std::uint32_t));
    }
}

void
WearTracker::restoreState(SnapshotReader &r)
{
    const std::uint64_t total_lines = r.u64();
    const std::uint64_t endurance = r.u64();
    wlc_assert(total_lines == total_lines_ &&
                   endurance == endurance_writes_,
               "wear tracker geometry mismatch");
    max_wear_ = r.u64();
    lines_touched_ = r.u64();
    total_writes_ = r.u64();
    for (auto &shard : shards_)
        shard.clear();
    const std::uint64_t allocated = r.u64();
    for (std::uint64_t i = 0; i < allocated; ++i) {
        const std::uint64_t idx = r.u64();
        wlc_assert(idx < shards_.size(),
                   "wear shard index out of range");
        shards_[idx].assign(kLinesPerShard, 0);
        r.bytes(shards_[idx].data(),
                kLinesPerShard * sizeof(std::uint32_t));
    }
}

} // namespace mem
} // namespace wlcache
