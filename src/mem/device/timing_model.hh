/**
 * @file
 * Pluggable NVM device timing cores. NvmMemory owns the functional
 * byte array, energy accounting, wear tracking, and statistics; a
 * timing model owns only the arbitration state (cursors, queues, open
 * rows) and answers one question: given an access issued at cycle
 * `now`, when does the channel accept it and when is it done?
 *
 * Two models are registered:
 *
 *  - SingleCursorModel reproduces the original NvmMemory arbitration
 *    bit for bit: one channel busy-until cursor plus one busy-until
 *    cursor per bank, no turnaround, activation charged per access.
 *
 *  - BankedQueueModel adds per-bank request queues with configurable
 *    depth and back-pressure (an access stalls until the oldest
 *    queued request in its bank completes when the queue is full),
 *    channel-level write-to-read turnaround (tWTR), and row-buffer
 *    hit/miss activation accounting. Writes are acknowledged once the
 *    controller has the data (the bank programs them in the
 *    background); reads drain the bank's queued work first.
 *
 * Both models are closed-form in `now` — no per-cycle state advance —
 * which is what keeps percycle and skip_ahead runs bit-identical by
 * construction (DESIGN.md §15).
 */

#ifndef WLCACHE_MEM_DEVICE_TIMING_MODEL_HH
#define WLCACHE_MEM_DEVICE_TIMING_MODEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/nvm_params.hh"
#include "sim/types.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace mem {

/** Everything a timing core reports about one access. */
struct NvmAccessTiming
{
    Cycle start = 0;  //!< Channel accepted the request.
    Cycle ready = 0;  //!< Data (read) or ack (write) available.
    /** Activation was skipped because the row buffer was open. */
    bool row_hit = false;
    /** Cycles spent waiting for a bank-queue slot (back-pressure). */
    Cycle queue_wait = 0;
    /** Cycles of write-to-read turnaround (tWTR) paid. */
    Cycle turnaround_wait = 0;
    /** Pending bank work gated this access. */
    bool bank_conflict = false;
};

/** Abstract device timing core. */
class NvmTimingModel
{
  public:
    virtual ~NvmTimingModel() = default;

    /** Arbitrate one access and advance the model's cursors. */
    virtual NvmAccessTiming access(Addr addr, unsigned bytes,
                                   Cycle now, bool is_write) = 0;

    /** Cycle at which the shared channel becomes free. */
    virtual Cycle channelBusyUntil() const = 0;

    /** Clear all arbitration state between power cycles. */
    virtual void reset() = 0;

    /** Serialize cursors/queues (bit-exact, deterministic order). */
    virtual void saveState(SnapshotWriter &w) const = 0;
    virtual void restoreState(SnapshotReader &r) = 0;

    /** Build the model @p params selects. */
    static std::unique_ptr<NvmTimingModel> create(
        const NvmParams &params);
};

/** Legacy arbitration: shared channel + per-bank busy cursors. */
class SingleCursorModel : public NvmTimingModel
{
  public:
    explicit SingleCursorModel(const NvmParams &params);

    NvmAccessTiming access(Addr addr, unsigned bytes, Cycle now,
                           bool is_write) override;
    Cycle channelBusyUntil() const override
    {
        return channel_busy_until_;
    }
    void reset() override;
    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

  private:
    const NvmParams params_;
    Cycle channel_busy_until_ = 0;
    std::vector<Cycle> bank_busy_until_;
};

/** Banked, queued arbitration with tWTR and row-buffer accounting. */
class BankedQueueModel : public NvmTimingModel
{
  public:
    explicit BankedQueueModel(const NvmParams &params);

    NvmAccessTiming access(Addr addr, unsigned bytes, Cycle now,
                           bool is_write) override;
    Cycle channelBusyUntil() const override
    {
        return channel_busy_until_;
    }
    void reset() override;
    void saveState(SnapshotWriter &w) const override;
    void restoreState(SnapshotReader &r) override;

  private:
    /** Row-buffer sentinel: no row open (post power cycle). */
    static constexpr std::uint64_t kNoRow = ~0ull;

    struct Bank
    {
        /** Bank finishes all accepted work at this cycle. */
        Cycle work_done = 0;
        /** Currently open row (kNoRow when closed). */
        std::uint64_t open_row = kNoRow;
        /**
         * Completion times of the last queue_depth accepted
         * requests, a ring with @c head at the oldest: when the ring
         * is full of pending work, the oldest entry is the cycle a
         * slot frees for the next request.
         */
        std::vector<Cycle> ring;
        unsigned head = 0;
    };

    const NvmParams params_;
    Cycle channel_busy_until_ = 0;
    /** End of the last write data burst (drives tWTR for reads). */
    Cycle last_write_end_ = 0;
    std::vector<Bank> banks_;
};

} // namespace mem
} // namespace wlcache

#endif // WLCACHE_MEM_DEVICE_TIMING_MODEL_HH
