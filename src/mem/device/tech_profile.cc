#include "mem/device/tech_profile.hh"

namespace wlcache {
namespace mem {

const std::vector<NvmTechProfile> &
allTechProfiles()
{
    // "reram" reproduces the NvmParams defaults exactly (the paper's
    // Table 2 device), so applying it to a default configuration is a
    // no-op — sweeps that pin nvm.tech=reram stay cache-compatible
    // with runs that never touched the knob.
    static const std::vector<NvmTechProfile> profiles = {
        { "reram",
          "crossbar ReRAM, the paper's Table 2 device: asymmetric "
          "writes with a long tWR recovery, mid-range endurance",
          /*t_rcd=*/18, /*t_cl=*/15, /*t_burst=*/4, /*t_wr=*/150,
          /*t_wtr=*/8,
          /*read=*/25.0e-12, /*write=*/55.0e-12, /*activate=*/0.2e-9,
          /*endurance=*/100'000'000, /*verify_retries=*/0 },
        { "stt-ram",
          "STT-MRAM: near-SRAM reads, fast writes, effectively "
          "unlimited endurance; the hybrid fast-region technology",
          /*t_rcd=*/10, /*t_cl=*/10, /*t_burst=*/4, /*t_wr=*/20,
          /*t_wtr=*/2,
          /*read=*/15.0e-12, /*write=*/30.0e-12, /*activate=*/0.1e-9,
          /*endurance=*/4'000'000'000'000ull, /*verify_retries=*/0 },
        { "fram",
          "ferroelectric RAM (MSP430-class): symmetric access, "
          "modest speed, very high endurance",
          /*t_rcd=*/12, /*t_cl=*/12, /*t_burst=*/4, /*t_wr=*/40,
          /*t_wtr=*/4,
          /*read=*/20.0e-12, /*write=*/25.0e-12, /*activate=*/0.15e-9,
          /*endurance=*/10'000'000'000'000ull, /*verify_retries=*/0 },
        { "flash",
          "managed-NAND-like: cheap reads, expensive program pulses "
          "with verify retries, small per-line write budget",
          /*t_rcd=*/30, /*t_cl=*/20, /*t_burst=*/4, /*t_wr=*/600,
          /*t_wtr=*/16,
          /*read=*/10.0e-12, /*write=*/180.0e-12, /*activate=*/0.5e-9,
          /*endurance=*/100'000, /*verify_retries=*/2 },
    };
    return profiles;
}

const NvmTechProfile *
findTechProfile(const std::string &name)
{
    for (const auto &p : allTechProfiles())
        if (name == p.name)
            return &p;
    return nullptr;
}

void
applyTechProfile(NvmParams &params, const NvmTechProfile &profile)
{
    params.t_rcd = profile.t_rcd;
    params.t_cl = profile.t_cl;
    params.t_burst = profile.t_burst;
    params.t_wr = profile.t_wr;
    params.t_wtr = profile.t_wtr;
    params.read_energy_per_byte = profile.read_energy_per_byte;
    params.write_energy_per_byte = profile.write_energy_per_byte;
    params.activate_energy = profile.activate_energy;
    params.endurance_writes = profile.endurance_writes;
    params.write_verify_retries = profile.write_verify_retries;
}

} // namespace mem
} // namespace wlcache
