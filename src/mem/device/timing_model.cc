#include "mem/device/timing_model.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace wlcache {
namespace mem {

std::unique_ptr<NvmTimingModel>
NvmTimingModel::create(const NvmParams &params)
{
    switch (params.model) {
      case NvmModel::SingleCursor:
        return std::make_unique<SingleCursorModel>(params);
      case NvmModel::BankedQueue:
        return std::make_unique<BankedQueueModel>(params);
    }
    panic("unknown NvmModel %d", static_cast<int>(params.model));
}

// --- SingleCursorModel ----------------------------------------------------

SingleCursorModel::SingleCursorModel(const NvmParams &params)
    : params_(params), bank_busy_until_(params.banks, 0)
{
    wlc_assert(params_.banks > 0);
}

NvmAccessTiming
SingleCursorModel::access(Addr addr, unsigned bytes, Cycle now,
                          bool is_write)
{
    // Wide (line) accesses stripe across banks in a pipelined burst;
    // arbitration is against the shared channel plus the base bank.
    Cycle &bank = bank_busy_until_[params_.bankOf(addr)];
    NvmAccessTiming t;
    const Cycle free = std::max(now, channel_busy_until_);
    t.bank_conflict = bank > free;
    t.start = std::max(free, bank);

    const Cycle burst = params_.beats(bytes) * params_.t_burst;
    if (is_write) {
        const Cycle pulses =
            params_.write_verify_retries * params_.writeRecovery();
        t.ready = t.start + params_.writeAckLatency(bytes) + pulses;
        bank = t.ready + params_.writeRecovery();
    } else {
        t.ready = t.start + params_.readLatency(bytes);
        bank = t.ready;
    }
    channel_busy_until_ = t.start + burst;
    return t;
}

void
SingleCursorModel::reset()
{
    channel_busy_until_ = 0;
    for (Cycle &b : bank_busy_until_)
        b = 0;
}

void
SingleCursorModel::saveState(SnapshotWriter &w) const
{
    w.u64(channel_busy_until_);
    w.u64(bank_busy_until_.size());
    for (const Cycle b : bank_busy_until_)
        w.u64(b);
}

void
SingleCursorModel::restoreState(SnapshotReader &r)
{
    channel_busy_until_ = r.u64();
    const std::uint64_t n = r.u64();
    wlc_assert(n == bank_busy_until_.size());
    for (Cycle &b : bank_busy_until_)
        b = r.u64();
}

// --- BankedQueueModel -----------------------------------------------------

BankedQueueModel::BankedQueueModel(const NvmParams &params)
    : params_(params), banks_(params.banks)
{
    wlc_assert(params_.banks > 0);
    wlc_assert(params_.queue_depth > 0);
    wlc_assert(params_.row_bytes > 0);
    for (Bank &b : banks_)
        b.ring.assign(params_.queue_depth, 0);
}

NvmAccessTiming
BankedQueueModel::access(Addr addr, unsigned bytes, Cycle now,
                         bool is_write)
{
    Bank &b = banks_[params_.bankOf(addr)];
    NvmAccessTiming t;

    // Queue admission (back-pressure): the ring holds the completion
    // times of the last queue_depth requests this bank accepted; the
    // oldest entry is when a slot frees for this one. Per-bank
    // completion times are monotonic (service is in order), so the
    // oldest ring entry is also the minimum.
    Cycle admit = now;
    const Cycle slot_free = b.ring[b.head];
    if (slot_free > admit) {
        t.queue_wait = slot_free - admit;
        admit = slot_free;
    }

    // Channel arbitration, plus write-to-read turnaround: after a
    // write's data burst the channel needs tWTR to reverse direction
    // before it can return read data.
    Cycle xfer = std::max(admit, channel_busy_until_);
    if (!is_write && last_write_end_ > 0) {
        const Cycle wtr_ready = last_write_end_ + params_.t_wtr;
        if (wtr_ready > xfer) {
            t.turnaround_wait = wtr_ready - xfer;
            xfer = wtr_ready;
        }
    }
    const Cycle burst = params_.beats(bytes) * params_.t_burst;
    channel_busy_until_ = xfer + burst;
    t.start = xfer;

    // Bank service: command + data are delivered at the end of the
    // transfer; queued work ahead of us drains first.
    Cycle service = xfer + burst;
    if (b.work_done > service) {
        t.bank_conflict = true;
        service = b.work_done;
    }

    // Row buffer: activation only on a row change.
    const std::uint64_t row = addr / params_.row_bytes;
    t.row_hit = b.open_row == row;
    b.open_row = row;
    const Cycle activation = t.row_hit ? 0 : params_.t_rcd;

    Cycle done;
    if (is_write) {
        // The controller acks the write once it owns the data; the
        // bank programs it in the background (1 + verify retries
        // recovery-length pulses). Back-pressure, not the ack, is
        // what a full queue costs the issuer.
        t.ready = xfer + burst;
        done = service + activation + params_.t_cl +
               (1 + params_.write_verify_retries) *
                   params_.writeRecovery();
        last_write_end_ = xfer + burst;
    } else {
        done = service + activation + params_.t_cl + burst;
        t.ready = done;
    }

    b.work_done = done;
    b.ring[b.head] = done;
    b.head = b.head + 1 == b.ring.size() ? 0 : b.head + 1;
    return t;
}

void
BankedQueueModel::reset()
{
    channel_busy_until_ = 0;
    last_write_end_ = 0;
    for (Bank &b : banks_) {
        b.work_done = 0;
        b.open_row = kNoRow;  // Power loss closes every row.
        std::fill(b.ring.begin(), b.ring.end(), 0);
        b.head = 0;
    }
}

void
BankedQueueModel::saveState(SnapshotWriter &w) const
{
    w.u64(channel_busy_until_);
    w.u64(last_write_end_);
    w.u64(banks_.size());
    for (const Bank &b : banks_) {
        w.u64(b.work_done);
        w.u64(b.open_row);
        w.u64(b.ring.size());
        for (const Cycle c : b.ring)
            w.u64(c);
        w.u32(b.head);
    }
}

void
BankedQueueModel::restoreState(SnapshotReader &r)
{
    channel_busy_until_ = r.u64();
    last_write_end_ = r.u64();
    const std::uint64_t n = r.u64();
    wlc_assert(n == banks_.size());
    for (Bank &b : banks_) {
        b.work_done = r.u64();
        b.open_row = r.u64();
        const std::uint64_t d = r.u64();
        wlc_assert(d == b.ring.size());
        for (Cycle &c : b.ring)
            c = r.u64();
        b.head = r.u32();
        wlc_assert(b.head < b.ring.size());
    }
}

} // namespace mem
} // namespace wlcache
