#include "mem/device/wear_rotate.hh"

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace wlcache {
namespace mem {

WearRotator::WearRotator(std::uint64_t total_lines,
                         unsigned line_bytes,
                         std::uint64_t period_writes)
    : total_lines_(total_lines), line_bytes_(line_bytes),
      period_writes_(period_writes)
{
    wlc_assert(total_lines_ > 0);
    wlc_assert(line_bytes_ > 0);
    wlc_assert(period_writes_ > 0);
}

void
WearRotator::onWrite()
{
    if (++writes_since_rotate_ >= period_writes_) {
        writes_since_rotate_ = 0;
        ++rotations_;
        if (++offset_ >= total_lines_)
            offset_ = 0;
    }
}

void
WearRotator::reset()
{
    offset_ = 0;
    writes_since_rotate_ = 0;
    rotations_ = 0;
}

void
WearRotator::saveState(SnapshotWriter &w) const
{
    w.u64(offset_);
    w.u64(writes_since_rotate_);
    w.u64(rotations_);
}

void
WearRotator::restoreState(SnapshotReader &r)
{
    offset_ = r.u64();
    writes_since_rotate_ = r.u64();
    rotations_ = r.u64();
    wlc_assert(offset_ < total_lines_);
}

} // namespace mem
} // namespace wlcache
