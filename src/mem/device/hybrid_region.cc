#include "mem/device/hybrid_region.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace wlcache {
namespace mem {

HybridRegion::HybridRegion(unsigned slots, unsigned promote_writes)
    : promote_writes_(promote_writes), slots_(slots)
{
    wlc_assert(!slots_.empty());
    wlc_assert(promote_writes_ > 0);
}

HybridRegion::Slot *
HybridRegion::findSlot(std::uint64_t line)
{
    for (Slot &s : slots_)
        if (s.line == line)
            return &s;
    return nullptr;
}

HybridRegion::WriteOutcome
HybridRegion::onWrite(std::uint64_t line)
{
    WriteOutcome out;
    ++tick_;
    if (Slot *s = findSlot(line)) {
        s->last_use = tick_;
        out.fast = true;
        return out;
    }

    const std::uint32_t heat = ++heat_[line];
    if (heat < promote_writes_)
        return out;

    // Promote: empty slot first, else evict the LRU resident
    // (smallest last_use; ties break on the lowest slot index, so
    // the choice is deterministic).
    Slot *victim = nullptr;
    for (Slot &s : slots_) {
        if (s.line == kEmpty) {
            victim = &s;
            break;
        }
        if (!victim || s.last_use < victim->last_use)
            victim = &s;
    }
    if (victim->line != kEmpty) {
        out.evicted = true;
        out.evicted_line = victim->line;
    }
    victim->line = line;
    victim->last_use = tick_;
    heat_.erase(line);  // Evicted lines re-earn their heat.
    out.fast = true;
    out.promoted = true;
    return out;
}

bool
HybridRegion::onRead(std::uint64_t line)
{
    if (Slot *s = findSlot(line)) {
        s->last_use = ++tick_;
        return true;
    }
    return false;
}

bool
HybridRegion::resident(std::uint64_t line) const
{
    for (const Slot &s : slots_)
        if (s.line == line)
            return true;
    return false;
}

unsigned
HybridRegion::residentCount() const
{
    unsigned n = 0;
    for (const Slot &s : slots_)
        if (s.line != kEmpty)
            ++n;
    return n;
}

void
HybridRegion::reset()
{
    for (Slot &s : slots_)
        s = Slot{};
    heat_.clear();
    tick_ = 0;
}

void
HybridRegion::saveState(SnapshotWriter &w) const
{
    w.u64(tick_);
    w.u64(slots_.size());
    for (const Slot &s : slots_) {
        w.u64(s.line);
        w.u64(s.last_use);
    }
    std::vector<std::pair<std::uint64_t, std::uint32_t>> heat(
        heat_.begin(), heat_.end());
    std::sort(heat.begin(), heat.end());
    w.u64(heat.size());
    for (const auto &[line, h] : heat) {
        w.u64(line);
        w.u32(h);
    }
}

void
HybridRegion::restoreState(SnapshotReader &r)
{
    tick_ = r.u64();
    const std::uint64_t n = r.u64();
    wlc_assert(n == slots_.size(), "hybrid region size mismatch");
    for (Slot &s : slots_) {
        s.line = r.u64();
        s.last_use = r.u64();
    }
    heat_.clear();
    const std::uint64_t m = r.u64();
    for (std::uint64_t i = 0; i < m; ++i) {
        const std::uint64_t line = r.u64();
        heat_[line] = r.u32();
    }
}

} // namespace mem
} // namespace wlcache
