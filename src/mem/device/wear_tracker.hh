/**
 * @file
 * Per-line write-endurance tracking. The main array is divided into
 * fixed-size wear lines; every main-array write bumps a counter for
 * each line it covers. Counters live in lazily-allocated shards so an
 * 8 MiB array with a small working set costs a few KiB, and serialize
 * bit-exactly (allocated shards only, sorted by index) through the
 * snapshot layer. The explorer's `nvm_lifetime` objective is the
 * headroom of the most-worn line: endurance budget minus max wear.
 */

#ifndef WLCACHE_MEM_DEVICE_WEAR_TRACKER_HH
#define WLCACHE_MEM_DEVICE_WEAR_TRACKER_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace mem {

/** Sharded per-line write counters with an endurance budget. */
class WearTracker
{
  public:
    /** Wear lines per lazily-allocated counter shard. */
    static constexpr std::size_t kLinesPerShard = 4096;

    /**
     * @param total_lines Wear lines in the array.
     * @param endurance_writes Per-line write-cycle budget.
     */
    WearTracker(std::uint64_t total_lines,
                std::uint64_t endurance_writes);

    /** Count one write to wear line @p line (saturating). */
    void recordLine(std::uint64_t line);

    /** Writes recorded against @p line so far. */
    std::uint64_t lineWear(std::uint64_t line) const;

    /** Highest per-line write count seen. */
    std::uint64_t maxWear() const { return max_wear_; }

    /** Distinct lines written at least once. */
    std::uint64_t linesTouched() const { return lines_touched_; }

    /** Total line-writes recorded. */
    std::uint64_t totalLineWrites() const { return total_writes_; }

    /**
     * Remaining write budget of the most-worn line (saturating at
     * zero). An untouched array has full headroom.
     */
    std::uint64_t
    minHeadroom() const
    {
        return endurance_writes_ > max_wear_
                   ? endurance_writes_ - max_wear_
                   : 0;
    }

    std::uint64_t totalLines() const { return total_lines_; }
    std::uint64_t enduranceWrites() const { return endurance_writes_; }

    /** Forget all wear (construction state). */
    void reset();

    /** Serialize allocated shards, sorted by shard index. */
    void saveState(SnapshotWriter &w) const;
    void restoreState(SnapshotReader &r);

  private:
    std::uint64_t total_lines_;
    std::uint64_t endurance_writes_;
    /** One counter array per shard; empty vector == untouched. */
    std::vector<std::vector<std::uint32_t>> shards_;
    std::uint64_t max_wear_ = 0;
    std::uint64_t lines_touched_ = 0;
    std::uint64_t total_writes_ = 0;
};

} // namespace mem
} // namespace wlcache

#endif // WLCACHE_MEM_DEVICE_WEAR_TRACKER_HH
