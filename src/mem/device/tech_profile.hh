/**
 * @file
 * NVM technology profile registry. A profile captures the per-cell
 * physics of a memory technology — timing asymmetry, per-byte energy,
 * write endurance, and how many program-verify pulses a write needs —
 * so an experiment can swap "what the main memory is made of" as one
 * sweep dimension (`nvm.tech`). Applying a profile only rewrites the
 * corresponding NvmParams fields; geometry (size, banks, queue depth)
 * and policy layers (wear leveling, hybrid region) are orthogonal
 * knobs that survive the application.
 *
 * Numbers are first-order, calibrated against the device classes the
 * related work targets: the paper's ReRAM (Table 2), STT-RAM
 * hybrid-L1 parts (Badri et al.), TI FRAM MCU memories, and a
 * managed-NAND-like device with program-verify retries and a small
 * per-line write budget.
 */

#ifndef WLCACHE_MEM_DEVICE_TECH_PROFILE_HH
#define WLCACHE_MEM_DEVICE_TECH_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/nvm_params.hh"

namespace wlcache {
namespace mem {

/** One memory technology: timing, energy, and endurance. */
struct NvmTechProfile
{
    const char *name;  //!< Stable id ("reram", "stt-ram", ...).
    const char *help;

    // --- Timing (cycles) ---
    Cycle t_rcd;
    Cycle t_cl;
    Cycle t_burst;
    Cycle t_wr;
    Cycle t_wtr;

    // --- Energy (joules) ---
    double read_energy_per_byte;
    double write_energy_per_byte;
    double activate_energy;

    // --- Endurance ---
    /** Write-cycle budget per line before the cell wears out. */
    std::uint64_t endurance_writes;
    /** Program-verify retry pulses every write pays. */
    unsigned write_verify_retries;
};

/** Every registered technology (reram, stt-ram, fram, flash). */
const std::vector<NvmTechProfile> &allTechProfiles();

/** Lookup by name; null when unknown. */
const NvmTechProfile *findTechProfile(const std::string &name);

/**
 * Overwrite the technology-owned fields of @p params (timing, energy,
 * endurance, verify retries) from @p profile. Everything else —
 * geometry, model selection, wear/hybrid policy — is left untouched.
 */
void applyTechProfile(NvmParams &params, const NvmTechProfile &profile);

} // namespace mem
} // namespace wlcache

#endif // WLCACHE_MEM_DEVICE_TECH_PROFILE_HH
