/**
 * @file
 * Functional + timing model of the NVM main memory. Contents survive
 * power failure (nothing is cleared on an outage). A single channel
 * serializes accesses; completion times are computed against a
 * busy-until cursor so asynchronous write-backs contend with demand
 * traffic exactly as the paper's WL-Cache cleaning traffic does.
 */

#ifndef WLCACHE_MEM_NVM_MEMORY_HH
#define WLCACHE_MEM_NVM_MEMORY_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "energy/energy_meter.hh"
#include "mem/nvm_params.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace telemetry { class TimelineBuffer; }

namespace mem {

/** Result of a timed NVM access. */
struct NvmAccessResult
{
    Cycle start;     //!< When the channel accepted the request.
    Cycle ready;     //!< When data (read) or ack (write) is available.
};

/**
 * Byte-addressable non-volatile main memory with one channel.
 * Functional state is a flat byte array; all accesses are bounds
 * checked against the configured size.
 */
class NvmMemory
{
  public:
    /**
     * @param params Device parameters.
     * @param meter Energy meter charged for every access (may be
     *        null for purely functional use).
     */
    explicit NvmMemory(const NvmParams &params,
                       energy::EnergyMeter *meter = nullptr);

    const NvmParams &params() const { return params_; }

    // --- Timed interface -------------------------------------------------

    /**
     * Timed read of @p bytes at @p addr issued at cycle @p now.
     * Copies data into @p out when non-null.
     */
    NvmAccessResult read(Addr addr, unsigned bytes, Cycle now,
                         void *out = nullptr);

    /** Timed write of @p bytes at @p addr issued at cycle @p now. */
    NvmAccessResult write(Addr addr, unsigned bytes, const void *data,
                          Cycle now);

    /**
     * Timed write used by JIT checkpointing and write-backs where the
     * data comes from a cache line image.
     */
    NvmAccessResult writeLine(Addr addr, const std::uint8_t *data,
                              unsigned bytes, Cycle now);

    /** Cycle at which the shared channel becomes free. */
    Cycle channelBusyUntil() const { return channel_busy_until_; }

    /** Clear channel/bank state between power cycles. */
    void resetChannel();

    // --- Functional interface (no timing/energy) -------------------------

    /** Functional peek (testing / consistency checking). */
    void peek(Addr addr, unsigned bytes, void *out) const;

    /** Functional poke (test setup). */
    void poke(Addr addr, unsigned bytes, const void *data);

    /** Read a little-endian integer of @p bytes functionally. */
    std::uint64_t peekInt(Addr addr, unsigned bytes) const;

    /** Configured capacity in bytes. */
    std::size_t sizeBytes() const { return data_.size(); }

    /**
     * Functional snapshot of [@p addr, @p addr + @p bytes): a copy of
     * the persistent contents for golden-model differencing. Bounds
     * checked like every other access.
     */
    std::vector<std::uint8_t> snapshotRange(Addr addr,
                                            std::size_t bytes) const;

    // --- Statistics -------------------------------------------------------

    stats::StatGroup &statGroup() { return stat_group_; }
    std::uint64_t numReads() const;
    std::uint64_t numWrites() const;
    std::uint64_t bytesWritten() const;

    /** Reset only the statistics (not contents). */
    void resetStats();

    /** Attach a telemetry timeline (null detaches); observational. */
    void setTimeline(telemetry::TimelineBuffer *tl) { tl_ = tl; }

    // --- Snapshot support -------------------------------------------------

    /** Bytes per copy-on-write journal page. */
    static constexpr std::size_t kJournalPageBytes = 4096;

    /**
     * Forget which pages have been modified. Called once after the
     * initial program image is poked in, so the journal tracks only
     * pages the *run* dirtied — a snapshot then stores those pages
     * instead of the whole array (restore starts from a freshly
     * constructed memory holding the same initial image).
     */
    void clearJournal();

    /** Pages currently in the copy-on-write journal. */
    std::size_t journalPages() const { return touched_pages_.size(); }

    /**
     * Serialize timing cursors, statistics, and the journal pages
     * (sorted by page index for a deterministic byte stream).
     */
    void saveState(SnapshotWriter &w) const;

    /**
     * Restore onto a memory holding the pristine initial image:
     * journal pages overwrite their page contents and become the new
     * journal (so a later snapshot of the resumed run still covers
     * every page dirtied since construction).
     */
    void restoreState(SnapshotReader &r);

  private:
    void checkRange(Addr addr, unsigned bytes) const;

    /**
     * Arbitrate the channel and the bank(s) an access needs; accesses
     * wider than one word span every bank.
     * @return the access start cycle.
     */
    Cycle acquire(Addr addr, unsigned bytes, Cycle now);

    /** Mark the acquired resources busy. */
    void release(Addr addr, unsigned bytes, Cycle channel_until,
                 Cycle bank_until);

    /** Record [@p addr, @p addr + @p bytes) in the COW journal. */
    void touchPages(Addr addr, unsigned bytes);

    NvmParams params_;
    energy::EnergyMeter *meter_;
    telemetry::TimelineBuffer *tl_ = nullptr;
    std::vector<std::uint8_t> data_;
    Cycle channel_busy_until_ = 0;
    std::vector<Cycle> bank_busy_until_;
    std::unordered_set<std::uint64_t> touched_pages_;

    stats::StatGroup stat_group_;
    stats::Scalar &stat_reads_;
    stats::Scalar &stat_writes_;
    stats::Scalar &stat_bytes_read_;
    stats::Scalar &stat_bytes_written_;
};

} // namespace mem
} // namespace wlcache

#endif // WLCACHE_MEM_NVM_MEMORY_HH
