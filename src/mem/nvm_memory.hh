/**
 * @file
 * Functional + timing model of the NVM main memory. Contents survive
 * power failure (nothing is cleared on an outage). The timing core is
 * pluggable (mem/device/timing_model.hh): the legacy single-cursor
 * channel arbitration, or a banked model with per-bank request
 * queues, write-to-read turnaround, and row-buffer accounting.
 * Asynchronous write-backs contend with demand traffic exactly as
 * the paper's WL-Cache cleaning traffic does.
 *
 * On top of the timing core sit three optional device-policy layers
 * (all serialized bit-exactly through the snapshot layer):
 *  - per-line write-endurance tracking (device/wear_tracker.hh),
 *  - address-rotation wear leveling (device/wear_rotate.hh), which
 *    remaps the timing/wear identity of a line but not its bytes,
 *  - an STT-RAM hybrid fast region (device/hybrid_region.hh) that
 *    promotes write-hot lines and serves them without main-array
 *    wear.
 */

#ifndef WLCACHE_MEM_NVM_MEMORY_HH
#define WLCACHE_MEM_NVM_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "energy/energy_meter.hh"
#include "mem/device/hybrid_region.hh"
#include "mem/device/timing_model.hh"
#include "mem/device/wear_rotate.hh"
#include "mem/device/wear_tracker.hh"
#include "mem/nvm_params.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace wlcache {

class SnapshotWriter;
class SnapshotReader;

namespace telemetry { class TimelineBuffer; }

namespace mem {

/** Result of a timed NVM access. */
struct NvmAccessResult
{
    Cycle start;     //!< When the channel accepted the request.
    Cycle ready;     //!< When data (read) or ack (write) is available.
};

/**
 * Byte-addressable non-volatile main memory with one channel.
 * Functional state is a flat byte array; all accesses are bounds
 * checked against the configured size.
 */
class NvmMemory
{
  public:
    /**
     * @param params Device parameters.
     * @param meter Energy meter charged for every access (may be
     *        null for purely functional use).
     */
    explicit NvmMemory(const NvmParams &params,
                       energy::EnergyMeter *meter = nullptr);

    const NvmParams &params() const { return params_; }

    // --- Timed interface -------------------------------------------------

    /**
     * Timed read of @p bytes at @p addr issued at cycle @p now.
     * Copies data into @p out when non-null.
     */
    NvmAccessResult read(Addr addr, unsigned bytes, Cycle now,
                         void *out = nullptr);

    /** Timed write of @p bytes at @p addr issued at cycle @p now. */
    NvmAccessResult write(Addr addr, unsigned bytes, const void *data,
                          Cycle now);

    /**
     * Timed write used by JIT checkpointing and write-backs where the
     * data comes from a cache line image.
     */
    NvmAccessResult writeLine(Addr addr, const std::uint8_t *data,
                              unsigned bytes, Cycle now);

    /** Cycle at which the shared channel becomes free. */
    Cycle channelBusyUntil() const
    {
        return model_->channelBusyUntil();
    }

    /** Clear channel/bank/queue state between power cycles. */
    void resetChannel();

    // --- Functional interface (no timing/energy) -------------------------

    /** Functional peek (testing / consistency checking). */
    void peek(Addr addr, unsigned bytes, void *out) const;

    /** Functional poke (test setup). */
    void poke(Addr addr, unsigned bytes, const void *data);

    /** Read a little-endian integer of @p bytes functionally. */
    std::uint64_t peekInt(Addr addr, unsigned bytes) const;

    /** Configured capacity in bytes. */
    std::size_t sizeBytes() const { return data_.size(); }

    /**
     * Functional snapshot of [@p addr, @p addr + @p bytes): a copy of
     * the persistent contents for golden-model differencing. Bounds
     * checked like every other access.
     */
    std::vector<std::uint8_t> snapshotRange(Addr addr,
                                            std::size_t bytes) const;

    // --- Statistics -------------------------------------------------------

    stats::StatGroup &statGroup() { return stat_group_; }
    std::uint64_t numReads() const;
    std::uint64_t numWrites() const;
    std::uint64_t bytesWritten() const;

    /** Bank conflicts (pending bank work gated an access). */
    std::uint64_t bankConflicts() const;
    /** Cycles accesses spent stalled on a full bank queue. */
    std::uint64_t queueStallCycles() const;
    /** Cycles reads spent waiting out write-to-read turnaround. */
    std::uint64_t turnaroundStallCycles() const;

    /** Row-buffer hits (banked model; 0 under the legacy model). */
    std::uint64_t rowHits() const;
    /** Row-buffer misses (banked model; 0 under the legacy model). */
    std::uint64_t rowMisses() const;

    /** Highest per-line write count (0 when wear is untracked). */
    std::uint64_t wearMax() const;
    /** Distinct wear lines written (0 when wear is untracked). */
    std::uint64_t wearLinesTouched() const;
    /**
     * Remaining write budget of the most-worn line. With wear
     * tracking off this is the full endurance budget (nothing is
     * known to be worn).
     */
    std::uint64_t lifetimeHeadroom() const;

    /**
     * p99 write latency in cycles from the log2 latency histogram:
     * the upper edge of the first bucket whose cumulative count
     * covers 99% of writes (0 when no write happened).
     */
    double writeLatencyP99() const;

    /** Wear tracker (null when track_wear is off); tests. */
    const WearTracker *wearTracker() const { return wear_.get(); }
    /** Rotation layer (null when wear_scheme is none); tests. */
    const WearRotator *wearRotator() const { return rotator_.get(); }
    /** Hybrid fast region (null when hybrid_lines is 0); tests. */
    const HybridRegion *hybridRegion() const { return hybrid_.get(); }

    /** Reset only the statistics (not contents). */
    void resetStats();

    /** Attach a telemetry timeline (null detaches); observational. */
    void setTimeline(telemetry::TimelineBuffer *tl) { tl_ = tl; }

    // --- Snapshot support -------------------------------------------------

    /** Bytes per copy-on-write journal page. */
    static constexpr std::size_t kJournalPageBytes = 4096;

    /**
     * Forget which pages have been modified. Called once after the
     * initial program image is poked in, so the journal tracks only
     * pages the *run* dirtied — a snapshot then stores those pages
     * instead of the whole array (restore starts from a freshly
     * constructed memory holding the same initial image).
     */
    void clearJournal();

    /** Pages currently in the copy-on-write journal. */
    std::size_t journalPages() const { return touched_pages_.size(); }

    /**
     * Serialize timing-model cursors, statistics, wear/rotation/
     * hybrid state, and the journal pages (sorted by page index for
     * a deterministic byte stream).
     */
    void saveState(SnapshotWriter &w) const;

    /**
     * Restore onto a memory holding the pristine initial image:
     * journal pages overwrite their page contents and become the new
     * journal (so a later snapshot of the resumed run still covers
     * every page dirtied since construction).
     */
    void restoreState(SnapshotReader &r);

  private:
    void checkRange(Addr addr, unsigned bytes) const;

    /** Timing/wear identity of @p addr (rotation remap applied). */
    Addr timingAddr(Addr addr) const;

    /** Record wear for every line [@p addr, @p addr + @p bytes). */
    void recordWear(Addr addr, unsigned bytes);

    /** Account model-reported stalls/conflicts/row outcomes. */
    void accountTiming(const NvmAccessTiming &t, Addr addr,
                       Cycle now);

    /** Record [@p addr, @p addr + @p bytes) in the COW journal. */
    void touchPages(Addr addr, unsigned bytes);

    NvmParams params_;
    energy::EnergyMeter *meter_;
    telemetry::TimelineBuffer *tl_ = nullptr;
    std::vector<std::uint8_t> data_;
    std::unique_ptr<NvmTimingModel> model_;
    std::unique_ptr<WearTracker> wear_;
    std::unique_ptr<WearRotator> rotator_;
    std::unique_ptr<HybridRegion> hybrid_;
    /** Fast-region port cursor (separate from the main channel). */
    Cycle fast_busy_until_ = 0;
    std::unordered_set<std::uint64_t> touched_pages_;

    stats::StatGroup stat_group_;
    stats::Scalar &stat_reads_;
    stats::Scalar &stat_writes_;
    stats::Scalar &stat_bytes_read_;
    stats::Scalar &stat_bytes_written_;
    stats::Scalar &stat_bank_conflicts_;
    stats::Scalar &stat_queue_stall_cycles_;
    stats::Scalar &stat_turnaround_stall_cycles_;
    stats::Scalar &stat_row_hits_;
    stats::Scalar &stat_row_misses_;
    stats::Scalar &stat_fast_reads_;
    stats::Scalar &stat_fast_writes_;
    stats::Scalar &stat_promotions_;
    stats::Scalar &stat_evictions_;
    stats::Distribution &stat_write_latency_;
};

} // namespace mem
} // namespace wlcache

#endif // WLCACHE_MEM_NVM_MEMORY_HH
