#include "mem/nvm_memory.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "telemetry/timeline.hh"

namespace wlcache {
namespace mem {

NvmMemory::NvmMemory(const NvmParams &params, energy::EnergyMeter *meter)
    : params_(params), meter_(meter), data_(params.size_bytes, 0),
      model_(NvmTimingModel::create(params)),
      stat_group_("nvm"),
      stat_reads_(stat_group_.addScalar("reads", "NVM read accesses")),
      stat_writes_(stat_group_.addScalar("writes", "NVM write accesses")),
      stat_bytes_read_(
          stat_group_.addScalar("bytes_read", "bytes read from NVM")),
      stat_bytes_written_(
          stat_group_.addScalar("bytes_written", "bytes written to NVM")),
      stat_bank_conflicts_(stat_group_.addScalar(
          "bank_conflicts", "accesses gated by pending bank work")),
      stat_queue_stall_cycles_(stat_group_.addScalar(
          "queue_stall_cycles",
          "cycles stalled on a full bank queue (back-pressure)")),
      stat_turnaround_stall_cycles_(stat_group_.addScalar(
          "turnaround_stall_cycles",
          "cycles reads waited out write-to-read turnaround (tWTR)")),
      stat_row_hits_(stat_group_.addScalar(
          "row_hits", "accesses served from an open row buffer")),
      stat_row_misses_(stat_group_.addScalar(
          "row_misses", "accesses that paid a row activation")),
      stat_fast_reads_(stat_group_.addScalar(
          "hybrid_fast_reads", "reads served by the STT fast region")),
      stat_fast_writes_(stat_group_.addScalar(
          "hybrid_fast_writes",
          "writes served by the STT fast region")),
      stat_promotions_(stat_group_.addScalar(
          "hybrid_promotions", "lines promoted into the fast region")),
      stat_evictions_(stat_group_.addScalar(
          "hybrid_evictions",
          "fast-region lines written back to the main array")),
      stat_write_latency_(stat_group_.addDistribution(
          "write_latency", "write request latency in cycles (log2)"))
{
    wlc_assert(params_.size_bytes > 0);
    wlc_assert(params_.banks > 0);
    wlc_assert(params_.wear_line_bytes > 0);

    const std::uint64_t wear_lines =
        params_.size_bytes / params_.wear_line_bytes;
    if (params_.track_wear) {
        wlc_assert(params_.size_bytes % params_.wear_line_bytes == 0,
                   "NVM size must be a whole number of wear lines");
        wear_ = std::make_unique<WearTracker>(
            wear_lines, params_.endurance_writes);
    }
    if (params_.wear_scheme == NvmWearScheme::Rotate) {
        wlc_assert(params_.size_bytes % params_.wear_line_bytes == 0,
                   "NVM size must be a whole number of wear lines");
        rotator_ = std::make_unique<WearRotator>(
            wear_lines, params_.wear_line_bytes,
            params_.rotate_period_writes);
    }
    if (params_.hybrid_lines > 0) {
        hybrid_ = std::make_unique<HybridRegion>(
            params_.hybrid_lines, params_.hybrid_promote_writes);
    }
}

void
NvmMemory::checkRange(Addr addr, unsigned bytes) const
{
    wlc_assert(bytes > 0);
    wlc_assert(addr + bytes <= data_.size(),
               "NVM access out of range: addr=0x%llx size=%u",
               static_cast<unsigned long long>(addr), bytes);
}

Addr
NvmMemory::timingAddr(Addr addr) const
{
    return rotator_ ? rotator_->map(addr) : addr;
}

void
NvmMemory::recordWear(Addr addr, unsigned bytes)
{
    if (!wear_)
        return;
    const std::uint64_t first = addr / params_.wear_line_bytes;
    const std::uint64_t last =
        (addr + bytes - 1) / params_.wear_line_bytes;
    for (std::uint64_t line = first; line <= last; ++line)
        wear_->recordLine(rotator_ ? rotator_->mapLine(line) : line);
}

void
NvmMemory::accountTiming(const NvmAccessTiming &t, Addr addr,
                         Cycle now)
{
    if (t.bank_conflict) {
        ++stat_bank_conflicts_;
        WLC_TIMELINE(tl_, BankConflict, now, "nvm", addr,
                     params_.bankOf(timingAddr(addr)));
    }
    if (t.queue_wait > 0) {
        stat_queue_stall_cycles_ += static_cast<double>(t.queue_wait);
        WLC_TIMELINE(tl_, QueueStall, now, "nvm",
                     params_.bankOf(timingAddr(addr)), t.queue_wait);
    }
    if (t.turnaround_wait > 0)
        stat_turnaround_stall_cycles_ +=
            static_cast<double>(t.turnaround_wait);
    if (params_.model == NvmModel::BankedQueue) {
        if (t.row_hit)
            ++stat_row_hits_;
        else
            ++stat_row_misses_;
    }
}

void
NvmMemory::resetChannel()
{
    model_->reset();
    fast_busy_until_ = 0;
}

NvmAccessResult
NvmMemory::read(Addr addr, unsigned bytes, Cycle now, void *out)
{
    checkRange(addr, bytes);
    const Addr taddr = timingAddr(addr);

    // Resident hot lines are served by the STT fast region on its
    // own port — no channel arbitration, no main-array energy.
    if (hybrid_ &&
        hybrid_->onRead(taddr / params_.wear_line_bytes)) {
        const Cycle start = std::max(now, fast_busy_until_);
        const Cycle ready = start + params_.hybrid_access_latency;
        fast_busy_until_ = ready;
        if (out)
            std::memcpy(out, data_.data() + addr, bytes);
        ++stat_reads_;
        ++stat_fast_reads_;
        stat_bytes_read_ += bytes;
        if (meter_)
            meter_->add(energy::EnergyCategory::MemRead,
                        params_.hybrid_read_energy_per_byte * bytes);
        WLC_TIMELINE(tl_, NvmRead, now, "nvm", addr, bytes);
        return { start, ready };
    }

    const NvmAccessTiming t = model_->access(taddr, bytes, now,
                                             /*is_write=*/false);
    accountTiming(t, addr, now);
    if (out)
        std::memcpy(out, data_.data() + addr, bytes);
    ++stat_reads_;
    stat_bytes_read_ += bytes;
    if (meter_) {
        // The legacy model charges activation on every access; the
        // banked model only on a row miss.
        const double e =
            params_.model == NvmModel::SingleCursor
                ? params_.readEnergy(bytes)
                : (t.row_hit ? 0.0 : params_.activate_energy) +
                      params_.read_energy_per_byte * bytes;
        meter_->add(energy::EnergyCategory::MemRead, e);
    }
    WLC_TIMELINE(tl_, NvmRead, now, "nvm", addr, bytes);
    return { t.start, t.ready };
}

NvmAccessResult
NvmMemory::write(Addr addr, unsigned bytes, const void *data, Cycle now)
{
    checkRange(addr, bytes);
    wlc_assert(data != nullptr);
    const Addr taddr = timingAddr(addr);

    if (hybrid_) {
        const HybridRegion::WriteOutcome o =
            hybrid_->onWrite(taddr / params_.wear_line_bytes);
        if (o.evicted) {
            // LRU write-back: one full line of main-array write
            // energy and wear, migrated in the background.
            ++stat_evictions_;
            if (meter_)
                meter_->add(
                    energy::EnergyCategory::MemWrite,
                    params_.writeEnergy(params_.wear_line_bytes));
            if (wear_)
                wear_->recordLine(o.evicted_line);
        }
        if (o.promoted) {
            // Line fill: read the line out of the main array once.
            ++stat_promotions_;
            if (meter_)
                meter_->add(
                    energy::EnergyCategory::MemRead,
                    params_.readEnergy(params_.wear_line_bytes));
        }
        if (o.fast) {
            const Cycle start = std::max(now, fast_busy_until_);
            const Cycle ready = start + params_.hybrid_access_latency;
            fast_busy_until_ = ready;
            std::memcpy(data_.data() + addr, data, bytes);
            touchPages(addr, bytes);
            ++stat_writes_;
            ++stat_fast_writes_;
            stat_bytes_written_ += bytes;
            if (meter_)
                meter_->add(
                    energy::EnergyCategory::MemWrite,
                    params_.hybrid_write_energy_per_byte * bytes);
            stat_write_latency_.sample(
                static_cast<double>(ready - now));
            WLC_TIMELINE(tl_, NvmWrite, now, "nvm", addr, bytes);
            return { start, ready };
        }
    }

    const NvmAccessTiming t = model_->access(taddr, bytes, now,
                                             /*is_write=*/true);
    accountTiming(t, addr, now);
    std::memcpy(data_.data() + addr, data, bytes);
    touchPages(addr, bytes);
    recordWear(addr, bytes);
    if (rotator_)
        rotator_->onWrite();
    ++stat_writes_;
    stat_bytes_written_ += bytes;
    if (meter_) {
        const double pulses =
            (1.0 + params_.write_verify_retries) *
            params_.write_energy_per_byte * bytes;
        const double e =
            params_.model == NvmModel::SingleCursor
                ? params_.activate_energy + pulses
                : (t.row_hit ? 0.0 : params_.activate_energy) +
                      pulses;
        meter_->add(energy::EnergyCategory::MemWrite, e);
    }
    stat_write_latency_.sample(static_cast<double>(t.ready - now));
    WLC_TIMELINE(tl_, NvmWrite, now, "nvm", addr, bytes);
    return { t.start, t.ready };
}

NvmAccessResult
NvmMemory::writeLine(Addr addr, const std::uint8_t *data, unsigned bytes,
                     Cycle now)
{
    return write(addr, bytes, data, now);
}

void
NvmMemory::peek(Addr addr, unsigned bytes, void *out) const
{
    checkRange(addr, bytes);
    wlc_assert(out != nullptr);
    std::memcpy(out, data_.data() + addr, bytes);
}

void
NvmMemory::poke(Addr addr, unsigned bytes, const void *data)
{
    checkRange(addr, bytes);
    wlc_assert(data != nullptr);
    std::memcpy(data_.data() + addr, data, bytes);
    touchPages(addr, bytes);
}

std::uint64_t
NvmMemory::peekInt(Addr addr, unsigned bytes) const
{
    wlc_assert(bytes <= 8);
    std::uint64_t v = 0;
    peek(addr, bytes, &v);
    return v;
}

std::vector<std::uint8_t>
NvmMemory::snapshotRange(Addr addr, std::size_t bytes) const
{
    wlc_assert(addr + bytes <= data_.size(),
               "NVM snapshot out of range: addr=0x%llx size=%zu",
               static_cast<unsigned long long>(addr), bytes);
    return { data_.begin() + static_cast<std::ptrdiff_t>(addr),
             data_.begin() + static_cast<std::ptrdiff_t>(addr + bytes) };
}

std::uint64_t
NvmMemory::numReads() const
{
    return static_cast<std::uint64_t>(stat_reads_.value());
}

std::uint64_t
NvmMemory::numWrites() const
{
    return static_cast<std::uint64_t>(stat_writes_.value());
}

std::uint64_t
NvmMemory::bytesWritten() const
{
    return static_cast<std::uint64_t>(stat_bytes_written_.value());
}

std::uint64_t
NvmMemory::bankConflicts() const
{
    return static_cast<std::uint64_t>(stat_bank_conflicts_.value());
}

std::uint64_t
NvmMemory::queueStallCycles() const
{
    return static_cast<std::uint64_t>(
        stat_queue_stall_cycles_.value());
}

std::uint64_t
NvmMemory::turnaroundStallCycles() const
{
    return static_cast<std::uint64_t>(
        stat_turnaround_stall_cycles_.value());
}

std::uint64_t
NvmMemory::rowHits() const
{
    return static_cast<std::uint64_t>(stat_row_hits_.value());
}

std::uint64_t
NvmMemory::rowMisses() const
{
    return static_cast<std::uint64_t>(stat_row_misses_.value());
}

std::uint64_t
NvmMemory::wearMax() const
{
    return wear_ ? wear_->maxWear() : 0;
}

std::uint64_t
NvmMemory::wearLinesTouched() const
{
    return wear_ ? wear_->linesTouched() : 0;
}

std::uint64_t
NvmMemory::lifetimeHeadroom() const
{
    return wear_ ? wear_->minHeadroom() : params_.endurance_writes;
}

double
NvmMemory::writeLatencyP99() const
{
    const std::uint64_t count = stat_write_latency_.count();
    if (count == 0)
        return 0.0;
    // Ceil(0.99 * count) without floating-point drift.
    const std::uint64_t need = (count * 99 + 99) / 100;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < stats::Distribution::kNumBuckets;
         ++i) {
        cum += stat_write_latency_.bucket(i);
        if (cum >= need)
            return std::ldexp(1.0, static_cast<int>(i));
    }
    return stat_write_latency_.max();
}

void
NvmMemory::resetStats()
{
    stat_group_.resetAll();
}

void
NvmMemory::touchPages(Addr addr, unsigned bytes)
{
    const std::uint64_t first = addr / kJournalPageBytes;
    const std::uint64_t last = (addr + bytes - 1) / kJournalPageBytes;
    for (std::uint64_t p = first; p <= last; ++p)
        touched_pages_.insert(p);
}

void
NvmMemory::clearJournal()
{
    touched_pages_.clear();
}

void
NvmMemory::saveState(SnapshotWriter &w) const
{
    w.section("NVM ");
    model_->saveState(w);
    w.u64(fast_busy_until_);
    stat_group_.saveState(w);
    // Wear/rotation/hybrid presence is a pure function of the
    // configuration, which the snapshot compat key already pins.
    if (wear_)
        wear_->saveState(w);
    if (rotator_)
        rotator_->saveState(w);
    if (hybrid_)
        hybrid_->saveState(w);

    std::vector<std::uint64_t> pages(touched_pages_.begin(),
                                     touched_pages_.end());
    std::sort(pages.begin(), pages.end());
    w.u64(pages.size());
    for (const std::uint64_t p : pages) {
        const std::size_t off = p * kJournalPageBytes;
        const std::size_t n =
            std::min(kJournalPageBytes, data_.size() - off);
        w.u64(p);
        w.u64(n);
        w.bytes(data_.data() + off, n);
    }
}

void
NvmMemory::restoreState(SnapshotReader &r)
{
    r.section("NVM ");
    model_->restoreState(r);
    fast_busy_until_ = r.u64();
    stat_group_.restoreState(r);
    if (wear_)
        wear_->restoreState(r);
    if (rotator_)
        rotator_->restoreState(r);
    if (hybrid_)
        hybrid_->restoreState(r);

    touched_pages_.clear();
    const std::uint64_t n_pages = r.u64();
    for (std::uint64_t i = 0; i < n_pages; ++i) {
        const std::uint64_t p = r.u64();
        const std::uint64_t n = r.u64();
        const std::size_t off = p * kJournalPageBytes;
        wlc_assert(off + n <= data_.size(),
                   "snapshot journal page out of range");
        r.bytes(data_.data() + off, n);
        touched_pages_.insert(p);
    }
}

} // namespace mem
} // namespace wlcache
