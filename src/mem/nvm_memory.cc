#include "mem/nvm_memory.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "telemetry/timeline.hh"

namespace wlcache {
namespace mem {

NvmMemory::NvmMemory(const NvmParams &params, energy::EnergyMeter *meter)
    : params_(params), meter_(meter), data_(params.size_bytes, 0),
      bank_busy_until_(params.banks, 0),
      stat_group_("nvm"),
      stat_reads_(stat_group_.addScalar("reads", "NVM read accesses")),
      stat_writes_(stat_group_.addScalar("writes", "NVM write accesses")),
      stat_bytes_read_(
          stat_group_.addScalar("bytes_read", "bytes read from NVM")),
      stat_bytes_written_(
          stat_group_.addScalar("bytes_written", "bytes written to NVM"))
{
    wlc_assert(params_.size_bytes > 0);
    wlc_assert(params_.banks > 0);
}

void
NvmMemory::checkRange(Addr addr, unsigned bytes) const
{
    wlc_assert(bytes > 0);
    wlc_assert(addr + bytes <= data_.size(),
               "NVM access out of range: addr=0x%llx size=%u",
               static_cast<unsigned long long>(addr), bytes);
}

Cycle
NvmMemory::acquire(Addr addr, unsigned bytes, Cycle now)
{
    // Wide (line) accesses stripe across banks in a pipelined burst;
    // arbitration is against the shared channel plus the base bank.
    (void)bytes;
    const Cycle start = std::max(now, channel_busy_until_);
    return std::max(start, bank_busy_until_[params_.bankOf(addr)]);
}

void
NvmMemory::release(Addr addr, unsigned bytes, Cycle channel_until,
                   Cycle bank_until)
{
    (void)bytes;
    channel_busy_until_ = channel_until;
    bank_busy_until_[params_.bankOf(addr)] = bank_until;
}

void
NvmMemory::resetChannel()
{
    channel_busy_until_ = 0;
    for (Cycle &b : bank_busy_until_)
        b = 0;
}

NvmAccessResult
NvmMemory::read(Addr addr, unsigned bytes, Cycle now, void *out)
{
    checkRange(addr, bytes);
    const Cycle start = acquire(addr, bytes, now);
    const Cycle ready = start + params_.readLatency(bytes);
    const Cycle beats = (bytes + 7) / 8;
    release(addr, bytes, start + beats * params_.t_burst, ready);
    if (out)
        std::memcpy(out, data_.data() + addr, bytes);
    ++stat_reads_;
    stat_bytes_read_ += bytes;
    if (meter_)
        meter_->add(energy::EnergyCategory::MemRead,
                    params_.readEnergy(bytes));
    WLC_TIMELINE(tl_, NvmRead, now, "nvm", addr, bytes);
    return { start, ready };
}

NvmAccessResult
NvmMemory::write(Addr addr, unsigned bytes, const void *data, Cycle now)
{
    checkRange(addr, bytes);
    wlc_assert(data != nullptr);
    const Cycle start = acquire(addr, bytes, now);
    const Cycle ready = start + params_.writeAckLatency(bytes);
    const Cycle beats = (bytes + 7) / 8;
    release(addr, bytes, start + beats * params_.t_burst,
            ready + params_.writeRecovery());
    std::memcpy(data_.data() + addr, data, bytes);
    touchPages(addr, bytes);
    ++stat_writes_;
    stat_bytes_written_ += bytes;
    if (meter_)
        meter_->add(energy::EnergyCategory::MemWrite,
                    params_.writeEnergy(bytes));
    WLC_TIMELINE(tl_, NvmWrite, now, "nvm", addr, bytes);
    return { start, ready };
}

NvmAccessResult
NvmMemory::writeLine(Addr addr, const std::uint8_t *data, unsigned bytes,
                     Cycle now)
{
    return write(addr, bytes, data, now);
}

void
NvmMemory::peek(Addr addr, unsigned bytes, void *out) const
{
    checkRange(addr, bytes);
    wlc_assert(out != nullptr);
    std::memcpy(out, data_.data() + addr, bytes);
}

void
NvmMemory::poke(Addr addr, unsigned bytes, const void *data)
{
    checkRange(addr, bytes);
    wlc_assert(data != nullptr);
    std::memcpy(data_.data() + addr, data, bytes);
    touchPages(addr, bytes);
}

std::uint64_t
NvmMemory::peekInt(Addr addr, unsigned bytes) const
{
    wlc_assert(bytes <= 8);
    std::uint64_t v = 0;
    peek(addr, bytes, &v);
    return v;
}

std::vector<std::uint8_t>
NvmMemory::snapshotRange(Addr addr, std::size_t bytes) const
{
    wlc_assert(addr + bytes <= data_.size(),
               "NVM snapshot out of range: addr=0x%llx size=%zu",
               static_cast<unsigned long long>(addr), bytes);
    return { data_.begin() + static_cast<std::ptrdiff_t>(addr),
             data_.begin() + static_cast<std::ptrdiff_t>(addr + bytes) };
}

std::uint64_t
NvmMemory::numReads() const
{
    return static_cast<std::uint64_t>(stat_reads_.value());
}

std::uint64_t
NvmMemory::numWrites() const
{
    return static_cast<std::uint64_t>(stat_writes_.value());
}

std::uint64_t
NvmMemory::bytesWritten() const
{
    return static_cast<std::uint64_t>(stat_bytes_written_.value());
}

void
NvmMemory::resetStats()
{
    stat_group_.resetAll();
}

void
NvmMemory::touchPages(Addr addr, unsigned bytes)
{
    const std::uint64_t first = addr / kJournalPageBytes;
    const std::uint64_t last = (addr + bytes - 1) / kJournalPageBytes;
    for (std::uint64_t p = first; p <= last; ++p)
        touched_pages_.insert(p);
}

void
NvmMemory::clearJournal()
{
    touched_pages_.clear();
}

void
NvmMemory::saveState(SnapshotWriter &w) const
{
    w.section("NVM ");
    w.u64(channel_busy_until_);
    w.u64(bank_busy_until_.size());
    for (const Cycle b : bank_busy_until_)
        w.u64(b);
    stat_group_.saveState(w);

    std::vector<std::uint64_t> pages(touched_pages_.begin(),
                                     touched_pages_.end());
    std::sort(pages.begin(), pages.end());
    w.u64(pages.size());
    for (const std::uint64_t p : pages) {
        const std::size_t off = p * kJournalPageBytes;
        const std::size_t n =
            std::min(kJournalPageBytes, data_.size() - off);
        w.u64(p);
        w.u64(n);
        w.bytes(data_.data() + off, n);
    }
}

void
NvmMemory::restoreState(SnapshotReader &r)
{
    r.section("NVM ");
    channel_busy_until_ = r.u64();
    const std::uint64_t n_banks = r.u64();
    wlc_assert(n_banks == bank_busy_until_.size());
    for (Cycle &b : bank_busy_until_)
        b = r.u64();
    stat_group_.restoreState(r);

    touched_pages_.clear();
    const std::uint64_t n_pages = r.u64();
    for (std::uint64_t i = 0; i < n_pages; ++i) {
        const std::uint64_t p = r.u64();
        const std::uint64_t n = r.u64();
        const std::size_t off = p * kJournalPageBytes;
        wlc_assert(off + n <= data_.size(),
                   "snapshot journal page out of range");
        r.bytes(data_.data() + off, n);
        touched_pages_.insert(p);
    }
}

} // namespace mem
} // namespace wlcache
