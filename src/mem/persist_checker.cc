#include "mem/persist_checker.hh"

#include <algorithm>
#include <cstdio>

#include "mem/nvm_memory.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace wlcache {
namespace mem {

void
PersistChecker::applyStore(Addr addr, unsigned bytes, std::uint64_t value)
{
    wlc_assert(bytes <= 8);
    for (unsigned i = 0; i < bytes; ++i)
        shadow_[addr + i] =
            static_cast<std::uint8_t>((value >> (8 * i)) & 0xff);
}

void
PersistChecker::applyInit(Addr addr, const std::uint8_t *data,
                          unsigned bytes)
{
    wlc_assert(data != nullptr);
    for (unsigned i = 0; i < bytes; ++i)
        shadow_[addr + i] = data[i];
}

std::vector<PersistMismatch>
PersistChecker::compare(const NvmMemory &nvm,
                        std::size_t max_mismatches) const
{
    std::vector<PersistMismatch> out;
    for (const auto &[addr, expected] : shadow_) {
        std::uint8_t actual = 0;
        nvm.peek(addr, 1, &actual);
        if (actual != expected) {
            out.push_back({ addr, expected, actual });
            if (out.size() >= max_mismatches)
                break;
        }
    }
    return out;
}

StateDiff
PersistChecker::diffState(
    const NvmMemory &nvm,
    const std::unordered_map<Addr, std::uint8_t> &overlay,
    const std::function<bool(Addr)> &skip,
    std::size_t max_mismatches) const
{
    StateDiff diff;
    for (const auto &[addr, expected] : shadow_) {
        if (skip && skip(addr))
            continue;
        std::uint8_t actual = 0;
        const auto it = overlay.find(addr);
        if (it != overlay.end())
            actual = it->second;
        else
            nvm.peek(addr, 1, &actual);
        if (actual != expected) {
            ++diff.total_mismatched_bytes;
            diff.mismatches.push_back({ addr, expected, actual });
        }
    }
    std::sort(diff.mismatches.begin(), diff.mismatches.end(),
              [](const PersistMismatch &a, const PersistMismatch &b) {
                  return a.addr < b.addr;
              });
    if (diff.mismatches.size() > max_mismatches)
        diff.mismatches.resize(max_mismatches);
    return diff;
}

std::uint8_t
PersistChecker::expectedByte(Addr addr) const
{
    auto it = shadow_.find(addr);
    wlc_assert(it != shadow_.end(), "byte 0x%llx untracked",
               static_cast<unsigned long long>(addr));
    return it->second;
}

bool
PersistChecker::isTracked(Addr addr) const
{
    return shadow_.find(addr) != shadow_.end();
}

void
PersistChecker::reset()
{
    shadow_.clear();
}

std::string
PersistChecker::describe(const std::vector<PersistMismatch> &ms)
{
    if (ms.empty())
        return "consistent";
    std::string out =
        std::to_string(ms.size()) + "+ mismatching bytes:";
    for (const auto &m : ms) {
        char buf[80];
        std::snprintf(buf, sizeof(buf),
                      " [0x%llx exp=%02x got=%02x]",
                      static_cast<unsigned long long>(m.addr),
                      m.expected, m.actual);
        out += buf;
    }
    return out;
}

void
PersistChecker::saveState(SnapshotWriter &w) const
{
    w.section("CHK ");
    std::vector<std::pair<Addr, std::uint8_t>> entries(shadow_.begin(),
                                                       shadow_.end());
    std::sort(entries.begin(), entries.end());
    w.u64(entries.size());
    for (const auto &[addr, expected] : entries) {
        w.u64(addr);
        w.u8(expected);
    }
}

void
PersistChecker::restoreState(SnapshotReader &r)
{
    r.section("CHK ");
    shadow_.clear();
    const std::uint64_t n = r.u64();
    shadow_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr addr = r.u64();
        shadow_[addr] = r.u8();
    }
}

} // namespace mem
} // namespace wlcache
