#include <cstdio>
#include <ostream>

#include "verify/campaign.hh"

namespace wlcache {
namespace verify {

namespace {

std::string
esc(const std::string &s)
{
    std::string o;
    o.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            o += '\\';
        o += c;
    }
    return o;
}

const char *
boolStr(bool b)
{
    return b ? "true" : "false";
}

} // anonymous namespace

void
writeCampaignReportJson(std::ostream &os, const CampaignReport &r)
{
    os << "{\n";
    os << "  \"report_version\": 2,\n";
    os << "  \"workload\": \"" << esc(r.workload) << "\",\n";
    os << "  \"design\": \"" << esc(r.design) << "\",\n";

    os << "  \"golden\": {\n";
    os << "    \"clean\": " << boolStr(r.golden_clean) << ",\n";
    os << "    \"completed\": " << boolStr(r.golden.completed)
       << ",\n";
    os << "    \"on_cycles\": " << r.golden.on_cycles << ",\n";
    os << "    \"outages\": " << r.golden.outages << ",\n";
    os << "    \"nvm_writes\": " << r.golden.nvm_writes << ",\n";
    os << "    \"final_state_correct\": "
       << boolStr(r.golden.final_state_correct) << ",\n";
    os << "    \"final_state_digest\": \""
       << esc(r.golden.final_state_digest) << "\"\n  },\n";

    os << "  \"summary\": {\n";
    os << "    \"points\": " << r.points.size() << ",\n";
    os << "    \"clean\": " << r.num_clean << ",\n";
    os << "    \"divergent\": " << r.num_divergent << ",\n";
    os << "    \"incomplete\": " << r.num_incomplete << ",\n";
    os << "    \"not_reached\": " << r.num_not_reached << "\n  },\n";

    os << "  \"points\": [\n";
    for (std::size_t i = 0; i < r.points.size(); ++i) {
        const PointResult &p = r.points[i];
        os << "    {\"point\": " << p.point << ", \"verdict\": \""
           << verdictName(p.verdict) << "\", \"completed\": "
           << boolStr(p.completed) << ", \"outages\": " << p.outages
           << ", \"forced_outages\": " << p.forced_outages
           << ", \"consistency_violations\": "
           << p.consistency_violations
           << ", \"load_value_mismatches\": "
           << p.load_value_mismatches
           << ", \"register_restore_mismatches\": "
           << p.register_restore_mismatches
           << ", \"final_state_correct\": "
           << boolStr(p.final_state_correct)
           << ", \"final_state_digest\": \""
           << esc(p.final_state_digest) << "\"";
        if (p.has_first_divergence) {
            os << ", \"first_divergence\": {\"kind\": \""
               << esc(p.first_divergence_kind) << "\", \"addr\": "
               << p.first_divergence_addr << ", \"cycle\": "
               << p.first_divergence_cycle << ", \"outage\": "
               << p.first_divergence_outage << "}";
        } else {
            os << ", \"first_divergence\": null";
        }
        os << '}' << (i + 1 < r.points.size() ? ",\n" : "\n");
    }
    os << "  ],\n";

    if (r.has_divergence_window) {
        os << "  \"divergence_window\": {\n";
        os << "    \"point\": " << r.divergence_window_point << ",\n";
        os << "    \"schema_version\": "
           << telemetry::kTimelineSchemaVersion << ",\n";
        os << "    \"events\": [\n";
        for (std::size_t i = 0; i < r.divergence_window.size(); ++i) {
            const telemetry::TimelineEvent &e = r.divergence_window[i];
            char v[48];
            std::snprintf(v, sizeof(v), "%.17g", e.v);
            os << "      {\"seq\": " << e.seq << ", \"cycle\": "
               << e.cycle << ", \"type\": \""
               << telemetry::eventTypeName(e.type) << "\", \"track\": \""
               << telemetry::trackName(telemetry::eventTrack(e.type))
               << "\", \"comp\": \"" << esc(e.comp) << "\", \"a0\": "
               << e.a0 << ", \"a1\": " << e.a1 << ", \"v\": " << v
               << '}'
               << (i + 1 < r.divergence_window.size() ? ",\n" : "\n");
        }
        os << "    ]\n  },\n";
    } else {
        os << "  \"divergence_window\": null,\n";
    }

    if (r.bisect.ran) {
        os << "  \"bisect\": {\n";
        os << "    \"clean_low\": " << r.bisect.clean_low << ",\n";
        os << "    \"first_fail\": " << r.bisect.first_fail << ",\n";
        os << "    \"minimal_fail\": " << r.bisect.minimal_fail
           << ",\n";
        os << "    \"probes\": " << r.bisect.probes << "\n  },\n";
    } else {
        os << "  \"bisect\": null,\n";
    }

    os << "  \"runner\": {\n";
    os << "    \"runs\": " << r.runs << ",\n";
    os << "    \"cache_hits\": " << r.cache_hits << ",\n";
    os << "    \"executed\": " << r.executed << "\n  }\n";
    os << "}\n";
}

} // namespace verify
} // namespace wlcache
