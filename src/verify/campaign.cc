#include "verify/campaign.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "nvp/snapshot.hh"
#include "runner/result_cache.hh"
#include "runner/runner.hh"
#include "runner/snapshot_store.hh"
#include "runner/spec_key.hh"
#include "sim/logging.hh"

namespace wlcache {
namespace verify {

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Clean:      return "clean";
      case Verdict::Divergent:  return "divergent";
      case Verdict::Incomplete: return "incomplete";
      case Verdict::NotReached: return "not-reached";
    }
    panic("unknown Verdict %d", static_cast<int>(v));
}

namespace {

/** The spec a single forced-outage point runs with. */
nvp::ExperimentSpec
pointSpec(const CampaignConfig &cfg, std::uint64_t point)
{
    nvp::ExperimentSpec spec = cfg.base;
    // Default: infinite power, so the forced point is the run's only
    // outage and a divergence is attributable to that one recovery.
    if (!cfg.ambient)
        spec.no_failure = true;
    const auto base_tweak = cfg.base.tweak;
    const bool skip_ckpt = cfg.inject_checkpoint_skip;
    const bool skip_regs = cfg.inject_register_skip;
    spec.tweak = [base_tweak, point, skip_ckpt,
                  skip_regs](nvp::SystemConfig &c) {
        if (base_tweak)
            base_tweak(c);
        c.forced_outage_cycles = { point };
        c.validate_consistency = true;
        c.check_load_values = true;
        c.inject_checkpoint_skip = skip_ckpt;
        c.inject_register_skip = skip_regs;
    };
    return spec;
}

/** The golden (uninterrupted, fault-free) reference spec. */
nvp::ExperimentSpec
goldenSpec(const CampaignConfig &cfg)
{
    nvp::ExperimentSpec spec = cfg.base;
    spec.no_failure = true;
    const auto base_tweak = cfg.base.tweak;
    spec.tweak = [base_tweak](nvp::SystemConfig &c) {
        if (base_tweak)
            base_tweak(c);
        c.forced_outage_cycles.clear();
        c.validate_consistency = true;
        c.check_load_values = true;
        c.inject_checkpoint_skip = false;
        c.inject_register_skip = false;
    };
    return spec;
}

Verdict
judge(const nvp::RunResult &run, const nvp::RunResult &golden)
{
    if (!run.completed)
        return Verdict::Incomplete;
    if (run.forced_outages == 0)
        return Verdict::NotReached;
    const bool diverged = run.consistency_violations > 0 ||
        run.load_value_mismatches > 0 ||
        run.register_restore_mismatches > 0 ||
        !run.final_state_correct ||
        run.final_state_digest != golden.final_state_digest;
    return diverged ? Verdict::Divergent : Verdict::Clean;
}

PointResult
toPointResult(std::uint64_t point, const nvp::RunResult &run,
              const nvp::RunResult &golden)
{
    PointResult pr;
    pr.point = point;
    pr.verdict = judge(run, golden);
    pr.completed = run.completed;
    pr.outages = run.outages;
    pr.forced_outages = run.forced_outages;
    pr.has_first_divergence = run.has_first_divergence;
    pr.first_divergence_kind = run.first_divergence_kind;
    pr.first_divergence_addr = run.first_divergence_addr;
    pr.first_divergence_cycle = run.first_divergence_cycle;
    pr.first_divergence_outage = run.first_divergence_outage;
    pr.consistency_violations = run.consistency_violations;
    pr.load_value_mismatches = run.load_value_mismatches;
    pr.register_restore_mismatches = run.register_restore_mismatches;
    pr.final_state_correct = run.final_state_correct;
    pr.final_state_digest = run.final_state_digest;
    return pr;
}

void
countVerdict(CampaignReport &rep, Verdict v)
{
    switch (v) {
      case Verdict::Clean:      ++rep.num_clean; break;
      case Verdict::Divergent:  ++rep.num_divergent; break;
      case Verdict::Incomplete: ++rep.num_incomplete; break;
      case Verdict::NotReached: ++rep.num_not_reached; break;
    }
}

void
absorbStats(CampaignReport &rep, const runner::BatchStats &st)
{
    rep.runs += st.total;
    rep.cache_hits += st.cache_hits;
    rep.executed += st.executed;
    rep.simulated_cycles += st.simulated_cycles;
}

} // anonymous namespace

CampaignReport
runCampaign(const CampaignConfig &cfg)
{
    CampaignReport rep;
    rep.workload = cfg.base.workload;
    rep.design = nvp::designKindName(cfg.base.design);

    runner::RunnerConfig rc;
    rc.jobs = cfg.jobs;
    rc.cache_dir = cfg.cache_dir;
    rc.progress = cfg.progress;
    rc.progress_out = cfg.progress_out;
    rc.executor = cfg.executor;
    runner::Runner runner(rc);

    // Snapshot resume only makes sense under the infinite-power
    // fault model: under ambient power the point runs live in the
    // spec's harvesting environment while the golden run does not,
    // so they share no common prefix to fast-forward through.
    std::uint64_t snap_interval = cfg.snapshot_interval;
    if (snap_interval && cfg.ambient) {
        warn("campaign: snapshot resume requires the infinite-power "
             "fault model; ignoring snapshot_interval under ambient");
        snap_interval = 0;
    }

    // --- 1. Golden reference: uninterrupted, fault-free. ---
    //
    // With snapshots enabled the golden run doubles as the ladder
    // recorder: it executes directly (a result-cache hit would skip
    // the simulation and record nothing) with a snapshot sink, and
    // the ladder is persisted to the snapshot store so later
    // campaigns skip even that. Taking snapshots never perturbs the
    // run, so the RunResult is identical either way.
    nvp::SnapshotSet ladder;
    bool have_ladder = false;
    const runner::SnapshotStore snaps(cfg.snapshot_dir);
    bool golden_done = false;
    if (snap_interval) {
        const nvp::ExperimentSpec gspec = goldenSpec(cfg);
        const std::string rkey = runner::resumeKey(gspec);
        if (snaps.loadSet(rkey, ladder) &&
            ladder.interval == snap_interval) {
            have_ladder = true;
        } else {
            ladder = nvp::SnapshotSet{};
            ladder.interval = snap_interval;
            nvp::RunOptions ro;
            ro.snapshot_interval = snap_interval;
            ro.snapshot_sink = [&ladder](nvp::SystemSnapshot s) {
                ladder.snaps.push_back(std::move(s));
            };
            rep.golden = nvp::runExperimentEx(gspec, ro);
            ++rep.runs;
            ++rep.executed;
            rep.simulated_cycles += rep.golden.on_cycles;
            have_ladder = true;
            golden_done = true;
            snaps.storeSet(rkey, ladder);
            const runner::ResultCache cache(cfg.cache_dir);
            cache.store(runner::specKey(gspec), rep.golden);
        }
    }
    if (!golden_done) {
        runner::JobSet set;
        set.add(goldenSpec(cfg), "golden");
        rep.golden = runner.runAll(set).at(0);
        absorbStats(rep, runner.stats());
    }
    rep.golden_clean = rep.golden.completed && !rep.golden.divergence &&
        rep.golden.final_state_correct;
    if (!rep.golden_clean) {
        // The reference itself is broken; point verdicts would be
        // meaningless, so report the golden failure and stop.
        return rep;
    }

    // --- 2. Point selection: explicit + stride + window, deduped. ---
    std::vector<std::uint64_t> pts = cfg.points;
    if (cfg.stride > 0) {
        for (std::uint64_t c = cfg.stride; c < rep.golden.on_cycles;
             c += cfg.stride)
            pts.push_back(c);
    }
    if (cfg.has_window) {
        const std::uint64_t step = std::max<std::uint64_t>(
            1, cfg.window_step);
        for (std::uint64_t c = cfg.window_begin; c < cfg.window_end;
             c += step)
            pts.push_back(c);
    }
    std::sort(pts.begin(), pts.end());
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());

    // Shared holders so every point resuming from the same ladder
    // rung references one snapshot instead of copying it.
    std::vector<std::shared_ptr<const nvp::SystemSnapshot>> rungs;
    if (have_ladder) {
        rungs.reserve(ladder.snaps.size());
        for (const nvp::SystemSnapshot &s : ladder.snaps)
            rungs.push_back(
                std::make_shared<const nvp::SystemSnapshot>(s));
    }
    auto resumeFor = [&](std::uint64_t point)
        -> std::shared_ptr<const nvp::SystemSnapshot> {
        if (!have_ladder)
            return nullptr;
        // Strictly before the point: a snapshot taken AT the outage
        // cycle was captured after the forced-outage check passed.
        const nvp::SystemSnapshot *s = ladder.bestBefore(point);
        if (!s || !s->valid())
            return nullptr;
        return rungs[static_cast<std::size_t>(
            s - ladder.snaps.data())];
    };

    // --- 3. Sweep: one run per point, fanned over the pool. ---
    if (!pts.empty()) {
        runner::JobSet set;
        for (const std::uint64_t p : pts) {
            const std::size_t i =
                set.add(pointSpec(cfg, p), "p" + std::to_string(p));
            if (auto r = resumeFor(p))
                set.setResume(i, std::move(r));
        }
        const std::vector<nvp::RunResult> runs = runner.runAll(set);
        absorbStats(rep, runner.stats());
        rep.points.reserve(pts.size());
        for (std::size_t i = 0; i < pts.size(); ++i) {
            rep.points.push_back(
                toPointResult(pts[i], runs[i], rep.golden));
            countVerdict(rep, rep.points.back().verdict);
        }
    }

    // --- 4. Divergence context: re-run the first divergent point
    // with a timeline attached and keep the window of events leading
    // up to the first divergence. Direct runExperiment, not the
    // runner: a result-cache hit would skip the simulation entirely
    // and record nothing. ---
    if (cfg.timeline_window > 0 && rep.num_divergent > 0) {
        std::uint64_t fail_point = 0;
        for (const PointResult &pr : rep.points) {
            if (pr.verdict == Verdict::Divergent) {
                fail_point = pr.point;
                break;
            }
        }
        telemetry::TimelineBuffer tl(1u << 16);
        nvp::ExperimentSpec spec = pointSpec(cfg, fail_point);
        const auto point_tweak = spec.tweak;
        telemetry::TimelineBuffer *tlp = &tl;
        spec.tweak = [point_tweak, tlp](nvp::SystemConfig &c) {
            point_tweak(c);
            c.timeline = tlp;
        };
        const nvp::RunResult rr = nvp::runExperiment(spec);
        ++rep.runs;
        ++rep.executed;
        rep.simulated_cycles += rr.on_cycles;
        // Digest-only divergences carry no first-divergence cycle;
        // fall back to the end of the run.
        const Cycle upto = rr.has_first_divergence
            ? rr.first_divergence_cycle : ~static_cast<Cycle>(0);
        rep.divergence_window =
            tl.lastBefore(upto, cfg.timeline_window);
        rep.has_divergence_window = true;
        rep.divergence_window_point = fail_point;
    }

    // --- 5. Bisect down to the minimal failing cycle. ---
    if (cfg.bisect && rep.num_divergent > 0) {
        std::uint64_t first_fail = 0;
        std::uint64_t clean_low = 0;
        bool found = false;
        for (const PointResult &pr : rep.points) {
            if (pr.verdict == Verdict::Divergent) {
                first_fail = pr.point;
                found = true;
                break;
            }
            if (pr.verdict == Verdict::Clean)
                clean_low = pr.point;
        }
        wlc_assert(found);

        BisectResult &b = rep.bisect;
        b.ran = true;
        b.clean_low = clean_low;
        b.first_fail = first_fail;

        // Invariant: lo is known clean (or cycle 0, which we treat as
        // the search floor), hi is known divergent. Every probe goes
        // through the runner, so repeated campaigns re-use them.
        std::uint64_t lo = clean_low;
        std::uint64_t hi = first_fail;
        while (hi - lo > 1) {
            const std::uint64_t mid = lo + (hi - lo) / 2;
            runner::JobSet probe;
            probe.add(pointSpec(cfg, mid),
                      "bisect" + std::to_string(mid));
            if (auto r = resumeFor(mid))
                probe.setResume(0, std::move(r));
            const nvp::RunResult run = runner.runAll(probe).at(0);
            absorbStats(rep, runner.stats());
            ++b.probes;
            // An Incomplete/NotReached probe cannot prove the fault
            // absent below mid; treat it as clean so the search keeps
            // homing in on the sweep's confirmed failure.
            if (judge(run, rep.golden) == Verdict::Divergent)
                hi = mid;
            else
                lo = mid;
        }
        b.minimal_fail = hi;
    }

    return rep;
}

} // namespace verify
} // namespace wlcache
