/**
 * @file
 * Fault-injection campaign engine. For one (design, workload, trace)
 * triple the campaign (1) runs a golden uninterrupted reference
 * execution, (2) systematically forces a power failure at chosen
 * cycle points — exhaustively over a window, stride-sampled over the
 * whole run, or at explicit points — and (3) diffs each run's
 * post-recovery persistent state (NVM + design overlay + register
 * file) against the golden model, reporting the first divergence.
 * Point runs fan out over the runner's worker pool and land in its
 * content-addressed result cache, so re-running a campaign (or
 * bisecting inside one) is nearly free.
 */

#ifndef WLCACHE_VERIFY_CAMPAIGN_HH
#define WLCACHE_VERIFY_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nvp/experiment.hh"
#include "runner/runner.hh"
#include "telemetry/timeline.hh"

namespace wlcache {
namespace verify {

/** Outcome of one forced-outage point. */
enum class Verdict
{
    Clean,       //!< Completed; every oracle agreed with golden.
    Divergent,   //!< Some oracle disagreed (the fault was detected).
    Incomplete,  //!< Run did not finish (environment died / outage cap).
    NotReached,  //!< Point lies beyond the end of execution.
};

const char *verdictName(Verdict v);

/** What the campaign executes and how it picks points. */
struct CampaignConfig
{
    /**
     * The experiment under test: design, workload, scale, seeds. The
     * campaign overrides the failure model — by default every point
     * run executes under infinite power with the forced outage as its
     * *only* power failure, so a divergence is attributable to that
     * single recovery. Set @c ambient to keep the spec's harvesting
     * environment (natural outages then occur in addition).
     */
    nvp::ExperimentSpec base;
    bool ambient = false;

    // --- Point selection (union of all three) ---

    /** Explicit forced-outage cycles. */
    std::vector<std::uint64_t> points;
    /** Stride-sample [stride, golden_on_cycles) every this many. */
    std::uint64_t stride = 0;
    /** Exhaustive window [begin, end) at @c window_step granularity. */
    bool has_window = false;
    std::uint64_t window_begin = 0;
    std::uint64_t window_end = 0;
    std::uint64_t window_step = 1;

    // --- Fault matrix (applied to point runs, not the golden run) ---

    /** Drop the design's JIT checkpoint at every outage. */
    bool inject_checkpoint_skip = false;
    /** Drop the NVFF register checkpoint at every outage. */
    bool inject_register_skip = false;

    // --- Search ---

    /**
     * After the sweep, bisect between the last clean point below the
     * first divergent point (or cycle 0) and the first divergent
     * point, to find the minimal failing cycle.
     */
    bool bisect = false;

    // --- Execution ---

    unsigned jobs = 0;          //!< Worker threads (0 = default).
    std::string cache_dir;      //!< Result cache; empty disables.
    bool progress = false;      //!< Per-job progress lines.
    /** Progress sink; null falls back to std::cerr. */
    std::ostream *progress_out = nullptr;
    /**
     * Remote execution hook for the point-run batches (cache-miss
     * jobs go to the wlcached fleet). The golden ladder recording and
     * the timeline re-run always execute locally — they need live
     * snapshot sinks and timeline buffers a remote worker cannot
     * share. Null executes everything locally.
     */
    runner::RemoteExecutor executor;

    /**
     * Golden-run snapshot ladder interval in cycles; 0 disables.
     * When set, the golden run records a snapshot every this-many
     * cycles and every point (and bisect-probe) run fast-forwards
     * from the nearest snapshot strictly before its outage point
     * instead of re-simulating the shared prefix. Resume is purely an
     * accelerator — the report is byte-identical either way. Only
     * valid with the default infinite-power fault model: under
     * @c ambient the point runs do not share the golden run's prefix,
     * so the interval is ignored (with a warning).
     */
    std::uint64_t snapshot_interval = 0;
    /**
     * Snapshot-store directory for persisting the golden ladder
     * across campaigns (keyed like the result cache). Empty keeps
     * the ladder in memory for this campaign only.
     */
    std::string snapshot_dir;

    /**
     * After a divergent sweep, re-run the first divergent point with a
     * telemetry timeline attached and keep the last this-many events
     * at or before the first divergence cycle (the "what led up to
     * it" window in the report). 0 disables the extra run. The re-run
     * bypasses the result cache on purpose: a cached result skips the
     * simulation, so it can never carry a timeline.
     */
    std::size_t timeline_window = 64;
};

/** One point's outcome (divergence detail copied from the run). */
struct PointResult
{
    std::uint64_t point = 0;        //!< Requested outage cycle.
    Verdict verdict = Verdict::Clean;
    bool completed = false;
    std::uint64_t outages = 0;
    std::uint64_t forced_outages = 0;

    bool has_first_divergence = false;
    std::string first_divergence_kind;
    std::uint64_t first_divergence_addr = 0;
    std::uint64_t first_divergence_cycle = 0;
    std::uint64_t first_divergence_outage = 0;
    std::uint64_t consistency_violations = 0;
    std::uint64_t load_value_mismatches = 0;
    std::uint64_t register_restore_mismatches = 0;
    bool final_state_correct = false;
    std::string final_state_digest;
};

/** Outcome of the minimal-failing-cycle search. */
struct BisectResult
{
    bool ran = false;
    std::uint64_t clean_low = 0;     //!< Known-clean lower bound.
    std::uint64_t first_fail = 0;    //!< Sweep's first divergent point.
    std::uint64_t minimal_fail = 0;  //!< Smallest divergent cycle found.
    std::size_t probes = 0;          //!< Extra runs the search cost.
};

/** Everything a campaign learned. */
struct CampaignReport
{
    std::string workload;
    std::string design;

    /** Uninterrupted reference execution. */
    nvp::RunResult golden;
    /** Golden run completed with every oracle silent. */
    bool golden_clean = false;

    std::vector<PointResult> points;   //!< Sorted by point cycle.
    std::size_t num_clean = 0;
    std::size_t num_divergent = 0;
    std::size_t num_incomplete = 0;
    std::size_t num_not_reached = 0;

    BisectResult bisect;

    /**
     * Timeline window around the first divergence: the last
     * CampaignConfig::timeline_window events recorded at or before
     * the divergence cycle of the first divergent point's re-run
     * (chronological order). Empty unless a point diverged and
     * timeline_window > 0.
     */
    bool has_divergence_window = false;
    std::uint64_t divergence_window_point = 0;
    std::vector<telemetry::TimelineEvent> divergence_window;

    // Runner economics (sweep + bisect probes + golden).
    std::size_t runs = 0;
    std::size_t cache_hits = 0;
    std::size_t executed = 0;
    /**
     * On-cycles actually simulated across every executed run, with
     * each snapshot-resumed run counting only the cycles past its
     * resume point. Deliberately NOT serialized into the JSON report:
     * a snapshot-accelerated campaign must produce a byte-identical
     * report to a cold one, and this is the one field that differs.
     */
    std::uint64_t simulated_cycles = 0;

    /** No divergence anywhere (bisect probes included). */
    bool allClean() const { return num_divergent == 0; }
};

/** Execute a campaign. */
CampaignReport runCampaign(const CampaignConfig &cfg);

/**
 * Write @p report as a single structured-JSON object: golden summary,
 * per-point verdicts with first-divergence address/cycle/kind, bisect
 * outcome, and cache statistics.
 */
void writeCampaignReportJson(std::ostream &os,
                             const CampaignReport &report);

/**
 * Write the human-readable per-campaign summary block (the one-shot
 * CLI's stdout: verdict counts, divergent-point table, timeline
 * window and bisect lines). Shared by wlcache_verify and the
 * wlcached campaign handler so a served campaign renders
 * byte-identically to a local one.
 */
void writeCampaignSummary(std::ostream &os,
                          const CampaignReport &report);

} // namespace verify
} // namespace wlcache

#endif // WLCACHE_VERIFY_CAMPAIGN_HH
