/**
 * @file
 * Human-readable campaign summary, shared by the wlcache_verify CLI
 * and the wlcached campaign handler so both render the exact same
 * bytes for the same report.
 */

#include <ostream>

#include "util/table.hh"
#include "verify/campaign.hh"

namespace wlcache {
namespace verify {

void
writeCampaignSummary(std::ostream &os, const CampaignReport &rep)
{
    os << rep.design << "/" << rep.workload << ": ";
    if (!rep.golden_clean) {
        os << "GOLDEN RUN BROKEN (completed="
           << (rep.golden.completed ? "yes" : "no") << ", final "
           << (rep.golden.final_state_correct ? "correct" : "WRONG")
           << ")\n";
        return;
    }
    os << rep.points.size() << " points: " << rep.num_clean
       << " clean, " << rep.num_divergent << " divergent, "
       << rep.num_incomplete << " incomplete, "
       << rep.num_not_reached << " not reached (" << rep.cache_hits
       << "/" << rep.runs << " cached)\n";

    if (rep.num_divergent > 0) {
        util::TextTable t;
        t.header({ "point", "verdict", "kind", "addr", "cycle",
                   "outage" });
        for (const auto &p : rep.points) {
            if (p.verdict != Verdict::Divergent)
                continue;
            t.row({ std::to_string(p.point), verdictName(p.verdict),
                    p.has_first_divergence ? p.first_divergence_kind
                                           : "digest",
                    std::to_string(p.first_divergence_addr),
                    std::to_string(p.first_divergence_cycle),
                    std::to_string(p.first_divergence_outage) });
        }
        t.print(os);
    }
    if (rep.has_divergence_window) {
        os << "  timeline window: " << rep.divergence_window.size()
           << " events leading up to the divergence at point "
           << rep.divergence_window_point
           << " (full detail in --json)\n";
    }
    if (rep.bisect.ran) {
        os << "  bisect: minimal failing cycle "
           << rep.bisect.minimal_fail << " (clean "
           << rep.bisect.clean_low << ", first fail "
           << rep.bisect.first_fail << ", " << rep.bisect.probes
           << " probes)\n";
    }
}

} // namespace verify
} // namespace wlcache
