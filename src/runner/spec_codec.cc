#include "runner/spec_codec.hh"

#include <cstdlib>
#include <functional>
#include <map>
#include <string>

#include "runner/spec_key.hh"
#include "util/strings.hh"

namespace wlcache {
namespace runner {

namespace {

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno || end != s.c_str() + s.size())
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

bool
parseUnsigned(const std::string &s, unsigned &out)
{
    std::uint64_t v = 0;
    if (!parseU64(s, v) || v > 0xffffffffull)
        return false;
    out = static_cast<unsigned>(v);
    return true;
}

bool
parseBool(const std::string &s, bool &out)
{
    if (s == "0")
        out = false;
    else if (s == "1")
        out = true;
    else
        return false;
    return true;
}

/**
 * keyNum() renders doubles as %.17g, which strtod round-trips
 * exactly; anything strtod fully consumes is accepted.
 */
bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(s.c_str(), &end);
    if (errno || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

} // anonymous namespace

bool
parseSpecText(const std::string &text, nvp::ExperimentSpec &out,
              std::string *err)
{
    auto fail = [&](const std::string &what) {
        if (err)
            *err = what;
        return false;
    };
    if (err)
        err->clear();

    nvp::ExperimentSpec spec;
    nvp::SystemConfig cfg;
    bool saw_schema = false, saw_design = false;

    // Field table for everything dumpConfigKey() emits. The closing
    // round-trip check proves the table is complete: a field missing
    // here leaves a preset value that re-dumps differently.
    using Setter = std::function<bool(const std::string &)>;
    std::map<std::string, Setter> set;

    auto u64 = [&](const char *k, std::uint64_t &f) {
        set[k] = [&f](const std::string &v) {
            return parseU64(v, f);
        };
    };
    auto uns = [&](const char *k, unsigned &f) {
        set[k] = [&f](const std::string &v) {
            return parseUnsigned(v, f);
        };
    };
    auto siz = [&](const char *k, std::size_t &f) {
        set[k] = [&f](const std::string &v) {
            std::uint64_t x = 0;
            if (!parseU64(v, x))
                return false;
            f = static_cast<std::size_t>(x);
            return true;
        };
    };
    auto bol = [&](const char *k, bool &f) {
        set[k] = [&f](const std::string &v) {
            return parseBool(v, f);
        };
    };
    auto dbl = [&](const char *k, double &f) {
        set[k] = [&f](const std::string &v) {
            return parseDouble(v, f);
        };
    };
    auto rpl = [&](const char *k, cache::ReplPolicy &f) {
        set[k] = [&f](const std::string &v) {
            return cache::replPolicyFromName(v, f);
        };
    };
    auto cacheFields = [&](const std::string &p,
                           cache::CacheParams &c) {
        siz((p + ".size_bytes").c_str(), c.size_bytes);
        uns((p + ".assoc").c_str(), c.assoc);
        uns((p + ".line_bytes").c_str(), c.line_bytes);
        rpl((p + ".repl").c_str(), c.repl);
        u64((p + ".hit_latency").c_str(), c.hit_latency);
        u64((p + ".write_hit_latency").c_str(), c.write_hit_latency);
        u64((p + ".miss_lookup_latency").c_str(),
            c.miss_lookup_latency);
        dbl((p + ".access_energy_read").c_str(),
            c.access_energy_read);
        dbl((p + ".access_energy_write").c_str(),
            c.access_energy_write);
        dbl((p + ".line_fill_energy").c_str(), c.line_fill_energy);
        dbl((p + ".line_read_energy").c_str(), c.line_read_energy);
        dbl((p + ".leakage_watts").c_str(), c.leakage_watts);
        dbl((p + ".lru_update_energy").c_str(), c.lru_update_energy);
    };

    // --- Spec header ---
    set["schema"] = [&](const std::string &v) {
        unsigned s = 0;
        if (!parseUnsigned(v, s))
            return false;
        if (s != kResultSchemaVersion) {
            if (err)
                *err = "spec schema " + v + " != expected " +
                       std::to_string(kResultSchemaVersion);
            return false;
        }
        saw_schema = true;
        return true;
    };
    set["workload"] = [&](const std::string &v) {
        spec.workload = v;
        return !v.empty();
    };
    uns("scale", spec.scale);
    u64("workload_seed", spec.workload_seed);
    set["power"] = [&](const std::string &v) {
        if (!energy::traceKindFromName(v, spec.power)) {
            if (err) {
                *err = "unknown power trace '" + v + "' (valid: " +
                       energy::traceKindNameList() + ")";
            }
            return false;
        }
        return true;
    };
    u64("power_seed", spec.power_seed);
    u64("power_node", spec.power_node);
    dbl("power_jitter", spec.power_jitter);
    bol("no_failure", spec.no_failure);

    // --- Resolved configuration (dumpConfigKey order) ---
    set["design"] = [&](const std::string &v) {
        nvp::DesignKind kind;
        if (!nvp::designKindFromName(v, kind)) {
            if (err) {
                *err = "unknown design '" + v + "' (valid: " +
                       nvp::designKindNameList() + ")";
            }
            return false;
        }
        // Start from the design preset so any field a future schema
        // stops dumping keeps its preset default (the round-trip
        // check still rejects genuine skew via the schema line).
        cfg = nvp::SystemConfig::forDesign(kind);
        spec.design = kind;
        saw_design = true;
        return true;
    };
    set["step_mode"] = [&](const std::string &v) {
        return nvp::stepModeFromName(v, cfg.step_mode);
    };
    cacheFields("dcache", cfg.dcache);
    cacheFields("icache", cfg.icache);

    bol("nvsram.backup_full", cfg.nvsram.backup_full);
    dbl("nvsram.backup_line_energy", cfg.nvsram.backup_line_energy);
    dbl("nvsram.restore_line_energy",
        cfg.nvsram.restore_line_energy);
    u64("nvsram.backup_line_latency",
        cfg.nvsram.backup_line_latency);
    u64("nvsram.restore_line_latency",
        cfg.nvsram.restore_line_latency);

    dbl("nvsram_practical.migrate_line_energy",
        cfg.nvsram_practical.migrate_line_energy);
    u64("nvsram_practical.migrate_line_latency",
        cfg.nvsram_practical.migrate_line_latency);

    uns("replay.persist_queue_depth",
        cfg.replay.persist_queue_depth);
    uns("replay.region_events", cfg.replay.region_events);
    u64("replay.commit_marker_addr",
        cfg.replay.commit_marker_addr);

    uns("wt_buffer.entries", cfg.wt_buffer.entries);
    u64("wt_buffer.cam_search_latency",
        cfg.wt_buffer.cam_search_latency);
    dbl("wt_buffer.cam_search_energy",
        cfg.wt_buffer.cam_search_energy);
    dbl("wt_buffer.buffer_leakage_watts",
        cfg.wt_buffer.buffer_leakage_watts);

    uns("wl.dq_size", cfg.wl.dq_size);
    uns("wl.maxline", cfg.wl.maxline);
    uns("wl.waterline_gap", cfg.wl.waterline_gap);
    rpl("wl.dq_repl", cfg.wl.dq_repl);
    dbl("wl.dq_access_energy", cfg.wl.dq_access_energy);
    dbl("wl.dq_leakage_watts", cfg.wl.dq_leakage_watts);
    dbl("wl.dq_lru_search_energy", cfg.wl.dq_lru_search_energy);
    bol("wl.eager_evict_cleanup", cfg.wl.eager_evict_cleanup);
    dbl("wl.dq_cam_search_energy", cfg.wl.dq_cam_search_energy);

    bol("adaptive.enabled", cfg.adaptive.enabled);
    dbl("adaptive.delta", cfg.adaptive.delta);
    uns("adaptive.maxline_min", cfg.adaptive.maxline_min);
    uns("adaptive.maxline_max", cfg.adaptive.maxline_max);
    dbl("adaptive.timer_resolution_s",
        cfg.adaptive.timer_resolution_s);
    bol("wl_dynamic", cfg.wl_dynamic);

    siz("nvm.size_bytes", cfg.nvm.size_bytes);
    uns("nvm.banks", cfg.nvm.banks);
    u64("nvm.t_rcd", cfg.nvm.t_rcd);
    u64("nvm.t_cl", cfg.nvm.t_cl);
    u64("nvm.t_burst", cfg.nvm.t_burst);
    u64("nvm.t_wr", cfg.nvm.t_wr);
    u64("nvm.t_wtr", cfg.nvm.t_wtr);
    dbl("nvm.read_energy_per_byte", cfg.nvm.read_energy_per_byte);
    dbl("nvm.write_energy_per_byte", cfg.nvm.write_energy_per_byte);
    dbl("nvm.activate_energy", cfg.nvm.activate_energy);
    set["nvm.model"] = [&cfg](const std::string &v) {
        return mem::nvmModelFromName(v, cfg.nvm.model);
    };
    uns("nvm.queue_depth", cfg.nvm.queue_depth);
    uns("nvm.row_bytes", cfg.nvm.row_bytes);
    uns("nvm.write_verify_retries", cfg.nvm.write_verify_retries);
    bol("nvm.track_wear", cfg.nvm.track_wear);
    uns("nvm.wear_line_bytes", cfg.nvm.wear_line_bytes);
    u64("nvm.endurance_writes", cfg.nvm.endurance_writes);
    set["nvm.wear_scheme"] = [&cfg](const std::string &v) {
        return mem::nvmWearSchemeFromName(v, cfg.nvm.wear_scheme);
    };
    u64("nvm.rotate_period_writes", cfg.nvm.rotate_period_writes);
    uns("nvm.hybrid_lines", cfg.nvm.hybrid_lines);
    uns("nvm.hybrid_promote_writes", cfg.nvm.hybrid_promote_writes);
    u64("nvm.hybrid_access_latency", cfg.nvm.hybrid_access_latency);
    dbl("nvm.hybrid_read_energy_per_byte",
        cfg.nvm.hybrid_read_energy_per_byte);
    dbl("nvm.hybrid_write_energy_per_byte",
        cfg.nvm.hybrid_write_energy_per_byte);

    uns("log.region_lines", cfg.log.region_lines);
    uns("log.segment_bytes", cfg.log.segment_bytes);
    dbl("log.compaction_watermark", cfg.log.compaction_watermark);

    dbl("core.compute_energy_per_insn",
        cfg.core.compute_energy_per_insn);
    dbl("core.leakage_watts", cfg.core.leakage_watts);

    dbl("platform.capacitance_f", cfg.platform.capacitance_f);
    dbl("platform.vmin", cfg.platform.vmin);
    dbl("platform.vmax", cfg.platform.vmax);
    dbl("platform.von", cfg.platform.von);
    dbl("platform.vbackup", cfg.platform.vbackup);
    dbl("platform.harvest_efficiency",
        cfg.platform.harvest_efficiency);
    dbl("platform.wl_vbackup_base", cfg.platform.wl_vbackup_base);
    dbl("platform.wl_vbackup_step", cfg.platform.wl_vbackup_step);
    dbl("platform.wl_von_base", cfg.platform.wl_von_base);
    dbl("platform.wl_von_step", cfg.platform.wl_von_step);
    uns("platform.wl_threshold_anchor",
        cfg.platform.wl_threshold_anchor);
    dbl("platform.nvff_energy_per_byte",
        cfg.platform.nvff_energy_per_byte);
    dbl("platform.nvff_restore_energy_per_byte",
        cfg.platform.nvff_restore_energy_per_byte);
    u64("platform.reboot_latency_cycles",
        cfg.platform.reboot_latency_cycles);

    bol("validate_consistency", cfg.validate_consistency);
    bol("inject_checkpoint_skip", cfg.inject_checkpoint_skip);
    bol("inject_register_skip", cfg.inject_register_skip);
    bol("check_load_values", cfg.check_load_values);
    u64("max_outages", cfg.max_outages);
    uns("max_interval_rollups", cfg.max_interval_rollups);

    set["forced_outage_cycles"] = [&](const std::string &v) {
        cfg.forced_outage_cycles.clear();
        if (v.empty())
            return true;
        for (const auto &tok : util::split(v, ',')) {
            std::uint64_t c = 0;
            if (!parseU64(tok, c))
                return false;
            cfg.forced_outage_cycles.push_back(c);
        }
        return true;
    };

    // --- Drive the table over the text, line by line ---
    std::size_t pos = 0, lineno = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            return fail("line " + std::to_string(lineno + 1) +
                        ": missing trailing newline");
        const std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        ++lineno;

        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            return fail("line " + std::to_string(lineno) +
                        ": no '=' in '" + line + "'");
        const std::string key = line.substr(0, eq);
        const std::string value = line.substr(eq + 1);

        const auto it = set.find(key);
        if (it == set.end())
            return fail("line " + std::to_string(lineno) +
                        ": unknown key '" + key + "'");
        if (lineno == 1 && key != "schema")
            return fail("spec text must start with a schema line");
        // Config fields before the design line would be clobbered by
        // the preset reset; dumpConfigKey never emits them that way.
        if (err && !err->empty())
            return false;
        if (!it->second(value)) {
            if (err && !err->empty())
                return false;
            return fail("line " + std::to_string(lineno) +
                        ": bad value for '" + key + "': '" + value +
                        "'");
        }
    }

    if (!saw_schema)
        return fail("spec text has no schema line");
    if (!saw_design)
        return fail("spec text has no design line");

    spec.tweak = [cfg](nvp::SystemConfig &c) { c = cfg; };

    // Round-trip proof: re-dumping the rebuilt spec must reproduce
    // the input exactly, or the daemon and this binary disagree on
    // what the key means.
    const std::string echo = specKeyText(spec);
    if (echo != text)
        return fail("spec round-trip mismatch (version skew between "
                    "daemon and worker binaries?)");

    out = std::move(spec);
    return true;
}

} // namespace runner
} // namespace wlcache
