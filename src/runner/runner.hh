/**
 * @file
 * Parallel experiment runner. Executes a JobSet on a fixed-size
 * worker-thread pool, serving jobs from the content-addressed result
 * cache when possible, and returns results in submission order —
 * a parallel batch is guaranteed to produce byte-identical output to
 * a serial one, because every job is an independent deterministic
 * simulation and the pool only changes *when* each one runs.
 * Optionally reports progress and writes a per-run manifest JSON for
 * observability.
 */

#ifndef WLCACHE_RUNNER_RUNNER_HH
#define WLCACHE_RUNNER_RUNNER_HH

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "runner/job_set.hh"

namespace wlcache {
namespace runner {

/**
 * Delegate one cache-miss job to an external execution fabric (the
 * wlcached worker fleet).  Contract:
 *  - return true with @p out filled on success; set
 *    @p remote_executed false when the remote side itself served the
 *    job from the shared result cache (counts as a cache hit here).
 *  - return false on failure (worker died, daemon draining); the job
 *    is recorded as incomplete — there is no local fallback, so a
 *    draining daemon never starts fresh simulations in its handler
 *    threads.
 */
using RemoteExecutor = std::function<bool(
    const Job &job, nvp::RunResult &out, bool &remote_executed,
    std::string *err)>;

/** Batch execution knobs. */
struct RunnerConfig
{
    /**
     * Worker threads; 0 means defaultJobs() (the WLCACHE_JOBS
     * environment variable, else hardware_concurrency). 1 executes
     * inline on the calling thread.
     */
    unsigned jobs = 0;

    /** Result-cache directory; empty disables caching. */
    std::string cache_dir;

    /**
     * Snapshot-store directory; empty disables it. When set, a job
     * that cuts at an event budget has its cut snapshot stored under
     * the job's (partial) key, and a cache-hit partial job gets its
     * cut snapshot loaded back — so a warm explorer rung can still be
     * resumed instead of re-simulated.
     */
    std::string snapshot_dir;

    /** Emit per-job progress lines to @c progress_out (stderr). */
    bool progress = false;
    /** Progress sink; null falls back to std::cerr. */
    std::ostream *progress_out = nullptr;

    /** When non-empty, write a batch manifest JSON here. */
    std::string manifest_path;

    /**
     * When set, cache-miss jobs are submitted here instead of being
     * simulated on the local worker threads (see RemoteExecutor).
     */
    RemoteExecutor executor;
};

/** Per-job outcome bookkeeping (manifest + tests). */
struct JobRecord
{
    std::string id;
    std::string key;
    bool cached = false;
    bool completed = false;
    double wall_seconds = 0.0;
    /**
     * Wall-clock span of this job relative to batch start, seconds.
     * Spans from concurrent workers overlap; plotting them yields a
     * utilization timeline of the batch (manifest "t_start"/"t_end").
     */
    double t_start_s = 0.0;
    double t_end_s = 0.0;
};

/** Batch-level outcome bookkeeping. */
struct BatchStats
{
    std::size_t total = 0;
    std::size_t cache_hits = 0;
    std::size_t executed = 0;
    unsigned jobs = 0;             //!< Worker threads actually used.
    double wall_seconds = 0.0;
    /**
     * On-cycles actually simulated by executed jobs: each job's
     * on_cycles minus the fast-forwarded prefix of its resume
     * snapshot. Cache hits contribute nothing. This is the economics
     * of snapshot resume — the acceptance metric for campaigns.
     */
    std::uint64_t simulated_cycles = 0;
    std::vector<JobRecord> records; //!< Submission order.
};

/** WLCACHE_JOBS env override, else std::thread::hardware_concurrency. */
unsigned defaultJobs();

class Runner
{
  public:
    explicit Runner(RunnerConfig cfg = {});

    /**
     * Run every job in @p set to completion.
     * @return results indexed by submission order.
     */
    std::vector<nvp::RunResult> runAll(const JobSet &set);

    /** Statistics of the most recent runAll(). */
    const BatchStats &stats() const { return stats_; }

  private:
    void writeManifest(const JobSet &set) const;

    RunnerConfig cfg_;
    BatchStats stats_;
};

} // namespace runner
} // namespace wlcache

#endif // WLCACHE_RUNNER_RUNNER_HH
