#include "runner/snapshot_store.hh"

#include <cstdint>
#include <filesystem>
#include <system_error>
#include <vector>

#include "sim/logging.hh"
#include "sim/snapshot.hh"
#include "util/fs.hh"

namespace wlcache {
namespace runner {

namespace fs = std::filesystem;

namespace {

/** Snapshot-set file magic: "WLSS" little-endian. */
constexpr std::uint32_t kSetMagic = 0x53534c57u;
constexpr std::uint32_t kSetVersion = 1;

void
writeAtomic(const std::string &dir, const std::string &final_path,
            const std::vector<std::uint8_t> &bytes)
{
    std::string err;
    if (!util::writeFileAtomic(dir, final_path, bytes, &err))
        warn("snapshot store: %s", err.c_str());
}

} // namespace

SnapshotStore::SnapshotStore(std::string dir) : dir_(std::move(dir)) {}

std::string
SnapshotStore::entryPath(const std::string &key) const
{
    return (fs::path(dir_) / (key + ".snap")).string();
}

std::string
SnapshotStore::setPath(const std::string &key) const
{
    return (fs::path(dir_) / (key + ".snapset")).string();
}

bool
SnapshotStore::load(const std::string &key,
                    nvp::SystemSnapshot &out) const
{
    if (!enabled())
        return false;
    std::vector<std::uint8_t> blob;
    if (!util::readFileBytes(entryPath(key), blob))
        return false;
    if (!nvp::decodeSnapshot(blob, out)) {
        warn("snapshot store: discarding corrupted entry %s",
             entryPath(key).c_str());
        std::error_code ec;
        fs::remove(entryPath(key), ec);
        return false;
    }
    return true;
}

void
SnapshotStore::store(const std::string &key,
                     const nvp::SystemSnapshot &snap) const
{
    if (!enabled())
        return;
    writeAtomic(dir_, entryPath(key), nvp::encodeSnapshot(snap));
}

bool
SnapshotStore::loadSet(const std::string &key,
                       nvp::SnapshotSet &out) const
{
    if (!enabled())
        return false;
    std::vector<std::uint8_t> blob;
    if (!util::readFileBytes(setPath(key), blob))
        return false;

    // Tolerant cursor: any corruption reads as a miss.
    std::size_t pos = 0;
    auto avail = [&](std::size_t n) { return blob.size() - pos >= n; };
    auto rd_u32 = [&](std::uint32_t &v) {
        if (!avail(4))
            return false;
        v = 0;
        for (unsigned i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(blob[pos++]) << (8 * i);
        return true;
    };
    auto rd_u64 = [&](std::uint64_t &v) {
        if (!avail(8))
            return false;
        v = 0;
        for (unsigned i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(blob[pos++]) << (8 * i);
        return true;
    };

    auto corrupt = [&]() {
        warn("snapshot store: discarding corrupted set %s",
             setPath(key).c_str());
        std::error_code ec;
        fs::remove(setPath(key), ec);
        return false;
    };

    std::uint32_t magic = 0, version = 0;
    if (!rd_u32(magic) || magic != kSetMagic)
        return corrupt();
    if (!rd_u32(version) || version != kSetVersion)
        return corrupt();

    nvp::SnapshotSet set;
    std::uint64_t interval = 0, count = 0;
    if (!rd_u64(interval) || !rd_u64(count))
        return corrupt();
    set.interval = interval;
    set.snaps.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t len = 0;
        if (!rd_u64(len) || !avail(len))
            return corrupt();
        const std::vector<std::uint8_t> entry(
            blob.begin() + static_cast<std::ptrdiff_t>(pos),
            blob.begin() + static_cast<std::ptrdiff_t>(pos + len));
        pos += static_cast<std::size_t>(len);
        nvp::SystemSnapshot snap;
        if (!nvp::decodeSnapshot(entry, snap))
            return corrupt();
        set.snaps.push_back(std::move(snap));
    }
    if (pos != blob.size())
        return corrupt();

    out = std::move(set);
    return true;
}

void
SnapshotStore::storeSet(const std::string &key,
                        const nvp::SnapshotSet &set) const
{
    if (!enabled())
        return;
    SnapshotWriter w;
    w.u32(kSetMagic);
    w.u32(kSetVersion);
    w.u64(set.interval);
    w.u64(set.snaps.size());
    for (const nvp::SystemSnapshot &snap : set.snaps)
        w.vecU8(nvp::encodeSnapshot(snap));
    writeAtomic(dir_, setPath(key), w.data());
}

} // namespace runner
} // namespace wlcache
