/**
 * @file
 * Thread-safe batch progress reporting: jobs done/total, cache hit
 * count, a wall-clock ETA extrapolated from completed jobs, and the
 * per-job wall time of the latest completion. Output goes to stderr
 * (or any stream) so a batch's stdout stays byte-identical whether
 * or not progress is shown.
 */

#ifndef WLCACHE_RUNNER_PROGRESS_HH
#define WLCACHE_RUNNER_PROGRESS_HH

#include <chrono>
#include <cstddef>
#include <mutex>
#include <ostream>
#include <string>

namespace wlcache {
namespace runner {

class ProgressReporter
{
  public:
    /**
     * @param total Number of jobs in the batch.
     * @param out Stream for progress lines; null disables output
     *            (counters still accumulate).
     */
    ProgressReporter(std::size_t total, std::ostream *out);

    /**
     * Record one finished job (thread-safe).
     * @param id Job identifier for the progress line.
     * @param cached True when served from the result cache.
     * @param wall_seconds Time the job spent executing or loading.
     */
    void jobDone(const std::string &id, bool cached,
                 double wall_seconds);

    /** Emit the closing summary line (call once, after the batch). */
    void finish();

    // --- Counters (valid after the batch joined its workers) ---
    std::size_t done() const { return done_; }
    std::size_t cacheHits() const { return cache_hits_; }
    double elapsedSeconds() const;

  private:
    /** One-shot line write so concurrent writers interleave whole
     * lines, never fragments (callers hold mutex_). */
    void emitLine(const std::string &line);

    const std::size_t total_;
    std::ostream *out_;
    const std::chrono::steady_clock::time_point start_;

    mutable std::mutex mutex_;
    std::size_t done_ = 0;
    std::size_t cache_hits_ = 0;
};

} // namespace runner
} // namespace wlcache

#endif // WLCACHE_RUNNER_PROGRESS_HH
