#include "runner/job_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace wlcache {
namespace runner {

const JobOutcome &
JobTicket::wait()
{
    wlc_assert(w_, "wait() on an invalid JobTicket");
    std::unique_lock<std::mutex> lock(w_->m);
    w_->cv.wait(lock, [this] { return w_->done; });
    return w_->outcome;
}

bool
JobTicket::done() const
{
    if (!w_)
        return false;
    std::lock_guard<std::mutex> lock(w_->m);
    return w_->done;
}

void
JobQueue::fulfill(const std::shared_ptr<JobTicket::Waiter> &w,
                  const JobOutcome &o)
{
    {
        std::lock_guard<std::mutex> lock(w->m);
        w->outcome = o;
        w->done = true;
    }
    w->cv.notify_all();
}

JobQueue::JobQueue(unsigned max_retries) : max_retries_(max_retries)
{}

JobTicket
JobQueue::submit(QueueJob job)
{
    JobTicket t;
    t.w_ = std::make_shared<JobTicket::Waiter>();
    t.key_ = job.key;

    std::unique_lock<std::mutex> lock(m_);
    ++ctr_.submitted;

    if (draining_) {
        JobOutcome o;
        o.error = "draining";
        lock.unlock();
        fulfill(t.w_, o);
        return t;
    }

    auto it = entries_.find(job.key);
    if (it != entries_.end()) {
        // Dedupe: same content key already queued or in flight —
        // join it; one execution will fan out to every waiter.
        ++ctr_.coalesced;
        it->second.waiters.push_back(t.w_);
        return t;
    }

    Entry e;
    e.job = std::move(job);
    e.waiters.push_back(t.w_);
    const std::string &key = t.key_;
    entries_.emplace(key, std::move(e));
    fifo_.push_back(key);
    ++ctr_.queued;
    lock.unlock();
    cv_steal_.notify_one();
    return t;
}

bool
JobQueue::steal(QueueJob &out)
{
    std::unique_lock<std::mutex> lock(m_);
    cv_steal_.wait(lock,
                   [this] { return draining_ || !fifo_.empty(); });
    if (draining_)
        return false;
    const std::string key = fifo_.front();
    fifo_.pop_front();
    auto it = entries_.find(key);
    wlc_assert(it != entries_.end(), "queued key without entry");
    it->second.in_flight = true;
    --ctr_.queued;
    ++ctr_.in_flight;
    out = it->second.job;
    return true;
}

void
JobQueue::finishLocked(const std::string &key, const JobOutcome &o)
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return;
    if (it->second.in_flight)
        --ctr_.in_flight;
    else
        --ctr_.queued;
    if (o.ok)
        ++ctr_.completed;
    else
        ++ctr_.failed;
    if (o.executed) {
        const std::size_t n = ++executions_[key];
        ctr_.max_executions_per_key =
            std::max(ctr_.max_executions_per_key, n);
        ++ctr_.executed;
    }
    // Entries leave the map on completion: a later submission of the
    // same key finds the shared result cache warm instead of waiting
    // here, so the map stays bounded by concurrent work.
    std::vector<std::shared_ptr<JobTicket::Waiter>> waiters =
        std::move(it->second.waiters);
    entries_.erase(it);
    // Queued (non-in-flight) entries may still sit in fifo_.
    fifo_.erase(std::remove(fifo_.begin(), fifo_.end(), key),
                fifo_.end());
    // Waiter mutexes nest strictly inside m_ (waiters never call
    // back into the queue), so fulfilling under m_ is safe.
    for (const auto &w : waiters)
        fulfill(w, o);
}

void
JobQueue::complete(const std::string &key, JobOutcome outcome)
{
    std::lock_guard<std::mutex> lock(m_);
    finishLocked(key, outcome);
}

void
JobQueue::requeue(const std::string &key, const std::string &reason)
{
    std::unique_lock<std::mutex> lock(m_);
    auto it = entries_.find(key);
    if (it == entries_.end())
        return;
    ++ctr_.requeued;

    if (draining_) {
        // The drain already persisted the unstarted queue; a cut
        // in-flight job joins the pending list for the next daemon
        // instance, and its waiters learn the truth now.
        drained_.push_back(it->second.job);
        JobOutcome o;
        o.error = "draining";
        finishLocked(key, o);
        return;
    }

    if (it->second.retries >= max_retries_) {
        JobOutcome o;
        o.error = "gave up after " +
            std::to_string(it->second.retries + 1) +
            " attempts: " + reason;
        finishLocked(key, o);
        return;
    }

    ++it->second.retries;
    it->second.in_flight = false;
    --ctr_.in_flight;
    ++ctr_.queued;
    fifo_.push_back(key);
    lock.unlock();
    cv_steal_.notify_one();
}

void
JobQueue::cancel(JobTicket &ticket)
{
    if (!ticket.valid())
        return;
    std::unique_lock<std::mutex> lock(m_);
    auto it = entries_.find(ticket.key_);
    if (it == entries_.end())
        return;
    auto &ws = it->second.waiters;
    ws.erase(std::remove(ws.begin(), ws.end(), ticket.w_), ws.end());
    if (ws.empty() && !it->second.in_flight) {
        // Last submitter left before any worker stole it: unqueue.
        ++ctr_.cancelled;
        --ctr_.queued;
        fifo_.erase(std::remove(fifo_.begin(), fifo_.end(),
                                ticket.key_),
                    fifo_.end());
        entries_.erase(it);
    }
    lock.unlock();
    JobOutcome o;
    o.error = "cancelled";
    fulfill(ticket.w_, o);
    ticket.w_.reset();
}

std::vector<QueueJob>
JobQueue::shutdownAndDrain()
{
    std::unique_lock<std::mutex> lock(m_);
    draining_ = true;
    std::vector<QueueJob> pending;
    std::vector<std::string> queued_keys(fifo_.begin(), fifo_.end());
    for (const auto &key : queued_keys) {
        auto it = entries_.find(key);
        if (it == entries_.end())
            continue;
        pending.push_back(it->second.job);
        JobOutcome o;
        o.error = "draining";
        finishLocked(key, o);
    }
    fifo_.clear();
    lock.unlock();
    cv_steal_.notify_all();
    return pending;
}

std::vector<QueueJob>
JobQueue::takeDrained()
{
    std::lock_guard<std::mutex> lock(m_);
    std::vector<QueueJob> out = std::move(drained_);
    drained_.clear();
    return out;
}

JobQueue::Counters
JobQueue::counters() const
{
    std::lock_guard<std::mutex> lock(m_);
    return ctr_;
}

} // namespace runner
} // namespace wlcache
