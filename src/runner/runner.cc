#include "runner/runner.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <thread>

#include "nvp/run_json.hh"
#include "runner/progress.hh"
#include "runner/result_cache.hh"
#include "runner/snapshot_store.hh"
#include "runner/spec_key.hh"
#include "sim/logging.hh"
#include "util/fs.hh"

namespace wlcache {
namespace runner {

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("WLCACHE_JOBS")) {
        const int v = std::atoi(env);
        if (v >= 1)
            return static_cast<unsigned>(v);
        warn("ignoring invalid WLCACHE_JOBS='%s'", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

Runner::Runner(RunnerConfig cfg) : cfg_(std::move(cfg)) {}

std::vector<nvp::RunResult>
Runner::runAll(const JobSet &set)
{
    const std::size_t n = set.size();
    unsigned jobs = cfg_.jobs ? cfg_.jobs : defaultJobs();
    if (jobs > n && n > 0)
        jobs = static_cast<unsigned>(n);

    stats_ = BatchStats{};
    stats_.total = n;
    stats_.jobs = jobs;
    stats_.records.resize(n);

    std::vector<nvp::RunResult> results(n);
    if (n == 0)
        return results;

    const ResultCache cache(cfg_.cache_dir);
    const SnapshotStore snaps(cfg_.snapshot_dir);
    std::ostream *pout = nullptr;
    if (cfg_.progress)
        pout = cfg_.progress_out ? cfg_.progress_out : &std::cerr;
    ProgressReporter progress(n, pout);

    // Shared cursor: workers claim jobs in submission order. Results
    // land in per-job slots, so completion order never matters.
    std::atomic<std::size_t> next{ 0 };
    std::atomic<std::size_t> executed{ 0 };
    std::atomic<std::uint64_t> sim_cycles{ 0 };
    const auto batch_t0 = std::chrono::steady_clock::now();

    auto work = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            const Job &job = set[i];
            const auto t0 = std::chrono::steady_clock::now();

            JobRecord &rec = stats_.records[i];
            rec.id = job.id;
            rec.key = job.key;
            rec.t_start_s =
                std::chrono::duration<double>(t0 - batch_t0).count();
            rec.cached = cache.load(job.key, results[i]);
            if (rec.cached) {
                // A warm partial job still needs its cut snapshot so
                // a later rung can resume from it.
                if (job.max_events && job.cut && !job.cut->valid())
                    snaps.load(job.key, *job.cut);
            } else if (cfg_.executor) {
                bool remote_executed = false;
                std::string err;
                if (cfg_.executor(job, results[i], remote_executed,
                                  &err)) {
                    if (remote_executed) {
                        executed.fetch_add(
                            1, std::memory_order_relaxed);
                        sim_cycles.fetch_add(
                            results[i].on_cycles,
                            std::memory_order_relaxed);
                    } else {
                        rec.cached = true;
                    }
                    // The fleet publishes partial-job cut snapshots
                    // to the shared store; pick ours up from there.
                    if (job.max_events && job.cut &&
                        !job.cut->valid())
                        snaps.load(job.key, *job.cut);
                } else {
                    // Remote failure (drain, dead worker): record an
                    // incomplete result; never simulate locally.
                    warn("remote job '%s' failed: %s", job.id.c_str(),
                         err.c_str());
                }
            } else {
                nvp::RunOptions ro;
                ro.max_events = job.max_events;
                if (job.resume && job.resume->valid())
                    ro.resume = job.resume.get();
                ro.cut = job.cut.get();
                results[i] = nvp::runExperimentEx(job.spec, ro);
                cache.store(job.key, results[i]);
                if (job.max_events && job.cut && job.cut->valid())
                    snaps.store(job.key, *job.cut);
                executed.fetch_add(1, std::memory_order_relaxed);
                const std::uint64_t skipped =
                    ro.resume ? ro.resume->cycle : 0;
                sim_cycles.fetch_add(
                    results[i].on_cycles > skipped
                        ? results[i].on_cycles - skipped
                        : 0,
                    std::memory_order_relaxed);
            }
            rec.completed = results[i].completed;
            const auto t1 = std::chrono::steady_clock::now();
            rec.wall_seconds =
                std::chrono::duration<double>(t1 - t0).count();
            rec.t_end_s =
                std::chrono::duration<double>(t1 - batch_t0).count();
            progress.jobDone(job.id, rec.cached, rec.wall_seconds);
        }
    };

    if (jobs <= 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(work);
        for (auto &t : pool)
            t.join();
    }

    if (pout)
        progress.finish();

    stats_.cache_hits = progress.cacheHits();
    stats_.executed = executed.load();
    stats_.simulated_cycles = sim_cycles.load();
    stats_.wall_seconds = progress.elapsedSeconds();

    if (!cfg_.manifest_path.empty())
        writeManifest(set);
    return results;
}

void
Runner::writeManifest(const JobSet &set) const
{
    std::ostringstream out;

    auto esc = [](const std::string &s) {
        std::string o;
        o.reserve(s.size());
        for (const char c : s) {
            if (c == '"' || c == '\\')
                o += '\\';
            o += c;
        }
        return o;
    };

    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.6f", stats_.wall_seconds);
    out << "{\n"
        << "  \"schema\": " << kResultSchemaVersion << ",\n"
        << "  \"record_version\": " << nvp::kRunRecordVersion << ",\n"
        << "  \"jobs\": " << stats_.jobs << ",\n"
        << "  \"total\": " << stats_.total << ",\n"
        << "  \"cache_hits\": " << stats_.cache_hits << ",\n"
        << "  \"executed\": " << stats_.executed << ",\n"
        << "  \"cache_dir\": \"" << esc(cfg_.cache_dir) << "\",\n"
        << "  \"wall_seconds\": " << wall << ",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < stats_.records.size(); ++i) {
        const JobRecord &rec = stats_.records[i];
        const Job &job = set[i];
        char ms[32], ts[32], te[32];
        std::snprintf(ms, sizeof(ms), "%.3f",
                      1e3 * rec.wall_seconds);
        std::snprintf(ts, sizeof(ts), "%.6f", rec.t_start_s);
        std::snprintf(te, sizeof(te), "%.6f", rec.t_end_s);
        out << "    {\"id\": \"" << esc(rec.id) << "\", \"key\": \""
            << rec.key << "\", \"workload\": \""
            << esc(job.spec.workload) << "\", \"design\": \""
            << nvp::designKindName(job.spec.design)
            << "\", \"cached\": " << (rec.cached ? "true" : "false")
            << ", \"completed\": "
            << (rec.completed ? "true" : "false")
            << ", \"wall_ms\": " << ms
            << ", \"t_start\": " << ts
            << ", \"t_end\": " << te << '}'
            << (i + 1 < stats_.records.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";

    // Serialize concurrent batches (daemon handler threads, parallel
    // CLIs) writing the same manifest path, and publish atomically so
    // a reader never sees a torn file.
    const std::filesystem::path p(cfg_.manifest_path);
    const std::string dir =
        p.has_parent_path() ? p.parent_path().string() : ".";
    util::FileLock lock;
    lock.lockExclusive(cfg_.manifest_path + ".lock");
    std::string err;
    if (!util::writeFileAtomic(dir, cfg_.manifest_path, out.str(),
                               &err))
        warn("cannot write manifest '%s': %s",
             cfg_.manifest_path.c_str(), err.c_str());
}

} // namespace runner
} // namespace wlcache
