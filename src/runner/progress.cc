#include "runner/progress.hh"

#include <cstdio>

namespace wlcache {
namespace runner {

namespace {

std::string
fmtShortTime(double seconds)
{
    char buf[32];
    if (seconds < 120.0)
        std::snprintf(buf, sizeof(buf), "%.0fs", seconds);
    else if (seconds < 7200.0)
        std::snprintf(buf, sizeof(buf), "%.1fm", seconds / 60.0);
    else
        std::snprintf(buf, sizeof(buf), "%.1fh", seconds / 3600.0);
    return buf;
}

} // anonymous namespace

ProgressReporter::ProgressReporter(std::size_t total,
                                   std::ostream *out)
    : total_(total), out_(out),
      start_(std::chrono::steady_clock::now())
{}

double
ProgressReporter::elapsedSeconds() const
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
}

void
ProgressReporter::jobDone(const std::string &id, bool cached,
                          double wall_seconds)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    if (cached)
        ++cache_hits_;
    if (!out_)
        return;

    const double elapsed = elapsedSeconds();
    const double eta = done_ > 0 && done_ < total_
        ? elapsed / static_cast<double>(done_) *
            static_cast<double>(total_ - done_)
        : 0.0;

    char head[96];
    std::snprintf(head, sizeof(head),
                  "[%zu/%zu] %3.0f%% hits %zu eta %s  ", done_, total_,
                  total_ ? 100.0 * static_cast<double>(done_) /
                          static_cast<double>(total_)
                         : 100.0,
                  cache_hits_, fmtShortTime(eta).c_str());
    char tail[48];
    std::snprintf(tail, sizeof(tail), "  %.0f ms%s",
                  1e3 * wall_seconds, cached ? " (cached)" : "");

    // Single-writer line discipline: assemble the whole line first
    // and emit it with one write.  Several processes sharing one
    // terminal (daemon workers, parallel CLI invocations) then
    // interleave at line granularity instead of mid-line.
    std::string line;
    line.reserve(sizeof(head) + id.size() + sizeof(tail) + 1);
    line += head;
    line += id;
    line += tail;
    line += '\n';
    emitLine(line);
}

void
ProgressReporter::emitLine(const std::string &line)
{
    out_->write(line.data(),
                static_cast<std::streamsize>(line.size()));
    out_->flush();
}

void
ProgressReporter::finish()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!out_)
        return;
    std::string line = "batch done: " + std::to_string(done_) +
        " job" + (done_ == 1 ? "" : "s") + " in " +
        fmtShortTime(elapsedSeconds()) + ", " +
        std::to_string(cache_hits_) + " cache hit" +
        (cache_hits_ == 1 ? "" : "s") + "\n";
    emitLine(line);
}

} // namespace runner
} // namespace wlcache
