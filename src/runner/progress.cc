#include "runner/progress.hh"

#include <cstdio>

namespace wlcache {
namespace runner {

namespace {

std::string
fmtShortTime(double seconds)
{
    char buf[32];
    if (seconds < 120.0)
        std::snprintf(buf, sizeof(buf), "%.0fs", seconds);
    else if (seconds < 7200.0)
        std::snprintf(buf, sizeof(buf), "%.1fm", seconds / 60.0);
    else
        std::snprintf(buf, sizeof(buf), "%.1fh", seconds / 3600.0);
    return buf;
}

} // anonymous namespace

ProgressReporter::ProgressReporter(std::size_t total,
                                   std::ostream *out)
    : total_(total), out_(out),
      start_(std::chrono::steady_clock::now())
{}

double
ProgressReporter::elapsedSeconds() const
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
}

void
ProgressReporter::jobDone(const std::string &id, bool cached,
                          double wall_seconds)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    if (cached)
        ++cache_hits_;
    if (!out_)
        return;

    const double elapsed = elapsedSeconds();
    const double eta = done_ > 0 && done_ < total_
        ? elapsed / static_cast<double>(done_) *
            static_cast<double>(total_ - done_)
        : 0.0;

    char head[96];
    std::snprintf(head, sizeof(head),
                  "[%zu/%zu] %3.0f%% hits %zu eta %s  ", done_, total_,
                  total_ ? 100.0 * static_cast<double>(done_) /
                          static_cast<double>(total_)
                         : 100.0,
                  cache_hits_, fmtShortTime(eta).c_str());
    char tail[48];
    std::snprintf(tail, sizeof(tail), "  %.0f ms%s",
                  1e3 * wall_seconds, cached ? " (cached)" : "");
    *out_ << head << id << tail << std::endl;
}

void
ProgressReporter::finish()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!out_)
        return;
    *out_ << "batch done: " << done_ << " job"
          << (done_ == 1 ? "" : "s") << " in "
          << fmtShortTime(elapsedSeconds()) << ", " << cache_hits_
          << " cache hit" << (cache_hits_ == 1 ? "" : "s")
          << std::endl;
}

} // namespace runner
} // namespace wlcache
