/**
 * @file
 * Content-addressed on-disk result cache. Each finished RunResult is
 * stored as `<dir>/<spec-key>.json` (the run_json record), so
 * re-running an unchanged figure costs one file read per experiment
 * instead of a simulation. Entries are written atomically
 * (temp file + rename) so concurrent workers and interrupted runs
 * can never leave a torn record; unreadable or corrupted entries are
 * treated as misses and re-executed.
 */

#ifndef WLCACHE_RUNNER_RESULT_CACHE_HH
#define WLCACHE_RUNNER_RESULT_CACHE_HH

#include <string>

#include "nvp/system.hh"

namespace wlcache {
namespace runner {

class ResultCache
{
  public:
    /**
     * @param dir Cache directory; created on first store. An empty
     *            dir disables the cache (all lookups miss).
     */
    explicit ResultCache(std::string dir);

    /** True when a directory was configured. */
    bool enabled() const { return !dir_.empty(); }

    const std::string &dir() const { return dir_; }

    /**
     * Load the entry for @p key.
     * @return true and fill @p out on a hit; false on a miss or an
     *         unreadable/corrupted entry (which is also deleted so
     *         the follow-up store starts clean).
     */
    bool load(const std::string &key, nvp::RunResult &out) const;

    /**
     * Store @p r under @p key (atomic; last writer wins). Failures
     * to write are reported via warn() but never fail the run — the
     * cache is an accelerator, not a dependency.
     */
    void store(const std::string &key, const nvp::RunResult &r) const;

    /** Path of the entry file for @p key. */
    std::string entryPath(const std::string &key) const;

  private:
    std::string dir_;
};

} // namespace runner
} // namespace wlcache

#endif // WLCACHE_RUNNER_RESULT_CACHE_HH
