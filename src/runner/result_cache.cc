#include "runner/result_cache.hh"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "nvp/run_json.hh"
#include "sim/logging.hh"
#include "util/fs.hh"

namespace wlcache {
namespace runner {

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return (fs::path(dir_) / (key + ".json")).string();
}

bool
ResultCache::load(const std::string &key, nvp::RunResult &out) const
{
    if (!enabled())
        return false;
    const std::string path = entryPath(key);
    std::ifstream in(path);
    if (!in)
        return false;

    std::string err;
    if (nvp::readRunResultJson(in, out, &err))
        return true;

    // A torn or corrupted entry: drop it so this run's store()
    // replaces it with a good record, and report the fallback.
    warn("result cache: discarding corrupted entry %s (%s)",
         path.c_str(), err.c_str());
    std::error_code ec;
    fs::remove(path, ec);
    return false;
}

void
ResultCache::store(const std::string &key,
                   const nvp::RunResult &r) const
{
    if (!enabled())
        return;
    std::ostringstream ss;
    nvp::writeRunResultJson(ss, r);

    // Atomic publish keeps the read path lock-free: concurrent
    // readers only ever see complete records; a concurrent writer of
    // the same key replaces ours with identical content.
    std::string err;
    if (!util::writeFileAtomic(dir_, entryPath(key), ss.str(), &err))
        warn("result cache: %s", err.c_str());
}

} // namespace runner
} // namespace wlcache
