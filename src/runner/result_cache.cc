#include "runner/result_cache.hh"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <thread>

#include "nvp/run_json.hh"
#include "sim/logging.hh"

namespace wlcache {
namespace runner {

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return (fs::path(dir_) / (key + ".json")).string();
}

bool
ResultCache::load(const std::string &key, nvp::RunResult &out) const
{
    if (!enabled())
        return false;
    const std::string path = entryPath(key);
    std::ifstream in(path);
    if (!in)
        return false;

    std::string err;
    if (nvp::readRunResultJson(in, out, &err))
        return true;

    // A torn or corrupted entry: drop it so this run's store()
    // replaces it with a good record, and report the fallback.
    warn("result cache: discarding corrupted entry %s (%s)",
         path.c_str(), err.c_str());
    std::error_code ec;
    fs::remove(path, ec);
    return false;
}

void
ResultCache::store(const std::string &key,
                   const nvp::RunResult &r) const
{
    if (!enabled())
        return;
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        warn("result cache: cannot create '%s': %s", dir_.c_str(),
             ec.message().c_str());
        return;
    }

    // Unique temp name per writer, atomically renamed into place so
    // a concurrent reader only ever sees complete records.
    std::ostringstream tmp_name;
    tmp_name << key << ".tmp." << std::this_thread::get_id();
    const fs::path tmp = fs::path(dir_) / tmp_name.str();
    {
        std::ofstream outf(tmp);
        if (!outf) {
            warn("result cache: cannot write '%s'",
                 tmp.string().c_str());
            return;
        }
        nvp::writeRunResultJson(outf, r);
    }
    fs::rename(tmp, entryPath(key), ec);
    if (ec) {
        warn("result cache: rename into '%s' failed: %s",
             entryPath(key).c_str(), ec.message().c_str());
        fs::remove(tmp, ec);
    }
}

} // namespace runner
} // namespace wlcache
