/**
 * @file
 * A batch of independent experiments. JobSet turns a sequence of
 * ExperimentSpecs into jobs with stable IDs: the submission index
 * orders the result vector (parallel execution returns results in
 * exactly this order), the content key addresses the result cache,
 * and the human-readable id labels progress lines and the manifest.
 */

#ifndef WLCACHE_RUNNER_JOB_SET_HH
#define WLCACHE_RUNNER_JOB_SET_HH

#include <cstddef>
#include <string>
#include <vector>

#include "nvp/experiment.hh"

namespace wlcache {
namespace runner {

/** One schedulable experiment. */
struct Job
{
    std::size_t index = 0;    //!< Submission order == result slot.
    std::string id;           //!< Stable human-readable identifier.
    std::string key;          //!< Content-addressed cache key.
    nvp::ExperimentSpec spec;
};

class JobSet
{
  public:
    /**
     * Append one experiment.
     * @param spec The experiment to run.
     * @param label Optional id; defaults to
     *              "<index>:<design>/<workload>@<power>".
     * @return the job's submission index.
     */
    std::size_t add(nvp::ExperimentSpec spec, std::string label = "");

    std::size_t size() const { return jobs_.size(); }
    bool empty() const { return jobs_.empty(); }

    const Job &operator[](std::size_t i) const { return jobs_[i]; }
    const std::vector<Job> &jobs() const { return jobs_; }

  private:
    std::vector<Job> jobs_;
};

} // namespace runner
} // namespace wlcache

#endif // WLCACHE_RUNNER_JOB_SET_HH
