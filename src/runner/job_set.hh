/**
 * @file
 * A batch of independent experiments. JobSet turns a sequence of
 * ExperimentSpecs into jobs with stable IDs: the submission index
 * orders the result vector (parallel execution returns results in
 * exactly this order), the content key addresses the result cache,
 * and the human-readable id labels progress lines and the manifest.
 */

#ifndef WLCACHE_RUNNER_JOB_SET_HH
#define WLCACHE_RUNNER_JOB_SET_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nvp/experiment.hh"

namespace wlcache {
namespace runner {

/** One schedulable experiment. */
struct Job
{
    std::size_t index = 0;    //!< Submission order == result slot.
    std::string id;           //!< Stable human-readable identifier.
    std::string key;          //!< Content-addressed cache key.
    nvp::ExperimentSpec spec;

    // --- Snapshot/budget controls (explorer rungs, campaigns) ---
    /** Stop after this many trace events (0 = run to completion). */
    std::uint64_t max_events = 0;
    /**
     * Resume point (may be null). Purely an accelerator: a resumed
     * run is observationally identical to a cold one, so attaching a
     * resume snapshot never changes the cache key.
     */
    std::shared_ptr<const nvp::SystemSnapshot> resume;
    /** Receives the cut state when max_events stops the run early. */
    std::shared_ptr<nvp::SystemSnapshot> cut;
};

class JobSet
{
  public:
    /**
     * Append one experiment.
     * @param spec The experiment to run.
     * @param label Optional id; defaults to
     *              "<index>:<design>/<workload>@<power>".
     * @return the job's submission index.
     */
    std::size_t add(nvp::ExperimentSpec spec, std::string label = "");

    /**
     * Attach an event budget (and optional resume/cut snapshot
     * holders) to job @p i. Rewrites the job's cache key to the
     * partial-run key when @p max_events is non-zero — a truncated
     * run's record must never alias the full run's.
     */
    void setBudget(std::size_t i, std::uint64_t max_events,
                   std::shared_ptr<const nvp::SystemSnapshot> resume,
                   std::shared_ptr<nvp::SystemSnapshot> cut);

    /** Attach only a resume snapshot (key unchanged; see Job). */
    void setResume(std::size_t i,
                   std::shared_ptr<const nvp::SystemSnapshot> resume);

    std::size_t size() const { return jobs_.size(); }
    bool empty() const { return jobs_.empty(); }

    const Job &operator[](std::size_t i) const { return jobs_[i]; }
    const std::vector<Job> &jobs() const { return jobs_; }

  private:
    std::vector<Job> jobs_;
};

} // namespace runner
} // namespace wlcache

#endif // WLCACHE_RUNNER_JOB_SET_HH
