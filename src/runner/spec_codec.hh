/**
 * @file
 * Wire codec for experiment specs. An ExperimentSpec's `tweak` hook
 * is an opaque callable, so specs cross process boundaries as the
 * canonical specKeyText() dump — the same text the cache key hashes.
 * parseSpecText() rebuilds a spec whose resolved configuration
 * reproduces that text byte-for-byte (verified internally), which
 * guarantees the worker computes exactly the key the daemon
 * scheduled, and turns any schema/version skew between daemon and
 * worker binaries into a structured parse error instead of a silent
 * wrong-key execution.
 */

#ifndef WLCACHE_RUNNER_SPEC_CODEC_HH
#define WLCACHE_RUNNER_SPEC_CODEC_HH

#include <string>

#include "nvp/experiment.hh"

namespace wlcache {
namespace runner {

/**
 * Rebuild an ExperimentSpec from specKeyText() output.
 *
 * The rebuilt spec's tweak pins the entire resolved SystemConfig, and
 * the function fails unless specKeyText(rebuilt) == @p text — i.e. a
 * successful parse is a proof of key fidelity.
 *
 * @return true on success; false with @p *err describing the first
 *         problem (unknown key, bad value, schema mismatch, missing
 *         field, round-trip divergence).
 */
bool parseSpecText(const std::string &text, nvp::ExperimentSpec &out,
                   std::string *err);

} // namespace runner
} // namespace wlcache

#endif // WLCACHE_RUNNER_SPEC_CODEC_HH
