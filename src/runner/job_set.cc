#include "runner/job_set.hh"

#include <sstream>

#include "runner/spec_key.hh"

namespace wlcache {
namespace runner {

std::size_t
JobSet::add(nvp::ExperimentSpec spec, std::string label)
{
    Job job;
    job.index = jobs_.size();
    if (label.empty()) {
        std::ostringstream id;
        id << job.index << ':' << nvp::designKindName(spec.design)
           << '/' << spec.workload << '@';
        if (spec.no_failure)
            id << "no-failure";
        else
            id << energy::traceKindName(spec.power);
        label = id.str();
    }
    job.id = std::move(label);
    job.key = specKey(spec);
    job.spec = std::move(spec);
    jobs_.push_back(std::move(job));
    return jobs_.back().index;
}

} // namespace runner
} // namespace wlcache
