#include "runner/job_set.hh"

#include <sstream>

#include "runner/spec_key.hh"

namespace wlcache {
namespace runner {

std::size_t
JobSet::add(nvp::ExperimentSpec spec, std::string label)
{
    Job job;
    job.index = jobs_.size();
    if (label.empty()) {
        std::ostringstream id;
        id << job.index << ':' << nvp::designKindName(spec.design)
           << '/' << spec.workload << '@';
        if (spec.no_failure)
            id << "no-failure";
        else
            id << energy::traceKindName(spec.power);
        label = id.str();
    }
    job.id = std::move(label);
    job.key = specKey(spec);
    job.spec = std::move(spec);
    jobs_.push_back(std::move(job));
    return jobs_.back().index;
}

void
JobSet::setBudget(std::size_t i, std::uint64_t max_events,
                  std::shared_ptr<const nvp::SystemSnapshot> resume,
                  std::shared_ptr<nvp::SystemSnapshot> cut)
{
    Job &job = jobs_.at(i);
    job.max_events = max_events;
    job.resume = std::move(resume);
    job.cut = std::move(cut);
    job.key = max_events ? partialKey(job.spec, max_events)
                         : specKey(job.spec);
}

void
JobSet::setResume(std::size_t i,
                  std::shared_ptr<const nvp::SystemSnapshot> resume)
{
    jobs_.at(i).resume = std::move(resume);
}

} // namespace runner
} // namespace wlcache
