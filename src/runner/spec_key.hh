/**
 * @file
 * Content-addressed identity for experiments. An ExperimentSpec's
 * `tweak` hook is an opaque callable, so the key hashes the *effect*
 * of the spec instead of its fields: the fully resolved SystemConfig
 * (preset + tweak applied) plus the workload/power inputs and a
 * schema version. Two specs share a key exactly when the simulator
 * cannot tell them apart, which is the property the result cache
 * needs.
 */

#ifndef WLCACHE_RUNNER_SPEC_KEY_HH
#define WLCACHE_RUNNER_SPEC_KEY_HH

#include <cstdint>
#include <string>

#include "nvp/experiment.hh"

namespace wlcache {
namespace runner {

/**
 * Result-record schema version. Bump when RunResult serialization,
 * SystemConfig fields, or simulator semantics change so stale cache
 * entries miss instead of resurfacing. Kept in lockstep with
 * nvp::kRunRecordVersion (the serialized record carries that version
 * explicitly, so even a hand-copied old record is rejected).
 *
 * History: 1 = PR-1; 2 = verification campaigns (forced outages,
 * register differential, per-run divergence record and digest);
 * 3 = telemetry (stats tree + interval rollups in run records,
 * max_interval_rollups in the config key); 4 = energy-math fixes
 * (harvester phase rebase, capacitor rail clamping) changed every
 * numeric result, plus deterministic snapshots; 5 = integer-attojoule
 * energy arithmetic (every accumulated joule quantized) plus the
 * step_mode config key line; 6 = banked NVM device model (timing
 * model, wear, hybrid region config keys); 7 = WL-Log design and
 * the log.* journal config keys plus run-record v5 fields; 8 = fleet
 * scenarios (power_node/power_jitter spec lines for per-node derived
 * traces).
 */
constexpr unsigned kResultSchemaVersion = 8;

/**
 * Canonical text describing everything that determines a run's
 * outcome (hashed to form the cache key; also useful for debugging
 * key mismatches).
 */
std::string specKeyText(const nvp::ExperimentSpec &spec);

/** 128-bit FNV-1a digest of @p text, as 32 lowercase hex digits. */
std::string hashKeyText(const std::string &text);

/** Cache key for @p spec: hashKeyText(specKeyText(spec)). */
std::string specKey(const nvp::ExperimentSpec &spec);

/**
 * Snapshot resume-compatibility key for @p spec: like specKey() but
 * with the forced-outage schedule and fault-injection flags
 * neutralized, because they only alter behaviour at or after their
 * trigger point — the execution *prefix* (what a snapshot captures)
 * is identical. A golden run and its fault-injection point runs share
 * this key, which is what lets the campaign engine reuse the golden
 * run's interval snapshots across every injection point.
 */
std::string resumeKey(const nvp::ExperimentSpec &spec);

/**
 * Cache key for a budget-truncated run of @p spec that stops after
 * @p max_events trace events. A partial run's record must never alias
 * the full run's, so the event budget is folded into the key.
 */
std::string partialKey(const nvp::ExperimentSpec &spec,
                       std::uint64_t max_events);

} // namespace runner
} // namespace wlcache

#endif // WLCACHE_RUNNER_SPEC_KEY_HH
