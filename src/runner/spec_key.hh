/**
 * @file
 * Content-addressed identity for experiments. An ExperimentSpec's
 * `tweak` hook is an opaque callable, so the key hashes the *effect*
 * of the spec instead of its fields: the fully resolved SystemConfig
 * (preset + tweak applied) plus the workload/power inputs and a
 * schema version. Two specs share a key exactly when the simulator
 * cannot tell them apart, which is the property the result cache
 * needs.
 */

#ifndef WLCACHE_RUNNER_SPEC_KEY_HH
#define WLCACHE_RUNNER_SPEC_KEY_HH

#include <cstdint>
#include <string>

#include "nvp/experiment.hh"

namespace wlcache {
namespace runner {

/**
 * Result-record schema version. Bump when RunResult serialization,
 * SystemConfig fields, or simulator semantics change so stale cache
 * entries miss instead of resurfacing. Kept in lockstep with
 * nvp::kRunRecordVersion (the serialized record carries that version
 * explicitly, so even a hand-copied old record is rejected).
 *
 * History: 1 = PR-1; 2 = verification campaigns (forced outages,
 * register differential, per-run divergence record and digest);
 * 3 = telemetry (stats tree + interval rollups in run records,
 * max_interval_rollups in the config key).
 */
constexpr unsigned kResultSchemaVersion = 3;

/**
 * Canonical text describing everything that determines a run's
 * outcome (hashed to form the cache key; also useful for debugging
 * key mismatches).
 */
std::string specKeyText(const nvp::ExperimentSpec &spec);

/** 128-bit FNV-1a digest of @p text, as 32 lowercase hex digits. */
std::string hashKeyText(const std::string &text);

/** Cache key for @p spec: hashKeyText(specKeyText(spec)). */
std::string specKey(const nvp::ExperimentSpec &spec);

} // namespace runner
} // namespace wlcache

#endif // WLCACHE_RUNNER_SPEC_KEY_HH
