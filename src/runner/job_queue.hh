/**
 * @file
 * Content-addressed job queue for the wlcached worker fleet. Clients
 * submit jobs keyed by the runner's spec keys; identical keys from
 * different clients coalesce into ONE queue entry whose eventual
 * outcome fans out to every waiter — the dedupe guarantee the daemon
 * advertises ("overlapping sweeps execute shared points once").
 * Workers steal entries in FIFO order; a stolen entry stays tracked
 * as in-flight so a dying or draining worker can hand it back via
 * requeue() without losing any waiter.
 */

#ifndef WLCACHE_RUNNER_JOB_QUEUE_HH
#define WLCACHE_RUNNER_JOB_QUEUE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wlcache {
namespace runner {

/** One schedulable unit as it crosses the wire. */
struct QueueJob
{
    std::string key;       //!< Content-addressed identity (dedupe).
    std::string id;        //!< Human-readable label (first submitter).
    std::string spec_text; //!< runner::specKeyText() payload.
    std::uint64_t max_events = 0; //!< Event budget (0 = full run).
};

/** Terminal outcome of a queue entry, fanned out to every waiter. */
struct JobOutcome
{
    bool ok = false;
    /** True when a worker actually simulated (false = served from
     *  the shared result cache or another client's execution). */
    bool executed = false;
    std::string result_json; //!< Serialized nvp::RunResult record.
    std::string error;       //!< Set when !ok.
};

/**
 * Handle for one submitter of one job. wait() blocks until the
 * entry completes (or the queue drains/fails it).
 */
class JobTicket
{
  public:
    JobTicket() = default;

    bool valid() const { return static_cast<bool>(w_); }

    /** Block until the outcome is known. */
    const JobOutcome &wait();

    /** Non-blocking: true once the outcome is known. */
    bool done() const;

  private:
    friend class JobQueue;

    struct Waiter
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        JobOutcome outcome;
    };

    std::shared_ptr<Waiter> w_;
    std::string key_;
};

class JobQueue
{
  public:
    struct Counters
    {
        std::size_t submitted = 0;   //!< submit() calls.
        std::size_t coalesced = 0;   //!< Submissions merged into an
                                     //!< existing entry (dedupe hits).
        std::size_t completed = 0;   //!< Entries finished ok.
        std::size_t failed = 0;      //!< Entries finished in error.
        std::size_t executed = 0;    //!< Outcomes that simulated.
        std::size_t requeued = 0;    //!< In-flight entries handed back.
        std::size_t cancelled = 0;   //!< Entries dropped by cancel().
        /** Highest per-key execution count over the queue's lifetime.
         *  The dedupe acceptance check: must be 1 under overlap. */
        std::size_t max_executions_per_key = 0;
        std::size_t queued = 0;      //!< Currently waiting for a worker.
        std::size_t in_flight = 0;   //!< Currently on a worker.
    };

    /** @param max_retries requeues before an entry fails its waiters. */
    explicit JobQueue(unsigned max_retries = 2);

    /**
     * Add a job (or join the existing entry with the same key).
     * After shutdownAndDrain() every submission fails immediately
     * with a "draining" outcome.
     */
    JobTicket submit(QueueJob job);

    /**
     * Worker side: block for the next queued entry. Returns false
     * once the queue is draining and will never produce again.
     */
    bool steal(QueueJob &out);

    /** Worker side: deliver the outcome for a stolen entry. */
    void complete(const std::string &key, JobOutcome outcome);

    /**
     * Worker side: hand a stolen entry back (worker died or was cut
     * mid-run by a drain). Until the retry cap the entry rejoins the
     * queue tail keeping all waiters; past it, waiters fail with
     * @p reason.
     */
    void requeue(const std::string &key, const std::string &reason);

    /**
     * Detach one submitter (client disconnected). The entry itself
     * is removed only if this was its last waiter and it has not
     * been stolen yet.
     */
    void cancel(JobTicket &ticket);

    /**
     * Stop producing work: steal() returns false, queued-but-unstolen
     * jobs are returned for persistence and their waiters fail with
     * "draining". In-flight entries stay tracked so late complete()/
     * requeue() calls still resolve; a post-drain requeue lands in
     * the pending list retrievable via takeDrained().
     */
    std::vector<QueueJob> shutdownAndDrain();

    /** Jobs re-offered after the drain started (cut checkpoints). */
    std::vector<QueueJob> takeDrained();

    Counters counters() const;

  private:
    struct Entry
    {
        QueueJob job;
        bool in_flight = false;
        unsigned retries = 0;
        std::vector<std::shared_ptr<JobTicket::Waiter>> waiters;
    };

    void finishLocked(const std::string &key, const JobOutcome &o);
    static void fulfill(const std::shared_ptr<JobTicket::Waiter> &w,
                        const JobOutcome &o);

    const unsigned max_retries_;

    mutable std::mutex m_;
    std::condition_variable cv_steal_;
    bool draining_ = false;
    std::map<std::string, Entry> entries_;
    std::deque<std::string> fifo_; //!< Keys of queued entries.
    std::vector<QueueJob> drained_;
    Counters ctr_;
    std::map<std::string, std::size_t> executions_; //!< Per key.
};

} // namespace runner
} // namespace wlcache

#endif // WLCACHE_RUNNER_JOB_QUEUE_HH
