/**
 * @file
 * Content-addressed on-disk snapshot store, the result cache's
 * sibling. Single snapshots (explorer rung cuts) are stored as
 * `<dir>/<key>.snap`; whole interval-snapshot sets (a golden run's
 * fast-forward ladder) as `<dir>/<key>.snapset`. Entries are binary
 * encodeSnapshot() blobs written atomically (temp file + rename);
 * unreadable or corrupted entries read as misses, never errors — the
 * store is an accelerator, not a dependency.
 */

#ifndef WLCACHE_RUNNER_SNAPSHOT_STORE_HH
#define WLCACHE_RUNNER_SNAPSHOT_STORE_HH

#include <string>

#include "nvp/snapshot.hh"

namespace wlcache {
namespace runner {

class SnapshotStore
{
  public:
    /**
     * @param dir Store directory; created on first store. An empty
     *            dir disables the store (all lookups miss).
     */
    explicit SnapshotStore(std::string dir);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** Load the single snapshot stored under @p key. */
    bool load(const std::string &key, nvp::SystemSnapshot &out) const;

    /** Store one snapshot under @p key (atomic; last writer wins). */
    void store(const std::string &key,
               const nvp::SystemSnapshot &snap) const;

    /** Load the snapshot set stored under @p key. */
    bool loadSet(const std::string &key, nvp::SnapshotSet &out) const;

    /** Store an interval-snapshot set under @p key. */
    void storeSet(const std::string &key,
                  const nvp::SnapshotSet &set) const;

    /** Path of the single-snapshot entry for @p key. */
    std::string entryPath(const std::string &key) const;

    /** Path of the snapshot-set entry for @p key. */
    std::string setPath(const std::string &key) const;

  private:
    std::string dir_;
};

} // namespace runner
} // namespace wlcache

#endif // WLCACHE_RUNNER_SNAPSHOT_STORE_HH
