#include "runner/spec_key.hh"

#include <cstdio>
#include <sstream>

#include "util/strings.hh"

namespace wlcache {
namespace runner {

namespace {

/** %.17g — matches the config key's double rendering so the codec's
 *  round-trip echo check stays exact. */
std::string
keyDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // anonymous namespace

std::string
specKeyText(const nvp::ExperimentSpec &spec)
{
    // Resolve the configuration the run would actually use: design
    // preset plus the caller's tweak hook.
    const nvp::SystemConfig cfg = nvp::resolveConfig(spec);

    std::ostringstream os;
    os << "schema=" << kResultSchemaVersion << '\n'
       << "workload=" << spec.workload << '\n'
       << "scale=" << spec.scale << '\n'
       << "workload_seed=" << spec.workload_seed << '\n'
       << "power=" << energy::traceKindName(spec.power) << '\n'
       << "power_seed=" << spec.power_seed << '\n'
       << "power_node=" << spec.power_node << '\n'
       << "power_jitter=" << keyDouble(spec.power_jitter) << '\n'
       << "no_failure=" << spec.no_failure << '\n';
    nvp::dumpConfigKey(os, cfg);
    return os.str();
}

std::string
hashKeyText(const std::string &text)
{
    return util::fnv1a128Hex(text.data(), text.size());
}

std::string
specKey(const nvp::ExperimentSpec &spec)
{
    return hashKeyText(specKeyText(spec));
}

std::string
resumeKey(const nvp::ExperimentSpec &spec)
{
    const nvp::SystemConfig cfg = nvp::resolveConfig(spec);
    nvp::SystemConfig keyed = cfg;
    keyed.forced_outage_cycles.clear();
    keyed.inject_checkpoint_skip = false;
    keyed.inject_register_skip = false;
    keyed.max_outages = 0;
    keyed.timeline = nullptr;
    // Both step modes produce bit-identical state, so snapshots
    // resume across modes; neutralize like SystemSim's snapshot key.
    keyed.step_mode = StepMode::SkipAhead;

    std::ostringstream os;
    os << "schema=" << kResultSchemaVersion << '\n'
       << "resume\n"
       << "workload=" << spec.workload << '\n'
       << "scale=" << spec.scale << '\n'
       << "workload_seed=" << spec.workload_seed << '\n'
       << "power=" << energy::traceKindName(spec.power) << '\n'
       << "power_seed=" << spec.power_seed << '\n'
       << "power_node=" << spec.power_node << '\n'
       << "power_jitter=" << keyDouble(spec.power_jitter) << '\n'
       << "no_failure=" << spec.no_failure << '\n';
    nvp::dumpConfigKey(os, keyed);
    return hashKeyText(os.str());
}

std::string
partialKey(const nvp::ExperimentSpec &spec, std::uint64_t max_events)
{
    std::ostringstream os;
    os << specKeyText(spec) << "partial_events=" << max_events << '\n';
    return hashKeyText(os.str());
}

} // namespace runner
} // namespace wlcache
