#include "runner/spec_key.hh"

#include <sstream>

#include "util/strings.hh"

namespace wlcache {
namespace runner {

std::string
specKeyText(const nvp::ExperimentSpec &spec)
{
    // Resolve the configuration the run would actually use: design
    // preset plus the caller's tweak hook.
    const nvp::SystemConfig cfg = nvp::resolveConfig(spec);

    std::ostringstream os;
    os << "schema=" << kResultSchemaVersion << '\n'
       << "workload=" << spec.workload << '\n'
       << "scale=" << spec.scale << '\n'
       << "workload_seed=" << spec.workload_seed << '\n'
       << "power=" << energy::traceKindName(spec.power) << '\n'
       << "power_seed=" << spec.power_seed << '\n'
       << "no_failure=" << spec.no_failure << '\n';
    nvp::dumpConfigKey(os, cfg);
    return os.str();
}

std::string
hashKeyText(const std::string &text)
{
    return util::fnv1a128Hex(text.data(), text.size());
}

std::string
specKey(const nvp::ExperimentSpec &spec)
{
    return hashKeyText(specKeyText(spec));
}

} // namespace runner
} // namespace wlcache
