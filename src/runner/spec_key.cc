#include "runner/spec_key.hh"

#include <sstream>

#include "util/strings.hh"

namespace wlcache {
namespace runner {

std::string
specKeyText(const nvp::ExperimentSpec &spec)
{
    // Resolve the configuration the run would actually use: design
    // preset plus the caller's tweak hook.
    const nvp::SystemConfig cfg = nvp::resolveConfig(spec);

    std::ostringstream os;
    os << "schema=" << kResultSchemaVersion << '\n'
       << "workload=" << spec.workload << '\n'
       << "scale=" << spec.scale << '\n'
       << "workload_seed=" << spec.workload_seed << '\n'
       << "power=" << energy::traceKindName(spec.power) << '\n'
       << "power_seed=" << spec.power_seed << '\n'
       << "no_failure=" << spec.no_failure << '\n';
    nvp::dumpConfigKey(os, cfg);
    return os.str();
}

std::string
hashKeyText(const std::string &text)
{
    return util::fnv1a128Hex(text.data(), text.size());
}

std::string
specKey(const nvp::ExperimentSpec &spec)
{
    return hashKeyText(specKeyText(spec));
}

std::string
resumeKey(const nvp::ExperimentSpec &spec)
{
    const nvp::SystemConfig cfg = nvp::resolveConfig(spec);
    nvp::SystemConfig keyed = cfg;
    keyed.forced_outage_cycles.clear();
    keyed.inject_checkpoint_skip = false;
    keyed.inject_register_skip = false;
    keyed.max_outages = 0;
    keyed.timeline = nullptr;
    // Both step modes produce bit-identical state, so snapshots
    // resume across modes; neutralize like SystemSim's snapshot key.
    keyed.step_mode = StepMode::SkipAhead;

    std::ostringstream os;
    os << "schema=" << kResultSchemaVersion << '\n'
       << "resume\n"
       << "workload=" << spec.workload << '\n'
       << "scale=" << spec.scale << '\n'
       << "workload_seed=" << spec.workload_seed << '\n'
       << "power=" << energy::traceKindName(spec.power) << '\n'
       << "power_seed=" << spec.power_seed << '\n'
       << "no_failure=" << spec.no_failure << '\n';
    nvp::dumpConfigKey(os, keyed);
    return hashKeyText(os.str());
}

std::string
partialKey(const nvp::ExperimentSpec &spec, std::uint64_t max_events)
{
    std::ostringstream os;
    os << specKeyText(spec) << "partial_events=" << max_events << '\n';
    return hashKeyText(os.str());
}

} // namespace runner
} // namespace wlcache
