#include "runner/spec_key.hh"

#include <cstdio>
#include <sstream>

namespace wlcache {
namespace runner {

std::string
specKeyText(const nvp::ExperimentSpec &spec)
{
    // Resolve the configuration the run would actually use: design
    // preset plus the caller's tweak hook.
    nvp::SystemConfig cfg = nvp::SystemConfig::forDesign(spec.design);
    if (spec.tweak)
        spec.tweak(cfg);

    std::ostringstream os;
    os << "schema=" << kResultSchemaVersion << '\n'
       << "workload=" << spec.workload << '\n'
       << "scale=" << spec.scale << '\n'
       << "workload_seed=" << spec.workload_seed << '\n'
       << "power=" << energy::traceKindName(spec.power) << '\n'
       << "power_seed=" << spec.power_seed << '\n'
       << "no_failure=" << spec.no_failure << '\n';
    nvp::dumpConfigKey(os, cfg);
    return os.str();
}

std::string
hashKeyText(const std::string &text)
{
    // Two independent 64-bit FNV-1a streams (distinct offset bases)
    // give a 128-bit key; collisions across a result cache of any
    // realistic size are then negligible.
    constexpr std::uint64_t kPrime = 0x100000001b3ull;
    std::uint64_t h0 = 0xcbf29ce484222325ull;
    std::uint64_t h1 = 0x9ae16a3b2f90404full;
    for (const unsigned char c : text) {
        h0 = (h0 ^ c) * kPrime;
        h1 = (h1 ^ (c + 0x5bu)) * kPrime;
    }
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(h0),
                  static_cast<unsigned long long>(h1));
    return buf;
}

std::string
specKey(const nvp::ExperimentSpec &spec)
{
    return hashKeyText(specKeyText(spec));
}

} // namespace runner
} // namespace wlcache
