#!/usr/bin/env python3
"""Gate the tracked end-to-end benchmarks (bench/bench_end_to_end.cc).

Reads a Google-Benchmark JSON file from a fresh run and checks the
skip_ahead / percycle speedup RATIO of every BM_EndToEnd pair. Ratios
are what the tentpole promises and — unlike absolute rates — survive a
change of CI hardware, so the gates are:

  1. GapHeavy ratio >= 5.0 (the DESIGN.md sec. 15 acceptance bar).
  2. With a baseline file (the committed BENCH_e2e.json): no pair's
     ratio may regress more than 10% below the baseline ratio.

Updating the baseline: when a change legitimately moves the numbers,
regenerate it in a Release build and commit it with that change:

    ./build/bench/bench_end_to_end --benchmark_out=BENCH_e2e.json \
        --benchmark_out_format=json

Usage: check_bench_e2e.py CURRENT.json [BASELINE.json]
"""

import json
import re
import sys

PAIR_RE = re.compile(
    r"^BM_EndToEnd_(?P<config>\w+?)_(?P<mode>SkipAhead|Percycle)"
    r"(?:_(?P<agg>mean|median|stddev|cv))?$")

GAP_HEAVY_MIN_RATIO = 5.0
MAX_RATIO_REGRESSION = 0.10


def load_rates(path):
    """Map config name -> {mode: sim_cycles_per_sec}.

    Prefers the `median` aggregate when the run used repetitions;
    falls back to the plain (single-run) entry.
    """
    with open(path) as f:
        doc = json.load(f)
    rates = {}
    for bm in doc.get("benchmarks", []):
        m = PAIR_RE.match(bm.get("name", ""))
        if not m:
            continue
        agg = m.group("agg")
        if agg not in (None, "median"):
            continue
        rate = bm.get("sim_cycles_per_sec")
        if rate is None:
            continue
        slot = rates.setdefault(m.group("config"), {})
        # A median aggregate wins over the plain entry.
        if agg == "median" or m.group("mode") not in slot:
            slot[m.group("mode")] = float(rate)
    return {
        cfg: modes["SkipAhead"] / modes["Percycle"]
        for cfg, modes in rates.items()
        if "SkipAhead" in modes and "Percycle" in modes
        and modes["Percycle"] > 0.0
    }


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2

    current = load_rates(argv[1])
    baseline = load_rates(argv[2]) if len(argv) == 3 else {}
    if not current:
        print(f"error: no BM_EndToEnd pairs found in {argv[1]}",
              file=sys.stderr)
        return 2

    failed = False
    print(f"{'pair':<18} {'ratio':>7} {'baseline':>9}  verdict")
    for cfg in sorted(current):
        ratio = current[cfg]
        base = baseline.get(cfg)
        verdicts = []
        if cfg == "GapHeavy" and ratio < GAP_HEAVY_MIN_RATIO:
            verdicts.append(f"BELOW {GAP_HEAVY_MIN_RATIO}x bar")
        if base is not None and ratio < base * (1 - MAX_RATIO_REGRESSION):
            verdicts.append(f">{MAX_RATIO_REGRESSION:.0%} regression")
        failed = failed or bool(verdicts)
        base_str = f"{base:8.2f}x" if base is not None else "        -"
        print(f"{cfg:<18} {ratio:6.2f}x {base_str}  "
              f"{'; '.join(verdicts) or 'ok'}")

    for cfg in sorted(set(baseline) - set(current)):
        print(f"{cfg:<18} missing from current run  FAIL")
        failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
