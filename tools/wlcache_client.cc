/**
 * @file
 * Command-line client for wlcached. Submits work to a running daemon
 * and renders replies byte-identically to the one-shot CLIs, so a
 * served sweep/campaign is interchangeable with a local one.
 *
 * Examples:
 *   wlcache_client ping --server unix:/tmp/wlcached.sock
 *   wlcache_client sweep --spec examples/sweeps/smoke.json \
 *                        --report frontier.md
 *   wlcache_client campaign --design wl --workload sha --stride 20000
 *   wlcache_client run --design wl --workload sha
 *   wlcache_client stats        # queue/dedupe/fleet counters (JSON)
 *   wlcache_client drain        # graceful daemon shutdown
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "energy/power_trace.hh"
#include "nvp/experiment.hh"
#include "nvp/system_config.hh"
#include "serve/client.hh"
#include "sim/logging.hh"
#include "util/arg_parser.hh"
#include "util/strings.hh"
#include "workloads/workloads.hh"

using namespace wlcache;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot read '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFileOrDie(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot write '%s'", path.c_str());
    out << content;
}

/** CLI design shorthand (same vocabulary as wlcache_verify). */
bool
parseDesign(const std::string &name, nvp::DesignKind &out)
{
    const std::string n = util::toLower(name);
    if (n == "nocache")
        out = nvp::DesignKind::NoCache;
    else if (n == "wt" || n == "vcache-wt")
        out = nvp::DesignKind::VCacheWT;
    else if (n == "nvcache" || n == "nvc")
        out = nvp::DesignKind::NVCacheWB;
    else if (n == "nvsram")
        out = nvp::DesignKind::NvsramWB;
    else if (n == "nvsram-full")
        out = nvp::DesignKind::NvsramFull;
    else if (n == "nvsram-practical" || n == "nvsram-prac")
        out = nvp::DesignKind::NvsramPractical;
    else if (n == "replay")
        out = nvp::DesignKind::Replay;
    else if (n == "wtbuf" || n == "wt-buffer")
        out = nvp::DesignKind::WtBuffered;
    else if (n == "wl")
        out = nvp::DesignKind::WL;
    else if (n == "wllog" || n == "wl-log")
        out = nvp::DesignKind::WLLog;
    else
        return false;
    return true;
}

/** Every parseDesign() primary name, for unknown-design errors. */
constexpr const char *kDesignNames =
    "nocache|wt|wtbuf|nvcache|nvsram|nvsram-full|nvsram-practical|"
    "replay|wl|wllog";

/** CLI trace shorthand (same vocabulary as wlcache_verify). */
bool
parseTrace(const std::string &name, energy::TraceKind &out,
           bool &ambient)
{
    const std::string n = util::toLower(name);
    ambient = true;
    if (n == "none" || n == "infinite") {
        ambient = false;
        out = energy::TraceKind::Constant;
    } else if (n == "trace1") {
        out = energy::TraceKind::RfHome;
    } else if (n == "trace2") {
        out = energy::TraceKind::RfOffice;
    } else if (n == "trace3") {
        out = energy::TraceKind::RfMementos;
    } else if (n == "solar") {
        out = energy::TraceKind::Solar;
    } else if (n == "thermal") {
        out = energy::TraceKind::Thermal;
    } else {
        return false;
    }
    return true;
}

/** Every parseTrace() name, for error messages. */
const char *kTraceNames =
    "none|infinite|trace1|trace2|trace3|solar|thermal";

std::vector<std::string>
expandList(const std::string &arg)
{
    std::vector<std::string> out;
    for (const auto &item : util::split(arg, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

serve::Client::ProgressFn
progressPrinter(bool enabled)
{
    if (!enabled)
        return nullptr;
    return [](const std::string &line) {
        std::cerr << line << "\n";
    };
}

int
cmdSweep(serve::Client &client, const util::ArgParser &args)
{
    std::string spec_path = args.get("spec");
    if (spec_path.empty())
        fatal("sweep needs --spec <file.json>");

    serve::SweepRequest req;
    req.spec_json = readFile(spec_path);
    req.objectives = args.getList("objective");
    req.mode = util::toLower(args.get("mode"));
    req.jobs = static_cast<unsigned>(args.getInt("jobs"));
    req.progress = args.getFlag("progress");

    serve::SweepReply reply;
    std::string err;
    if (!serve::submitSweep(client, req, reply, &err,
                            progressPrinter(req.progress)))
        fatal("%s: %s", spec_path.c_str(), err.c_str());

    std::cout << reply.summary;
    if (!args.get("csv").empty())
        writeFileOrDie(args.get("csv"), reply.csv);
    if (!args.get("report").empty())
        writeFileOrDie(args.get("report"), reply.report_md);

    if (args.getFlag("require-warm") && reply.executed != 0) {
        std::cout << "FAILED: --require-warm but " << reply.executed
                  << " run(s) executed instead of hitting the "
                     "result cache\n";
        return 3;
    }
    return 0;
}

int
cmdCampaign(serve::Client &client, const util::ArgParser &args)
{
    energy::TraceKind kind = energy::TraceKind::Constant;
    bool ambient = false;
    if (!parseTrace(args.get("trace"), kind, ambient))
        fatal("unknown trace '%s' (valid: %s)",
              args.get("trace").c_str(), kTraceNames);

    bool inject_ckpt = false, inject_regs = false;
    for (const auto &f :
         expandList(util::toLower(args.get("inject")))) {
        if (f == "checkpoint-skip")
            inject_ckpt = true;
        else if (f == "register-skip")
            inject_regs = true;
        else
            fatal("unknown fault '%s' (checkpoint-skip, "
                  "register-skip)", f.c_str());
    }

    const std::string expect = util::toLower(args.get("expect"));
    if (expect != "clean" && expect != "divergent")
        fatal("--expect must be clean or divergent");

    const auto designs = expandList(args.get("design"));
    const auto apps = expandList(args.get("workload"));
    if (designs.empty() || apps.empty())
        fatal("need at least one design and one workload");

    std::vector<std::string> report_jsons;
    bool all_ok = true;

    for (const auto &design_name : designs) {
        nvp::DesignKind design;
        if (!parseDesign(design_name, design))
            fatal("unknown design '%s' (valid: %s)",
                  design_name.c_str(), kDesignNames);
        for (const auto &app : apps) {
            serve::CampaignRequest req;
            req.design = nvp::designKindName(design);
            req.workload = app;
            req.trace_kind = energy::traceKindName(kind);
            req.ambient = ambient;
            req.scale =
                static_cast<unsigned>(args.getInt("scale"));
            req.seed =
                static_cast<std::uint64_t>(args.getInt("seed"));
            req.power_seed = static_cast<std::uint64_t>(
                args.getInt("power-seed"));
            for (const auto &tok :
                 util::split(args.get("points"), ','))
                if (!tok.empty())
                    req.points.push_back(std::stoull(tok));
            req.stride =
                static_cast<std::uint64_t>(args.getInt("stride"));
            if (!args.get("window").empty()) {
                const auto parts =
                    util::split(args.get("window"), ':');
                if (parts.size() < 2 || parts.size() > 3)
                    fatal("bad --window '%s' (begin:end[:step])",
                          args.get("window").c_str());
                req.has_window = true;
                req.window_begin = std::stoull(parts[0]);
                req.window_end = std::stoull(parts[1]);
                req.window_step =
                    parts.size() == 3 ? std::stoull(parts[2]) : 1;
            }
            req.bisect = args.getFlag("bisect");
            req.inject_checkpoint_skip = inject_ckpt;
            req.inject_register_skip = inject_regs;
            req.jobs = static_cast<unsigned>(args.getInt("jobs"));
            req.snapshot_interval = static_cast<std::uint64_t>(
                args.getInt("snapshot-interval"));
            req.timeline_window = static_cast<std::uint64_t>(
                args.getInt("timeline-window"));
            req.progress = args.getFlag("progress");

            serve::CampaignReply reply;
            std::string err;
            if (!serve::submitCampaign(
                    client, req, reply, &err,
                    progressPrinter(req.progress)))
                fatal("%s/%s: %s", design_name.c_str(), app.c_str(),
                      err.c_str());

            std::cout << reply.summary;
            report_jsons.push_back(reply.report_json);
            if (!reply.golden_clean) {
                all_ok = false;
                continue;
            }
            const bool want_divergent = expect == "divergent";
            if (want_divergent != (reply.num_divergent > 0))
                all_ok = false;
        }
    }

    if (!args.get("json").empty()) {
        std::ofstream out(args.get("json"));
        if (!out)
            fatal("cannot write '%s'", args.get("json").c_str());
        out << "{\n  \"campaigns\": [\n";
        for (std::size_t i = 0; i < report_jsons.size(); ++i) {
            out << report_jsons[i];
            if (i + 1 < report_jsons.size())
                out << ",\n";
        }
        out << "  ]\n}\n";
        std::cout << "campaign report written to "
                  << args.get("json") << "\n";
    }

    if (!all_ok)
        std::cout << "FAILED: expectation '" << expect
                  << "' not met by every campaign\n";
    return all_ok ? 0 : 2;
}

int
cmdRun(serve::Client &client, const util::ArgParser &args)
{
    nvp::DesignKind design;
    if (!parseDesign(args.get("design"), design))
        fatal("unknown design '%s' (valid: %s)",
              args.get("design").c_str(), kDesignNames);
    if (!workloads::findWorkload(args.get("workload")))
        fatal("unknown workload '%s'",
              args.get("workload").c_str());
    energy::TraceKind kind = energy::TraceKind::Constant;
    bool ambient = false;
    if (!parseTrace(args.get("trace"), kind, ambient))
        fatal("unknown trace '%s' (valid: %s)",
              args.get("trace").c_str(), kTraceNames);

    nvp::ExperimentSpec spec;
    spec.design = design;
    spec.workload = args.get("workload");
    spec.power = kind;
    spec.no_failure = !ambient;
    spec.scale = static_cast<unsigned>(args.getInt("scale"));
    spec.workload_seed =
        static_cast<std::uint64_t>(args.getInt("seed"));
    spec.power_seed =
        static_cast<std::uint64_t>(args.getInt("power-seed"));

    serve::RunReply reply;
    std::string err;
    if (!serve::submitRun(client, spec, reply, &err))
        fatal("run failed: %s", err.c_str());

    std::cerr << (reply.executed ? "executed" : "served from cache")
              << "\n";
    std::cout << reply.result_json << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args(
        "wlcache_client",
        "submit sweeps, campaigns, and runs to a wlcached daemon "
        "(commands: ping|stats|drain|sweep|campaign|run)");
    args.option("server", "wlcached.sock",
                "daemon address: unix:PATH, tcp:HOST:PORT, or a bare "
                "socket path")
        // sweep
        .option("spec", "", "sweep-spec JSON file (sweep)")
        .listOption("objective", "objective name(s) (sweep)")
        .option("mode", "",
                "override search mode: exhaustive|halving (sweep)")
        .option("csv", "", "write evaluated points CSV here (sweep)")
        .option("report", "",
                "write the Markdown frontier report here (sweep)")
        .flag("require-warm",
              "fail unless every run hit the result cache (sweep)")
        // campaign / run
        .option("design", "wl",
                "design list (campaign) or single design (run)")
        .option("workload", "sha",
                "workload list (campaign) or single workload (run)")
        .option("trace", "none",
                "power trace: none|trace1|trace2|trace3|solar|"
                "thermal")
        .option("points", "",
                "explicit outage cycles, comma list (campaign)")
        .option("stride", "0",
                "stride-sample the run every N cycles (campaign)")
        .option("window", "",
                "exhaustive window begin:end[:step] (campaign)")
        .flag("bisect", "bisect for the minimal failing cycle")
        .option("inject", "",
                "fault list: checkpoint-skip,register-skip "
                "(campaign)")
        .option("expect", "clean",
                "exit status checks campaigns are clean|divergent")
        .option("scale", "1", "workload input scale factor")
        .option("seed", "42", "workload input seed")
        .option("power-seed", "7", "power trace seed")
        .option("snapshot-interval", "0",
                "golden-ladder snapshot interval (campaign)")
        .option("timeline-window", "64",
                "timeline events around the first divergence "
                "(campaign)")
        .option("json", "",
                "write the campaign report JSON here (campaign)")
        // shared
        .option("jobs", "0", "daemon-side worker threads per request")
        .flag("progress", "stream per-job progress lines to stderr");
    if (!args.parse(argc, argv))
        return 1;

    if (args.positional().size() != 1)
        fatal("need exactly one command: "
              "ping|stats|drain|sweep|campaign|run");
    const std::string cmd = args.positional()[0];

    serve::Client client;
    std::string err;
    if (!client.connect(args.get("server"), &err))
        fatal("cannot reach daemon at %s: %s",
              args.get("server").c_str(), err.c_str());

    if (cmd == "ping") {
        if (!serve::pingDaemon(client, &err))
            fatal("ping failed: %s", err.c_str());
        std::cout << "pong\n";
        return 0;
    }
    if (cmd == "stats") {
        util::JsonValue stats;
        if (!serve::fetchStats(client, stats, &err))
            fatal("stats failed: %s", err.c_str());
        util::writeJsonCompact(std::cout, stats);
        std::cout << "\n";
        return 0;
    }
    if (cmd == "drain") {
        if (!serve::requestDrain(client, &err))
            fatal("drain failed: %s", err.c_str());
        std::cout << "drain requested\n";
        return 0;
    }
    if (cmd == "sweep")
        return cmdSweep(client, args);
    if (cmd == "campaign")
        return cmdCampaign(client, args);
    if (cmd == "run")
        return cmdRun(client, args);

    fatal("unknown command '%s' "
          "(ping|stats|drain|sweep|campaign|run)", cmd.c_str());
}
