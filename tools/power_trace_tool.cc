/**
 * @file
 * Power-trace utility: synthesize any of the paper's five ambient
 * environments to a file, inspect a trace's statistics, or estimate
 * how a platform with a given capacitor and load would fare in it
 * (outage-rate back-of-envelope without running a workload).
 *
 * Examples:
 *   power_trace_tool gen --kind trace1 --out tr1.txt
 *   power_trace_tool info tr1.txt
 *   power_trace_tool estimate tr1.txt --load 25e-3 --capacitor 1e-6
 */

#include <fstream>
#include <iostream>
#include <string>

#include "energy/capacitor.hh"
#include "energy/harvester.hh"
#include "energy/power_trace.hh"
#include "sim/logging.hh"
#include "util/arg_parser.hh"
#include "util/strings.hh"

using namespace wlcache;
using namespace wlcache::energy;

namespace {

int
cmdInfo(const PowerTrace &trace)
{
    std::cout << "samples:          " << trace.numSamples() << " x "
              << util::fmtSeconds(trace.samplePeriod()) << " = "
              << util::fmtSeconds(trace.duration()) << "\n";
    std::cout << "mean power:       "
              << util::fmtDouble(trace.meanPower() * 1e3, 3)
              << " mW\n";
    std::cout << "variation coeff.: "
              << util::fmtDouble(trace.variationCoefficient(), 3)
              << "\n";
    double peak = 0.0, trough = 1e9;
    for (const double w : trace.samples()) {
        peak = std::max(peak, w);
        trough = std::min(trough, w);
    }
    std::cout << "min/max power:    "
              << util::fmtDouble(trough * 1e3, 3) << " / "
              << util::fmtDouble(peak * 1e3, 3) << " mW\n";
    return 0;
}

int
cmdEstimate(const PowerTrace &trace, double load_w, double cap_f,
            double efficiency)
{
    Capacitor cap(cap_f, 2.8, 3.5);
    Harvester h(trace, efficiency);
    const double horizon = trace.duration();
    unsigned outages = 0;
    double on_s = 0.0, off_s = 0.0;

    // Charge to Von, run the constant load until Vbackup-ish (use
    // 2.9 V), repeat across one full pass of the trace.
    off_s += h.chargeUntil(cap, 3.3, horizon);
    while (h.now() < horizon) {
        const double step = 10e-6;
        h.advance(step, cap);
        cap.drawEnergy(load_w * step);
        on_s += step;
        if (cap.storedEnergy() <= cap.energyBetween(0.0, 2.9)) {
            ++outages;
            off_s += h.chargeUntil(cap, 3.3, horizon);
        }
    }
    std::cout << "constant load:    "
              << util::fmtDouble(load_w * 1e3, 2) << " mW\n";
    std::cout << "outages/second:   "
              << util::fmtDouble(outages / horizon, 1) << "\n";
    std::cout << "duty cycle:       "
              << util::fmtDouble(100.0 * on_s / (on_s + off_s), 1)
              << "% powered\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args("power_trace_tool",
                         "generate/inspect ambient power traces");
    args.option("kind", "trace1",
                "trace1|trace2|trace3|solar|thermal|constant")
        .option("seed", "7", "generator seed")
        .option("duration", "2.0", "trace length, seconds")
        .option("constant-mw", "5.0", "level for --kind constant, mW")
        .option("out", "", "output file for 'gen'")
        .option("load", "25e-3", "constant load for 'estimate', W")
        .option("capacitor", "1e-6", "capacitance for 'estimate', F")
        .option("efficiency", "0.7", "harvester efficiency")
        .option("node", "0", "fleet node id for --jitter derivation")
        .option("jitter", "0",
                "derive a node-local trace with this gain spread");
    if (!args.parse(argc, argv))
        return 1;
    if (args.positional().empty()) {
        std::cerr << "usage: power_trace_tool gen|info|estimate "
                     "[file] [options]\n"
                  << args.usage();
        return 1;
    }
    const std::string cmd = args.positional()[0];

    auto load_or_gen = [&]() -> PowerTrace {
        PowerTrace base;
        if (args.positional().size() > 1) {
            std::ifstream in(args.positional()[1]);
            if (!in)
                fatal("cannot open '%s'",
                      args.positional()[1].c_str());
            base = PowerTrace::load(in);
        } else {
            TraceKind kind;
            if (!traceKindFromName(args.get("kind"), kind))
                fatal("unknown kind '%s' (valid: %s)",
                      args.get("kind").c_str(),
                      traceKindNameList().c_str());
            TraceGenConfig cfg;
            cfg.seed =
                static_cast<std::uint64_t>(args.getInt("seed"));
            cfg.duration_s = args.getDouble("duration");
            base = makeTrace(kind, cfg,
                             args.getDouble("constant-mw") * 1e-3);
        }
        // Optional per-node derivation (fleet scenarios): jitter 0
        // passes the base trace through untouched.
        return deriveNodeTrace(
            base, static_cast<std::uint64_t>(args.getInt("node")),
            args.getDouble("jitter"));
    };

    if (cmd == "gen") {
        const PowerTrace t = load_or_gen();
        const std::string out = args.get("out");
        if (out.empty()) {
            t.save(std::cout);
        } else {
            std::ofstream os(out);
            if (!os)
                fatal("cannot write '%s'", out.c_str());
            t.save(os);
            std::cout << "wrote " << t.numSamples() << " samples to "
                      << out << "\n";
        }
        return 0;
    }
    if (cmd == "info")
        return cmdInfo(load_or_gen());
    if (cmd == "estimate")
        return cmdEstimate(load_or_gen(), args.getDouble("load"),
                           args.getDouble("capacitor"),
                           args.getDouble("efficiency"));
    std::cerr << "unknown command '" << cmd << "'\n" << args.usage();
    return 1;
}
