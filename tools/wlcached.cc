/**
 * @file
 * The wlcached daemon: a persistent simulation service. Clients
 * (wlcache_client, or wlcache_explore / wlcache_verify --server)
 * submit sweeps, campaigns, and single runs over a Unix or TCP
 * socket; jobs are deduplicated by content key and executed on a
 * fleet of forked worker processes sharing one result cache and
 * snapshot store.
 *
 * Examples:
 *   # Serve on a Unix socket with 4 workers and a shared cache:
 *   wlcached --listen unix:/tmp/wlcached.sock --workers 4 \
 *            --cache-dir ~/.wlcache-cache --state-dir ~/.wlcached
 *
 *   # Graceful shutdown (equivalent to SIGTERM): in-flight jobs
 *   # finish or checkpoint, queued jobs persist for the next start:
 *   wlcached --listen unix:/tmp/wlcached.sock --drain
 *
 * The daemon re-execs itself with --worker-fd for each worker
 * process; that mode is internal.
 */

#include <unistd.h>

#include <iostream>
#include <string>

#include "serve/client.hh"
#include "serve/net.hh"
#include "serve/server.hh"
#include "serve/worker.hh"
#include "sim/logging.hh"
#include "util/arg_parser.hh"

using namespace wlcache;

namespace {

std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args(
        "wlcached",
        "persistent simulation daemon: content-addressed job "
        "scheduling over a forked worker fleet");
    args.option("listen", "wlcached.sock",
                "listen address: unix:PATH, tcp:HOST:PORT, or a bare "
                "socket path")
        .option("workers", "2", "worker processes in the fleet")
        .option("cache-dir", "wlcached-cache",
                "shared result-cache directory")
        .option("snapshot-dir", "",
                "shared snapshot-store directory (drain checkpoints, "
                "rung cuts; empty disables)")
        .option("state-dir", "",
                "directory persisting queued jobs across a drain "
                "(empty disables)")
        .flag("drain",
              "connect to the daemon at --listen, request a graceful "
              "drain, and exit")
        .option("worker-fd", "-1",
                "internal: serve jobs on this fd (worker mode)");
    if (!args.parse(argc, argv))
        return 1;

    const long worker_fd = args.getInt("worker-fd");
    if (worker_fd >= 0) {
        serve::WorkerConfig wc;
        wc.cache_dir = args.get("cache-dir");
        wc.snapshot_dir = args.get("snapshot-dir");
        return serve::runWorkerLoop(static_cast<int>(worker_fd), wc);
    }

    if (args.getFlag("drain")) {
        serve::Client client;
        std::string err;
        if (!client.connect(args.get("listen"), &err))
            fatal("cannot reach daemon: %s", err.c_str());
        if (!serve::requestDrain(client, &err))
            fatal("drain request failed: %s", err.c_str());
        std::cout << "drain requested\n";
        return 0;
    }

    serve::ServerConfig sc;
    std::string err;
    if (!serve::parseAddress(args.get("listen"), sc.address, &err))
        fatal("bad --listen: %s", err.c_str());
    sc.workers = static_cast<unsigned>(args.getInt("workers"));
    sc.cache_dir = args.get("cache-dir");
    sc.snapshot_dir = args.get("snapshot-dir");
    sc.state_dir = args.get("state-dir");
    sc.exe_path = selfExePath(argv[0]);

    serve::Server server(sc);
    if (!server.start(&err))
        fatal("cannot start: %s", err.c_str());
    return server.run();
}
