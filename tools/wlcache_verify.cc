/**
 * @file
 * Fault-injection campaign driver: systematically force power
 * failures at chosen cycle points of a (design x workload) run and
 * diff the post-recovery persistent state against a golden
 * uninterrupted execution (src/verify/).
 *
 * Examples:
 *   # Stride-sample the whole run, 1000 points apart:
 *   wlcache_verify --design wl --workload sha --stride 1000
 *
 *   # Exhaustive window around a suspect region, then bisect:
 *   wlcache_verify --design wl --workload sha \
 *                  --window 40000:42000:10 --bisect
 *
 *   # Oracle self-test: a dropped JIT checkpoint must be detected
 *   # (exit status fails unless a divergence is found):
 *   wlcache_verify --design wl --workload sha --stride 500 \
 *                  --inject checkpoint-skip --expect divergent
 *
 * Campaigns fan out over the parallel runner; point --cache-dir at a
 * directory to make re-runs (and bisection probes) nearly free.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hh"
#include "sim/logging.hh"
#include "util/arg_parser.hh"
#include "util/strings.hh"
#include "verify/campaign.hh"
#include "workloads/workloads.hh"

using namespace wlcache;

namespace {

bool
parseDesign(const std::string &name, nvp::DesignKind &out)
{
    const std::string n = util::toLower(name);
    if (n == "nocache")
        out = nvp::DesignKind::NoCache;
    else if (n == "wt" || n == "vcache-wt")
        out = nvp::DesignKind::VCacheWT;
    else if (n == "nvcache" || n == "nvc")
        out = nvp::DesignKind::NVCacheWB;
    else if (n == "nvsram")
        out = nvp::DesignKind::NvsramWB;
    else if (n == "nvsram-full")
        out = nvp::DesignKind::NvsramFull;
    else if (n == "nvsram-practical" || n == "nvsram-prac")
        out = nvp::DesignKind::NvsramPractical;
    else if (n == "replay")
        out = nvp::DesignKind::Replay;
    else if (n == "wtbuf" || n == "wt-buffer")
        out = nvp::DesignKind::WtBuffered;
    else if (n == "wl")
        out = nvp::DesignKind::WL;
    else if (n == "wllog" || n == "wl-log")
        out = nvp::DesignKind::WLLog;
    else
        return false;
    return true;
}

/** Every parseDesign() primary name, for unknown-design errors. */
constexpr const char *kDesignNames =
    "nocache|wt|wtbuf|nvcache|nvsram|nvsram-full|nvsram-practical|"
    "replay|wl|wllog";

bool
parseTrace(const std::string &name, energy::TraceKind &out,
           bool &ambient)
{
    const std::string n = util::toLower(name);
    ambient = true;
    if (n == "none" || n == "infinite") {
        ambient = false;
        out = energy::TraceKind::Constant;
    } else if (n == "trace1") {
        out = energy::TraceKind::RfHome;
    } else if (n == "trace2") {
        out = energy::TraceKind::RfOffice;
    } else if (n == "trace3") {
        out = energy::TraceKind::RfMementos;
    } else if (n == "solar") {
        out = energy::TraceKind::Solar;
    } else if (n == "thermal") {
        out = energy::TraceKind::Thermal;
    } else {
        return false;
    }
    return true;
}

/** Every parseTrace() name, for error messages. */
const char *kTraceNames =
    "none|infinite|trace1|trace2|trace3|solar|thermal";

std::vector<std::uint64_t>
parsePoints(const std::string &arg)
{
    std::vector<std::uint64_t> out;
    for (const auto &tok : util::split(arg, ','))
        if (!tok.empty())
            out.push_back(std::stoull(tok));
    return out;
}

/** Parse "begin:end[:step]". */
bool
parseWindow(const std::string &arg, verify::CampaignConfig &cfg)
{
    const auto parts = util::split(arg, ':');
    if (parts.size() < 2 || parts.size() > 3)
        return false;
    cfg.has_window = true;
    cfg.window_begin = std::stoull(parts[0]);
    cfg.window_end = std::stoull(parts[1]);
    cfg.window_step = parts.size() == 3 ? std::stoull(parts[2]) : 1;
    return cfg.window_end > cfg.window_begin && cfg.window_step > 0;
}

std::vector<std::string>
expandList(const std::string &arg)
{
    std::vector<std::string> out;
    for (const auto &item : util::split(arg, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args(
        "wlcache_verify",
        "forced-outage fault-injection campaigns with a golden-model "
        "differential oracle");
    args.option("design", "wl",
                "comma list: nocache|wt|nvcache|nvsram|nvsram-full|"
                "nvsram-practical|replay|wtbuf|wl")
        .option("workload", "sha", "comma list of benchmark kernels")
        .option("trace", "none",
                "none (infinite power, forced point is the only "
                "outage) or trace1|trace2|trace3|solar|thermal "
                "(ambient outages in addition)")
        .option("points", "", "explicit outage cycles, comma list")
        .option("stride", "0",
                "stride-sample the run every N cycles")
        .option("window", "",
                "exhaustive window begin:end[:step] in cycles")
        .flag("bisect",
              "bisect below the first divergent point for the "
              "minimal failing cycle")
        .option("inject", "",
                "oracle self-test faults: comma list of "
                "checkpoint-skip,register-skip")
        .option("expect", "clean",
                "exit status checks campaigns are clean|divergent")
        .option("scale", "1", "workload input scale factor")
        .option("seed", "42", "workload input seed")
        .option("power-seed", "7", "power trace seed")
        .option("jobs", "0",
                "worker threads; 0 = WLCACHE_JOBS env or all cores")
        .option("cache-dir", "",
                "result-cache directory (empty = no cache)")
        .option("snapshot-interval", "0",
                "record a golden-run snapshot every N cycles and "
                "fast-forward each point run from the nearest "
                "preceding snapshot (0 disables; requires --trace "
                "none)")
        .option("snapshot-dir", "",
                "snapshot-store directory persisting the golden "
                "ladder across campaigns (empty = in-memory only)")
        .option("timeline-window", "64",
                "timeline events to attach around the first "
                "divergence (0 disables the extra traced re-run)")
        .option("step-mode", "skip_ahead",
                "run-loop energy integration: skip_ahead|percycle "
                "(reports are byte-identical either way; percycle is "
                "the slow reference loop, DESIGN.md sec. 15)")
        .option("json", "", "write the campaign report JSON here")
        .option("server", "",
                "submit campaigns to a running wlcached at this "
                "address (unix:PATH / tcp:HOST:PORT) instead of "
                "executing locally; reports are byte-identical")
        .flag("progress", "per-job progress lines on stderr");
    if (!args.parse(argc, argv))
        return 1;

    energy::TraceKind kind = energy::TraceKind::Constant;
    bool ambient = false;
    if (!parseTrace(args.get("trace"), kind, ambient))
        fatal("unknown trace '%s' (valid: %s)",
              args.get("trace").c_str(), kTraceNames);

    bool inject_ckpt = false, inject_regs = false;
    for (const auto &f : expandList(util::toLower(args.get("inject")))) {
        if (f == "checkpoint-skip")
            inject_ckpt = true;
        else if (f == "register-skip")
            inject_regs = true;
        else
            fatal("unknown fault '%s' (checkpoint-skip, "
                  "register-skip)", f.c_str());
    }

    const std::string expect = util::toLower(args.get("expect"));
    if (expect != "clean" && expect != "divergent")
        fatal("--expect must be clean or divergent");

    StepMode step_mode;
    if (!nvp::stepModeFromName(util::toLower(args.get("step-mode")),
                               step_mode))
        fatal("unknown --step-mode '%s' (percycle|skip_ahead)",
              args.get("step-mode").c_str());

    const auto designs = expandList(args.get("design"));
    const auto apps = expandList(args.get("workload"));
    if (designs.empty() || apps.empty())
        fatal("need at least one design and one workload");

    const std::string server = args.get("server");
    // The campaign protocol has no step-mode field (the modes are
    // bit-identical, so the daemon always runs skip_ahead); refuse
    // rather than silently ignore a requested reference run.
    if (!server.empty() && step_mode != StepMode::SkipAhead)
        fatal("--step-mode percycle is local-only (--server runs "
              "skip_ahead)");
    serve::Client client;
    if (!server.empty()) {
        std::string cerr_msg;
        if (!client.connect(server, &cerr_msg))
            fatal("cannot reach daemon at %s: %s", server.c_str(),
                  cerr_msg.c_str());
    }
    serve::Client::ProgressFn on_progress;
    if (args.getFlag("progress"))
        on_progress = [](const std::string &line) {
            std::cerr << line << "\n";
        };

    std::vector<std::string> report_jsons;
    bool all_ok = true;
    const bool want_divergent = expect == "divergent";

    for (const auto &design_name : designs) {
        nvp::DesignKind design;
        if (!parseDesign(design_name, design))
            fatal("unknown design '%s' (valid: %s)",
                  design_name.c_str(), kDesignNames);
        for (const auto &app : apps) {
            if (!workloads::findWorkload(app))
                fatal("unknown workload '%s'", app.c_str());

            // Served submission: the daemon runs the same campaign
            // engine and renderers, so summary and report come back
            // byte-identical to local execution.
            if (!server.empty()) {
                serve::CampaignRequest req;
                req.design = nvp::designKindName(design);
                req.workload = app;
                req.trace_kind = energy::traceKindName(kind);
                req.ambient = ambient;
                req.scale =
                    static_cast<unsigned>(args.getInt("scale"));
                req.seed =
                    static_cast<std::uint64_t>(args.getInt("seed"));
                req.power_seed = static_cast<std::uint64_t>(
                    args.getInt("power-seed"));
                req.points = parsePoints(args.get("points"));
                req.stride = static_cast<std::uint64_t>(
                    args.getInt("stride"));
                if (!args.get("window").empty()) {
                    verify::CampaignConfig wc;
                    if (!parseWindow(args.get("window"), wc))
                        fatal("bad --window '%s' (begin:end[:step])",
                              args.get("window").c_str());
                    req.has_window = true;
                    req.window_begin = wc.window_begin;
                    req.window_end = wc.window_end;
                    req.window_step = wc.window_step;
                }
                req.bisect = args.getFlag("bisect");
                req.inject_checkpoint_skip = inject_ckpt;
                req.inject_register_skip = inject_regs;
                req.jobs =
                    static_cast<unsigned>(args.getInt("jobs"));
                req.snapshot_interval = static_cast<std::uint64_t>(
                    args.getInt("snapshot-interval"));
                req.timeline_window = static_cast<std::uint64_t>(
                    args.getInt("timeline-window"));
                req.progress = args.getFlag("progress");

                serve::CampaignReply reply;
                std::string serr;
                if (!serve::submitCampaign(client, req, reply,
                                           &serr, on_progress))
                    fatal("%s/%s: %s", design_name.c_str(),
                          app.c_str(), serr.c_str());

                std::cout << reply.summary;
                report_jsons.push_back(reply.report_json);
                if (!reply.golden_clean) {
                    all_ok = false;
                    continue;
                }
                if (want_divergent != (reply.num_divergent > 0))
                    all_ok = false;
                continue;
            }

            verify::CampaignConfig cc;
            cc.base.design = design;
            cc.base.workload = app;
            cc.base.power = kind;
            cc.base.no_failure = !ambient;
            cc.base.scale =
                static_cast<unsigned>(args.getInt("scale"));
            cc.base.workload_seed =
                static_cast<std::uint64_t>(args.getInt("seed"));
            cc.base.power_seed =
                static_cast<std::uint64_t>(args.getInt("power-seed"));
            cc.base.tweak = [step_mode](nvp::SystemConfig &cfg) {
                cfg.step_mode = step_mode;
            };
            cc.ambient = ambient;
            cc.points = parsePoints(args.get("points"));
            cc.stride =
                static_cast<std::uint64_t>(args.getInt("stride"));
            if (!args.get("window").empty() &&
                !parseWindow(args.get("window"), cc))
                fatal("bad --window '%s' (begin:end[:step])",
                      args.get("window").c_str());
            cc.bisect = args.getFlag("bisect");
            cc.inject_checkpoint_skip = inject_ckpt;
            cc.inject_register_skip = inject_regs;
            cc.jobs = static_cast<unsigned>(args.getInt("jobs"));
            cc.cache_dir = args.get("cache-dir");
            cc.snapshot_interval = static_cast<std::uint64_t>(
                args.getInt("snapshot-interval"));
            cc.snapshot_dir = args.get("snapshot-dir");
            cc.timeline_window = static_cast<std::size_t>(
                args.getInt("timeline-window"));
            cc.progress = args.getFlag("progress");

            const verify::CampaignReport rep =
                verify::runCampaign(cc);

            // Summary block shared with the wlcached campaign
            // handler, so served campaigns render byte-identically.
            verify::writeCampaignSummary(std::cout, rep);
            std::ostringstream rj;
            writeCampaignReportJson(rj, rep);
            report_jsons.push_back(rj.str());
            if (!rep.golden_clean) {
                all_ok = false;
                continue;
            }

            if (want_divergent != (rep.num_divergent > 0))
                all_ok = false;
        }
    }

    if (!args.get("json").empty()) {
        std::ofstream out(args.get("json"));
        if (!out)
            fatal("cannot write '%s'", args.get("json").c_str());
        out << "{\n  \"campaigns\": [\n";
        for (std::size_t i = 0; i < report_jsons.size(); ++i) {
            out << report_jsons[i];
            if (i + 1 < report_jsons.size())
                out << ",\n";
        }
        out << "  ]\n}\n";
        std::cout << "campaign report written to "
                  << args.get("json") << "\n";
    }

    if (!all_ok)
        std::cout << "FAILED: expectation '" << expect
                  << "' not met by every campaign\n";
    return all_ok ? 0 : 2;
}
