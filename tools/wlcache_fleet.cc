/**
 * @file
 * Fleet scenario driver: evaluate a declarative N-node fleet spec —
 * every node runs a single-node experiment with a correlated-but-
 * jittered power trace and a mix-assigned workload — and report the
 * Pareto frontier over fleet objectives (forward-progress
 * percentiles, fleet-total/worst-line NVM wear, deadline misses).
 *
 * Examples:
 *   # Local evaluation with a warm result cache:
 *   wlcache_fleet --spec fleet.json --jobs 8 \
 *                 --cache-dir ~/.wlcache-cache \
 *                 --csv points.csv --report fleet.md
 *
 *   # Served through a running wlcached (byte-identical reports):
 *   wlcache_fleet --spec fleet.json --server unix:/tmp/wlcached.sock
 *
 *   # CI warm-cache check:
 *   wlcache_fleet --spec fleet.json --cache-dir cache --require-warm
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "fleet/fleet.hh"
#include "fleet/fleet_spec.hh"
#include "fleet/report.hh"
#include "serve/client.hh"
#include "sim/logging.hh"
#include "util/arg_parser.hh"
#include "util/strings.hh"

using namespace wlcache;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot read fleet spec '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFileOrDie(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot write '%s'", path.c_str());
    out << content;
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args(
        "wlcache_fleet",
        "N-node intermittent-computing fleet scenarios over the "
        "content-addressed runner");
    args.option("spec", "", "fleet-spec JSON file (required)")
        .option("jobs", "0",
                "worker threads; 0 = WLCACHE_JOBS env or all cores")
        .option("cache-dir", "",
                "result-cache directory (empty = no cache)")
        .option("snapshot-dir", "",
                "snapshot-store directory (empty = disabled)")
        .option("csv", "", "write every point as CSV here")
        .option("report", "", "write the Markdown fleet report here")
        .option("server", "",
                "submit to a running wlcached at this address "
                "(unix:PATH / tcp:HOST:PORT) instead of executing "
                "locally; reports are byte-identical")
        .flag("progress", "per-job progress lines on stderr")
        .flag("require-warm",
              "fail unless every run was served from the result "
              "cache (CI determinism check)")
        .flag("list-objectives", "list fleet objectives and exit");
    if (!args.parse(argc, argv))
        return 1;

    if (args.getFlag("list-objectives")) {
        for (const auto &d : fleet::allFleetObjectives())
            std::cout << util::padRight(d.name, 22) << d.help
                      << "\n";
        return 0;
    }

    std::string spec_path = args.get("spec");
    if (spec_path.empty() && args.positional().size() == 1)
        spec_path = args.positional()[0];
    if (spec_path.empty())
        fatal("need a fleet spec: --spec <file.json>");

    const std::string spec_text = readFile(spec_path);

    fleet::FleetConfig cfg;
    std::string err;
    if (!fleet::parseFleetSpec(spec_text, cfg.spec, &err))
        fatal("%s: %s", spec_path.c_str(), err.c_str());

    cfg.jobs = static_cast<unsigned>(args.getInt("jobs"));
    cfg.cache_dir = args.get("cache-dir");
    cfg.snapshot_dir = args.get("snapshot-dir");
    cfg.progress = args.getFlag("progress");

    // Served submission: the daemon runs the same engine with the
    // same renderers (its cache/snapshot dirs apply, not ours), so
    // summary/csv/report come back byte-identical to local runs.
    if (!args.get("server").empty()) {
        serve::Client client;
        if (!client.connect(args.get("server"), &err))
            fatal("cannot reach daemon at %s: %s",
                  args.get("server").c_str(), err.c_str());
        serve::FleetRequest req;
        req.spec_json = spec_text;
        req.jobs = cfg.jobs;
        req.progress = cfg.progress;
        serve::FleetReply reply;
        serve::Client::ProgressFn on_progress;
        if (req.progress)
            on_progress = [](const std::string &line) {
                std::cerr << line << "\n";
            };
        if (!serve::submitFleet(client, req, reply, &err,
                                on_progress))
            fatal("%s: %s", spec_path.c_str(), err.c_str());

        std::cout << reply.summary;
        if (!args.get("csv").empty())
            writeFileOrDie(args.get("csv"), reply.csv);
        if (!args.get("report").empty())
            writeFileOrDie(args.get("report"), reply.report_md);
        if (args.getFlag("require-warm") && reply.executed != 0) {
            std::cout << "FAILED: --require-warm but "
                      << reply.executed
                      << " run(s) executed instead of hitting the "
                         "result cache\n";
            return 3;
        }
        return 0;
    }

    fleet::FleetReport report;
    if (!fleet::runFleet(cfg, report, &err))
        fatal("%s: %s", spec_path.c_str(), err.c_str());

    fleet::writeFleetSummaryText(std::cout, report);

    if (!args.get("csv").empty()) {
        std::ostringstream ss;
        fleet::writeFleetCsv(ss, report);
        writeFileOrDie(args.get("csv"), ss.str());
    }
    if (!args.get("report").empty()) {
        std::ostringstream ss;
        fleet::writeFleetMarkdown(ss, report);
        writeFileOrDie(args.get("report"), ss.str());
    }

    if (args.getFlag("require-warm") && report.executed != 0) {
        std::cout << "FAILED: --require-warm but " << report.executed
                  << " run(s) executed instead of hitting the "
                     "result cache\n";
        return 3;
    }
    return 0;
}
